"""Shared wire-format constants (§5.1).

Kept in a leaf module so the aggregation layer (size models) and the
diffusion layer (protocol messages) can both use them without importing
each other.
"""

#: bytes on the wire for event packets (exploratory and data events)
EVENT_SIZE = 64
#: bytes on the wire for interest / reinforcement / cost messages
CONTROL_SIZE = 36

__all__ = ["EVENT_SIZE", "CONTROL_SIZE"]
