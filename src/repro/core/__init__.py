"""The paper's contribution: greedy aggregation on a greedy incremental tree.

* :class:`GreedyAgent` — the diffusion instantiation of §4 (energy cost
  attribute, incremental cost messages, T_p reinforcement, set-cover
  truncation).
* :mod:`repro.core.truncation` — the §4.3 negative-reinforcement rules.
"""

from .greedy import GreedyAgent, GreedyEventTruncationAgent
from .truncation import WindowAggregate, setcover_victims

__all__ = ["GreedyAgent", "GreedyEventTruncationAgent", "WindowAggregate", "setcover_victims"]
