"""Path truncation by weighted set cover over *sources* (§4.3).

Given the incoming aggregates of one T_n window, decide which upstream
neighbors are energy-inefficient and should be negatively reinforced.

The paper's direct rule — cover the window's *events* — is conservative:
in fig 4(a), neighbor H keeps delivering because one of its events wasn't
covered this window, even though its sources are fully covered by cheaper
neighbors.  The energy-efficient rule transforms every aggregate's event
set to its *source* set, rescaling weights by ``w* = w·|S*|/|S|`` to
preserve the initial cost ratios, and covers sources instead: in
fig 4(b), both H and K fall outside the cover and are truncated.

Both rules are implemented; the experiment ablation
(`benchmarks/test_ablation_truncation.py`) compares them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from ..aggregation.setcover import (
    WeightedSubset,
    greedy_weighted_set_cover,
    transform_to_sources,
)

__all__ = ["WindowAggregate", "setcover_victims"]


@dataclass(frozen=True)
class WindowAggregate:
    """One incoming aggregate remembered for the truncation window."""

    sender: int
    item_keys: frozenset
    cost: float
    source_of: dict


def setcover_victims(
    window: Sequence[WindowAggregate], on_sources: bool = True
) -> list[int]:
    """Senders whose aggregates fall outside the minimum-cost cover.

    ``on_sources=True`` is the paper's energy-efficient rule (cover the
    set of sources); ``False`` is the conservative rule (cover the set of
    events).  An empty window, or a window with a single sender, never
    yields victims.
    """
    senders = {w.sender for w in window}
    if len(senders) < 2:
        return []

    family: list[WeightedSubset] = []
    source_of: dict[Hashable, int] = {}
    for agg in window:
        if not agg.item_keys:
            continue
        family.append(WeightedSubset(agg.item_keys, agg.cost, tag=agg.sender))
        source_of.update(agg.source_of)
    if not family:
        return []

    if on_sources:
        family = transform_to_sources(family, source_of)
    universe = frozenset().union(*(s.elements for s in family))
    cover = greedy_weighted_set_cover(universe, family)
    kept = {family[i].tag for i in cover.chosen}
    victims = sorted(senders - kept)
    # Safety valve: never truncate every sender at once.
    if len(victims) == len(senders):
        return []
    return victims
