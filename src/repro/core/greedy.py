"""Greedy aggregation: the paper's contribution (§4).

A new instantiation of directed diffusion that constructs a **greedy
incremental tree**: the first source reaches the sink over a lowest-energy
path; every subsequent source is grafted onto the *closest point of the
existing tree*.  All decisions are local:

* exploratory events accumulate the energy cost attribute ``E``
  (fixed-power radio ⇒ hops);
* sources already on the tree answer another source's exploratory flood
  with an **incremental cost message** whose cost ``C`` starts at their
  own ``E`` for that flood and is lowered to ``min(C, cached E)`` at every
  on-tree node it passes on its way down the data gradients — so the sink
  learns the cost to the closest tree point, not just to the source;
* the sink waits ``T_p`` before reinforcing, then picks the neighbor that
  offered the lowest cost over exploratory ``E`` and incremental ``C``
  (ties: exploratory first, then earliest delivery); each reinforced node
  applies the same rule immediately, which walks the reinforcement down
  the existing tree and grafts the new branch at the argmin node;
* every ``T_n``, inefficient upstream neighbors are truncated by the
  source-set-cover rule of §4.3 (see :mod:`repro.core.truncation`).
"""

from __future__ import annotations

from typing import Optional

from ..diffusion.agent import DiffusionAgent, _WindowEntry
from ..diffusion.cache import ReinforceChoice, SeenCache
from ..diffusion.messages import ExploratoryEvent, IncrementalCostMsg
from ..sim import ScheduledEvent
from .truncation import WindowAggregate, setcover_victims

__all__ = ["GreedyAgent", "GreedyEventTruncationAgent"]


class GreedyAgent(DiffusionAgent):
    """Greedy aggregation on a greedy incremental tree."""

    scheme_name = "greedy"

    #: truncation rule: cover sources (paper's efficient rule) or events
    truncate_on_sources = True

    #: consecutive guilty windows required before truncating a neighbor;
    #: one window of duplicates is routine churn right after an
    #: exploratory round re-reinforces paths, two in a row is a real
    #: redundant path.
    truncation_patience = 2

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: sink-side pending T_p decisions, keyed by exploratory round
        self._decision_events: dict[tuple, ScheduledEvent] = {}
        self._decided = SeenCache(self.params.cache_capacity)
        #: per (interest, sender): consecutive windows outside the cover
        self._victim_streak: dict[tuple[int, int], int] = {}

    # ==================================================================
    # sink: delayed lowest-cost reinforcement
    # ==================================================================
    def sink_on_exploratory(
        self, msg: ExploratoryEvent, from_id: int, first: bool
    ) -> None:
        # The cache already recorded (neighbor, E, time); just make sure a
        # decision is pending.  §4.1: "it does not reinforce a neighbor
        # immediately because an energy-efficient path is not necessarily
        # a lowest-delay path. Instead, a reinforcement timer of T_p is
        # set up."
        self._arm_decision(msg.key)

    def _arm_decision(self, event_key: tuple) -> None:
        if event_key in self._decided:
            return
        ev = self._decision_events.get(event_key)
        if ev is not None and ev.pending:
            return
        self._decision_events[event_key] = self.sim.schedule(
            self.params.reinforcement_timer, self._decide, event_key
        )

    def _decide(self, event_key: tuple) -> None:
        self._decision_events.pop(event_key, None)
        if not self.node.up:
            return
        if not self._decided.check_and_add(event_key):
            return
        choice = self.exploratory_cache.lowest_cost_choice(
            event_key, prefer=self._incumbents(event_key[0])
        )
        if choice is None:
            self.tracer.count("greedy.decision_empty")
            return
        interest_id = event_key[0]
        self.tracer.count(
            "greedy.reinforce_via_incremental"
            if choice.via_incremental
            else "greedy.reinforce_via_exploratory"
        )
        self.tracer.record(
            "greedy.decision",
            node=self.node.node_id,
            interest=interest_id,
            neighbor=choice.neighbor,
            via_incremental=choice.via_incremental,
        )
        self.send_reinforcement(interest_id, event_key, choice.neighbor)

    # ==================================================================
    # local rule for reinforcement propagation
    # ==================================================================
    def _incumbents(self, interest_id: int) -> frozenset:
        """Upstream neighbors currently feeding us data for this interest:
        preferred on cost ties so equal-cost rounds keep the same tree."""
        win = self.window.get(interest_id)
        if not win:
            return frozenset()
        horizon = self.sim.now - self.params.negative_window
        return frozenset(e.from_id for e in win if e.time >= horizon)

    def choose_upstream(self, event_key: tuple) -> Optional[ReinforceChoice]:
        return self.exploratory_cache.lowest_cost_choice(
            event_key, prefer=self._incumbents(event_key[0])
        )

    # ==================================================================
    # incremental cost messages
    # ==================================================================
    def on_exploratory_first(self, msg: ExploratoryEvent, from_id: int) -> None:
        """An on-tree *source* answers another source's flood with C (§4.1)."""
        if msg.interest_id not in self.source_for:
            return
        table = self.gradients.get(msg.interest_id)
        if table is None or not table.has_data_gradient(self.sim.now):
            return  # not on the existing tree (no data gradients)
        ic = IncrementalCostMsg(
            interest_id=msg.interest_id,
            event_key=msg.key,
            origin_source=self.node.node_id,
            cost=msg.energy_cost,  # E = cost of delivering the flood to us
        )
        self.tracer.count("greedy.ic_originated")
        self._send_incremental(ic)

    def _send_incremental(self, msg: IncrementalCostMsg) -> None:
        table = self._gradient_table(msg.interest_id)
        for neighbor in table.data_neighbors(self.sim.now):
            self.node.send(msg, neighbor, msg.size)

    def _handle_incremental_cost(self, msg: IncrementalCostMsg, from_id: int) -> None:
        self.tracer.count("greedy.ic_received")
        # Record the advertisement for later reinforcement decisions.
        self.exploratory_cache.note_incremental_cost(
            msg.event_key, from_id, msg.cost, self.sim.now
        )
        if msg.interest_id in self.own_interests:
            # Cost information reached the sink; make sure a T_p decision
            # is pending even if the direct flood copy was lost.
            self._arm_decision(msg.event_key)
            return
        if not self.ic_seen.check_and_add((msg.event_key, msg.origin_source)):
            return
        table = self._gradient_table(msg.interest_id)
        if not table.has_data_gradient(self.sim.now):
            self.tracer.count("greedy.ic_off_tree")
            return
        # §4.1: C := min(C, E of the exploratory event retrieved from the
        # message cache) — our own cost for that flood.
        record = self.exploratory_cache.get(msg.event_key)
        own_cost = record.min_energy() if record is not None else None
        cost = msg.cost if own_cost is None else min(msg.cost, own_cost)
        self._send_incremental(msg.lowered(cost))

    # ==================================================================
    # truncation
    # ==================================================================
    def truncation_victims(
        self, interest_id: int, window: list[_WindowEntry]
    ) -> list[int]:
        aggregates = [
            WindowAggregate(
                sender=e.from_id,
                item_keys=e.all_keys,
                cost=e.cost,
                source_of=e.source_of,
            )
            for e in window
        ]
        guilty = set(setcover_victims(aggregates, on_sources=self.truncate_on_sources))
        confirmed = []
        for sender in {a.sender for a in aggregates}:
            key = (interest_id, sender)
            if sender in guilty:
                streak = self._victim_streak.get(key, 0) + 1
                if streak >= self.truncation_patience:
                    confirmed.append(sender)
                    self._victim_streak.pop(key, None)
                else:
                    self._victim_streak[key] = streak
            else:
                self._victim_streak.pop(key, None)
        return sorted(confirmed)


class GreedyEventTruncationAgent(GreedyAgent):
    """Ablation variant: §4.3's *conservative* truncation rule.

    Identical to :class:`GreedyAgent` except the negative-reinforcement
    set cover runs over events instead of sources — the rule the paper
    calls "a bit conservative and energy inefficient" before introducing
    the sources transformation.  Used by the truncation ablation bench.
    """

    scheme_name = "greedy-events"
    truncate_on_sources = False
