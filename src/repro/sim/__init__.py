"""Discrete-event simulation kernel (the ns-2 replacement substrate).

Public surface:

* :class:`Simulator` / :class:`ScheduledEvent` — the event scheduler
  (with an opt-in profiler hook, see :mod:`repro.obs.profiler`).
* :class:`OneShotTimer` / :class:`PeriodicTimer` — protocol timer idioms.
* :class:`Tracer` / :class:`TraceRecord` — registry-backed metrics and
  structured traces.
* :class:`RngRegistry` — named deterministic random substreams.
"""

from .engine import ScheduledEvent, SimulationError, Simulator
from .rng import RngRegistry, derive_seed
from .timers import OneShotTimer, PeriodicTimer
from .trace import DEFAULT_MAX_RECORDS, TraceRecord, Tracer

__all__ = [
    "Simulator",
    "ScheduledEvent",
    "SimulationError",
    "OneShotTimer",
    "PeriodicTimer",
    "Tracer",
    "TraceRecord",
    "DEFAULT_MAX_RECORDS",
    "RngRegistry",
    "derive_seed",
]
