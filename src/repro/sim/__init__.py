"""Discrete-event simulation kernel (the ns-2 replacement substrate).

Public surface:

* :class:`Simulator` / :class:`ScheduledEvent` — the event scheduler.
* :class:`OneShotTimer` / :class:`PeriodicTimer` — protocol timer idioms.
* :class:`Tracer` / :class:`TraceRecord` — counters and structured traces.
* :class:`RngRegistry` — named deterministic random substreams.
"""

from .engine import ScheduledEvent, SimulationError, Simulator
from .rng import RngRegistry, derive_seed
from .timers import OneShotTimer, PeriodicTimer
from .trace import TraceRecord, Tracer

__all__ = [
    "Simulator",
    "ScheduledEvent",
    "SimulationError",
    "OneShotTimer",
    "PeriodicTimer",
    "Tracer",
    "TraceRecord",
    "RngRegistry",
    "derive_seed",
]
