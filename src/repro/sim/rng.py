"""Deterministic random-number streams.

Reproducibility is a first-class requirement: a simulation run is fully
determined by ``(topology seed, run seed)``.  To keep components
statistically independent *and* insensitive to the order in which they are
constructed, each consumer asks the registry for a named substream; the
substream seed is derived by hashing ``(root_seed, name)`` with a stable
hash (``hashlib.sha256``, not Python's randomized ``hash``).
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator

__all__ = ["RngRegistry", "derive_seed"]


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit substream seed from a root seed and a stream name.

    Stable across processes and Python versions (unlike ``hash``).
    """
    payload = f"{root_seed}:{name}".encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Factory for named, independent ``random.Random`` substreams.

    >>> reg = RngRegistry(42)
    >>> a = reg.stream("mac.node3")
    >>> b = reg.stream("mac.node4")
    >>> a is reg.stream("mac.node3")   # streams are memoised by name
    True
    >>> a is b
    False
    """

    def __init__(self, root_seed: int) -> None:
        self.root_seed = int(root_seed)
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the (memoised) substream for ``name``."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self.root_seed, name))
            self._streams[name] = rng
        return rng

    def spawn(self, name: str) -> "RngRegistry":
        """Create a child registry whose streams are independent of the parent's."""
        return RngRegistry(derive_seed(self.root_seed, f"spawn:{name}"))

    def names(self) -> Iterator[str]:
        """Names of all streams handed out so far (for diagnostics)."""
        return iter(sorted(self._streams))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RngRegistry seed={self.root_seed} streams={len(self._streams)}>"
