"""Simulation tracing and counters.

A :class:`Tracer` is attached to a simulation and collects two kinds of
observations:

* **metrics** — cheap typed statistics backed by a
  :class:`~repro.obs.registry.MetricsRegistry`.  ``tracer.count()`` is
  kept as the thin compatibility shim every protocol layer already uses;
  call sites needing gauges, histograms, or labels reach the registry
  directly (``tracer.registry.histogram("agg.merge_size")``).
* **records** — optional structured trace entries (time, category,
  fields), enabled per category, used by tests, the CLI's trace export,
  and offline analysis.  Disabled categories cost one set lookup per
  call.

The in-memory record store is **bounded** (``max_records``, default
:data:`~repro.obs.options.DEFAULT_MAX_RECORDS`): once full, new records
still reach listeners (e.g. a streaming
:class:`~repro.obs.export.TraceWriter`) but are not stored, and the drop
is counted under ``trace.records_dropped``.  ``max_records=0`` is the
pure-streaming mode; ``max_records=None`` removes the bound.

Keeping tracing inside the kernel (rather than ad-hoc prints) is what lets
property tests assert global invariants such as "every reception has a
matching transmission".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional

from ..obs.options import TRACE_CATEGORIES
from ..obs.registry import MetricsRegistry

__all__ = ["TraceRecord", "Tracer", "DEFAULT_MAX_RECORDS"]

#: default bound on the in-memory record list (re-exported from obs)
DEFAULT_MAX_RECORDS = 262_144


@dataclass(frozen=True)
class TraceRecord:
    """One structured trace entry."""

    time: float
    category: str
    fields: tuple[tuple[str, Any], ...]

    def get(self, key: str, default: Any = None) -> Any:
        for k, v in self.fields:
            if k == key:
                return v
        return default

    def as_dict(self) -> dict[str, Any]:
        return dict(self.fields)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        kv = " ".join(f"{k}={v}" for k, v in self.fields)
        return f"{self.time:10.6f} {self.category:<24} {kv}"


class Tracer:
    """Metrics + structured-record sink for one simulation run."""

    def __init__(
        self,
        clock: Callable[[], float],
        registry: Optional[MetricsRegistry] = None,
        max_records: Optional[int] = DEFAULT_MAX_RECORDS,
    ) -> None:
        self._clock = clock
        self.registry = registry if registry is not None else MetricsRegistry()
        self.max_records = max_records
        self.records_dropped = 0
        self._enabled: set[str] = set()
        #: tracer-local categories beyond the central TRACE_CATEGORIES
        #: table (tests and ad-hoc tooling register their own names here)
        self._extra_categories: set[str] = set()
        self._records: list[TraceRecord] = []
        self._listeners: list[Callable[[TraceRecord], None]] = []
        #: per-tracer fast path: counter-name -> instrument handle
        self._counter_cache: dict[str, Any] = {}

    # ------------------------------------------------------------------
    # counters (compatibility shim over the registry)
    # ------------------------------------------------------------------
    def count(self, key: str, n: int = 1) -> None:
        """Increment the unlabelled registry counter ``key`` by ``n``."""
        c = self._counter_cache.get(key)
        if c is None:
            c = self._counter_cache[key] = self.registry.counter(key)
        c.inc(n)

    def value(self, key: str) -> int:
        """Current value of a counter (0 if never incremented)."""
        c = self._counter_cache.get(key)
        if c is not None:
            return c.value
        return self.registry.value(key)

    @property
    def counters(self):
        """Flat counter snapshot (``name{labels}`` -> value)."""
        return self.registry.counters_flat()

    # ------------------------------------------------------------------
    # structured records
    # ------------------------------------------------------------------
    def register_category(self, *categories: str) -> None:
        """Declare tracer-local categories not in the central table.

        The kernel's own categories live in
        :data:`repro.obs.options.TRACE_CATEGORIES`; tests and ad-hoc
        tooling that emit their own records register the names here so
        :meth:`enable` can still reject typos.
        """
        self._extra_categories.update(categories)

    def known_categories(self) -> frozenset[str]:
        """Every category :meth:`enable` accepts on this tracer."""
        return frozenset(TRACE_CATEGORIES) | frozenset(self._extra_categories)

    def enable(self, *categories: str) -> None:
        """Turn on record collection for the given categories.

        ``enable("*")`` records everything.  Unknown names — not in
        :data:`~repro.obs.options.TRACE_CATEGORIES` and not registered
        via :meth:`register_category` — raise ``ValueError``, so a
        typo'd category fails loudly instead of recording nothing.
        """
        for category in categories:
            if category == "*":
                continue
            if category not in TRACE_CATEGORIES and category not in self._extra_categories:
                known = ", ".join(sorted(self.known_categories()))
                raise ValueError(
                    f"unknown trace category {category!r} — known categories: {known} "
                    "(declare new kernel categories in repro.obs.options."
                    "TRACE_CATEGORIES, or register tracer-local ones with "
                    "Tracer.register_category)"
                )
        self._enabled.update(categories)

    def disable(self, *categories: str) -> None:
        self._enabled.difference_update(categories)

    def wants(self, category: str) -> bool:
        """True if :meth:`record` would do anything for ``category``.

        Hot paths (one ``phy.tx``/``phy.rx`` per frame) call this before
        building the kwargs dict a :meth:`record` call would need — when
        nothing listens, the whole record is skipped for the cost of one
        set lookup.
        """
        enabled = self._enabled
        return category in enabled or "*" in enabled

    def add_listener(self, fn: Callable[[TraceRecord], None]) -> None:
        """Register a callback invoked for every *recorded* entry."""
        self._listeners.append(fn)

    def remove_listener(self, fn: Callable[[TraceRecord], None]) -> None:
        self._listeners.remove(fn)

    def record(self, category: str, **fields: Any) -> None:
        """Emit a structured record if its category is enabled."""
        if category not in self._enabled and "*" not in self._enabled:
            return
        rec = TraceRecord(self._clock(), category, tuple(fields.items()))
        if self.max_records is None or len(self._records) < self.max_records:
            self._records.append(rec)
        else:
            self.records_dropped += 1
            if self.max_records:  # bounded store overflowed: make it loud
                self.count("trace.records_dropped")
        for fn in self._listeners:
            fn(rec)

    def records(self, category: Optional[str] = None) -> list[TraceRecord]:
        """All collected records, optionally filtered by category."""
        if category is None:
            return list(self._records)
        return [r for r in self._records if r.category == category]

    def categories(self) -> Iterable[str]:
        return sorted({r.category for r in self._records})

    def clear_records(self) -> None:
        self._records.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Tracer counters={len(self.counters)} records={len(self._records)} "
            f"enabled={sorted(self._enabled)}>"
        )
