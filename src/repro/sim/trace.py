"""Simulation tracing and counters.

A :class:`Tracer` is attached to a simulation and collects two kinds of
observations:

* **counters** — cheap monotone statistics (``tracer.count("mac.tx")``),
  always on; the experiment harness reads these to build its metrics.
* **records** — optional structured trace entries (time, category,
  fields), enabled per category, used by tests and by the CLI's
  ``--trace`` mode.  Disabled categories cost one dict lookup per call.

Keeping tracing inside the kernel (rather than ad-hoc prints) is what lets
property tests assert global invariants such as "every reception has a
matching transmission".
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One structured trace entry."""

    time: float
    category: str
    fields: tuple[tuple[str, Any], ...]

    def get(self, key: str, default: Any = None) -> Any:
        for k, v in self.fields:
            if k == key:
                return v
        return default

    def as_dict(self) -> dict[str, Any]:
        return dict(self.fields)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        kv = " ".join(f"{k}={v}" for k, v in self.fields)
        return f"{self.time:10.6f} {self.category:<24} {kv}"


class Tracer:
    """Counter + structured-record sink for one simulation run."""

    def __init__(self, clock: Callable[[], float]) -> None:
        self._clock = clock
        self.counters: Counter[str] = Counter()
        self._enabled: set[str] = set()
        self._records: list[TraceRecord] = []
        self._listeners: list[Callable[[TraceRecord], None]] = []

    # ------------------------------------------------------------------
    # counters
    # ------------------------------------------------------------------
    def count(self, key: str, n: int = 1) -> None:
        """Increment counter ``key`` by ``n``."""
        self.counters[key] += n

    def value(self, key: str) -> int:
        """Current value of a counter (0 if never incremented)."""
        return self.counters.get(key, 0)

    # ------------------------------------------------------------------
    # structured records
    # ------------------------------------------------------------------
    def enable(self, *categories: str) -> None:
        """Turn on record collection for the given categories.

        ``enable("*")`` records everything.
        """
        self._enabled.update(categories)

    def disable(self, *categories: str) -> None:
        self._enabled.difference_update(categories)

    def add_listener(self, fn: Callable[[TraceRecord], None]) -> None:
        """Register a callback invoked for every *recorded* entry."""
        self._listeners.append(fn)

    def record(self, category: str, **fields: Any) -> None:
        """Emit a structured record if its category is enabled."""
        if category not in self._enabled and "*" not in self._enabled:
            return
        rec = TraceRecord(self._clock(), category, tuple(fields.items()))
        self._records.append(rec)
        for fn in self._listeners:
            fn(rec)

    def records(self, category: Optional[str] = None) -> list[TraceRecord]:
        """All collected records, optionally filtered by category."""
        if category is None:
            return list(self._records)
        return [r for r in self._records if r.category == category]

    def categories(self) -> Iterable[str]:
        return sorted({r.category for r in self._records})

    def clear_records(self) -> None:
        self._records.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Tracer counters={len(self.counters)} records={len(self._records)} "
            f"enabled={sorted(self._enabled)}>"
        )
