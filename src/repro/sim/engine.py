"""Discrete-event simulation kernel.

This module is the substrate that replaces ns-2's scheduler for the
reproduction.  It provides a classic calendar-queue simulator:

* :class:`Simulator` — owns the virtual clock and the pending-event heap.
* :class:`ScheduledEvent` — a cancellable handle returned by
  :meth:`Simulator.schedule`.

Semantics match what the protocol code needs from ns-2:

* Events fire in non-decreasing time order.
* Events scheduled for the same instant fire in FIFO order of scheduling
  (ties are broken by a monotonically increasing sequence number), which
  makes runs bit-for-bit deterministic for a fixed seed.
* An event may schedule further events, including zero-delay events, which
  fire before the clock advances.

Performance notes (this is the hottest loop in the repo — every frame on
the air turns into heap traffic here):

* Heap entries are plain ``(time, seq, event)`` tuples, compared by
  CPython's C tuple comparison; ``seq`` is unique so the event object is
  never compared.
* :meth:`Simulator.pending_count` is O(1): cancellations are counted as
  they happen (see :meth:`ScheduledEvent.cancel`) instead of scanning the
  heap, because trace snapshots read it on every tick.
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Any, Callable, Optional

__all__ = ["Simulator", "ScheduledEvent", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for invalid scheduler use (negative delays, running twice...)."""


class ScheduledEvent:
    """Handle for a pending callback.

    Instances are created by :meth:`Simulator.schedule`; user code only
    ever cancels or inspects them.
    """

    __slots__ = ("time", "fn", "args", "cancelled", "fired", "_sim")

    def __init__(
        self, time: float, fn: Callable[..., Any], args: tuple, sim: "Optional[Simulator]" = None
    ):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.fired = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent; cancelling an
        already-fired event is a harmless no-op."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None:
            # Keep the owning simulator's live-entry count exact so
            # pending_count() stays O(1).
            sim._cancelled_pending += 1

    @property
    def pending(self) -> bool:
        """True while the event is still scheduled to fire."""
        return not (self.cancelled or self.fired)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<ScheduledEvent t={self.time:.6f} {name} {state}>"


class Simulator:
    """Event-driven virtual-time scheduler.

    Example
    -------
    >>> sim = Simulator()
    >>> out = []
    >>> _ = sim.schedule(1.5, out.append, "b")
    >>> _ = sim.schedule(0.5, out.append, "a")
    >>> sim.run()
    >>> out
    ['a', 'b']
    >>> sim.now
    1.5
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        #: pending events as (time, seq, event) tuples (cheap C comparison)
        self._heap: list[tuple[float, int, ScheduledEvent]] = []
        self._seq: int = 0
        self._running = False
        self._stopped = False
        self.events_processed: int = 0
        #: cancelled entries popped off the heap (scheduling churn)
        self.cancelled_skipped: int = 0
        #: cancelled entries still sitting in the heap (see pending_count)
        self._cancelled_pending: int = 0
        self._profiler: Optional[Any] = None

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # profiling
    # ------------------------------------------------------------------
    def set_profiler(self, profiler: Optional[Any]) -> None:
        """Install (or remove, with None) an event-loop profiler.

        The profiler's ``note(fn, elapsed_s, heap_len)`` is called after
        every fired event; see :class:`repro.obs.profiler.Profiler`.
        """
        self._profiler = profiler

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> ScheduledEvent:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative.  Returns a cancellable handle.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> ScheduledEvent:
        """Schedule ``fn(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        ev = ScheduledEvent(time, fn, args, self)
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, ev))
        return ev

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> None:
        """Process events until the queue drains or the clock reaches ``until``.

        When ``until`` is given, all events with ``time <= until`` fire and
        the clock is left at ``until`` (so a subsequent ``run`` continues
        from there), matching ns-2's ``$ns run`` + stop-event idiom.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        heap = self._heap
        heappop = heapq.heappop
        try:
            while heap and not self._stopped:
                time, _seq, ev = heap[0]
                if until is not None and time > until:
                    break
                heappop(heap)
                if ev.cancelled:
                    self.cancelled_skipped += 1
                    self._cancelled_pending -= 1
                    continue
                self._now = time
                ev.fired = True
                self.events_processed += 1
                prof = self._profiler
                if prof is None:
                    ev.fn(*ev.args)
                else:
                    t0 = perf_counter()
                    ev.fn(*ev.args)
                    prof.note(ev.fn, perf_counter() - t0, len(heap))
            if until is not None and self._now < until and not self._stopped:
                self._now = until
        finally:
            self._running = False

    def step(self) -> bool:
        """Fire exactly one pending event.  Returns False if the queue is empty."""
        heap = self._heap
        while heap:
            time, _seq, ev = heapq.heappop(heap)
            if ev.cancelled:
                self.cancelled_skipped += 1
                self._cancelled_pending -= 1
                continue
            self._now = time
            ev.fired = True
            self.events_processed += 1
            prof = self._profiler
            if prof is None:
                ev.fn(*ev.args)
            else:
                t0 = perf_counter()
                ev.fn(*ev.args)
                prof.note(ev.fn, perf_counter() - t0, len(heap))
            return True
        return False

    def stop(self) -> None:
        """Request that the current :meth:`run` return after the current event."""
        self._stopped = True

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def pending_count(self) -> int:
        """Number of not-yet-cancelled events still queued (O(1))."""
        return len(self._heap) - self._cancelled_pending

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None if the queue is empty.

        Cancelled entries at the front are purged lazily (amortized
        O(log n) per cancelled event, versus the full sort this used to
        do); the purge is counted as scheduler churn.
        """
        heap = self._heap
        while heap:
            time, _seq, ev = heap[0]
            if ev.cancelled:
                heapq.heappop(heap)
                self.cancelled_skipped += 1
                self._cancelled_pending -= 1
            else:
                return time
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator t={self._now:.6f} pending={len(self._heap)}>"
