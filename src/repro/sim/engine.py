"""Discrete-event simulation kernel.

This module is the substrate that replaces ns-2's scheduler for the
reproduction.  It provides a classic calendar-queue simulator:

* :class:`Simulator` — owns the virtual clock and the pending-event heap.
* :class:`ScheduledEvent` — a cancellable handle returned by
  :meth:`Simulator.schedule`.

Semantics match what the protocol code needs from ns-2:

* Events fire in non-decreasing time order.
* Events scheduled for the same instant fire in FIFO order of scheduling
  (ties are broken by a monotonically increasing sequence number), which
  makes runs bit-for-bit deterministic for a fixed seed.
* An event may schedule further events, including zero-delay events, which
  fire before the clock advances.

Performance notes (this is the hottest loop in the repo — every frame on
the air turns into heap traffic here):

* Heap entries are plain ``(time, seq, event)`` tuples, compared by
  CPython's C tuple comparison; ``seq`` is unique so the event object is
  never compared.
* :meth:`Simulator.pending_count` is O(1): cancellations are counted as
  they happen (see :meth:`ScheduledEvent.cancel`) instead of scanning the
  heap, because trace snapshots read it on every tick.
* **Event cohorts** — a batch of homogeneous logical events that share a
  timestamp (e.g. one frame's arrival at every in-range receiver) can be
  scheduled as a *single* heap entry via :meth:`Simulator.schedule_cohort`
  / :meth:`schedule_cohort_at` with an explicit member ``count``.  The
  cohort occupies one ``(time, seq)`` slot — FIFO tie-order against every
  other event is exactly that of the single event it replaces, so runs
  stay bit-for-bit deterministic — while ``events_processed`` advances by
  the full member count, keeping throughput accounting in units of
  logical events rather than Python dispatches.
* **Heap compaction** — cancelled entries normally leave the heap lazily
  when they reach the front.  Cancellation-heavy workloads (the MAC
  cancels an ACK timer per acknowledged unicast) can accumulate tens of
  thousands of dead ``(time, seq, event)`` tuples; when more than half
  the heap is dead (and past a small floor), the whole heap is swept and
  re-heapified in one O(n) pass.  Live entries keep their ``(time, seq)``
  keys, so ordering is unaffected.
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Any, Callable, Optional

__all__ = ["Simulator", "ScheduledEvent", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for invalid scheduler use (negative delays, running twice...)."""


class ScheduledEvent:
    """Handle for a pending callback.

    Instances are created by :meth:`Simulator.schedule`; user code only
    ever cancels or inspects them.
    """

    __slots__ = ("time", "fn", "args", "cancelled", "fired", "count", "_sim")

    def __init__(
        self,
        time: float,
        fn: Callable[..., Any],
        args: tuple,
        sim: "Optional[Simulator]" = None,
        count: int = 1,
    ):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.fired = False
        #: how many logical events this entry stands for (cohorts > 1)
        self.count = count
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent; cancelling an
        already-fired event is a harmless no-op."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None:
            # Keep the owning simulator's live-entry count exact so
            # pending_count() stays O(1).
            sim._cancelled_pending += 1
            sim._maybe_compact()

    @property
    def pending(self) -> bool:
        """True while the event is still scheduled to fire."""
        return not (self.cancelled or self.fired)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<ScheduledEvent t={self.time:.6f} {name} {state}>"


class Simulator:
    """Event-driven virtual-time scheduler.

    Example
    -------
    >>> sim = Simulator()
    >>> out = []
    >>> _ = sim.schedule(1.5, out.append, "b")
    >>> _ = sim.schedule(0.5, out.append, "a")
    >>> sim.run()
    >>> out
    ['a', 'b']
    >>> sim.now
    1.5
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        #: pending events as (time, seq, event) tuples (cheap C comparison)
        self._heap: list[tuple[float, int, ScheduledEvent]] = []
        self._seq: int = 0
        self._running = False
        self._stopped = False
        self.events_processed: int = 0
        #: cancelled entries popped off the heap (scheduling churn)
        self.cancelled_skipped: int = 0
        #: cancelled entries still sitting in the heap (see pending_count)
        self._cancelled_pending: int = 0
        #: dead entries removed by whole-heap sweeps (subset of
        #: cancelled_skipped; diagnostic only)
        self.compaction_swept: int = 0
        self._profiler: Optional[Any] = None

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # profiling
    # ------------------------------------------------------------------
    def set_profiler(self, profiler: Optional[Any]) -> None:
        """Install (or remove, with None) an event-loop profiler.

        The profiler's ``note(fn, elapsed_s, heap_len)`` is called after
        every fired event; see :class:`repro.obs.profiler.Profiler`.
        """
        self._profiler = profiler

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> ScheduledEvent:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative.  Returns a cancellable handle.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> ScheduledEvent:
        """Schedule ``fn(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        ev = ScheduledEvent(time, fn, args, self)
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, ev))
        return ev

    def schedule_cohort(
        self, delay: float, count: int, fn: Callable[..., Any], *args: Any
    ) -> ScheduledEvent:
        """Schedule one heap entry standing for ``count`` logical events.

        The callback fires exactly once, ``delay`` seconds from now, but
        ``events_processed`` advances by ``count`` — use this when a single
        dispatch handles a whole batch of homogeneous events (e.g. one
        frame arriving at every in-range receiver).  ``count`` must be
        positive.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_cohort_at(self._now + delay, count, fn, *args)

    def schedule_cohort_at(
        self, time: float, count: int, fn: Callable[..., Any], *args: Any
    ) -> ScheduledEvent:
        """Absolute-time variant of :meth:`schedule_cohort`."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        if count < 1:
            raise SimulationError(f"cohort count must be >= 1 (got {count})")
        ev = ScheduledEvent(time, fn, args, self, count=count)
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, ev))
        return ev

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> None:
        """Process events until the queue drains or the clock reaches ``until``.

        When ``until`` is given, all events with ``time <= until`` fire and
        the clock is left at ``until`` (so a subsequent ``run`` continues
        from there), matching ns-2's ``$ns run`` + stop-event idiom.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        heap = self._heap
        heappop = heapq.heappop
        try:
            while heap and not self._stopped:
                time, _seq, ev = heap[0]
                if until is not None and time > until:
                    break
                heappop(heap)
                if ev.cancelled:
                    self.cancelled_skipped += 1
                    self._cancelled_pending -= 1
                    continue
                self._now = time
                ev.fired = True
                self.events_processed += ev.count
                prof = self._profiler
                if prof is None:
                    ev.fn(*ev.args)
                else:
                    t0 = perf_counter()
                    ev.fn(*ev.args)
                    prof.note(ev.fn, perf_counter() - t0, len(heap))
            if until is not None and self._now < until and not self._stopped:
                self._now = until
        finally:
            self._running = False

    def step(self) -> bool:
        """Fire exactly one pending event.  Returns False if the queue is empty."""
        heap = self._heap
        while heap:
            time, _seq, ev = heapq.heappop(heap)
            if ev.cancelled:
                self.cancelled_skipped += 1
                self._cancelled_pending -= 1
                continue
            self._now = time
            ev.fired = True
            self.events_processed += ev.count
            prof = self._profiler
            if prof is None:
                ev.fn(*ev.args)
            else:
                t0 = perf_counter()
                ev.fn(*ev.args)
                prof.note(ev.fn, perf_counter() - t0, len(heap))
            return True
        return False

    def stop(self) -> None:
        """Request that the current :meth:`run` return after the current event."""
        self._stopped = True

    # ------------------------------------------------------------------
    # heap maintenance
    # ------------------------------------------------------------------
    #: no compaction below this many cancelled entries — tiny heaps churn
    #: faster through the lazy pop path than through a sweep
    _COMPACT_FLOOR = 64

    def _maybe_compact(self) -> None:
        """Sweep dead entries when more than half the heap is cancelled.

        Called from :meth:`ScheduledEvent.cancel`.  The sweep is O(n) and
        only runs once at least ``_COMPACT_FLOOR`` entries are dead *and*
        dead entries outnumber live ones, so total sweep work stays
        amortized O(1) per cancellation.  Live entries keep their
        ``(time, seq)`` keys, so FIFO tie-order is unaffected; ``run()``
        mutates the same list object in place, so its local alias stays
        valid.
        """
        dead = self._cancelled_pending
        heap = self._heap
        if dead < self._COMPACT_FLOOR or dead * 2 <= len(heap):
            return
        heap[:] = [entry for entry in heap if not entry[2].cancelled]
        heapq.heapify(heap)
        self.cancelled_skipped += dead
        self.compaction_swept += dead
        self._cancelled_pending = 0

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def pending_count(self) -> int:
        """Number of not-yet-cancelled events still queued (O(1))."""
        return len(self._heap) - self._cancelled_pending

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None if the queue is empty.

        Cancelled entries at the front are purged lazily (amortized
        O(log n) per cancelled event, versus the full sort this used to
        do); the purge is counted as scheduler churn.
        """
        heap = self._heap
        while heap:
            time, _seq, ev = heap[0]
            if ev.cancelled:
                heapq.heappop(heap)
                self.cancelled_skipped += 1
                self._cancelled_pending -= 1
            else:
                return time
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator t={self._now:.6f} pending={len(self._heap)}>"
