"""Timer helpers built on the DES kernel.

Protocol code constantly needs "fire once in T, unless refreshed/cancelled"
(reinforcement timers, gradient expiry) and "fire every T, with optional
jitter" (interest refresh, exploratory events).  These helpers wrap the raw
:class:`~repro.sim.engine.Simulator` scheduling API with those two idioms
so the protocol modules stay readable.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Optional

from .engine import ScheduledEvent, Simulator

__all__ = ["OneShotTimer", "PeriodicTimer"]


class OneShotTimer:
    """Restartable single-shot timer.

    ``start(delay)`` arms the timer; ``restart(delay)`` cancels any pending
    expiry and re-arms (used for gradient-expiry refresh); ``cancel`` disarms.
    The callback is invoked with no arguments.
    """

    def __init__(self, sim: Simulator, fn: Callable[[], Any]) -> None:
        self._sim = sim
        self._fn = fn
        self._event: Optional[ScheduledEvent] = None

    def start(self, delay: float) -> None:
        """Arm the timer.  Raises if already armed (use restart to re-arm)."""
        if self.armed:
            raise RuntimeError("timer already armed; use restart()")
        self._event = self._sim.schedule(delay, self._fire)

    def restart(self, delay: float) -> None:
        """(Re-)arm the timer, cancelling any pending expiry."""
        self.cancel()
        self._event = self._sim.schedule(delay, self._fire)

    def cancel(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None

    @property
    def armed(self) -> bool:
        return self._event is not None and self._event.pending

    @property
    def expiry_time(self) -> Optional[float]:
        """Absolute time of the pending expiry, or None when disarmed."""
        if self.armed:
            return self._event.time  # type: ignore[union-attr]
        return None

    def _fire(self) -> None:
        self._event = None
        self._fn()


class PeriodicTimer:
    """Repeating timer with optional uniform jitter per period.

    Jitter desynchronises periodic protocol actions across nodes the same
    way ns-2 diffusion code jitters interest and exploratory timers; without
    it, synchronized floods collide pathologically at the MAC.
    """

    def __init__(
        self,
        sim: Simulator,
        fn: Callable[[], Any],
        period: float,
        jitter: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        if jitter > 0 and rng is None:
            raise ValueError("jitter requires an rng")
        self._sim = sim
        self._fn = fn
        self.period = period
        self.jitter = jitter
        self._rng = rng
        self._event: Optional[ScheduledEvent] = None
        self.fire_count = 0

    def start(self, initial_delay: Optional[float] = None) -> None:
        """Start ticking.  First tick after ``initial_delay`` (default: one
        jittered period)."""
        if self.running:
            raise RuntimeError("periodic timer already running")
        delay = self._next_delay() if initial_delay is None else initial_delay
        self._event = self._sim.schedule(delay, self._fire)

    def stop(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None

    @property
    def running(self) -> bool:
        return self._event is not None and self._event.pending

    def _next_delay(self) -> float:
        if self.jitter > 0:
            assert self._rng is not None
            return self.period + self._rng.uniform(-self.jitter, self.jitter)
        return self.period

    def _fire(self) -> None:
        self.fire_count += 1
        # Re-arm *before* the callback so the callback may stop() the timer.
        self._event = self._sim.schedule(self._next_delay(), self._fire)
        self._fn()
