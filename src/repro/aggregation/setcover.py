"""Weighted set cover: the combinatorial core of §4.2 and §4.3.

Computing the energy cost of an outgoing aggregate — "find the set of
incoming aggregates which cover the data items at the smallest cost" — is
a weighted set-covering problem, NP-hard in general.  The paper adopts the
classical greedy heuristic (approximation ratio ln d + 1, where d is the
largest subset), with a final pruning pass that removes subsets made
redundant by the rest of the cover.

This module implements:

* :func:`greedy_weighted_set_cover` — the paper's heuristic, including the
  redundant-subset pruning step and the worked example of fig 4;
* :func:`exact_weighted_set_cover` — branch-and-bound optimum for small
  instances (used by tests to check the ln d + 1 bound and by the
  set-cover ablation bench);
* :func:`randomized_set_cover` — a simple probabilistic rounding method in
  the spirit of [Sen 93], for the solver-quality ablation;
* :func:`transform_to_sources` — §4.3's events -> sources transformation
  with reweighting w* = w·|S*|/|S|, used by the energy-efficient
  truncation rule.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Hashable, Iterable, Optional, Sequence

__all__ = [
    "WeightedSubset",
    "CoverResult",
    "SetCoverError",
    "greedy_weighted_set_cover",
    "exact_weighted_set_cover",
    "randomized_set_cover",
    "transform_to_sources",
]


class SetCoverError(ValueError):
    """Raised when the family cannot cover the universe."""


@dataclass(frozen=True)
class WeightedSubset:
    """One candidate subset S_i with weight w_i and an opaque tag.

    The tag identifies where the subset came from (an incoming aggregate,
    a neighbor) so callers can act on the chosen cover.
    """

    elements: frozenset
    weight: float
    tag: Hashable = None

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError("subset weight must be non-negative")


@dataclass(frozen=True)
class CoverResult:
    """A cover: the chosen subsets (by index into the input family)."""

    chosen: tuple[int, ...]
    weight: float

    def tags(self, family: Sequence[WeightedSubset]) -> list[Hashable]:
        return [family[i].tag for i in self.chosen]


def _validate(universe: frozenset, family: Sequence[WeightedSubset]) -> None:
    covered = frozenset().union(*(s.elements for s in family)) if family else frozenset()
    missing = universe - covered
    if missing:
        raise SetCoverError(f"family cannot cover elements {sorted(map(repr, missing))}")


def greedy_weighted_set_cover(
    universe: Iterable, family: Sequence[WeightedSubset]
) -> CoverResult:
    """The paper's greedy heuristic (§4.2).

    Repeatedly pick the subset with the lowest cost ratio
    ``r_i = w_i / |S_i ∩ uncovered|`` until the universe is covered, then
    prune subsets whose elements are covered by the union of the others.

    Zero-weight subsets have cost ratio 0 and are always preferred —
    matching the aggregation use where a locally generated item is free.
    """
    uni = frozenset(universe)
    if not uni:
        return CoverResult((), 0.0)
    _validate(uni, family)

    uncovered = set(uni)
    chosen: list[int] = []
    chosen_set = set()
    while uncovered:
        best_idx = -1
        best_ratio = float("inf")
        best_gain = 0
        for idx, subset in enumerate(family):
            if idx in chosen_set:
                continue
            gain = len(subset.elements & uncovered)
            if gain == 0:
                continue
            ratio = subset.weight / gain
            # Tie-break on larger gain, then lower index, for determinism.
            if ratio < best_ratio or (ratio == best_ratio and gain > best_gain):
                best_idx, best_ratio, best_gain = idx, ratio, gain
        assert best_idx >= 0, "validated family must always offer progress"
        chosen.append(best_idx)
        chosen_set.add(best_idx)
        uncovered -= family[best_idx].elements

    pruned = _prune_redundant(uni, family, chosen)
    weight = sum(family[i].weight for i in pruned)
    return CoverResult(tuple(pruned), weight)


def _prune_redundant(
    universe: frozenset, family: Sequence[WeightedSubset], chosen: Sequence[int]
) -> list[int]:
    """Final greedy step: drop subsets covered by the union of the rest.

    Heaviest subsets are considered for removal first, so pruning can only
    lower the cover weight.
    """
    kept = list(chosen)
    for idx in sorted(chosen, key=lambda i: -family[i].weight):
        others = frozenset().union(
            *(family[j].elements for j in kept if j != idx), frozenset()
        )
        if (universe & family[idx].elements) <= others:
            kept.remove(idx)
    return sorted(kept)


def exact_weighted_set_cover(
    universe: Iterable, family: Sequence[WeightedSubset], max_subsets: int = 24
) -> CoverResult:
    """Optimal cover by branch and bound (small instances only).

    Used as the ground truth for property tests and the solver ablation;
    refuses instances with more than ``max_subsets`` candidate subsets.
    """
    uni = frozenset(universe)
    if not uni:
        return CoverResult((), 0.0)
    if len(family) > max_subsets:
        raise SetCoverError(f"exact solver limited to {max_subsets} subsets")
    _validate(uni, family)

    # Order subsets by weight so the greedy-found incumbent prunes early.
    order = sorted(range(len(family)), key=lambda i: family[i].weight)
    incumbent = greedy_weighted_set_cover(uni, family)
    best_weight = incumbent.weight
    best_choice = list(incumbent.chosen)

    def recurse(pos: int, covered: frozenset, weight: float, picked: list[int]) -> None:
        nonlocal best_weight, best_choice
        if weight >= best_weight:
            return
        if covered >= uni:
            best_weight = weight
            best_choice = sorted(picked)
            return
        if pos >= len(order):
            return
        remaining = frozenset().union(
            *(family[order[k]].elements for k in range(pos, len(order))), frozenset()
        )
        if not (uni - covered) <= remaining:
            return  # cannot finish from here
        idx = order[pos]
        # Branch 1: take idx (only if it helps).
        if family[idx].elements - covered:
            picked.append(idx)
            recurse(pos + 1, covered | family[idx].elements, weight + family[idx].weight, picked)
            picked.pop()
        # Branch 2: skip idx.
        recurse(pos + 1, covered, weight, picked)

    recurse(0, frozenset(), 0.0, [])
    return CoverResult(tuple(best_choice), best_weight)


def randomized_set_cover(
    universe: Iterable,
    family: Sequence[WeightedSubset],
    rng: random.Random,
    rounds: int = 32,
) -> CoverResult:
    """Probabilistic method: repeated randomized greedy restarts.

    Each round ranks subsets by cost ratio perturbed with exponential
    noise; the best cover over all rounds is returned.  Matches the
    "probabilistic methods" family the paper cites as an alternative.
    """
    uni = frozenset(universe)
    if not uni:
        return CoverResult((), 0.0)
    _validate(uni, family)

    best: Optional[CoverResult] = None
    for _ in range(max(1, rounds)):
        uncovered = set(uni)
        chosen: list[int] = []
        chosen_set: set[int] = set()
        while uncovered:
            candidates = []
            for idx, subset in enumerate(family):
                if idx in chosen_set:
                    continue
                gain = len(subset.elements & uncovered)
                if gain == 0:
                    continue
                noisy = (subset.weight / gain) * rng.expovariate(1.0)
                candidates.append((noisy, idx, subset))
            _, idx, subset = min(candidates, key=lambda c: (c[0], c[1]))
            chosen.append(idx)
            chosen_set.add(idx)
            uncovered -= subset.elements
        pruned = _prune_redundant(uni, family, chosen)
        weight = sum(family[i].weight for i in pruned)
        if best is None or weight < best.weight:
            best = CoverResult(tuple(sorted(pruned)), weight)
    assert best is not None
    return best


def transform_to_sources(
    family: Sequence[WeightedSubset], source_of: dict
) -> list[WeightedSubset]:
    """§4.3's transformation for the energy-efficient truncation rule.

    Each element of every subset is replaced by its source; the weight is
    rescaled by ``w* = w·|S*|/|S|`` so initial cost ratios are preserved
    (fig 4(b)'s worked example: S1={a1,a2,b1}, w1=5 becomes S1*={A,B},
    w1*=10/3).
    """
    transformed = []
    for subset in family:
        sources = frozenset(source_of[e] for e in subset.elements)
        if not subset.elements:
            raise ValueError("cannot transform an empty subset")
        new_weight = subset.weight * len(sources) / len(subset.elements)
        transformed.append(WeightedSubset(sources, new_weight, subset.tag))
    return transformed
