"""Aggregation buffer: delay, merge, and cost outgoing data (§4.2).

Intermediate nodes "process or delay received data for a period of time
T_a before sending them".  The buffer collects data items arriving within
one aggregation window together with *where they came from* (each incoming
aggregate is a candidate subset with its advertised energy cost w_i), and
on flush:

1. merges all distinct pending items into outgoing aggregates (respecting
   the aggregation function's ``max_items``);
2. computes the outgoing energy cost as the weight of a greedy
   weighted-set cover of the items by the incoming aggregates, **plus one**
   for this hop's own transmission (fig 4(a): w4 = w1 + w2 + 1);
3. reports which contributions made the cover, so the truncation rule can
   judge neighbors (§4.3).

Locally generated items (at sources) enter as zero-weight contributions:
delivering your own reading to yourself is free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable

from .functions import AggregationFunction
from .setcover import CoverResult, WeightedSubset, greedy_weighted_set_cover

if TYPE_CHECKING:  # imported for annotations only (avoids a layer cycle)
    from ..diffusion.messages import AggregateMsg, DataItem

__all__ = ["OutgoingAggregate", "FlushResult", "AggregationBuffer"]


@dataclass(frozen=True)
class OutgoingAggregate:
    """One packet ready to be sent: items, set-cover cost, wire size."""

    items: tuple[DataItem, ...]
    cost: float
    size: int


@dataclass(frozen=True)
class FlushResult:
    """Everything one flush produced."""

    aggregates: tuple[OutgoingAggregate, ...]
    #: tags of the contributions selected by the set cover (None = local)
    cover_tags: tuple[Hashable, ...]
    #: how many buffered contributions (incoming aggregates + local items)
    #: fed this flush — the merge fan-in the lineage records report
    n_contributions: int = 0

    @property
    def item_count(self) -> int:
        return sum(len(a.items) for a in self.aggregates)


@dataclass
class _Contribution:
    keys: frozenset
    weight: float
    tag: Hashable


class AggregationBuffer:
    """Pending data for one interest at one node."""

    def __init__(self, aggfn: AggregationFunction) -> None:
        self.aggfn = aggfn
        self._items: dict[tuple[int, int], DataItem] = {}
        self._contributions: list[_Contribution] = []

    # ------------------------------------------------------------------
    # filling
    # ------------------------------------------------------------------
    def add_incoming(
        self, aggregate: AggregateMsg, accepted: list[DataItem], tag: Hashable
    ) -> None:
        """Buffer the not-yet-seen items of an incoming aggregate.

        ``accepted`` is the deduplicated subset of ``aggregate.items``; the
        contribution's covering power is limited to those items, at the
        aggregate's advertised cost.
        """
        if not accepted:
            return
        for item in accepted:
            self._items.setdefault(item.key, item)
        self._contributions.append(
            _Contribution(
                frozenset(item.key for item in accepted), aggregate.energy_cost, tag
            )
        )

    def add_local(self, item: DataItem) -> None:
        """Buffer a locally sensed item (zero-cost contribution)."""
        self._items.setdefault(item.key, item)
        self._contributions.append(_Contribution(frozenset([item.key]), 0.0, None))

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    @property
    def empty(self) -> bool:
        return not self._items

    def pending_count(self) -> int:
        return len(self._items)

    def pending_sources(self) -> frozenset[int]:
        return frozenset(src for (src, _seq) in self._items)

    # ------------------------------------------------------------------
    # flushing
    # ------------------------------------------------------------------
    def flush(self) -> FlushResult:
        """Empty the buffer into outgoing aggregates with covered costs."""
        if not self._items:
            return FlushResult((), ())
        n_contributions = len(self._contributions)
        universe = frozenset(self._items)
        family = [
            WeightedSubset(c.keys & universe, c.weight, tag=i)
            for i, c in enumerate(self._contributions)
            if c.keys & universe
        ]
        cover = greedy_weighted_set_cover(universe, family)
        cover_tags = tuple(
            self._contributions[family[i].tag].tag for i in cover.chosen
        )
        items = sorted(self._items.values(), key=lambda it: it.key)
        aggregates = self._pack(items, cover)
        self._items.clear()
        self._contributions.clear()
        return FlushResult(tuple(aggregates), cover_tags, n_contributions)

    def _pack(self, items: list[DataItem], cover: CoverResult) -> list[OutgoingAggregate]:
        """Split items into packets under the function's max_items."""
        cap = self.aggfn.max_items or len(items)
        chunks = [items[i : i + cap] for i in range(0, len(items), cap)]
        # The +1 hop cost is charged once per flush (one "logical" send);
        # when packing forces several packets, each carries its share of
        # the cover weight plus its own transmission.
        per_chunk_weight = cover.weight / len(chunks)
        return [
            OutgoingAggregate(
                tuple(chunk),
                per_chunk_weight + 1.0,
                self.aggfn.size(len(chunk)),
            )
            for chunk in chunks
        ]
