"""Alternative weighted set-cover solvers the paper surveys (§4.2).

The paper chooses the greedy heuristic "because of its high-quality
solutions", citing several alternatives; two of them are implemented here
so the solver ablation can quantify that choice:

* :func:`lagrangian_set_cover` — a compact Lagrangian-relaxation
  heuristic in the style of Beasley [1990]: subgradient optimisation of
  the LP multipliers, a primal greedy repair per iteration, and the best
  feasible cover found.
* :func:`genetic_set_cover` — a genetic algorithm in the style of
  Liepins et al.: bit-string chromosomes with a feasibility-repair
  operator, tournament selection, uniform crossover, and mutation.

Both accept the same ``(universe, family)`` inputs as
:func:`repro.aggregation.setcover.greedy_weighted_set_cover` and return a
:class:`~repro.aggregation.setcover.CoverResult`.  They are reference
implementations tuned for solution quality on the small instances that
appear at aggregation points, not for scale.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from .setcover import (
    CoverResult,
    SetCoverError,
    WeightedSubset,
    _prune_redundant,
    greedy_weighted_set_cover,
)

__all__ = ["lagrangian_set_cover", "genetic_set_cover"]


def _validate(universe: frozenset, family: Sequence[WeightedSubset]) -> None:
    covered = frozenset().union(*(s.elements for s in family)) if family else frozenset()
    if universe - covered:
        raise SetCoverError("family cannot cover the universe")


def _repair_to_cover(
    universe: frozenset,
    family: Sequence[WeightedSubset],
    chosen: set[int],
) -> list[int]:
    """Make ``chosen`` feasible greedily, then prune redundancy."""
    covered = frozenset().union(*(family[i].elements for i in chosen), frozenset())
    uncovered = set(universe - covered)
    picks = set(chosen)
    while uncovered:
        best_idx, best_ratio, best_gain = -1, float("inf"), 0
        for idx, subset in enumerate(family):
            if idx in picks:
                continue
            gain = len(subset.elements & uncovered)
            if gain == 0:
                continue
            ratio = subset.weight / gain
            if ratio < best_ratio or (ratio == best_ratio and gain > best_gain):
                best_idx, best_ratio, best_gain = idx, ratio, gain
        assert best_idx >= 0
        picks.add(best_idx)
        uncovered -= family[best_idx].elements
    return _prune_redundant(universe, family, sorted(picks))


def lagrangian_set_cover(
    universe: Iterable,
    family: Sequence[WeightedSubset],
    iterations: int = 60,
    step_scale: float = 2.0,
) -> CoverResult:
    """Lagrangian-relaxation heuristic (Beasley-style).

    Relaxes the covering constraints with multipliers ``u_e >= 0``; at
    each subgradient iteration, subsets with negative reduced cost form a
    tentative primal solution that is repaired to feasibility; the best
    feasible cover over all iterations is returned.
    """
    uni = frozenset(universe)
    if not uni:
        return CoverResult((), 0.0)
    _validate(uni, family)

    elements = sorted(uni, key=repr)
    # Start multipliers at each element's cheapest covering ratio.
    u = {}
    for e in elements:
        ratios = [
            s.weight / len(s.elements) for s in family if e in s.elements
        ]
        u[e] = min(ratios)

    incumbent = greedy_weighted_set_cover(uni, family)
    best_choice = list(incumbent.chosen)
    best_weight = incumbent.weight
    scale = step_scale

    for _ in range(max(1, iterations)):
        reduced = [
            s.weight - sum(u[e] for e in s.elements if e in u) for s in family
        ]
        tentative = {i for i, rc in enumerate(reduced) if rc < 0}
        # Lower bound from the relaxation (not returned, drives the step).
        lower = sum(u.values()) + sum(rc for rc in reduced if rc < 0)

        chosen = _repair_to_cover(uni, family, tentative)
        weight = sum(family[i].weight for i in chosen)
        if weight < best_weight:
            best_weight = weight
            best_choice = chosen

        # Subgradient: 1 - (times covered by the tentative solution).
        coverage = {e: 0 for e in elements}
        for i in tentative:
            for e in family[i].elements:
                if e in coverage:
                    coverage[e] += 1
        subgrad = {e: 1 - c for e, c in coverage.items()}
        norm = sum(g * g for g in subgrad.values())
        if norm == 0:
            break
        gap = max(best_weight - lower, 1e-9)
        step = scale * gap / norm
        for e in elements:
            u[e] = max(0.0, u[e] + step * subgrad[e])
        scale *= 0.95  # geometric cooling

    return CoverResult(tuple(sorted(best_choice)), best_weight)


def genetic_set_cover(
    universe: Iterable,
    family: Sequence[WeightedSubset],
    rng: random.Random,
    population: int = 24,
    generations: int = 40,
    mutation_rate: float = 0.08,
) -> CoverResult:
    """Genetic-algorithm heuristic (Liepins-et-al.-style).

    Chromosomes are subset-inclusion bit strings; infeasible offspring
    are repaired with the greedy covering step, and redundant genes are
    pruned, so every individual is a valid cover.  Fitness is the cover
    weight (lower is better).
    """
    uni = frozenset(universe)
    if not uni:
        return CoverResult((), 0.0)
    _validate(uni, family)
    n = len(family)

    def weight_of(chosen: Sequence[int]) -> float:
        return sum(family[i].weight for i in chosen)

    def random_individual() -> list[int]:
        seed = {i for i in range(n) if rng.random() < 0.4}
        return _repair_to_cover(uni, family, seed)

    # Seed the population with the greedy solution plus random covers.
    pop = [list(greedy_weighted_set_cover(uni, family).chosen)]
    pop.extend(random_individual() for _ in range(population - 1))
    best = min(pop, key=weight_of)

    def tournament() -> list[int]:
        a, b = rng.choice(pop), rng.choice(pop)
        return a if weight_of(a) <= weight_of(b) else b

    for _ in range(max(1, generations)):
        offspring = []
        for _ in range(population):
            pa, pb = set(tournament()), set(tournament())
            child = set()
            for i in pa | pb:
                # Uniform crossover over the union of parent genes.
                if i in pa and i in pb:
                    child.add(i)
                elif rng.random() < 0.5:
                    child.add(i)
            # Mutation: flip a few genes.
            for i in range(n):
                if rng.random() < mutation_rate:
                    child.symmetric_difference_update({i})
            offspring.append(_repair_to_cover(uni, family, child))
        # Elitism: carry the best individual forward.
        offspring[0] = list(best)
        pop = offspring
        cand = min(pop, key=weight_of)
        if weight_of(cand) < weight_of(best):
            best = cand

    return CoverResult(tuple(sorted(best)), weight_of(best))
