"""Aggregation functions: how many bytes does a d-item aggregate occupy?

§3 and §5.4 of the paper distinguish aggregation by its size behaviour:

* **perfect** — the aggregate is the size of a single event (64 B)
  regardless of item count.  The paper's default assumption; models
  high-level data where events are fully redundant.
* **linear** — ``z(S) = d·|x| + h`` with item size 28 B and header 36 B;
  lossless packing where "the only savings are the packet headers"
  (fig 10's sensitivity study).
* **none** — no aggregation at all: every item is its own 64 B packet
  (a baseline below anything in the paper, useful for calibration).
* **timestamp** — lossless delta-encoding of temporally correlated events
  (§3's surveillance example): the first item is full-size, subsequent
  items shed their redundant timestamp fields.
* **outline** — lossy escan-style bounding-polygon summarisation (§3):
  size grows with item count only up to a vertex cap.

All functions are pure size models — item *identity* is always preserved
in the simulator so distinct-event accounting stays exact; "lossy" refers
to the application payload, which the study never inspects.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constants import CONTROL_SIZE, EVENT_SIZE

__all__ = [
    "AggregationFunction",
    "PerfectAggregation",
    "LinearAggregation",
    "NoAggregation",
    "TimestampAggregation",
    "OutlineAggregation",
    "by_name",
]


@dataclass(frozen=True)
class AggregationFunction:
    """Base: subclasses define ``size(d)`` for a d-item aggregate."""

    name: str = "base"
    #: max items per outgoing packet (None = unbounded)
    max_items: int | None = None

    def size(self, n_items: int) -> int:
        raise NotImplementedError

    def _check(self, n_items: int) -> None:
        if n_items < 1:
            raise ValueError("aggregate needs at least one item")
        if self.max_items is not None and n_items > self.max_items:
            raise ValueError(f"{self.name} aggregation carries at most {self.max_items} items")


@dataclass(frozen=True)
class PerfectAggregation(AggregationFunction):
    """Aggregate size == single event size, however many items (§5.1)."""

    name: str = "perfect"
    event_size: int = EVENT_SIZE

    def size(self, n_items: int) -> int:
        self._check(n_items)
        return self.event_size


@dataclass(frozen=True)
class LinearAggregation(AggregationFunction):
    """z(S) = d·|x| + h — lossless packing, header savings only (§5.4)."""

    name: str = "linear"
    item_size: int = 28
    header_size: int = CONTROL_SIZE

    def size(self, n_items: int) -> int:
        self._check(n_items)
        return n_items * self.item_size + self.header_size


@dataclass(frozen=True)
class NoAggregation(AggregationFunction):
    """Every item travels alone in a full event packet."""

    name: str = "none"
    max_items: int | None = 1
    event_size: int = EVENT_SIZE

    def size(self, n_items: int) -> int:
        self._check(n_items)
        return self.event_size


@dataclass(frozen=True)
class TimestampAggregation(AggregationFunction):
    """Delta-encoded timestamps: first item full, later items shed the
    redundant hour/minute fields (§3's lossless example)."""

    name: str = "timestamp"
    item_size: int = 28
    header_size: int = CONTROL_SIZE
    delta_item_size: int = 12

    def size(self, n_items: int) -> int:
        self._check(n_items)
        return self.header_size + self.item_size + (n_items - 1) * self.delta_item_size


@dataclass(frozen=True)
class OutlineAggregation(AggregationFunction):
    """escan-style lossy outline: a bounding polygon whose size saturates
    at ``max_vertices`` vertices (§3's lossy example)."""

    name: str = "outline"
    header_size: int = CONTROL_SIZE
    vertex_size: int = 8
    max_vertices: int = 8

    def size(self, n_items: int) -> int:
        self._check(n_items)
        return self.header_size + min(n_items, self.max_vertices) * self.vertex_size


_REGISTRY = {
    fn.name: fn
    for fn in (
        PerfectAggregation(),
        LinearAggregation(),
        NoAggregation(),
        TimestampAggregation(),
        OutlineAggregation(),
    )
}


def by_name(name: str) -> AggregationFunction:
    """Look up a default-configured aggregation function by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown aggregation function {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
