"""In-network data aggregation: size models, set cover, buffering.

* :mod:`repro.aggregation.functions` — aggregate size models (perfect,
  linear, none, timestamp, outline).
* :mod:`repro.aggregation.setcover` — weighted set-cover solvers (the
  paper's greedy heuristic plus exact and randomized references).
* :mod:`repro.aggregation.aggregator` — the T_a aggregation buffer with
  set-cover-based cost assignment.
"""

from .aggregator import AggregationBuffer, FlushResult, OutgoingAggregate
from .functions import (
    AggregationFunction,
    LinearAggregation,
    NoAggregation,
    OutlineAggregation,
    PerfectAggregation,
    TimestampAggregation,
    by_name,
)
from .setcover import (
    CoverResult,
    SetCoverError,
    WeightedSubset,
    exact_weighted_set_cover,
    greedy_weighted_set_cover,
    randomized_set_cover,
    transform_to_sources,
)
from .solvers import genetic_set_cover, lagrangian_set_cover

__all__ = [
    "AggregationBuffer",
    "FlushResult",
    "OutgoingAggregate",
    "AggregationFunction",
    "PerfectAggregation",
    "LinearAggregation",
    "NoAggregation",
    "TimestampAggregation",
    "OutlineAggregation",
    "by_name",
    "CoverResult",
    "SetCoverError",
    "WeightedSubset",
    "greedy_weighted_set_cover",
    "exact_weighted_set_cover",
    "randomized_set_cover",
    "lagrangian_set_cover",
    "genetic_set_cover",
    "transform_to_sources",
]
