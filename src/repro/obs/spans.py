"""Span-based request tracing for the service (and anything else).

A *span* is one named, timed operation with attributes; spans link to a
parent span and share a *trace id*, so every operation a request caused
— parsing, queue wait, dedup verdicts, worker execution, store writes —
resolves to one parent-linked tree.  This is the request-side complement
to the simulation's tracer: the tracer answers "what happened *inside*
run X", spans answer "why did *job* X take 40 seconds".

Design constraints (why this is ~200 lines and not OpenTelemetry):

* **cheap enough to stay on by default** — starting and ending a span is
  two ``time.time()`` calls, a dict, and a deque append.  Nothing here
  is per-simulation-event; the recording rate is per *request/run*, so a
  busy daemon records hundreds of spans per second, not millions.
* **bounded** — finished spans live in a ring buffer
  (:class:`SpanStore`, default :data:`DEFAULT_SPAN_CAPACITY`); old
  traces fall off the back instead of eating memory.  ``spans.started``
  / ``spans.dropped`` counters land in the metrics registry when one is
  attached, so eviction is observable.
* **process-boundary friendly** — ids are plain hex strings.  A worker
  process cannot share the daemon's :class:`SpanStore`, so it builds
  span *dicts* (:func:`make_span`) against a propagated
  :class:`SpanContext` and the parent :meth:`SpanStore.ingest`\\ s them
  after the round trip.  The tree looks seamless; no IPC machinery.

Chrome/Perfetto export lives with the other exporters:
:func:`repro.obs.export.spans_to_chrome_trace`.
"""

from __future__ import annotations

import os
import time
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover
    from .registry import MetricsRegistry

__all__ = [
    "SPAN_VERSION",
    "DEFAULT_SPAN_CAPACITY",
    "SpanContext",
    "Span",
    "SpanStore",
    "make_span",
    "span_tree",
    "new_trace_id",
    "new_span_id",
]

SPAN_VERSION = 1

#: default ring capacity: at ~10 spans per job this keeps the last few
#: hundred jobs inspectable for well under 10 MB
DEFAULT_SPAN_CAPACITY = 8192


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id (doubles as the correlation id)."""
    return os.urandom(8).hex()


def new_span_id() -> str:
    """A fresh 16-hex-char span id."""
    return os.urandom(8).hex()


@dataclass(frozen=True)
class SpanContext:
    """The propagatable identity of a span: enough to parent children
    across any boundary (async task, thread, worker process)."""

    trace_id: str
    span_id: str

    def as_dict(self) -> dict[str, str]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}


def make_span(
    name: str,
    trace_id: str,
    span_id: str,
    parent_id: Optional[str],
    start_s: float,
    end_s: float,
    attributes: Optional[dict[str, Any]] = None,
    status: str = "ok",
) -> dict[str, Any]:
    """Build one finished-span payload dict (the wire/ingest format).

    This is what worker processes return to the daemon: JSON-friendly,
    no live objects, ids already linked into the propagated trace.
    """
    return {
        "span_version": SPAN_VERSION,
        "name": name,
        "trace_id": trace_id,
        "span_id": span_id,
        "parent_id": parent_id,
        "start_s": start_s,
        "end_s": end_s,
        "duration_s": max(0.0, end_s - start_s),
        "status": status,
        "attributes": dict(attributes or {}),
    }


class Span:
    """One live (started, not yet ended) operation.

    Obtained from :meth:`SpanStore.start`; finish it with :meth:`end`
    (idempotent).  ``attributes`` are plain JSON-friendly scalars.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start_s",
        "end_s",
        "status",
        "attributes",
        "_store",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        parent_id: Optional[str],
        store: Optional["SpanStore"],
        attributes: Optional[dict[str, Any]] = None,
        start_s: Optional[float] = None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = new_span_id()
        self.parent_id = parent_id
        self.start_s = time.time() if start_s is None else start_s
        self.end_s: Optional[float] = None
        self.status = "ok"
        self.attributes: dict[str, Any] = dict(attributes or {})
        self._store = store

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    @property
    def ended(self) -> bool:
        return self.end_s is not None

    def set(self, **attributes: Any) -> "Span":
        """Attach attributes (chainable)."""
        self.attributes.update(attributes)
        return self

    def end(self, status: Optional[str] = None, **attributes: Any) -> "Span":
        """Finish the span and hand it to the store (idempotent)."""
        if self.end_s is not None:
            return self
        if attributes:
            self.attributes.update(attributes)
        if status is not None:
            self.status = status
        self.end_s = time.time()
        if self._store is not None:
            self._store._finish(self)
        return self

    def as_dict(self) -> dict[str, Any]:
        end_s = self.end_s if self.end_s is not None else time.time()
        span = make_span(
            self.name,
            self.trace_id,
            self.span_id,
            self.parent_id,
            self.start_s,
            end_s,
            self.attributes,
            self.status,
        )
        span["in_flight"] = self.end_s is None
        span["span_id"] = self.span_id  # keep the live id (make_span copies it)
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "live" if self.end_s is None else f"{self.end_s - self.start_s:.4f}s"
        return f"<Span {self.name} {self.span_id} {state}>"


class SpanStore:
    """Bounded in-memory span sink with trace lookup.

    * ``capacity`` bounds the *finished* ring; zero disables recording
      entirely (spans still carry usable ids, so correlation ids and
      propagation keep working — they just aren't retained).
    * active spans are tracked separately so an in-flight job's partial
      tree is already visible through the trace endpoints.
    * with a ``registry``, the store maintains ``spans.started``,
      ``spans.dropped`` counters and a ``spans.active`` gauge.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_SPAN_CAPACITY,
        registry: Optional["MetricsRegistry"] = None,
    ) -> None:
        if capacity < 0:
            raise ValueError(f"span capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.enabled = capacity > 0
        self._finished: deque[dict[str, Any]] = deque(maxlen=capacity or 1)
        self._active: dict[str, Span] = {}
        self._started = 0
        self._dropped = 0
        self._counter_started = None
        self._counter_dropped = None
        self._gauge_active = None
        if registry is not None:
            self._counter_started = registry.counter("spans.started")
            self._counter_dropped = registry.counter("spans.dropped")
            self._gauge_active = registry.gauge("spans.active")

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def start(
        self,
        name: str,
        parent: Optional[object] = None,
        trace_id: Optional[str] = None,
        **attributes: Any,
    ) -> Span:
        """Open a span.  ``parent`` is a :class:`Span`, a
        :class:`SpanContext`, or None (new root → fresh trace id)."""
        parent_id: Optional[str] = None
        if parent is not None:
            parent_id = parent.span_id  # Span and SpanContext both carry it
            trace_id = trace_id or parent.trace_id
        span = Span(
            name,
            trace_id or new_trace_id(),
            parent_id,
            self if self.enabled else None,
            attributes,
        )
        if self.enabled:
            self._started += 1
            if self._counter_started is not None:
                self._counter_started.inc()
            self._active[span.span_id] = span
            if self._gauge_active is not None:
                self._gauge_active.set(len(self._active))
        return span

    def event(
        self, name: str, parent: Optional[object] = None, **attributes: Any
    ) -> Span:
        """A zero-duration span: a point decision worth a tree node
        (dedup verdicts, cache hits)."""
        return self.start(name, parent=parent, **attributes).end()

    def _finish(self, span: Span) -> None:
        self._active.pop(span.span_id, None)
        if self._gauge_active is not None:
            self._gauge_active.set(len(self._active))
        if len(self._finished) == self.capacity:
            self._dropped += 1
            if self._counter_dropped is not None:
                self._counter_dropped.inc()
        self._finished.append(span.as_dict())

    def ingest(self, spans: Iterable[dict[str, Any]]) -> int:
        """Adopt finished-span payloads produced elsewhere (worker
        processes, a remote daemon).  Returns how many were kept."""
        kept = 0
        if not self.enabled:
            return 0
        for payload in spans:
            if not isinstance(payload, dict) or "span_id" not in payload:
                continue
            if len(self._finished) == self.capacity:
                self._dropped += 1
                if self._counter_dropped is not None:
                    self._counter_dropped.inc()
            self._started += 1
            if self._counter_started is not None:
                self._counter_started.inc()
            self._finished.append(dict(payload))
            kept += 1
        return kept

    # ------------------------------------------------------------------
    # readout
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._finished) if self.enabled else 0

    @property
    def started(self) -> int:
        return self._started

    @property
    def dropped(self) -> int:
        return self._dropped

    def trace(self, trace_id: str) -> list[dict[str, Any]]:
        """Every retained span of one trace (finished + still-active),
        in start-time order."""
        if not self.enabled:
            return []
        spans = [s for s in self._finished if s["trace_id"] == trace_id]
        spans += [s.as_dict() for s in self._active.values() if s.trace_id == trace_id]
        spans.sort(key=lambda s: (s["start_s"], s["span_id"]))
        return spans

    def recent(
        self,
        limit: int = 100,
        name: Optional[str] = None,
        trace_id: Optional[str] = None,
    ) -> list[dict[str, Any]]:
        """The newest finished spans, newest first, optionally filtered
        by exact name or name prefix (``"http."``) and/or trace id."""
        if not self.enabled:
            return []
        out: list[dict[str, Any]] = []
        for span in reversed(self._finished):
            if trace_id is not None and span["trace_id"] != trace_id:
                continue
            if name is not None:
                sname = span["name"]
                if sname != name and not (name.endswith(".") and sname.startswith(name)):
                    continue
            out.append(span)
            if len(out) >= limit:
                break
        return out

    def stats(self) -> dict[str, Any]:
        return {
            "capacity": self.capacity,
            "retained": len(self),
            "active": len(self._active),
            "started": self._started,
            "dropped": self._dropped,
        }


def span_tree(spans: Iterable[dict[str, Any]]) -> list[dict[str, Any]]:
    """Nest flat span payloads into parent-linked trees.

    Returns the list of roots; each node is the span dict plus a
    ``children`` list (start-time order).  A span whose parent is not in
    the input (evicted from the ring, or a foreign trace) becomes a root
    — the tree degrades gracefully instead of dropping data.
    """
    nodes: dict[str, dict[str, Any]] = {}
    ordered: list[dict[str, Any]] = []
    for span in spans:
        node = {**span, "children": []}
        nodes[span["span_id"]] = node
        ordered.append(node)
    roots: list[dict[str, Any]] = []
    for node in ordered:
        parent = nodes.get(node.get("parent_id") or "")
        if parent is not None and parent is not node:
            parent["children"].append(node)
        else:
            roots.append(node)
    key = lambda n: (n["start_s"], n["span_id"])  # noqa: E731
    for node in ordered:
        node["children"].sort(key=key)
    roots.sort(key=key)
    return roots
