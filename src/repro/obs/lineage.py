"""Causal lineage: reconstruct delivery trees from the data-path trace.

The diffusion kernel emits five lineage categories (``data.gen``,
``data.rx``, ``data.tx``, ``data.merge``, ``data.deliver``; see
:data:`~repro.obs.options.TRACE_CATEGORIES`).  Identity is **in-band** —
every record carries the ``(source_id, seq)`` keys of the items it moved —
while topology is **out-of-band** (which node handled which key, from
whom, when).  A :class:`LineageIndex` ingests the records, from a live
tracer or a JSONL trace file, and answers the causal questions the flat
counters cannot: where was a delivered event generated, along which hops
did it travel, what does the whole per-interest delivery tree look like,
and how much merging happened on the way.

The invariant the auditor leans on: each node accepts a given item key at
most once (the duplicate cache), so a key's accepted-``data.rx`` records,
in time order, *are* its path — no search required.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Optional, Union

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.trace import TraceRecord

__all__ = [
    "LINEAGE_CATEGORIES",
    "Hop",
    "DeliveryTree",
    "LineageIndex",
    "format_tree",
]

#: trace categories the lineage index consumes
LINEAGE_CATEGORIES = ("data.gen", "data.rx", "data.tx", "data.merge", "data.deliver")


def _key(raw) -> tuple[int, int]:
    """Normalize a wire key (list from JSON, tuple in memory) to a tuple."""
    return (raw[0], raw[1])


@dataclass(frozen=True)
class Hop:
    """One accepted reception of one item key at one node."""

    time: float
    node: int
    sender: int


@dataclass(frozen=True)
class DeliveryTree:
    """Per-interest delivery topology reconstructed from lineage.

    ``edges`` maps ``(upstream, downstream)`` to the number of distinct
    delivered keys that crossed that hop — the live counterpart of the
    GIT the greedy scheme tries to build.
    """

    interest: int
    edges: dict[tuple[int, int], int]
    sources: frozenset[int]
    sinks: frozenset[int]
    delivered_keys: int

    @property
    def n_edges(self) -> int:
        return len(self.edges)

    def junctions(self) -> list[int]:
        """Nodes where >= 2 distinct upstream edges converge (merge points)."""
        fan_in: dict[int, int] = {}
        for (_up, down) in self.edges:
            fan_in[down] = fan_in.get(down, 0) + 1
        return sorted(n for n, k in fan_in.items() if k >= 2)


class LineageIndex:
    """Ingests lineage trace records and answers provenance queries."""

    def __init__(self) -> None:
        #: key -> (time, node, interest) of its data.gen record
        self.generated: dict[tuple[int, int], tuple[float, int, int]] = {}
        #: key -> accepted hops in arrival order
        self.hops: dict[tuple[int, int], list[Hop]] = {}
        #: (interest, sink, key) -> delivery time
        self.delivered: dict[tuple[int, int, tuple[int, int]], float] = {}
        #: (time, node, interest, n_contributions, n_items) per flush
        self.merges: list[tuple[float, int, int, int, int]] = []
        #: records consumed, by category
        self.counts: dict[str, int] = {}

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def add(self, rec: "TraceRecord") -> None:
        """Consume one trace record (non-lineage categories are ignored)."""
        cat = rec.category
        if cat == "data.gen":
            f = rec.as_dict()
            key = (f["src"], f["seq"])
            self.generated.setdefault(key, (rec.time, f["node"], f["interest"]))
        elif cat == "data.rx":
            f = rec.as_dict()
            node, sender = f["node"], f["sender"]
            for raw in f["accepted"]:
                self.hops.setdefault(_key(raw), []).append(Hop(rec.time, node, sender))
        elif cat == "data.deliver":
            f = rec.as_dict()
            self.delivered.setdefault(
                (f["interest"], f["sink"], _key(f["key"])), rec.time
            )
        elif cat == "data.merge":
            f = rec.as_dict()
            n_items = sum(len(agg) for agg in f["aggregates"])
            self.merges.append(
                (rec.time, f["node"], f["interest"], f["n_contributions"], n_items)
            )
        elif cat != "data.tx":
            return
        self.counts[cat] = self.counts.get(cat, 0) + 1

    @classmethod
    def from_records(cls, records: Iterable["TraceRecord"]) -> "LineageIndex":
        index = cls()
        for rec in records:
            index.add(rec)
        return index

    @classmethod
    def from_trace(cls, path: Union[str, Path]) -> "LineageIndex":
        """Build the index from a JSONL trace file."""
        from .export import read_trace

        return cls.from_records(read_trace(Path(path)))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def source_events(self, interest: Optional[int] = None) -> frozenset[tuple[int, int]]:
        """Keys of all generated items (optionally for one interest)."""
        if interest is None:
            return frozenset(self.generated)
        return frozenset(
            k for k, (_t, _n, iid) in self.generated.items() if iid == interest
        )

    def delivered_keys(self, interest: Optional[int] = None) -> frozenset[tuple[int, int]]:
        """Keys counted by any sink (optionally for one interest)."""
        return frozenset(
            key
            for (iid, _sink, key) in self.delivered
            if interest is None or iid == interest
        )

    def interests(self) -> list[int]:
        seen = {iid for (iid, _s, _k) in self.delivered}
        seen.update(iid for (_t, _n, iid) in self.generated.values())
        return sorted(seen)

    def path(self, key: tuple[int, int]) -> list[int]:
        """The node path this key travelled: source, relays, final holder.

        Raises ``KeyError`` for a key with no generation record.
        """
        _t, gen_node, _iid = self.generated[key]
        return [gen_node] + [hop.node for hop in self.hops.get(key, ())]

    def terminates_in_generation(self, key: tuple[int, int]) -> bool:
        """True if this key's lineage roots in a real ``data.gen`` event."""
        return key in self.generated

    def delivery_tree(self, interest: int) -> DeliveryTree:
        """Reconstruct the delivery tree for one interest.

        Edges are taken from the accepted hops of every *delivered* key,
        so the tree is the part of the gradient field that did useful
        work — exactly what the paper's GIT-vs-opportunistic comparison
        is about.
        """
        edges: dict[tuple[int, int], int] = {}
        sources: set[int] = set()
        sinks = {sink for (iid, sink, _key) in self.delivered if iid == interest}
        n_delivered = 0
        for (iid, _sink, key) in self.delivered:
            if iid != interest:
                continue
            n_delivered += 1
            gen = self.generated.get(key)
            if gen is not None:
                sources.add(gen[1])
            for hop in self.hops.get(key, ()):
                edge = (hop.sender, hop.node)
                edges[edge] = edges.get(edge, 0) + 1
        return DeliveryTree(
            interest=interest,
            edges=edges,
            sources=frozenset(sources),
            sinks=frozenset(sinks),
            delivered_keys=n_delivered,
        )

    def merge_stats(self) -> dict[str, float]:
        """Aggregate merge behaviour: flushes, mean fan-in, items merged."""
        if not self.merges:
            return {"flushes": 0, "mean_fan_in": 0.0, "items": 0}
        fan_ins = [m[3] for m in self.merges]
        return {
            "flushes": len(self.merges),
            "mean_fan_in": sum(fan_ins) / len(fan_ins),
            "items": sum(m[4] for m in self.merges),
        }


def format_tree(tree: DeliveryTree) -> str:
    """Human-readable rendering of one delivery tree."""
    lines = [
        f"interest {tree.interest}: {tree.delivered_keys} delivered keys, "
        f"{tree.n_edges} edges, sources {sorted(tree.sources) or '?'}, "
        f"sinks {sorted(tree.sinks)}"
    ]
    junctions = set(tree.junctions())
    for (up, down), n in sorted(tree.edges.items()):
        mark = " *" if down in junctions else ""
        lines.append(f"  {up:4d} -> {down:<4d} ({n} keys){mark}")
    if junctions:
        lines.append(f"  (* = merge junction: {sorted(junctions)})")
    return "\n".join(lines)
