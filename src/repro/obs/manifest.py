"""Run provenance manifests.

A manifest ties a result back to exactly what produced it: the full
config (every knob, not just the swept ones), the seed, the package
version, host/interpreter info, wall-clock cost, and the metrics summary.
``repro stats manifest.json`` pretty-prints one; sweeps write a
``kind: "figure"`` variant next to their saved series, which also
records run-store hit/miss accounting when the sweep was resumable
(``store=`` / ``--store``).  The config/version identity block captured
here is the same information the run store hashes into its content keys
(:mod:`repro.experiments.store`).

The schema is versioned (:data:`MANIFEST_VERSION`); loaders reject
versions they do not understand rather than misreading them.
"""

from __future__ import annotations

import dataclasses
import json
import platform
import socket
import sys
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any, Optional, Union

if TYPE_CHECKING:  # pragma: no cover
    from ..experiments.config import ExperimentConfig, Profile
    from ..experiments.figures import FigureResult
    from ..experiments.metrics import RunMetrics
    from ..sim.engine import Simulator
    from .profiler import ProfileReport
    from .registry import MetricsRegistry

__all__ = [
    "MANIFEST_VERSION",
    "build_run_manifest",
    "build_figure_manifest",
    "save_manifest",
    "load_manifest",
    "format_manifest",
]

MANIFEST_VERSION = 1


def _package_version() -> str:
    import repro  # late import: repro/__init__ may still be initializing at import time

    return getattr(repro, "__version__", "unknown")


def _environment() -> dict[str, Any]:
    return {
        "package": {"name": "repro", "version": _package_version()},
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "hostname": socket.gethostname(),
    }


def build_run_manifest(
    cfg: "ExperimentConfig",
    metrics: "RunMetrics",
    *,
    wall_time_s: float,
    sim: Optional["Simulator"] = None,
    registry: Optional["MetricsRegistry"] = None,
    profile_report: Optional["ProfileReport"] = None,
    trace_path: Optional[Union[str, Path]] = None,
    field_info: Optional[dict[str, Any]] = None,
    audit: Optional[dict[str, Any]] = None,
    timeline: Optional[dict[str, Any]] = None,
) -> dict[str, Any]:
    """Assemble the provenance manifest for one experiment run.

    ``field_info`` records sensor-field provenance (connected-redraw
    count, whether the field came from the per-process cache) so cached
    and fresh fields are distinguishable when comparing runs.  ``audit``
    is an :meth:`~repro.obs.audit.Auditor.report` dict when the run was
    audited online.  ``timeline`` is a
    :meth:`~repro.obs.timeline.Timeline.accounting` block (probe list,
    cadence, sample count, bytes, artifact path) when the run sampled a
    probe timeline — mirroring the ``field``/``store`` blocks.
    """
    manifest: dict[str, Any] = {
        "manifest_version": MANIFEST_VERSION,
        "kind": "run",
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "environment": _environment(),
        "config": dataclasses.asdict(cfg),
        "seed": cfg.seed,
        "wall_time_s": wall_time_s,
        "metrics": dataclasses.asdict(metrics),
    }
    if sim is not None:
        manifest["simulator"] = {
            "events_processed": sim.events_processed,
            "events_per_sec": sim.events_processed / wall_time_s if wall_time_s > 0 else 0.0,
            "cancelled_skipped": sim.cancelled_skipped,
            "sim_time_s": sim.now,
        }
    if field_info is not None:
        manifest["field"] = dict(field_info)
    if registry is not None:
        manifest["metrics_snapshot"] = registry.snapshot()
    if profile_report is not None:
        manifest["profile"] = profile_report.as_dict()
    if trace_path is not None:
        manifest["trace_path"] = str(trace_path)
    if audit is not None:
        manifest["audit"] = dict(audit)
    if timeline is not None:
        manifest["timeline"] = dict(timeline)
    return manifest


def build_figure_manifest(
    result: "FigureResult",
    profile: "Profile",
    *,
    wall_time_s: float,
    trials: Optional[int] = None,
    workers: int = 0,
    result_path: Optional[Union[str, Path]] = None,
    store: Optional[dict[str, Any]] = None,
) -> dict[str, Any]:
    """Assemble the provenance manifest for one figure sweep.

    ``store`` records run-store accounting when the sweep consulted a
    content-addressed :class:`~repro.experiments.store.RunStore`:
    ``{"path": ..., "hits": ..., "misses": ..., "persisted": ...,
    "skipped": ...}`` — so a resumed figure is distinguishable from one
    computed in a single pass.
    """
    manifest: dict[str, Any] = {
        "manifest_version": MANIFEST_VERSION,
        "kind": "figure",
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "environment": _environment(),
        "figure_id": result.figure_id,
        "title": result.title,
        "x_label": result.x_label,
        "profile": {
            "name": profile.name,
            "trials": trials if trials is not None else profile.trials,
            "duration": profile.duration,
            "warmup": profile.warmup,
        },
        "workers": workers,
        "wall_time_s": wall_time_s,
        "n_cells": len(result.cells),
        "cells": [dataclasses.asdict(c) for c in result.cells],
        "result_path": str(result_path) if result_path is not None else None,
    }
    if store is not None:
        manifest["store"] = dict(store)
    return manifest


def save_manifest(manifest: dict[str, Any], path: Union[str, Path]) -> Path:
    """Write a manifest as pretty-printed JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True, default=str))
    return path


def load_manifest(path: Union[str, Path]) -> dict[str, Any]:
    """Reload a manifest, validating its schema version."""
    data = json.loads(Path(path).read_text())
    version = data.get("manifest_version")
    if version != MANIFEST_VERSION:
        raise ValueError(f"unsupported manifest version: {version!r}")
    return data


def _fmt_kv(pairs: list[tuple[str, Any]]) -> list[str]:
    width = max(len(k) for k, _v in pairs)
    return [f"{k:<{width}}  {v}" for k, v in pairs]


def format_manifest(data: dict[str, Any], top_counters: int = 12) -> str:
    """Pretty-print a manifest (the ``repro stats`` backend)."""
    env = data.get("environment", {})
    pkg = env.get("package", {})
    lines: list[str] = [f"{data.get('kind', '?')} manifest (v{data.get('manifest_version')})"]
    pairs: list[tuple[str, Any]] = [
        ("created", data.get("created_at")),
        ("package", f"{pkg.get('name')} {pkg.get('version')}"),
        ("python", f"{env.get('python')} ({env.get('implementation')})"),
        ("host", f"{env.get('hostname')} / {env.get('platform')}"),
        ("wall time", f"{data.get('wall_time_s', 0.0):.3f} s"),
    ]
    if data.get("kind") == "run":
        cfg = data.get("config", {})
        m = data.get("metrics", {})
        pairs += [
            ("scheme", cfg.get("scheme")),
            ("nodes", cfg.get("n_nodes")),
            ("seed", data.get("seed")),
            ("duration", f"{cfg.get('duration')} s (warmup {cfg.get('warmup')} s)"),
            ("avg energy", f"{m.get('avg_dissipated_energy', 0.0):.6f} J/node/event"),
            ("avg delay", f"{m.get('avg_delay', 0.0):.4f} s"),
            ("delivery ratio", f"{m.get('delivery_ratio', 0.0):.3f}"),
            ("delivered/sent", f"{m.get('distinct_delivered')} / {m.get('events_sent')}"),
        ]
        ttfd = m.get("time_to_first_death")
        if ttfd is not None:
            pairs.append(("first death", f"{ttfd:.3f} s"))
        tthd = m.get("time_to_half_delivery")
        if tthd is not None:
            pairs.append(("half delivery", f"{tthd:.3f} s"))
        tl = data.get("timeline")
        if tl:
            pairs.append(
                (
                    "timeline",
                    f"{tl.get('samples')} samples @ {tl.get('interval')} s, "
                    f"{len(tl.get('probes', []))} probes, {tl.get('bytes', 0)} bytes",
                )
            )
        sim = data.get("simulator")
        if sim:
            pairs += [
                ("events", sim.get("events_processed")),
                ("events/sec", f"{sim.get('events_per_sec', 0.0):,.0f}"),
            ]
        audit = data.get("audit")
        if audit:
            pairs.append(
                (
                    "audit",
                    ("ok" if audit.get("ok") else "FAILED")
                    + f" ({audit.get('n_findings', 0)} findings, "
                    f"{audit.get('records_seen', 0)} records)",
                )
            )
        lines += _fmt_kv(pairs)
        by_class = m.get("energy_by_class") or {}
        if by_class:
            lines.append("")
            lines.append("energy by message class (post-warmup):")
            total = sum(by_class.values()) or 1.0
            width = max(len(k) for k in by_class)
            for k, v in sorted(by_class.items(), key=lambda kv: -kv[1]):
                lines.append(f"  {k:<{width}}  {v:12.6f} J  ({100 * v / total:5.1f}%)")
        counters = m.get("counters") or {}
        if counters:
            lines.append("")
            lines.append(f"top counters ({min(top_counters, len(counters))} of {len(counters)}):")
            ranked = sorted(counters.items(), key=lambda kv: -kv[1])[:top_counters]
            width = max(len(k) for k, _ in ranked)
            lines += [f"  {k:<{width}}  {v}" for k, v in ranked]
        if "profile" in data:
            prof = data["profile"]
            lines.append("")
            lines.append(
                f"profile: {prof.get('events_per_sec', 0.0):,.0f} events/sec, "
                f"{len(prof.get('callbacks', []))} callsites, "
                f"heap max {prof.get('heap', {}).get('max')}"
            )
    elif data.get("kind") == "figure":
        prof = data.get("profile", {})
        pairs += [
            ("figure", f"{data.get('figure_id')}: {data.get('title')}"),
            ("profile", f"{prof.get('name')} (trials={prof.get('trials')})"),
            ("cells", data.get("n_cells")),
        ]
        st = data.get("store")
        if st:
            pairs.append(
                (
                    "run store",
                    f"{st.get('hits', 0)} hits / {st.get('misses', 0)} misses "
                    f"({st.get('path')})",
                )
            )
        lines += _fmt_kv(pairs)
    else:
        lines += _fmt_kv(pairs)
    return "\n".join(lines)
