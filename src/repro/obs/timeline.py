"""Time-resolved run telemetry: periodic in-sim probes into columnar series.

Every metric the repo reported before this module was an end-of-run
aggregate, but the paper's density claims are about *dynamics* — the
greedy scheme pays during interest/exploratory flooding and earns it
back later — and lifetime metrics (time to first node death, half-energy
time) need state sampled over simulated time.  A :class:`Timeline` is a
compact recorder for exactly that:

* probes are **pre-bound zero-argument callables** registered once per
  run (:func:`install_standard_probes` wires the standard set: alive/dead
  node counts, cumulative generated/delivered data events, gradient-table
  sizes, MAC collisions/backoffs, simulator pending-event depth, and
  per-message-class energy);
* samples land in **parallel columnar arrays** (``array('d')`` per float
  probe, ``array('q')`` per int probe, one shared time column) — no
  per-sample dict churn, so the canonical bench stays inside the CI
  regression gate with timelines enabled;
* the cadence is driven by the simulator itself (:meth:`Timeline.attach`
  schedules ticks at ``0, i, 2i, ...`` strictly below the horizon) and
  :meth:`Timeline.finalize` guarantees one closing sample at run end, so
  the last partial interval is never dropped.

Sampling is wall-clock-free and RNG-free: tick events consume scheduler
sequence numbers but never touch an RNG stream, so a run with a timeline
attached produces bit-identical :class:`~repro.experiments.metrics.RunMetrics`
to one without (asserted by the determinism tests).

Serialization round-trips losslessly through :meth:`Timeline.as_dict` /
:meth:`Timeline.from_dict` (the run store persists that JSON image), and
``repro timeline`` renders any timeline as an ASCII sparkline table via
:func:`format_timeline`.
"""

from __future__ import annotations

import json
from array import array
from pathlib import Path
from typing import Any, Callable, Optional, Sequence, Union

__all__ = [
    "TIMELINE_VERSION",
    "TimelineProbe",
    "Timeline",
    "install_standard_probes",
    "publish_sim_gauges",
    "save_timeline",
    "load_timeline",
    "sparkline",
    "format_timeline",
]

#: bump when the as_dict()/from_dict() schema changes shape
TIMELINE_VERSION = 1

#: array typecodes per probe kind (int probes must return genuine ints:
#: ``array('q').append`` rejects floats by design)
_TYPECODES = {"float": "d", "int": "q"}


class TimelineProbe:
    """One named, typed, pre-bound sampling callable.

    ``fn`` is called with no arguments at every sample point; its return
    value is appended to this probe's column.  ``kind`` selects the
    column type: ``"float"`` -> ``array('d')``, ``"int"`` -> ``array('q')``.
    """

    __slots__ = ("name", "kind", "fn", "description", "values")

    def __init__(
        self,
        name: str,
        fn: Optional[Callable[[], Any]],
        kind: str = "float",
        description: str = "",
        values: Optional[Sequence] = None,
    ) -> None:
        if kind not in _TYPECODES:
            raise ValueError(f"probe kind must be 'float' or 'int', got {kind!r}")
        self.name = name
        self.kind = kind
        self.fn = fn
        self.description = description
        self.values = array(_TYPECODES[kind], values if values is not None else ())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TimelineProbe {self.name} ({self.kind}, {len(self.values)} samples)>"


class Timeline:
    """Columnar recorder of periodic probe samples over simulated time.

    Lifecycle: :meth:`register` probes, :meth:`attach` to a simulator
    (schedules the sampling ticks), run the simulation, then
    :meth:`finalize` for the guaranteed closing sample.  A timeline
    loaded back from :meth:`from_dict` has data but no callables — it can
    be rendered, diffed, and exported but not re-attached.
    """

    def __init__(
        self, interval: Optional[float] = None, duration: Optional[float] = None
    ) -> None:
        #: sim-seconds between samples (set at construction or attach time)
        self.interval = interval
        #: sampling horizon (the run duration); the final sample lands here
        self.duration = duration
        #: shared time column, parallel to every probe's value column
        self.times: array = array("d")
        self.probes: list[TimelineProbe] = []
        self._by_name: dict[str, TimelineProbe] = {}
        # pre-bound (fn, append) pairs — the entire per-sample work
        self._samplers: list[tuple[Callable[[], Any], Callable[[Any], None]]] = []
        self._sim = None
        self._before: Optional[Callable[[], None]] = None
        self._finalized = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        fn: Callable[[], Any],
        kind: str = "float",
        description: str = "",
    ) -> TimelineProbe:
        """Add one probe; must happen before the first sample."""
        if self.times:
            raise RuntimeError("cannot register probes after sampling started")
        if name in self._by_name:
            raise ValueError(f"duplicate probe name: {name}")
        probe = TimelineProbe(name, fn, kind, description)
        self.probes.append(probe)
        self._by_name[name] = probe
        self._samplers.append((fn, probe.values.append))
        return probe

    def attach(self, sim, duration: float, before_sample=None) -> "Timeline":
        """Schedule sampling ticks on ``sim`` at ``0, i, 2i, ... < duration``.

        ``before_sample`` (optional callable) runs immediately before each
        sample — the runner uses it to refresh registry gauges so a
        timeline sample and a trace gauge snapshot taken at the same
        instant agree.  The closing sample at ``duration`` itself comes
        from :meth:`finalize` after ``sim.run()`` returns.
        """
        if self.interval is None or self.interval <= 0:
            raise ValueError(f"timeline interval must be positive, got {self.interval!r}")
        self.duration = duration
        self._sim = sim
        self._before = before_sample
        sim.schedule(0.0, self._tick)
        return self

    def _tick(self) -> None:
        sim = self._sim
        if self._before is not None:
            self._before()
        self.sample(sim.now)
        # strict inequality: the horizon sample belongs to finalize(),
        # and nothing may be scheduled past the run end
        if sim.now + self.interval < self.duration:
            sim.schedule(self.interval, self._tick)

    def finalize(self, now: Optional[float] = None) -> None:
        """Take the guaranteed closing sample (idempotent)."""
        if self._finalized:
            return
        self._finalized = True
        if self._before is not None:
            self._before()
        t = self.duration if now is None else now
        self.sample(t if t is not None else 0.0)

    def sample(self, now: float) -> None:
        """Record one sample row at sim time ``now``."""
        self.times.append(now)
        for fn, append in self._samplers:
            append(fn())

    # ------------------------------------------------------------------
    # readout
    # ------------------------------------------------------------------
    @property
    def n_samples(self) -> int:
        return len(self.times)

    def names(self) -> list[str]:
        return [p.name for p in self.probes]

    def series(self, name: str) -> tuple[list[float], list]:
        """``(times, values)`` for one probe, as plain lists."""
        probe = self._by_name[name]
        return list(self.times), list(probe.values)

    def nbytes(self) -> int:
        """In-memory payload size of all columns (time + every probe)."""
        total = self.times.itemsize * len(self.times)
        for probe in self.probes:
            total += probe.values.itemsize * len(probe.values)
        return total

    def crossing_time(
        self, name: str, threshold: float, interpolate: bool = True
    ) -> Optional[float]:
        """First sim time the probe reaches ``threshold``, or None.

        With ``interpolate`` the crossing is linearly interpolated between
        the bracketing samples (right for continuous series like
        cumulative energy); without it the first sample at-or-above the
        threshold is returned verbatim (right for discrete counts).
        """
        probe = self._by_name.get(name)
        if probe is None or not self.times:
            return None
        values = probe.values
        prev_t, prev_v = self.times[0], values[0]
        if prev_v >= threshold:
            return prev_t
        for t, v in zip(self.times, values):
            if v >= threshold:
                if interpolate and v != prev_v:
                    frac = (threshold - prev_v) / (v - prev_v)
                    return prev_t + frac * (t - prev_t)
                return t
            prev_t, prev_v = t, v
        return None

    def derived(self) -> dict[str, Optional[float]]:
        """Time-derived summary statistics of the sampled series.

        * ``time_to_first_death`` — first sample where ``nodes.alive``
          dropped below its initial value (sample resolution: the exact
          event time lives on :class:`~repro.experiments.metrics.RunMetrics`);
        * ``min_alive`` — the lowest sampled alive count;
        * ``half_energy_time`` — interpolated sim time at which the run
          had dissipated half of its final cumulative ``energy.total``;
        * ``half_delivery_time`` — first sample with at least half of the
          final ``data.delivered`` count.
        """
        out: dict[str, Optional[float]] = {}
        alive = self._by_name.get("nodes.alive")
        if alive is not None and len(alive.values):
            initial = alive.values[0]
            out["time_to_first_death"] = next(
                (t for t, v in zip(self.times, alive.values) if v < initial), None
            )
            out["min_alive"] = float(min(alive.values))
        energy = self._by_name.get("energy.total")
        if energy is not None and len(energy.values):
            final = energy.values[-1]
            out["half_energy_time"] = (
                self.crossing_time("energy.total", final / 2.0) if final > 0 else None
            )
        delivered = self._by_name.get("data.delivered")
        if delivered is not None and len(delivered.values):
            final = delivered.values[-1]
            out["half_delivery_time"] = (
                self.crossing_time("data.delivered", final / 2.0, interpolate=False)
                if final > 0
                else None
            )
        return out

    def accounting(self, path: Optional[Union[str, Path]] = None) -> dict[str, Any]:
        """The manifest ``timeline`` block: probe list, cadence, size."""
        block: dict[str, Any] = {
            "interval": self.interval,
            "duration": self.duration,
            "samples": self.n_samples,
            "probes": self.names(),
            "bytes": self.nbytes(),
            "derived": self.derived(),
        }
        if path is not None:
            block["path"] = str(path)
        return block

    # ------------------------------------------------------------------
    # (de)serialization — lossless: JSON preserves repr-exact floats
    # ------------------------------------------------------------------
    def as_dict(self) -> dict[str, Any]:
        return {
            "timeline_version": TIMELINE_VERSION,
            "kind": "timeline",
            "interval": self.interval,
            "duration": self.duration,
            "times": list(self.times),
            "probes": [
                {
                    "name": p.name,
                    "kind": p.kind,
                    "description": p.description,
                    "values": list(p.values),
                }
                for p in self.probes
            ],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Timeline":
        version = data.get("timeline_version")
        if version != TIMELINE_VERSION:
            raise ValueError(f"unsupported timeline version: {version!r}")
        tl = cls(interval=data.get("interval"), duration=data.get("duration"))
        tl.times = array("d", data.get("times", ()))
        for spec in data.get("probes", ()):
            probe = TimelineProbe(
                spec["name"],
                fn=None,
                kind=spec.get("kind", "float"),
                description=spec.get("description", ""),
                values=spec.get("values", ()),
            )
            tl.probes.append(probe)
            tl._by_name[probe.name] = probe
        return tl


def save_timeline(timeline: Timeline, path: Union[str, Path]) -> Path:
    """Write a timeline as a standalone JSON artifact."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(timeline.as_dict(), sort_keys=True))
    return path


def load_timeline(path: Union[str, Path]) -> Timeline:
    """Reload a timeline JSON artifact (store entries included)."""
    return Timeline.from_dict(json.loads(Path(path).read_text()))


# ----------------------------------------------------------------------
# the standard probe set
# ----------------------------------------------------------------------
def publish_sim_gauges(registry, sim) -> None:
    """Refresh the simulator health gauges on ``registry``.

    Shared by the trace snapshot loop and the timeline sampler so
    timeline-only runs (no JSONL trace) see the same gauges.
    """
    g = registry.gauge
    g("sim.pending_events").set(sim.pending_count())
    g("sim.events_processed").set(sim.events_processed)
    g("sim.cancelled_skipped").set(sim.cancelled_skipped)


def install_standard_probes(
    timeline: Timeline,
    *,
    sim,
    nodes,
    agents=(),
    collector=None,
    tracer=None,
) -> Timeline:
    """Register the standard probe set against one built world.

    Every probe is a closure over live objects — O(1) or O(nodes) per
    sample, no allocation beyond the array append.  Probe order (and
    hence column order) is fixed, which keeps serialized timelines
    byte-comparable across runs.
    """
    # Imported here, not at module top: repro.net pulls in repro.sim which
    # imports this package's registry — a module-level import would be
    # circular while repro.obs is still initializing.
    from ..net.energy import MESSAGE_CLASSES

    reg = timeline.register

    reg(
        "sim.pending_events",
        sim.pending_count,
        "int",
        "scheduler heap depth (pending future events)",
    )
    reg(
        "sim.events_processed",
        lambda: sim.events_processed,
        "int",
        "cumulative events fired by the kernel",
    )

    n_total = len(nodes)

    def alive() -> int:
        return sum(1 for n in nodes if n.up)

    reg("nodes.alive", alive, "int", "nodes currently up")
    reg("nodes.dead", lambda: n_total - alive(), "int", "nodes currently failed")

    if collector is not None:
        sent = collector.sent
        delivery_times = collector.delivery_times
        reg(
            "data.generated",
            lambda: sum(sent.values()),
            "int",
            "cumulative post-warmup data events generated at sources",
        )
        reg(
            "data.delivered",
            delivery_times.__len__,
            "int",
            "cumulative distinct post-warmup deliveries at sinks",
        )

    if agents:

        def gradient_entries() -> int:
            total = 0
            for agent in agents:
                tables = getattr(agent, "gradients", None)
                if tables:
                    for table in tables.values():
                        total += len(table)
            return total

        reg(
            "gradients.entries",
            gradient_entries,
            "int",
            "total gradient-table entries across all agents",
        )

    if tracer is not None:
        value = tracer.value
        reg(
            "mac.collisions",
            lambda: int(value("radio.collision")),
            "int",
            "cumulative channel collisions",
        )
        registry = tracer.registry

        def backoffs() -> int:
            hist = registry.find("mac.backoff_slots")
            return int(hist.count) if hist is not None else 0

        reg("mac.backoffs", backoffs, "int", "cumulative MAC backoff draws")

    def total_energy() -> float:
        total = 0.0
        for n in nodes:
            m = n.energy
            total += m.params.tx_power_w * m.tx_time + m.params.rx_power_w * m.rx_time
        return total

    reg(
        "energy.total",
        total_energy,
        "float",
        "cumulative communication energy, all nodes (J)",
    )

    def max_node_energy() -> float:
        worst = 0.0
        for n in nodes:
            m = n.energy
            e = m.params.tx_power_w * m.tx_time + m.params.rx_power_w * m.rx_time
            if e > worst:
                worst = e
        return worst

    reg(
        "energy.max_node",
        max_node_energy,
        "float",
        "cumulative communication energy of the hottest node (J)",
    )

    def class_energy(cls: str) -> Callable[[], float]:
        def probe() -> float:
            total = 0.0
            for n in nodes:
                m = n.energy
                tx = m.tx_time_by_class.get(cls)
                if tx:
                    total += m.params.tx_power_w * tx
                rx = m.rx_time_by_class.get(cls)
                if rx:
                    total += m.params.rx_power_w * rx
            return total

        return probe

    for cls in MESSAGE_CLASSES:
        reg(
            f"energy.{cls}",
            class_energy(cls),
            "float",
            f"cumulative communication energy of {cls!r} frames (J)",
        )
    return timeline


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 40) -> str:
    """Render a series as unicode block characters, resampled to ``width``.

    Downsampling takes each bucket's max so short spikes stay visible; a
    constant series renders as the lowest block.
    """
    vals = [float(v) for v in values]
    if not vals:
        return ""
    if len(vals) > width:
        buckets = []
        n = len(vals)
        for i in range(width):
            lo = i * n // width
            hi = max(lo + 1, (i + 1) * n // width)
            buckets.append(max(vals[lo:hi]))
        vals = buckets
    low, high = min(vals), max(vals)
    span = high - low
    if span <= 0:
        return _SPARK_CHARS[0] * len(vals)
    top = len(_SPARK_CHARS) - 1
    return "".join(_SPARK_CHARS[int((v - low) / span * top)] for v in vals)


def _fmt_num(v: Any) -> str:
    if isinstance(v, float):
        return f"{v:.6g}"
    return str(v)


def format_timeline(
    timeline: Timeline,
    probes: Optional[Sequence[str]] = None,
    width: int = 40,
) -> str:
    """ASCII summary table: one sparkline row per probe plus derived stats."""
    header = (
        f"timeline: {timeline.n_samples} samples"
        f" @ {_fmt_num(timeline.interval) if timeline.interval else '?'} s"
        f" over [0, {_fmt_num(timeline.duration) if timeline.duration else '?'}] s"
        f" ({len(timeline.probes)} probes, {timeline.nbytes()} bytes)"
    )
    lines = [header]
    selected = timeline.probes
    if probes:
        wanted = set(probes)
        selected = [p for p in timeline.probes if p.name in wanted]
        missing = wanted - {p.name for p in selected}
        if missing:
            lines.append(f"(unknown probes skipped: {', '.join(sorted(missing))})")
    if not selected:
        lines.append("(no probes)")
        return "\n".join(lines)
    name_w = max(len(p.name) for p in selected)
    val_w = 12
    lines.append(
        f"{'probe':<{name_w}}  {'first':>{val_w}}  {'last':>{val_w}}"
        f"  {'min':>{val_w}}  {'max':>{val_w}}  series"
    )
    for p in selected:
        vals = p.values
        if len(vals):
            first, last = _fmt_num(vals[0]), _fmt_num(vals[-1])
            lo, hi = _fmt_num(min(vals)), _fmt_num(max(vals))
            spark = sparkline(vals, width)
        else:
            first = last = lo = hi = "-"
            spark = ""
        lines.append(
            f"{p.name:<{name_w}}  {first:>{val_w}}  {last:>{val_w}}"
            f"  {lo:>{val_w}}  {hi:>{val_w}}  {spark}"
        )
    derived = {k: v for k, v in timeline.derived().items() if v is not None}
    if derived:
        lines.append(
            "derived: "
            + ", ".join(f"{k}={_fmt_num(v)}" for k, v in sorted(derived.items()))
        )
    return "\n".join(lines)
