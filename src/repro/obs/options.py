"""Per-run observability switches and the trace-category registry.

:class:`ObsOptions` is how callers (the CLI, notebooks, sweeps) opt a
single :func:`~repro.experiments.runner.run_experiment` into profiling,
trace export, auditing, and manifest emission without widening
:class:`~repro.experiments.config.ExperimentConfig` — the config stays a
pure description of *what* to simulate; observability describes how
closely to watch it.

:data:`TRACE_CATEGORIES` is the single source of truth for structured
trace category names.  Call sites used to be stringly-typed; now every
category a kernel layer may emit is declared here with a one-line
description, ``repro stats --list-categories`` prints the table, and
:meth:`~repro.sim.trace.Tracer.enable` rejects names that are neither
declared here nor registered on the tracer (so a typo'd
``--trace-categories phy.txx`` fails loudly instead of silently
recording nothing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

__all__ = [
    "ObsOptions",
    "DEFAULT_MAX_RECORDS",
    "TRACE_CATEGORIES",
    "known_categories",
]

#: default in-memory record bound (see Tracer.max_records)
DEFAULT_MAX_RECORDS = 262_144

#: every trace category the kernel can emit, with what one record means.
#: Grouped by layer; extend this table when adding a ``tracer.record``
#: call site — ``Tracer.enable`` validates against it.
TRACE_CATEGORIES: dict[str, str] = {
    # PHY
    "phy.tx": "one frame put on the air (frame id, src, dst, size, kind, class)",
    "phy.rx": "one clean frame reception at one radio (frame id, node, src)",
    # node lifecycle
    "node.fail": "a node was turned off by the failure driver",
    "node.recover": "a node came back up",
    # data-path lineage (the causal record stream; see repro.obs.lineage)
    "data.gen": "a source sensed one data item (node, interest, src, seq)",
    "data.rx": "an aggregate arrived at a node (keys, accepted subset)",
    "data.tx": "an aggregate left a node along usable gradients (keys, outlets)",
    "data.merge": "an aggregation point flushed >=1 contributions into aggregates",
    "data.deliver": "a sink counted one distinct item (interest, sink, key)",
    # gradient / reinforcement causality
    "gradient.reinforce": "positive reinforcement upgraded a gradient to data strength",
    "gradient.degrade": "negative reinforcement degraded a data gradient",
    # scheme-specific decisions
    "greedy.decision": "a greedy sink's T_p timer chose the lowest-cost neighbor",
}


def known_categories() -> tuple[str, ...]:
    """All declared trace category names, sorted."""
    return tuple(sorted(TRACE_CATEGORIES))


@dataclass
class ObsOptions:
    """Observability configuration for one run.

    ``trace_path`` switches the tracer to pure streaming (records go to
    the JSONL file, not memory); ``detailed_metrics`` unlocks the
    per-node labelled series that are too high-cardinality to keep on by
    default; ``audit`` attaches the online invariant auditor
    (:mod:`repro.obs.audit`) for the whole run.
    """

    #: attach a Profiler to the simulator and report on it
    profile: bool = False
    #: heap-depth sampling stride (events per sample)
    profile_sample_interval: int = 64
    #: stream enabled trace categories to this JSONL file
    trace_path: Optional[Union[str, Path]] = None
    #: categories to enable when tracing ("*" = everything)
    trace_categories: tuple[str, ...] = ("*",)
    #: sim-seconds between gauge snapshots in the trace (None = duration/10)
    snapshot_interval: Optional[float] = None
    #: write the run provenance manifest here
    manifest_path: Optional[Union[str, Path]] = None
    #: enable per-node labelled metric series
    detailed_metrics: bool = False
    #: attach the online invariant auditor (records findings, not silent corruption)
    audit: bool = False
    #: in-memory record cap for the tracer (0 with trace_path set)
    max_records: Optional[int] = field(default=DEFAULT_MAX_RECORDS)
    #: sample a periodic probe timeline (see :mod:`repro.obs.timeline`)
    timeline: bool = False
    #: sim-seconds between timeline samples (None = duration/10)
    timeline_interval: Optional[float] = None
    #: write the sampled timeline as a JSON artifact here (implies ``timeline``)
    timeline_path: Optional[Union[str, Path]] = None

    def effective_max_records(self) -> Optional[int]:
        """Streaming runs keep nothing in memory."""
        return 0 if self.trace_path is not None else self.max_records

    def timeline_enabled(self) -> bool:
        """Whether this run samples a timeline (flag or output path)."""
        return self.timeline or self.timeline_path is not None

    def effective_timeline_interval(self, duration: float) -> float:
        """The sampling cadence for a run of ``duration`` sim-seconds."""
        return self.timeline_interval if self.timeline_interval else duration / 10.0
