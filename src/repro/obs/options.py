"""Per-run observability switches.

:class:`ObsOptions` is how callers (the CLI, notebooks, sweeps) opt a
single :func:`~repro.experiments.runner.run_experiment` into profiling,
trace export, and manifest emission without widening
:class:`~repro.experiments.config.ExperimentConfig` — the config stays a
pure description of *what* to simulate; observability describes how
closely to watch it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

__all__ = ["ObsOptions", "DEFAULT_MAX_RECORDS"]

#: default in-memory record bound (see Tracer.max_records)
DEFAULT_MAX_RECORDS = 262_144


@dataclass
class ObsOptions:
    """Observability configuration for one run.

    ``trace_path`` switches the tracer to pure streaming (records go to
    the JSONL file, not memory); ``detailed_metrics`` unlocks the
    per-node labelled series that are too high-cardinality to keep on by
    default.
    """

    #: attach a Profiler to the simulator and report on it
    profile: bool = False
    #: heap-depth sampling stride (events per sample)
    profile_sample_interval: int = 64
    #: stream enabled trace categories to this JSONL file
    trace_path: Optional[Union[str, Path]] = None
    #: categories to enable when tracing ("*" = everything)
    trace_categories: tuple[str, ...] = ("*",)
    #: sim-seconds between gauge snapshots in the trace (None = duration/10)
    snapshot_interval: Optional[float] = None
    #: write the run provenance manifest here
    manifest_path: Optional[Union[str, Path]] = None
    #: enable per-node labelled metric series
    detailed_metrics: bool = False
    #: in-memory record cap for the tracer (0 with trace_path set)
    max_records: Optional[int] = field(default=DEFAULT_MAX_RECORDS)

    def effective_max_records(self) -> Optional[int]:
        """Streaming runs keep nothing in memory."""
        return 0 if self.trace_path is not None else self.max_records
