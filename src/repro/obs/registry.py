"""Typed metrics registry: counters, gauges, fixed-bucket histograms.

The registry is the single sink for quantitative instrumentation.  Call
sites obtain an *instrument handle* once (``registry.counter("mac.tx")``)
and then update it with plain attribute arithmetic — the hot path is one
dict lookup at registration time and one add per update, cheap enough to
stay always-on in the simulation kernel.

Series model (Prometheus-flavored, but in-process):

* a **name** identifies a family of series of one *kind* (counter, gauge,
  or histogram); registering the same name as a different kind is an
  error;
* **labels** (``registry.counter("mac.tx", node="17")``) select one
  series within the family.  Label cardinality is bounded per name
  (:class:`CardinalityError`) so a typo'd high-cardinality label cannot
  silently eat memory;
* histograms use **fixed bucket edges** chosen at first registration;
  the edge list is part of the family contract and a mismatch is an
  error.

``snapshot()`` renders everything as JSON-friendly dicts (used by trace
gauge snapshots and run manifests); ``counters_flat()`` renders counter
series under their flat ``name{k=v}`` keys, which is the representation
:class:`~repro.experiments.metrics.RunMetrics` stores.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import Counter as _FlatCounter
from typing import Any, Iterable, Optional

__all__ = [
    "MetricsRegistry",
    "CounterMetric",
    "GaugeMetric",
    "HistogramMetric",
    "CardinalityError",
    "DEFAULT_BUCKETS",
    "quantile_from_counts",
    "summarize_histogram",
]

#: default histogram edges: latency-ish spread, seconds-oriented
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class CardinalityError(RuntimeError):
    """Too many label-sets registered under one metric name."""


def _label_key(labels: dict[str, Any]) -> tuple[tuple[str, Any], ...]:
    return tuple(sorted(labels.items()))


def flat_name(name: str, labels: tuple[tuple[str, Any], ...]) -> str:
    """Render ``name{k=v,...}`` (bare ``name`` when unlabelled)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class CounterMetric:
    """Monotone counter series."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: tuple[tuple[str, Any], ...]) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0

    def inc(self, n: float = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc by {n})")
        self.value += n

    def as_sample(self) -> Any:
        return self.value


class GaugeMetric:
    """Point-in-time value series (may go up or down)."""

    __slots__ = ("name", "labels", "value")
    kind = "gauge"

    def __init__(self, name: str, labels: tuple[tuple[str, Any], ...]) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0

    def set(self, v: float) -> None:
        self.value = v

    def inc(self, n: float = 1) -> None:
        self.value += n

    def dec(self, n: float = 1) -> None:
        self.value -= n

    def as_sample(self) -> Any:
        return self.value


class HistogramMetric:
    """Fixed-bucket histogram series.

    ``buckets`` are ascending upper edges with *less-or-equal* semantics;
    one implicit overflow bucket catches everything above the last edge.
    """

    __slots__ = ("name", "labels", "buckets", "counts", "sum", "count")
    kind = "histogram"

    def __init__(
        self, name: str, labels: tuple[tuple[str, Any], ...], buckets: tuple[float, ...]
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"histogram {name!r} needs ascending, non-empty bucket edges")
        self.name = name
        self.labels = labels
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(buckets) + 1)
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, v: float) -> None:
        self.counts[bisect_left(self.buckets, v)] += 1
        self.sum += v
        self.count += 1

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the q-quantile from the bucket counts (None if empty)."""
        return quantile_from_counts(self.buckets, self.counts, q)

    def as_sample(self) -> Any:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }


def quantile_from_counts(
    buckets: Iterable[float], counts: Iterable[int], q: float
) -> Optional[float]:
    """Prometheus-style quantile estimate from fixed-bucket counts.

    Linear interpolation inside the bucket holding the q-th observation:
    the first bucket interpolates from 0, and the overflow bucket has no
    upper edge so it clamps to the last finite edge (a deliberate
    underestimate — the histogram cannot say more).  Returns None for an
    empty histogram.  ``q`` is a fraction in [0, 1].
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    edges = list(buckets)
    tallies = list(counts)
    total = sum(tallies)
    if total == 0:
        return None
    rank = q * total
    cumulative = 0.0
    for i, n in enumerate(tallies):
        if n == 0:
            continue
        if cumulative + n >= rank:
            if i >= len(edges):  # overflow bucket: clamp to last edge
                return edges[-1]
            lo = edges[i - 1] if i > 0 else 0.0
            hi = edges[i]
            return lo + (hi - lo) * max(0.0, rank - cumulative) / n
        cumulative += n
    return edges[-1]


def summarize_histogram(
    sample: dict[str, Any], qs: Iterable[float] = (0.5, 0.95, 0.99)
) -> dict[str, Any]:
    """Percentile summary of a histogram's ``as_sample()`` dict.

    Works on snapshot payloads (e.g. what ``/metrics`` serves), so
    clients can derive p50/p95/p99 without the live instrument.
    """
    count = sample.get("count", 0)
    out: dict[str, Any] = {
        "count": count,
        "sum": sample.get("sum", 0.0),
        "mean": (sample.get("sum", 0.0) / count) if count else 0.0,
    }
    for q in qs:
        out[f"p{round(q * 100):d}"] = quantile_from_counts(
            sample.get("buckets", ()), sample.get("counts", ()), q
        )
    return out


class MetricsRegistry:
    """Instrument factory + store for one simulation run.

    ``detailed`` gates optional high-cardinality series (per-node labels);
    call sites check it once at wiring time so disabled detail costs
    nothing per event.
    """

    def __init__(self, detailed: bool = False, max_series_per_name: int = 1024) -> None:
        self.detailed = detailed
        self.max_series_per_name = max_series_per_name
        self._series: dict[str, dict[tuple, Any]] = {}
        self._kinds: dict[str, str] = {}
        self._hist_buckets: dict[str, tuple[float, ...]] = {}

    # ------------------------------------------------------------------
    # registration (get-or-create)
    # ------------------------------------------------------------------
    def _get_or_create(self, kind: str, name: str, labels: dict[str, Any], factory):
        known = self._kinds.get(name)
        if known is None:
            self._kinds[name] = kind
            self._series[name] = {}
        elif known != kind:
            raise ValueError(f"metric {name!r} already registered as a {known}, not a {kind}")
        family = self._series[name]
        key = _label_key(labels)
        inst = family.get(key)
        if inst is None:
            if len(family) >= self.max_series_per_name:
                raise CardinalityError(
                    f"metric {name!r} exceeds {self.max_series_per_name} label-sets"
                )
            inst = family[key] = factory(key)
        return inst

    def counter(self, name: str, **labels: Any) -> CounterMetric:
        return self._get_or_create(
            "counter", name, labels, lambda key: CounterMetric(name, key)
        )

    def gauge(self, name: str, **labels: Any) -> GaugeMetric:
        return self._get_or_create("gauge", name, labels, lambda key: GaugeMetric(name, key))

    def histogram(
        self, name: str, buckets: Optional[Iterable[float]] = None, **labels: Any
    ) -> HistogramMetric:
        edges = tuple(buckets) if buckets is not None else None
        registered = self._hist_buckets.get(name)
        if registered is None:
            edges = edges or DEFAULT_BUCKETS
            self._hist_buckets[name] = edges
        elif edges is not None and edges != registered:
            raise ValueError(
                f"histogram {name!r} already registered with buckets {registered}"
            )
        else:
            edges = registered
        return self._get_or_create(
            "histogram", name, labels, lambda key: HistogramMetric(name, key, edges)
        )

    # ------------------------------------------------------------------
    # readout
    # ------------------------------------------------------------------
    def kind_of(self, name: str) -> Optional[str]:
        return self._kinds.get(name)

    def find(self, name: str, **labels: Any):
        """Existing instrument, or None (never creates)."""
        family = self._series.get(name)
        if family is None:
            return None
        return family.get(_label_key(labels))

    def value(self, name: str, **labels: Any) -> float:
        """Counter/gauge value of one series (0 if absent)."""
        inst = self.find(name, **labels)
        if inst is None:
            return 0
        if isinstance(inst, HistogramMetric):
            raise TypeError(f"{name!r} is a histogram; read .sum/.count/.counts instead")
        return inst.value

    def series(self, name: str) -> list:
        """All instruments of one family (empty list if unregistered)."""
        return list(self._series.get(name, {}).values())

    def counters_flat(self) -> _FlatCounter:
        """All counter series as a flat ``name{labels}`` -> value Counter."""
        out: _FlatCounter = _FlatCounter()
        for name, kind in self._kinds.items():
            if kind != "counter":
                continue
            for key, inst in self._series[name].items():
                out[flat_name(name, key)] = inst.value
        return out

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """JSON-friendly dump of every series, grouped by kind."""
        out: dict[str, dict[str, Any]] = {"counters": {}, "gauges": {}, "histograms": {}}
        bucket = {"counter": "counters", "gauge": "gauges", "histogram": "histograms"}
        for name, kind in self._kinds.items():
            dest = out[bucket[kind]]
            for key, inst in self._series[name].items():
                dest[flat_name(name, key)] = inst.as_sample()
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        n = sum(len(f) for f in self._series.values())
        return f"<MetricsRegistry families={len(self._kinds)} series={n}>"
