"""Streaming JSONL trace export.

A :class:`TraceWriter` registers as a :class:`~repro.sim.trace.Tracer`
listener and serializes every recorded :class:`TraceRecord` to one JSON
line as it happens — nothing is buffered in memory, so multi-hour runs
with ``enable("*")`` stay flat.  The file interleaves three line types:

* ``{"type": "record", "t": ..., "cat": ..., "fields": {...}}``
* ``{"type": "gauges", "t": ..., "gauges": {...}}`` — periodic registry
  gauge snapshots (scheduled by the runner);
* ``{"type": "meta", ...}`` — one header line with the export version.

Round-trip contract: a record whose field values are JSON-representable
scalars (str/int/float/bool/None) reads back **exactly** via
:func:`read_trace`; richer values degrade to their JSON image (tuples
become lists, unknown objects become ``str``).  Property tests lean on
the exact case.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator, Optional, Union

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.trace import TraceRecord, Tracer
    from .registry import MetricsRegistry

__all__ = ["TraceWriter", "read_trace", "iter_trace_lines", "trace_summary", "TRACE_VERSION"]

TRACE_VERSION = 1


class TraceWriter:
    """JSONL sink for trace records and gauge snapshots.

    Use as a context manager, or call :meth:`close` explicitly; each line
    is written as it is produced.
    """

    def __init__(self, path: Union[str, Path], registry: Optional["MetricsRegistry"] = None):
        self.path = Path(path)
        self.registry = registry
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("w")
        self.records_written = 0
        self.snapshots_written = 0
        self._write({"type": "meta", "trace_version": TRACE_VERSION})

    def _write(self, obj: dict[str, Any]) -> None:
        self._fh.write(json.dumps(obj, default=str))
        self._fh.write("\n")

    # ------------------------------------------------------------------
    # sinks
    # ------------------------------------------------------------------
    def __call__(self, rec: "TraceRecord") -> None:
        """Tracer-listener entry point: stream one record."""
        self._write(
            {"type": "record", "t": rec.time, "cat": rec.category, "fields": dict(rec.fields)}
        )
        self.records_written += 1

    def write_snapshot(self, now: float) -> None:
        """Append a gauge snapshot from the attached registry."""
        if self.registry is None:
            return
        self._write({"type": "gauges", "t": now, "gauges": self.registry.snapshot()["gauges"]})
        self.snapshots_written += 1

    def attach(self, tracer: "Tracer", *categories: str) -> "TraceWriter":
        """Enable ``categories`` (default everything) and start streaming."""
        tracer.enable(*(categories or ("*",)))
        tracer.add_listener(self)
        if self.registry is None:
            self.registry = tracer.registry
        return self

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def iter_trace_lines(path: Union[str, Path]) -> Iterator[dict[str, Any]]:
    """Yield every parsed line of a JSONL trace file."""
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield json.loads(line)


def read_trace(
    path: Union[str, Path], category: Optional[str] = None
) -> Iterator["TraceRecord"]:
    """Yield the trace's records as :class:`TraceRecord`, oldest first."""
    # Imported here, not at module top: sim.trace imports the registry from
    # this package, so a top-level import would be circular.
    from ..sim.trace import TraceRecord

    for obj in iter_trace_lines(path):
        if obj.get("type") != "record":
            continue
        if category is not None and obj["cat"] != category:
            continue
        yield TraceRecord(obj["t"], obj["cat"], tuple(obj["fields"].items()))


def trace_summary(path: Union[str, Path]) -> dict[str, Any]:
    """Aggregate view of a trace file (the ``repro stats`` backend)."""
    categories: dict[str, int] = {}
    t_min: Optional[float] = None
    t_max: Optional[float] = None
    records = 0
    snapshots = 0
    version: Optional[int] = None
    for obj in iter_trace_lines(path):
        kind = obj.get("type")
        if kind == "meta":
            version = obj.get("trace_version")
        elif kind == "record":
            records += 1
            categories[obj["cat"]] = categories.get(obj["cat"], 0) + 1
            t = obj["t"]
            t_min = t if t_min is None else min(t_min, t)
            t_max = t if t_max is None else max(t_max, t)
        elif kind == "gauges":
            snapshots += 1
    return {
        "path": str(path),
        "trace_version": version,
        "records": records,
        "gauge_snapshots": snapshots,
        "time_span": (t_min, t_max),
        "categories": dict(sorted(categories.items(), key=lambda kv: -kv[1])),
    }
