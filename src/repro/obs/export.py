"""Streaming JSONL trace export.

A :class:`TraceWriter` registers as a :class:`~repro.sim.trace.Tracer`
listener and serializes every recorded :class:`TraceRecord` to one JSON
line as it happens — nothing is buffered in memory, so multi-hour runs
with ``enable("*")`` stay flat.  The file interleaves three line types:

* ``{"type": "record", "t": ..., "cat": ..., "fields": {...}}``
* ``{"type": "gauges", "t": ..., "gauges": {...}}`` — periodic registry
  gauge snapshots (scheduled by the runner);
* ``{"type": "meta", ...}`` — one header line with the export version.

Round-trip contract: a record whose field values are JSON-representable
scalars (str/int/float/bool/None) reads back **exactly** via
:func:`read_trace`; richer values degrade to their JSON image (tuples
become lists, unknown objects become ``str``).  Property tests lean on
the exact case.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator, Optional, Union

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.trace import TraceRecord, Tracer
    from .registry import MetricsRegistry

__all__ = [
    "TraceWriter",
    "read_trace",
    "iter_trace_lines",
    "trace_summary",
    "TRACE_VERSION",
    "timeline_to_chrome_trace",
    "chrome_trace_to_timeline",
    "timeline_from_trace_jsonl",
    "spans_to_chrome_trace",
]

TRACE_VERSION = 1


class TraceWriter:
    """JSONL sink for trace records and gauge snapshots.

    Use as a context manager, or call :meth:`close` explicitly; each line
    is written as it is produced.
    """

    def __init__(self, path: Union[str, Path], registry: Optional["MetricsRegistry"] = None):
        self.path = Path(path)
        self.registry = registry
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("w")
        self.records_written = 0
        self.snapshots_written = 0
        self._write({"type": "meta", "trace_version": TRACE_VERSION})

    def _write(self, obj: dict[str, Any]) -> None:
        self._fh.write(json.dumps(obj, default=str))
        self._fh.write("\n")

    # ------------------------------------------------------------------
    # sinks
    # ------------------------------------------------------------------
    def __call__(self, rec: "TraceRecord") -> None:
        """Tracer-listener entry point: stream one record."""
        self._write(
            {"type": "record", "t": rec.time, "cat": rec.category, "fields": dict(rec.fields)}
        )
        self.records_written += 1

    def write_snapshot(self, now: float) -> None:
        """Append a gauge snapshot from the attached registry."""
        if self.registry is None:
            return
        self._write({"type": "gauges", "t": now, "gauges": self.registry.snapshot()["gauges"]})
        self.snapshots_written += 1

    def attach(self, tracer: "Tracer", *categories: str) -> "TraceWriter":
        """Enable ``categories`` (default everything) and start streaming."""
        tracer.enable(*(categories or ("*",)))
        tracer.add_listener(self)
        if self.registry is None:
            self.registry = tracer.registry
        return self

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def iter_trace_lines(path: Union[str, Path]) -> Iterator[dict[str, Any]]:
    """Yield every parsed line of a JSONL trace file."""
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield json.loads(line)


def read_trace(
    path: Union[str, Path], category: Optional[str] = None
) -> Iterator["TraceRecord"]:
    """Yield the trace's records as :class:`TraceRecord`, oldest first."""
    # Imported here, not at module top: sim.trace imports the registry from
    # this package, so a top-level import would be circular.
    from ..sim.trace import TraceRecord

    for obj in iter_trace_lines(path):
        if obj.get("type") != "record":
            continue
        if category is not None and obj["cat"] != category:
            continue
        yield TraceRecord(obj["t"], obj["cat"], tuple(obj["fields"].items()))


def timeline_to_chrome_trace(timeline, path: Union[str, Path]) -> Path:
    """Export a timeline as Chrome-trace counter tracks (Perfetto-loadable).

    Each probe becomes one ``"ph": "C"`` counter series (timestamps in
    microseconds, as the format requires).  The exact sample times and
    probe metadata ride along under ``otherData.timeline`` so
    :func:`chrome_trace_to_timeline` round-trips losslessly — the counter
    events themselves are for the viewers.
    """
    from .timeline import TIMELINE_VERSION  # local: avoids import cycles at package init

    data = timeline.as_dict() if hasattr(timeline, "as_dict") else dict(timeline)
    times = data.get("times", [])
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "args": {"name": "repro-wsn run"},
        }
    ]
    for probe in data.get("probes", ()):
        name = probe["name"]
        for t, v in zip(times, probe["values"]):
            events.append(
                {
                    "ph": "C",
                    "name": name,
                    "pid": 1,
                    "tid": 0,
                    "ts": t * 1e6,
                    "args": {"value": v},
                }
            )
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "timeline": {
                "timeline_version": data.get("timeline_version", TIMELINE_VERSION),
                "interval": data.get("interval"),
                "duration": data.get("duration"),
                "times": list(times),
                "probes": [
                    {
                        "name": p["name"],
                        "kind": p.get("kind", "float"),
                        "description": p.get("description", ""),
                    }
                    for p in data.get("probes", ())
                ],
            }
        },
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, sort_keys=True))
    return path


def chrome_trace_to_timeline(path: Union[str, Path]):
    """Rebuild a :class:`~repro.obs.timeline.Timeline` from a Chrome trace.

    Prefers the lossless ``otherData.timeline`` block our exporter writes;
    counter events supply the values either way, so traces trimmed by
    other tools still load (with float-microsecond time precision).
    """
    from .timeline import TIMELINE_VERSION, Timeline

    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict) or "traceEvents" not in data:
        raise ValueError(f"{path}: not a Chrome trace (no traceEvents)")
    meta = (data.get("otherData") or {}).get("timeline") or {}

    series: dict[str, list] = {}
    times_seen: list[float] = []
    for ev in data["traceEvents"]:
        if ev.get("ph") != "C":
            continue
        name = ev.get("name")
        values = series.setdefault(name, [])
        values.append(ev.get("args", {}).get("value"))
        if len(times_seen) < len(values):
            times_seen.append(ev.get("ts", 0.0) / 1e6)

    kinds = {p["name"]: p.get("kind", "float") for p in meta.get("probes", ())}
    descriptions = {p["name"]: p.get("description", "") for p in meta.get("probes", ())}
    ordered = [p["name"] for p in meta.get("probes", ())] or list(series)
    return Timeline.from_dict(
        {
            "timeline_version": meta.get("timeline_version", TIMELINE_VERSION),
            "interval": meta.get("interval"),
            "duration": meta.get("duration"),
            "times": meta.get("times") or times_seen,
            "probes": [
                {
                    "name": name,
                    "kind": kinds.get(name, "float"),
                    "description": descriptions.get(name, ""),
                    "values": series.get(name, []),
                }
                for name in ordered
            ],
        }
    )


def spans_to_chrome_trace(
    spans, path: Union[str, Path], timeline=None
) -> Path:
    """Export span payloads as Chrome complete events (Perfetto-loadable).

    Each span becomes one ``"ph": "X"`` event; timestamps are rebased to
    the earliest span start so the view opens at t=0.  Spans of one trace
    share a ``tid``, so every request renders as its own track and the
    parent/child nesting is visible as stacked slices.  Ids, status, and
    attributes ride in ``args``; the raw span payloads are preserved
    under ``otherData.spans`` so nothing is lost to the viewer format.

    Pass ``timeline`` (a :class:`~repro.obs.timeline.Timeline` or its
    dict form) to merge a run's counter tracks into the same file — one
    Perfetto view holding service spans *and* in-sim probe series.
    """
    spans = [s.as_dict() if hasattr(s, "as_dict") else dict(s) for s in spans]
    t0 = min((s["start_s"] for s in spans), default=0.0)
    events: list[dict[str, Any]] = [
        {"name": "process_name", "ph": "M", "pid": 1, "args": {"name": "repro service"}}
    ]
    tids: dict[str, int] = {}
    for span in sorted(spans, key=lambda s: (s["trace_id"], s["start_s"])):
        tid = tids.setdefault(span["trace_id"], len(tids) + 1)
        if tid == len(tids):  # first span of this trace: name its track
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": f"trace {span['trace_id']}"},
                }
            )
        events.append(
            {
                "ph": "X",
                "name": span["name"],
                "cat": "span",
                "pid": 1,
                "tid": tid,
                "ts": (span["start_s"] - t0) * 1e6,
                "dur": max(span.get("duration_s", 0.0), 0.0) * 1e6,
                "args": {
                    "trace_id": span["trace_id"],
                    "span_id": span["span_id"],
                    "parent_id": span.get("parent_id"),
                    "status": span.get("status", "ok"),
                    **span.get("attributes", {}),
                },
            }
        )
    payload: dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"spans": spans, "span_epoch_s": t0},
    }
    if timeline is not None:
        data = timeline.as_dict() if hasattr(timeline, "as_dict") else dict(timeline)
        for probe in data.get("probes", ()):
            for t, v in zip(data.get("times", []), probe["values"]):
                payload["traceEvents"].append(
                    {
                        "ph": "C",
                        "name": probe["name"],
                        "pid": 1,
                        "tid": 0,
                        "ts": t * 1e6,
                        "args": {"value": v},
                    }
                )
        payload["otherData"]["timeline"] = data
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, sort_keys=True, default=str))
    return path


def timeline_from_trace_jsonl(path: Union[str, Path]):
    """Build a timeline from the periodic gauge snapshots of a JSONL trace.

    Every ``type: "gauges"`` line becomes one sample; the probe set is the
    union of gauge names (a gauge missing from an early snapshot reads as
    0.0 there).  All series are float — the trace does not record kinds.
    """
    from .timeline import TIMELINE_VERSION, Timeline

    times: list[float] = []
    rows: list[dict[str, Any]] = []
    names: list[str] = []
    seen: set[str] = set()
    for obj in iter_trace_lines(path):
        if obj.get("type") != "gauges":
            continue
        gauges = obj.get("gauges", {})
        times.append(obj.get("t", 0.0))
        rows.append(gauges)
        for name in gauges:
            if name not in seen:
                seen.add(name)
                names.append(name)
    if not times:
        raise ValueError(f"{path}: no gauge snapshots (run with --trace-out and snapshots)")
    interval = times[1] - times[0] if len(times) > 1 else None
    return Timeline.from_dict(
        {
            "timeline_version": TIMELINE_VERSION,
            "interval": interval,
            "duration": times[-1],
            "times": times,
            "probes": [
                {
                    "name": name,
                    "kind": "float",
                    "description": "registry gauge (from trace snapshots)",
                    "values": [float(row.get(name, 0.0)) for row in rows],
                }
                for name in names
            ],
        }
    )


def trace_summary(path: Union[str, Path]) -> dict[str, Any]:
    """Aggregate view of a trace file (the ``repro stats`` backend)."""
    categories: dict[str, int] = {}
    t_min: Optional[float] = None
    t_max: Optional[float] = None
    records = 0
    snapshots = 0
    version: Optional[int] = None
    for obj in iter_trace_lines(path):
        kind = obj.get("type")
        if kind == "meta":
            version = obj.get("trace_version")
        elif kind == "record":
            records += 1
            categories[obj["cat"]] = categories.get(obj["cat"], 0) + 1
            t = obj["t"]
            t_min = t if t_min is None else min(t_min, t)
            t_max = t if t_max is None else max(t_max, t)
        elif kind == "gauges":
            snapshots += 1
    return {
        "path": str(path),
        "trace_version": version,
        "records": records,
        "gauge_snapshots": snapshots,
        "time_span": (t_min, t_max),
        "categories": dict(sorted(categories.items(), key=lambda kv: -kv[1])),
    }
