"""Structured diffs between persisted run artifacts.

``repro diff a b`` compares any two of the formats the toolchain writes —
run manifests, content-addressed store entries, figure manifests, and
saved figure results — without caring which combination it got: run-like
artifacts all embed a ``RunMetrics`` asdict, figure-like artifacts all
embed a ``CellSummary`` list, so the diff works on the shared views.

The output is a plain JSON-ready dict (machine mode) with a table
renderer on top (human mode).  ``equal`` is strict: any metric, counter,
per-class energy bucket, or cell delta makes it False; environment and
timestamps are deliberately ignored (two runs of the same config on
different hosts should diff clean).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Optional, Union

__all__ = [
    "load_artifact",
    "diff_run_metrics",
    "diff_figure_cells",
    "diff_timelines",
    "diff_artifacts",
    "format_diff",
]

#: RunMetrics scalars compared between run-like artifacts
_METRIC_FIELDS = (
    "avg_dissipated_energy",
    "avg_delay",
    "delivery_ratio",
    "total_energy_j",
    "distinct_delivered",
    "events_sent",
    "mean_degree",
    "time_to_first_death",
    "time_to_half_delivery",
)

#: identity fields surfaced separately (a diff across these is a
#: different experiment, not a regression)
_IDENTITY_FIELDS = ("scheme", "n_nodes", "seed")

#: CellSummary scalars compared between figure-like artifacts
_CELL_FIELDS = ("energy", "energy_stdev", "delay", "ratio", "n_runs", "distinct_delivered")


def load_artifact(path: Union[str, Path]) -> tuple[str, dict[str, Any]]:
    """Load a JSON artifact and classify it.

    Returns ``(kind, payload)`` with kind one of ``"run"`` (run manifest),
    ``"figure"`` (figure manifest), ``"store-entry"``,
    ``"figure-result"``, or ``"timeline"`` (a saved probe timeline).
    JSONL traces and unknown shapes raise ``ValueError`` — traces are for
    ``repro audit``, not diff.
    """
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(
            f"{path}: not a JSON artifact (JSONL traces cannot be diffed — "
            "use 'repro audit' on traces)"
        ) from exc
    if not isinstance(data, dict):
        raise ValueError(f"{path}: not a JSON object")
    if "timeline_version" in data:
        return "timeline", data
    if "manifest_version" in data:
        kind = data.get("kind")
        if kind in ("run", "figure"):
            return kind, data
        raise ValueError(f"{path}: unknown manifest kind {kind!r}")
    if "store_version" in data and "metrics" in data:
        return "store-entry", data
    if "format_version" in data and "cells" in data:
        return "figure-result", data
    raise ValueError(f"{path}: unrecognized artifact shape")


def _run_view(kind: str, data: dict[str, Any]) -> dict[str, Any]:
    """The RunMetrics asdict embedded in a run-like artifact."""
    return data.get("metrics", {})


def _cells_view(kind: str, data: dict[str, Any]) -> list[dict[str, Any]]:
    """The CellSummary dicts embedded in a figure-like artifact."""
    return list(data.get("cells", []))


def _num_delta(a: Any, b: Any) -> dict[str, Any]:
    entry: dict[str, Any] = {"a": a, "b": b}
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        entry["delta"] = b - a
        if a:
            entry["rel"] = (b - a) / a
    return entry


def diff_run_metrics(
    metrics_a: dict[str, Any], metrics_b: dict[str, Any]
) -> dict[str, Any]:
    """Diff two RunMetrics asdicts (identity, scalars, classes, counters)."""
    identity = {
        name: {"a": metrics_a.get(name), "b": metrics_b.get(name)}
        for name in _IDENTITY_FIELDS
        if metrics_a.get(name) != metrics_b.get(name)
    }
    metrics = {
        name: _num_delta(metrics_a.get(name), metrics_b.get(name))
        for name in _METRIC_FIELDS
        if metrics_a.get(name) != metrics_b.get(name)
    }

    cls_a = metrics_a.get("energy_by_class") or {}
    cls_b = metrics_b.get("energy_by_class") or {}
    energy_by_class = {
        cls: _num_delta(cls_a.get(cls, 0.0), cls_b.get(cls, 0.0))
        for cls in sorted(set(cls_a) | set(cls_b))
        if cls_a.get(cls, 0.0) != cls_b.get(cls, 0.0)
    }

    cnt_a = metrics_a.get("counters") or {}
    cnt_b = metrics_b.get("counters") or {}
    counters = {
        "added": {k: cnt_b[k] for k in sorted(set(cnt_b) - set(cnt_a))},
        "removed": {k: cnt_a[k] for k in sorted(set(cnt_a) - set(cnt_b))},
        "changed": {
            k: _num_delta(cnt_a[k], cnt_b[k])
            for k in sorted(set(cnt_a) & set(cnt_b))
            if cnt_a[k] != cnt_b[k]
        },
    }
    equal = not (
        identity
        or metrics
        or energy_by_class
        or counters["added"]
        or counters["removed"]
        or counters["changed"]
    )
    return {
        "kind": "run",
        "equal": equal,
        "identity": identity,
        "metrics": metrics,
        "energy_by_class": energy_by_class,
        "counters": counters,
    }


def diff_figure_cells(
    cells_a: list[dict[str, Any]], cells_b: list[dict[str, Any]]
) -> dict[str, Any]:
    """Diff two figure cell lists, matched on ``(scheme, x)``."""
    index_a = {(c["scheme"], c["x"]): c for c in cells_a}
    index_b = {(c["scheme"], c["x"]): c for c in cells_b}
    only_a = sorted(f"{s}@{x:g}" for (s, x) in set(index_a) - set(index_b))
    only_b = sorted(f"{s}@{x:g}" for (s, x) in set(index_b) - set(index_a))
    cells: dict[str, Any] = {}
    for key in sorted(set(index_a) & set(index_b)):
        ca, cb = index_a[key], index_b[key]
        changed = {
            name: _num_delta(ca.get(name), cb.get(name))
            for name in _CELL_FIELDS
            if ca.get(name) != cb.get(name)
        }
        if changed:
            cells[f"{key[0]}@{key[1]:g}"] = changed
    return {
        "kind": "figure",
        "equal": not (only_a or only_b or cells),
        "only_a": only_a,
        "only_b": only_b,
        "cells": cells,
    }


def diff_timelines(
    timeline_a: dict[str, Any], timeline_b: dict[str, Any]
) -> dict[str, Any]:
    """Diff two serialized timelines (cadence, probe sets, sampled series).

    ``equal`` means bit-identical: same sample times and, per probe, the
    exact same value column.  Per-probe deltas report how many samples
    differ, the largest absolute delta, and the final-value change —
    enough to see *when* two runs diverged without dumping every row.
    """
    times_a = list(timeline_a.get("times", []))
    times_b = list(timeline_b.get("times", []))
    probes_a = {p["name"]: p for p in timeline_a.get("probes", ())}
    probes_b = {p["name"]: p for p in timeline_b.get("probes", ())}
    shape: dict[str, Any] = {}
    for name, va, vb in (
        ("interval", timeline_a.get("interval"), timeline_b.get("interval")),
        ("duration", timeline_a.get("duration"), timeline_b.get("duration")),
        ("samples", len(times_a), len(times_b)),
    ):
        if va != vb:
            shape[name] = _num_delta(va, vb)
    if times_a != times_b and "samples" not in shape:
        shape["times"] = {"a": "differ", "b": "differ"}
    only_a = sorted(set(probes_a) - set(probes_b))
    only_b = sorted(set(probes_b) - set(probes_a))
    probes: dict[str, Any] = {}
    for name in sorted(set(probes_a) & set(probes_b)):
        va = list(probes_a[name].get("values", []))
        vb = list(probes_b[name].get("values", []))
        if va == vb:
            continue
        paired = list(zip(va, vb))
        n_diffs = sum(1 for a, b in paired if a != b) + abs(len(va) - len(vb))
        entry = {
            "n_diffs": n_diffs,
            "final": _num_delta(va[-1] if va else None, vb[-1] if vb else None),
        }
        numeric = [abs(b - a) for a, b in paired if a != b]
        if numeric:
            entry["max_abs_delta"] = max(numeric)
            first = next(i for i, (a, b) in enumerate(paired) if a != b)
            if first < min(len(times_a), len(times_b)):
                entry["first_diff_t"] = times_a[first]
        probes[name] = entry
    return {
        "kind": "timeline",
        "equal": not (shape or only_a or only_b or probes),
        "shape": shape,
        "only_a": only_a,
        "only_b": only_b,
        "probes": probes,
    }


def diff_artifacts(
    path_a: Union[str, Path], path_b: Union[str, Path]
) -> dict[str, Any]:
    """Load, classify, and diff two artifacts of compatible families."""
    kind_a, data_a = load_artifact(path_a)
    kind_b, data_b = load_artifact(path_b)
    run_like = {"run", "store-entry"}
    figure_like = {"figure", "figure-result"}
    if kind_a == "timeline" and kind_b == "timeline":
        out = diff_timelines(data_a, data_b)
    elif kind_a in run_like and kind_b in run_like:
        out = diff_run_metrics(_run_view(kind_a, data_a), _run_view(kind_b, data_b))
    elif kind_a in figure_like and kind_b in figure_like:
        out = diff_figure_cells(_cells_view(kind_a, data_a), _cells_view(kind_b, data_b))
    else:
        raise ValueError(
            f"cannot diff {kind_a} against {kind_b}: artifact families do not match "
            "(per-run, per-figure, and timeline artifacts only diff within their family)"
        )
    out["a"] = {"path": str(path_a), "kind": kind_a}
    out["b"] = {"path": str(path_b), "kind": kind_b}
    return out


def _fmt_value(v: Any) -> str:
    if isinstance(v, float):
        return f"{v:.6g}"
    return str(v)


def _fmt_delta(entry: dict[str, Any]) -> str:
    out = f"{_fmt_value(entry.get('a'))} -> {_fmt_value(entry.get('b'))}"
    if "rel" in entry:
        out += f"  ({entry['rel']:+.2%})"
    elif "delta" in entry:
        out += f"  ({entry['delta']:+g})"
    return out


def format_diff(diff: dict[str, Any], max_counters: int = 20) -> str:
    """Human-readable rendering of a :func:`diff_artifacts` result."""
    a, b = diff.get("a", {}), diff.get("b", {})
    lines = [f"diff {a.get('path')} ({a.get('kind')})  vs  {b.get('path')} ({b.get('kind')})"]
    if diff["equal"]:
        lines.append("identical (ignoring environment/timestamps)")
        return "\n".join(lines)
    if diff["kind"] == "run":
        if diff["identity"]:
            lines.append("identity (different experiments!):")
            for name, entry in diff["identity"].items():
                lines.append(f"  {name:<24} {_fmt_value(entry['a'])} -> {_fmt_value(entry['b'])}")
        if diff["metrics"]:
            lines.append("metrics:")
            for name, entry in diff["metrics"].items():
                lines.append(f"  {name:<24} {_fmt_delta(entry)}")
        if diff["energy_by_class"]:
            lines.append("energy by class (J):")
            for cls, entry in diff["energy_by_class"].items():
                lines.append(f"  {cls:<24} {_fmt_delta(entry)}")
        counters = diff["counters"]
        shown = 0
        if counters["changed"]:
            lines.append("counters changed:")
            for name, entry in counters["changed"].items():
                if shown >= max_counters:
                    lines.append(f"  ... {len(counters['changed']) - shown} more")
                    break
                lines.append(f"  {name:<40} {_fmt_delta(entry)}")
                shown += 1
        for label in ("added", "removed"):
            if counters[label]:
                names = ", ".join(list(counters[label])[:8])
                more = len(counters[label]) - 8
                lines.append(
                    f"counters only in {'b' if label == 'added' else 'a'} "
                    f"({len(counters[label])}): {names}{' ...' if more > 0 else ''}"
                )
    elif diff["kind"] == "timeline":
        if diff["shape"]:
            lines.append("shape:")
            for name, entry in diff["shape"].items():
                lines.append(f"  {name:<12} {_fmt_value(entry.get('a'))} -> {_fmt_value(entry.get('b'))}")
        for label, key in (("only in a", "only_a"), ("only in b", "only_b")):
            if diff[key]:
                lines.append(f"probes {label}: {', '.join(diff[key])}")
        for name, entry in diff["probes"].items():
            detail = f"{entry['n_diffs']} samples differ"
            if "first_diff_t" in entry:
                detail += f", first at t={_fmt_value(entry['first_diff_t'])}"
            if "max_abs_delta" in entry:
                detail += f", max |delta| {_fmt_value(entry['max_abs_delta'])}"
            lines.append(f"probe {name}: {detail}")
            lines.append(f"  {'final':<20} {_fmt_delta(entry['final'])}")
    else:
        for label, key in (("only in a", "only_a"), ("only in b", "only_b")):
            if diff[key]:
                lines.append(f"cells {label}: {', '.join(diff[key])}")
        for cell, changed in diff["cells"].items():
            lines.append(f"cell {cell}:")
            for name, entry in changed.items():
                lines.append(f"  {name:<20} {_fmt_delta(entry)}")
    return "\n".join(lines)
