"""Simulator profiling: callback wall-time, heap depth, events/sec.

An opt-in :class:`Profiler` attaches to a
:class:`~repro.sim.engine.Simulator` and observes every fired event:

* **hot-callback table** — wall-time bucketed by callsite (the callback's
  qualified name, e.g. ``CsmaMac._sense_and_transmit``), with call count,
  total and max duration.  This is the baseline any event-loop or
  protocol perf work measures itself against.
* **heap depth** — sampled every ``sample_interval`` events, so pending
  event backlog (and leak-shaped growth) is visible.
* **throughput** — simulated events per wall-clock second, plus the
  cancelled-entry churn the scheduler absorbed (cancelled timers that
  still had to transit the heap).

With no profiler attached the simulator pays one ``is None`` branch per
event; attaching costs two ``perf_counter`` calls per event.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.engine import Simulator

__all__ = ["Profiler", "ProfileReport", "CallbackStats", "format_profile"]


@dataclass(frozen=True)
class CallbackStats:
    """Aggregated wall-time for one callsite."""

    callsite: str
    calls: int
    total_s: float
    max_s: float

    @property
    def mean_us(self) -> float:
        return 1e6 * self.total_s / self.calls if self.calls else 0.0


@dataclass(frozen=True)
class ProfileReport:
    """Everything the profiler measured over one run."""

    wall_time_s: float
    events: int
    events_per_sec: float
    sim_time_s: float
    cancelled_churn: int
    heap_samples: int
    heap_min: int
    heap_max: int
    heap_mean: float
    callbacks: tuple[CallbackStats, ...] = field(default=())

    def as_dict(self) -> dict[str, Any]:
        return {
            "wall_time_s": self.wall_time_s,
            "events": self.events,
            "events_per_sec": self.events_per_sec,
            "sim_time_s": self.sim_time_s,
            "cancelled_churn": self.cancelled_churn,
            "heap": {
                "samples": self.heap_samples,
                "min": self.heap_min,
                "max": self.heap_max,
                "mean": self.heap_mean,
            },
            "callbacks": [
                {
                    "callsite": c.callsite,
                    "calls": c.calls,
                    "total_s": c.total_s,
                    "max_s": c.max_s,
                    "mean_us": c.mean_us,
                }
                for c in self.callbacks
            ],
        }


class Profiler:
    """Samples one simulator run; build with :meth:`attach`, read with
    :meth:`report` after the run completes."""

    def __init__(self, sample_interval: int = 64) -> None:
        if sample_interval < 1:
            raise ValueError("sample_interval must be >= 1")
        self.sample_interval = sample_interval
        # keyed by the underlying function object (bound methods are
        # re-created per schedule; __func__ is the stable identity)
        self._stats: dict[Any, list] = {}
        self._events = 0
        self._heap_n = 0
        self._heap_sum = 0
        self._heap_min = 0
        self._heap_max = 0
        self._sim: Optional["Simulator"] = None
        self._t0: Optional[float] = None
        self._t1: Optional[float] = None
        self._events0 = 0
        self._cancelled0 = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def attach(self, sim: "Simulator") -> "Profiler":
        """Start observing ``sim`` (baselines its counters now)."""
        self._sim = sim
        sim.set_profiler(self)
        self._t0 = time.perf_counter()
        self._events0 = sim.events_processed
        self._cancelled0 = sim.cancelled_skipped
        return self

    def detach(self) -> None:
        if self._sim is not None:
            self._t1 = time.perf_counter()
            self._sim.set_profiler(None)

    # ------------------------------------------------------------------
    # hot path (called by the simulator for every fired event)
    # ------------------------------------------------------------------
    def note(self, fn: Callable, elapsed: float, heap_len: int) -> None:
        key = getattr(fn, "__func__", fn)
        entry = self._stats.get(key)
        if entry is None:
            entry = self._stats[key] = [0, 0.0, 0.0]
        entry[0] += 1
        entry[1] += elapsed
        if elapsed > entry[2]:
            entry[2] = elapsed
        self._events += 1
        if self._events % self.sample_interval == 0:
            if self._heap_n == 0:
                self._heap_min = self._heap_max = heap_len
            else:
                if heap_len < self._heap_min:
                    self._heap_min = heap_len
                if heap_len > self._heap_max:
                    self._heap_max = heap_len
            self._heap_n += 1
            self._heap_sum += heap_len

    # ------------------------------------------------------------------
    # readout
    # ------------------------------------------------------------------
    def report(self) -> ProfileReport:
        if self._sim is None or self._t0 is None:
            raise RuntimeError("profiler was never attached")
        t1 = self._t1 if self._t1 is not None else time.perf_counter()
        wall = max(t1 - self._t0, 1e-12)
        events = self._sim.events_processed - self._events0
        callbacks = tuple(
            sorted(
                (
                    CallbackStats(
                        callsite=getattr(fn, "__qualname__", repr(fn)),
                        calls=calls,
                        total_s=total,
                        max_s=mx,
                    )
                    for fn, (calls, total, mx) in self._stats.items()
                ),
                key=lambda c: c.total_s,
                reverse=True,
            )
        )
        return ProfileReport(
            wall_time_s=wall,
            events=events,
            events_per_sec=events / wall,
            sim_time_s=self._sim.now,
            cancelled_churn=self._sim.cancelled_skipped - self._cancelled0,
            heap_samples=self._heap_n,
            heap_min=self._heap_min,
            heap_max=self._heap_max,
            heap_mean=self._heap_sum / self._heap_n if self._heap_n else 0.0,
            callbacks=callbacks,
        )


def format_profile(report: ProfileReport, top: int = 15) -> str:
    """Render a profile report as the CLI's hot-callback table."""
    lines = [
        f"events processed       {report.events}",
        f"events/sec             {report.events_per_sec:,.0f}",
        f"wall time              {report.wall_time_s:.3f} s "
        f"(sim time {report.sim_time_s:.1f} s)",
        f"cancelled-entry churn  {report.cancelled_churn}",
        f"heap depth             min {report.heap_min}  mean {report.heap_mean:.1f}  "
        f"max {report.heap_max}  ({report.heap_samples} samples)",
        "",
        "hot callbacks (by total wall time):",
    ]
    header = f"  {'callsite':<44} {'calls':>9} {'total ms':>10} {'mean us':>9} {'max us':>9}"
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    for cb in report.callbacks[:top]:
        lines.append(
            f"  {cb.callsite:<44} {cb.calls:>9} {1e3 * cb.total_s:>10.2f} "
            f"{cb.mean_us:>9.1f} {1e6 * cb.max_s:>9.1f}"
        )
    if len(report.callbacks) > top:
        rest = report.callbacks[top:]
        lines.append(
            f"  ... {len(rest)} more callsites "
            f"({1e3 * sum(c.total_s for c in rest):.2f} ms)"
        )
    return "\n".join(lines)
