"""Observability subsystem: metrics registry, profiling, trace export,
run provenance.

Layered under :mod:`repro.sim` (the tracer's counters are registry
instruments) and consumed by :mod:`repro.experiments` (the runner wires
profiling / export / manifests per :class:`ObsOptions`).  Everything
here is opt-in beyond the always-on counter registry; a run with
observability disabled pays one branch per simulator event.
"""

from .audit import (
    AuditFinding,
    Auditor,
    EnergyAttributionChecker,
    GradientAcyclicityChecker,
    InvariantChecker,
    LineageTerminationChecker,
    RxHasTxChecker,
    audit_static,
    audit_trace,
    format_findings,
)
from .diff import diff_artifacts, diff_timelines, format_diff, load_artifact
from .export import (
    TraceWriter,
    chrome_trace_to_timeline,
    iter_trace_lines,
    read_trace,
    timeline_from_trace_jsonl,
    timeline_to_chrome_trace,
    trace_summary,
)
from .lineage import DeliveryTree, Hop, LineageIndex, format_tree
from .manifest import (
    MANIFEST_VERSION,
    build_figure_manifest,
    build_run_manifest,
    format_manifest,
    load_manifest,
    save_manifest,
)
from .options import (
    DEFAULT_MAX_RECORDS,
    TRACE_CATEGORIES,
    ObsOptions,
    known_categories,
)
from .profiler import CallbackStats, ProfileReport, Profiler, format_profile
from .timeline import (
    TIMELINE_VERSION,
    Timeline,
    TimelineProbe,
    format_timeline,
    install_standard_probes,
    load_timeline,
    publish_sim_gauges,
    save_timeline,
    sparkline,
)
from .registry import (
    DEFAULT_BUCKETS,
    CardinalityError,
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    MetricsRegistry,
)

__all__ = [
    "MetricsRegistry",
    "CounterMetric",
    "GaugeMetric",
    "HistogramMetric",
    "CardinalityError",
    "DEFAULT_BUCKETS",
    "Profiler",
    "ProfileReport",
    "CallbackStats",
    "format_profile",
    "TraceWriter",
    "read_trace",
    "iter_trace_lines",
    "trace_summary",
    "ObsOptions",
    "DEFAULT_MAX_RECORDS",
    "TRACE_CATEGORIES",
    "known_categories",
    "build_run_manifest",
    "build_figure_manifest",
    "save_manifest",
    "load_manifest",
    "format_manifest",
    "MANIFEST_VERSION",
    "LineageIndex",
    "DeliveryTree",
    "Hop",
    "format_tree",
    "Auditor",
    "AuditFinding",
    "InvariantChecker",
    "RxHasTxChecker",
    "LineageTerminationChecker",
    "GradientAcyclicityChecker",
    "EnergyAttributionChecker",
    "audit_trace",
    "audit_static",
    "format_findings",
    "diff_artifacts",
    "diff_timelines",
    "format_diff",
    "load_artifact",
    "TIMELINE_VERSION",
    "Timeline",
    "TimelineProbe",
    "install_standard_probes",
    "publish_sim_gauges",
    "save_timeline",
    "load_timeline",
    "sparkline",
    "format_timeline",
    "timeline_to_chrome_trace",
    "chrome_trace_to_timeline",
    "timeline_from_trace_jsonl",
]
