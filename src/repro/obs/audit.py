"""Online invariant auditor: pluggable checkers over the trace stream.

An :class:`Auditor` attaches to a live :class:`~repro.sim.trace.Tracer`
(or replays a JSONL trace) and verifies cross-layer invariants that the
flat counters cannot express:

* **rx-has-tx** — every ``phy.rx`` names a frame some ``phy.tx`` emitted
  (no receptions out of thin air);
* **lineage-termination** — every ``data.deliver`` key roots in a real
  ``data.gen`` event (sinks never count fabricated readings);
* **gradient-acyclic** — the reinforced data-gradient graph per interest
  stays loop-free, modulo the two-way edges the forwarding rule
  (:meth:`~repro.diffusion.agent.DiffusionAgent._usable_outlets`)
  suppresses by construction;
* **energy-attribution** — per-class tx/rx time sums to each meter's
  totals within :data:`ENERGY_TOLERANCE_J` (finalize-time, needs nodes).

Violations become structured :class:`AuditFinding` records, never
exceptions: the auditor observes a run, it does not alter it.
:func:`audit_static` applies the subset of invariants visible in a
persisted artifact (manifest, store entry, or bare metrics dict), which
is what ``repro audit <run>`` uses on non-trace inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Optional, Union

from .lineage import LineageIndex

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.trace import TraceRecord, Tracer

__all__ = [
    "ENERGY_TOLERANCE_J",
    "MAX_FINDINGS_PER_CHECKER",
    "AuditFinding",
    "InvariantChecker",
    "RxHasTxChecker",
    "LineageTerminationChecker",
    "GradientAcyclicityChecker",
    "EnergyAttributionChecker",
    "Auditor",
    "audit_trace",
    "audit_static",
    "audit_figure_cells",
    "lineage_conservation_findings",
    "format_findings",
]

#: absolute slack for energy-identity checks (float summation order drifts
#: class sums from running totals by ~1e-14 J per realistic run)
ENERGY_TOLERANCE_J = 1e-9

#: per-checker cap so one systemic fault does not flood the report
MAX_FINDINGS_PER_CHECKER = 100


@dataclass(frozen=True)
class AuditFinding:
    """One invariant violation."""

    invariant: str
    message: str
    severity: str = "error"  # "error" | "warning"
    time: Optional[float] = None
    context: dict = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "invariant": self.invariant,
            "severity": self.severity,
            "message": self.message,
        }
        if self.time is not None:
            out["time"] = self.time
        if self.context:
            out["context"] = dict(self.context)
        return out


class InvariantChecker:
    """Base: observe trace records, report findings, finish at finalize."""

    #: the invariant this checker verifies (finding key)
    name = "base"
    #: trace categories this checker needs enabled to see anything
    categories: tuple[str, ...] = ()

    def __init__(self) -> None:
        self.findings: list[AuditFinding] = []
        self._suppressed = 0

    def emit(
        self,
        message: str,
        *,
        severity: str = "error",
        time: Optional[float] = None,
        **context: Any,
    ) -> None:
        if len(self.findings) >= MAX_FINDINGS_PER_CHECKER:
            self._suppressed += 1
            return
        self.findings.append(
            AuditFinding(self.name, message, severity, time, context)
        )

    def observe(self, rec: "TraceRecord") -> None:  # pragma: no cover - interface
        pass

    def finalize(self, nodes: Optional[Iterable[Any]] = None) -> None:
        if self._suppressed:
            self.findings.append(
                AuditFinding(
                    self.name,
                    f"{self._suppressed} further violations suppressed "
                    f"(cap {MAX_FINDINGS_PER_CHECKER})",
                    "warning",
                )
            )
            self._suppressed = 0


class RxHasTxChecker(InvariantChecker):
    """Every clean reception names a frame some transmission put on air."""

    name = "rx-has-tx"
    categories = ("phy.tx", "phy.rx")

    def __init__(self) -> None:
        super().__init__()
        self._tx_frames: set[int] = set()

    def observe(self, rec: "TraceRecord") -> None:
        cat = rec.category
        if cat == "phy.tx":
            self._tx_frames.add(rec.get("frame"))
        elif cat == "phy.rx":
            frame = rec.get("frame")
            if frame not in self._tx_frames:
                self.emit(
                    f"node {rec.get('node')} received frame {frame} "
                    f"from {rec.get('src')} with no matching transmission",
                    time=rec.time,
                    node=rec.get("node"),
                    frame=frame,
                )


class LineageTerminationChecker(InvariantChecker):
    """Every delivered event's lineage terminates in a real generation."""

    name = "lineage-termination"
    categories = ("data.gen", "data.deliver")

    def __init__(self) -> None:
        super().__init__()
        self._generated: set[tuple[int, int]] = set()
        #: (time, interest, sink, key) deliveries, judged at finalize so a
        #: record-order quirk can never fake a violation
        self._deliveries: list[tuple[float, int, int, tuple[int, int]]] = []

    def observe(self, rec: "TraceRecord") -> None:
        cat = rec.category
        if cat == "data.gen":
            self._generated.add((rec.get("src"), rec.get("seq")))
        elif cat == "data.deliver":
            raw = rec.get("key")
            self._deliveries.append(
                (rec.time, rec.get("interest"), rec.get("sink"), (raw[0], raw[1]))
            )

    def finalize(self, nodes: Optional[Iterable[Any]] = None) -> None:
        for time, interest, sink, key in self._deliveries:
            if key not in self._generated:
                self.emit(
                    f"sink {sink} counted event {key} for interest {interest} "
                    "but no data.gen record exists for it",
                    time=time,
                    sink=sink,
                    key=list(key),
                )
        super().finalize(nodes)


class GradientAcyclicityChecker(InvariantChecker):
    """The reinforced data-gradient graph stays free of routing loops.

    Each node keeps a *single* outgoing data gradient per interest
    (:meth:`~repro.diffusion.gradient.GradientTable.reinforce`), so the
    audited structure is a functional graph: ``node -> preferred
    neighbor``.  Two caveats keep the check honest:

    * **two-way edges are not loops** — when both endpoints hold data
      gradients toward each other, the forwarding rule refuses to use
      either direction (``_usable_outlets``), so the walk stops there
      instead of reporting a cycle;
    * **stale edges are skipped** — gradients decay silently after
      ``data_timeout``; without an expiry horizon, an edge reinforced
      long ago could close a phantom cycle with fresh edges.
    """

    name = "gradient-acyclic"
    categories = ("gradient.reinforce", "gradient.degrade")

    def __init__(self, data_timeout: Optional[float] = None) -> None:
        super().__init__()
        self.data_timeout = data_timeout
        #: interest -> node -> (preferred neighbor, reinforce time)
        self._edges: dict[int, dict[int, tuple[int, float]]] = {}

    def observe(self, rec: "TraceRecord") -> None:
        cat = rec.category
        if cat == "gradient.reinforce":
            node, neighbor = rec.get("node"), rec.get("neighbor")
            interest = rec.get("interest")
            self._edges.setdefault(interest, {})[node] = (neighbor, rec.time)
            self._check_walk(interest, node, rec.time)
        elif cat == "gradient.degrade":
            edges = self._edges.get(rec.get("interest"))
            if edges is not None:
                entry = edges.get(rec.get("node"))
                if entry is not None and entry[0] == rec.get("neighbor"):
                    del edges[rec.get("node")]

    def _live(self, entry: Optional[tuple[int, float]], now: float) -> Optional[int]:
        if entry is None:
            return None
        if self.data_timeout is not None and now - entry[1] > self.data_timeout:
            return None
        return entry[0]

    def _check_walk(self, interest: int, start: int, now: float) -> None:
        edges = self._edges[interest]
        path = [start]
        seen = {start}
        node = start
        while True:
            nxt = self._live(edges.get(node), now)
            if nxt is None:
                return  # dead end: no (live) outgoing data gradient
            if self._live(edges.get(nxt), now) == node:
                return  # two-way edge: suppressed by the forwarding rule
            if nxt in seen:
                cycle = path[path.index(nxt):] + [nxt]
                self.emit(
                    f"interest {interest}: reinforced gradients form cycle "
                    f"{' -> '.join(map(str, cycle))}",
                    time=now,
                    interest=interest,
                    cycle=cycle,
                )
                return
            seen.add(nxt)
            path.append(nxt)
            node = nxt


class EnergyAttributionChecker(InvariantChecker):
    """Per-class energy attribution sums to each meter's totals.

    Pure finalize-time check over the live energy meters: for every node,
    ``sum(tx_time_by_class) == tx_time`` and likewise for rx, within
    :data:`ENERGY_TOLERANCE_J` after conversion to joules.  Skipped (with
    a note finding suppressed) when no nodes are supplied — offline trace
    replays have no meters to inspect.
    """

    name = "energy-attribution"
    categories = ()

    def finalize(self, nodes: Optional[Iterable[Any]] = None) -> None:
        if nodes is not None:
            for node in nodes:
                meter = node.energy
                txp = meter.params.tx_power_w
                rxp = meter.params.rx_power_w
                tx_gap = txp * abs(sum(meter.tx_time_by_class.values()) - meter.tx_time)
                rx_gap = rxp * abs(sum(meter.rx_time_by_class.values()) - meter.rx_time)
                if tx_gap > ENERGY_TOLERANCE_J or rx_gap > ENERGY_TOLERANCE_J:
                    self.emit(
                        f"node {node.node_id}: class-attributed energy drifts "
                        f"from meter totals (tx {tx_gap:.3e} J, rx {rx_gap:.3e} J)",
                        time=None,
                        node=node.node_id,
                        tx_gap_j=tx_gap,
                        rx_gap_j=rx_gap,
                    )
        super().finalize(nodes)


class Auditor:
    """Runs a set of invariant checkers over a trace stream.

    Attach to a live tracer with :meth:`attach` (enables the categories
    the checkers need and registers a listener), or feed records manually
    via :meth:`observe`.  :meth:`finalize` runs the end-of-run checks and
    returns every finding, ordered by time.
    """

    def __init__(
        self,
        checkers: Optional[list[InvariantChecker]] = None,
        *,
        data_timeout: Optional[float] = None,
    ) -> None:
        if checkers is None:
            checkers = [
                RxHasTxChecker(),
                LineageTerminationChecker(),
                GradientAcyclicityChecker(data_timeout=data_timeout),
                EnergyAttributionChecker(),
            ]
        self.checkers = checkers
        self.records_seen = 0
        self._finalized = False

    def categories_needed(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for checker in self.checkers:
            for cat in checker.categories:
                seen[cat] = None
        return tuple(seen)

    def attach(self, tracer: "Tracer") -> None:
        tracer.enable(*self.categories_needed())
        tracer.add_listener(self.observe)

    def detach(self, tracer: "Tracer") -> None:
        tracer.remove_listener(self.observe)

    def observe(self, rec: "TraceRecord") -> None:
        self.records_seen += 1
        for checker in self.checkers:
            checker.observe(rec)

    def finalize(self, nodes: Optional[Iterable[Any]] = None) -> list[AuditFinding]:
        if not self._finalized:
            for checker in self.checkers:
                checker.finalize(nodes)
            self._finalized = True
        return self.findings()

    def findings(self) -> list[AuditFinding]:
        out: list[AuditFinding] = []
        for checker in self.checkers:
            out.extend(checker.findings)
        out.sort(key=lambda f: (f.time is None, f.time or 0.0))
        return out

    def report(self) -> dict[str, Any]:
        """JSON-ready summary (embedded in manifests' ``audit`` section)."""
        findings = self.findings()
        return {
            "ok": not any(f.severity == "error" for f in findings),
            "checkers": [c.name for c in self.checkers],
            "records_seen": self.records_seen,
            "n_findings": len(findings),
            "findings": [f.as_dict() for f in findings],
        }


def audit_trace(
    path: Union[str, Path], *, data_timeout: Optional[float] = None
) -> list[AuditFinding]:
    """Replay a JSONL trace file through the stream checkers."""
    from .export import read_trace

    auditor = Auditor(data_timeout=data_timeout)
    for rec in read_trace(Path(path)):
        auditor.observe(rec)
    return auditor.finalize()


def _counter_items(counters: dict, prefix: str) -> list[tuple[str, int]]:
    """Flat-snapshot entries of one labelled counter family."""
    head = prefix + "{"
    return [(k, v) for k, v in counters.items() if k.startswith(head)]


def audit_static(metrics: dict[str, Any]) -> list[AuditFinding]:
    """Audit the invariants visible in a persisted metrics dict.

    ``metrics`` is the ``dataclasses.asdict`` form of
    :class:`~repro.experiments.metrics.RunMetrics` — what manifests and
    store entries embed.  Checks:

    * per-class energy sums to ``total_energy_j`` within
      :data:`ENERGY_TOLERANCE_J`;
    * per-class radio counters sum to the total tx/rx counters;
    * sinks never counted more distinct events than the kernel delivered.
    """
    findings: list[AuditFinding] = []
    counters = metrics.get("counters", {})

    by_class = metrics.get("energy_by_class") or {}
    if by_class:
        total = metrics.get("total_energy_j", 0.0)
        gap = abs(sum(by_class.values()) - total)
        if gap > ENERGY_TOLERANCE_J:
            findings.append(
                AuditFinding(
                    "energy-attribution",
                    f"energy_by_class sums to {sum(by_class.values()):.6f} J "
                    f"but total_energy_j is {total:.6f} J (gap {gap:.3e})",
                    context={"gap_j": gap},
                )
            )

    for direction in ("tx", "rx"):
        per_class = _counter_items(counters, f"radio.{direction}_class")
        total_name = f"radio.{direction}"
        if per_class and total_name in counters:
            class_sum = sum(v for _k, v in per_class)
            if class_sum != counters[total_name]:
                findings.append(
                    AuditFinding(
                        "radio-class-counters",
                        f"per-class {direction} counters sum to {class_sum} "
                        f"but {total_name} is {counters[total_name]}",
                        context={
                            "direction": direction,
                            "class_sum": class_sum,
                            "total": counters[total_name],
                        },
                    )
                )

    delivered_counter = counters.get("diffusion.item_delivered")
    distinct = metrics.get("distinct_delivered")
    if delivered_counter is not None and distinct is not None:
        if distinct > delivered_counter:
            findings.append(
                AuditFinding(
                    "delivery-accounting",
                    f"metrics report {distinct} distinct delivered events but "
                    f"the kernel only delivered {delivered_counter} items",
                    context={
                        "distinct_delivered": distinct,
                        "item_delivered": delivered_counter,
                    },
                )
            )

    ratio = metrics.get("delivery_ratio")
    if ratio is not None and not 0.0 <= ratio <= 1.0 + 1e-9:
        findings.append(
            AuditFinding(
                "delivery-accounting",
                f"delivery_ratio {ratio} outside [0, 1]",
                context={"delivery_ratio": ratio},
            )
        )
    return findings


def audit_figure_cells(cells: Iterable[dict[str, Any]]) -> list[AuditFinding]:
    """Static sanity checks on a figure's cell summaries."""
    findings: list[AuditFinding] = []
    for cell in cells:
        label = f"{cell.get('scheme')}@{cell.get('x')}"
        ratio = cell.get("ratio")
        if ratio is not None and not 0.0 <= ratio <= 1.0 + 1e-9:
            findings.append(
                AuditFinding(
                    "delivery-accounting",
                    f"cell {label}: delivery ratio {ratio} outside [0, 1]",
                    context={"cell": label, "ratio": ratio},
                )
            )
        for field_name in ("energy", "delay", "energy_stdev"):
            value = cell.get(field_name)
            if value is not None and value < 0:
                findings.append(
                    AuditFinding(
                        "figure-sanity",
                        f"cell {label}: negative {field_name} ({value})",
                        context={"cell": label, "field": field_name, "value": value},
                    )
                )
        n_runs = cell.get("n_runs")
        if n_runs is not None and n_runs <= 0:
            findings.append(
                AuditFinding(
                    "figure-sanity",
                    f"cell {label}: summarizes {n_runs} runs",
                    context={"cell": label, "n_runs": n_runs},
                )
            )
    return findings


def lineage_conservation_findings(
    index: LineageIndex, losses: int = 0
) -> list[AuditFinding]:
    """Check sink-side lineage against source-side generations.

    Every delivered key must be generated (termination, also covered by
    the stream checker) and the delivered set can be smaller than the
    generated set by at most ``losses`` counted drops.
    """
    findings: list[AuditFinding] = []
    delivered = index.delivered_keys()
    generated = index.source_events()
    orphans = delivered - generated
    for key in sorted(orphans):
        findings.append(
            AuditFinding(
                "lineage-termination",
                f"delivered key {key} has no generation record",
                context={"key": list(key)},
            )
        )
    missing = len(generated) - len(delivered & generated)
    if missing > losses:
        findings.append(
            AuditFinding(
                "lineage-conservation",
                f"{missing} generated events never delivered but only "
                f"{losses} losses were counted",
                severity="warning",
                context={"undelivered": missing, "counted_losses": losses},
            )
        )
    return findings


def format_findings(findings: list[AuditFinding]) -> str:
    """Human-readable table of findings (empty-state message included)."""
    if not findings:
        return "audit: ok (no findings)"
    lines = [f"audit: {len(findings)} finding(s)"]
    for f in findings:
        when = f"t={f.time:.3f}" if f.time is not None else "t=  end"
        lines.append(f"  [{f.severity:<7}] {when} {f.invariant:<22} {f.message}")
    return "\n".join(lines)
