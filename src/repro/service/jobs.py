"""Service request specs and job bookkeeping.

A request arrives as untrusted JSON and is parsed **once**, at
submission, into an immutable :class:`JobRequest`: the fully resolved
list of :class:`~repro.experiments.config.ExperimentConfig` runs plus
(for figures) the :class:`~repro.experiments.figures.FigurePlan` that
reassembles them into a figure.  Parsing is strict — unknown fields,
unknown config keys, and malformed values raise :class:`RequestError`
(HTTP 400) rather than silently executing a different experiment.

Every request gets a **request key**: the canonical hash of its kind,
presentation metadata, and the ordered content keys of its runs.  Two
byte-different JSON bodies that resolve to the same experiment hash the
same, which is what lets the scheduler coalesce concurrent duplicate
submissions onto one in-flight job.

:class:`Job` is the mutable execution record behind a job id: status,
progress, hit/executed/coalesced counts, and the order-preserving
result slots the scheduler fills in.  ``version`` bumps on every
mutation so SSE streams know when to emit.
"""

from __future__ import annotations

import dataclasses
import hashlib
import time
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from ..experiments.config import PROFILES, config_from_dict
from ..experiments.figures import FIGURES, FigurePlan, figure_from_results, figure_plan
from ..experiments.persistence import figure_payload
from ..experiments.store import canonical_json, run_key
from ..experiments.sweeps import RunFailure
from ..net.channel import ChannelSpec

__all__ = [
    "RequestError",
    "JobRequest",
    "Job",
    "parse_request",
    "DEFAULT_PRIORITY",
]

#: lower numbers drain first; interactive clients can jump the queue
DEFAULT_PRIORITY = 100

KINDS = ("run", "sweep", "figure")

_COMMON_FIELDS = {"kind", "priority"}
_FIELDS = {
    "run": _COMMON_FIELDS | {"config"},
    "sweep": _COMMON_FIELDS | {"configs"},
    "figure": _COMMON_FIELDS | {"figure", "profile", "trials", "n_nodes", "xs", "channel"},
}


class RequestError(ValueError):
    """A submission that cannot be turned into runs (HTTP 400)."""


@dataclass(frozen=True)
class JobRequest:
    """One parsed, validated submission."""

    kind: str
    priority: int
    #: normalized spec echoed back in status payloads
    spec: dict[str, Any]
    configs: tuple[Any, ...]
    #: content hash of each config, in plan order
    run_keys: tuple[str, ...]
    #: set for ``kind == "figure"``; reassembles results into the figure
    fplan: Optional[FigurePlan]
    #: canonical hash of (kind, spec metadata, run keys)
    request_key: str


@dataclass
class Job:
    """Execution record of one accepted request."""

    id: str
    request: JobRequest
    status: str = "queued"  # queued | running | done | failed
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    done: int = 0
    hits: int = 0
    executed: int = 0
    coalesced: int = 0
    error: Optional[str] = None
    #: order-preserving outcome slots (RunMetrics / RunFailure / None)
    results: list = field(default_factory=list)
    #: (position, config) pairs still to run when the job was queued
    pending: list = field(default_factory=list)
    #: resolved entirely from the store at submission time
    from_cache: bool = False
    #: bumped on every visible mutation (SSE change detection)
    version: int = 0
    #: trace id of the submitting request — the whole span tree of this
    #: job (queue wait, dedup verdicts, worker execution, store writes)
    #: resolves under it via ``GET /api/v1/jobs/<id>/trace``
    trace_id: Optional[str] = None
    #: live span handles (scheduler-internal; not part of job identity)
    span: Optional[Any] = field(default=None, repr=False, compare=False)
    queue_span: Optional[Any] = field(default=None, repr=False, compare=False)

    @property
    def total(self) -> int:
        return len(self.request.configs)

    @property
    def terminal(self) -> bool:
        return self.status in ("done", "failed")

    def as_dict(self) -> dict[str, Any]:
        """The status payload (``GET /api/v1/jobs/<id>`` and SSE events)."""
        return {
            "id": self.id,
            "kind": self.request.kind,
            "status": self.status,
            "priority": self.request.priority,
            "request_key": self.request.request_key,
            "spec": self.request.spec,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "progress": {"done": self.done, "total": self.total},
            "runs": {
                "hits": self.hits,
                "executed": self.executed,
                "coalesced": self.coalesced,
                "failed": sum(1 for r in self.results if isinstance(r, RunFailure)),
            },
            "from_cache": self.from_cache,
            "error": self.error,
            "version": self.version,
            "trace_id": self.trace_id,
        }

    def result_payload(self) -> dict[str, Any]:
        """The results payload of a finished job.

        ``runs`` always carries the per-run outcomes keyed by content
        hash; figure jobs additionally reassemble their
        :class:`FigureResult` through the exact same
        ``figure_from_results``/``figure_payload`` path the in-process
        harness uses, so the figure dict is bit-identical to a direct
        ``repro figure`` run against the same store.
        """
        runs = []
        for key, outcome in zip(self.request.run_keys, self.results):
            if isinstance(outcome, RunFailure):
                runs.append(
                    {"key": key, "error": outcome.error, "traceback": outcome.traceback}
                )
            elif outcome is None:  # pragma: no cover - unfinished job defensive
                runs.append({"key": key, "error": "run did not complete"})
            else:
                runs.append({"key": key, "metrics": dataclasses.asdict(outcome)})
        payload: dict[str, Any] = {"id": self.id, "kind": self.request.kind, "runs": runs}
        if self.request.fplan is not None:
            ok = [r for r in self.results if not isinstance(r, RunFailure)]
            if len(ok) == len(self.results):
                payload["figure"] = figure_payload(
                    figure_from_results(self.request.fplan, self.results)
                )
        return payload


def request_key(kind: str, meta: dict[str, Any], run_keys: Sequence[str]) -> str:
    """Canonical identity of one request (dedup/coalescing key)."""
    body = {"kind": kind, "meta": meta, "runs": list(run_keys)}
    return hashlib.sha256(canonical_json(body).encode("utf-8")).hexdigest()


def parse_request(data: Any) -> JobRequest:
    """Validate an untrusted JSON submission into a :class:`JobRequest`."""
    if not isinstance(data, dict):
        raise RequestError("request body must be a JSON object")
    kind = data.get("kind")
    if kind not in KINDS:
        raise RequestError(f"kind must be one of {KINDS}, got {kind!r}")
    unknown = set(data) - _FIELDS[kind]
    if unknown:
        raise RequestError(f"unknown request fields for kind {kind!r}: {sorted(unknown)}")
    priority = data.get("priority", DEFAULT_PRIORITY)
    if not isinstance(priority, int) or isinstance(priority, bool):
        raise RequestError(f"priority must be an integer, got {priority!r}")

    if kind == "run":
        configs = (_parse_config(data.get("config"), "config"),)
        meta: dict[str, Any] = {}
        fplan = None
        spec = {"config": dataclasses.asdict(configs[0])}
    elif kind == "sweep":
        raw = data.get("configs")
        if not isinstance(raw, list) or not raw:
            raise RequestError("sweep needs a non-empty 'configs' list")
        configs = tuple(
            _parse_config(item, f"configs[{i}]") for i, item in enumerate(raw)
        )
        meta = {}
        fplan = None
        spec = {"n_configs": len(configs)}
    else:  # figure
        fplan = _parse_figure_plan(data)
        configs = tuple(fplan.configs())
        meta = {
            "figure": fplan.figure_id,
            "title": fplan.title,
            "x_label": fplan.x_label,
            "labels": [label for label, _x, _cfg in fplan.plan],
        }
        spec = {
            "figure": fplan.figure_id,
            "profile": data.get("profile", "fast"),
            "trials": data.get("trials"),
            "n_nodes": data.get("n_nodes", 350),
            "n_configs": len(configs),
        }

    keys = tuple(run_key(cfg) for cfg in configs)
    return JobRequest(
        kind=kind,
        priority=priority,
        spec={"kind": kind, **spec},
        configs=configs,
        run_keys=keys,
        fplan=fplan,
        request_key=request_key(kind, meta, keys),
    )


def _parse_config(raw: Any, where: str):
    if not isinstance(raw, dict):
        raise RequestError(f"{where} must be a config object")
    try:
        return config_from_dict(raw)
    except (TypeError, ValueError, KeyError) as exc:
        raise RequestError(f"bad {where}: {exc}") from exc


def _parse_figure_plan(data: dict[str, Any]) -> FigurePlan:
    figure_id = data.get("figure")
    if figure_id not in FIGURES:
        raise RequestError(f"unknown figure {figure_id!r} (have {sorted(FIGURES)})")
    profile_name = data.get("profile", "fast")
    if profile_name not in PROFILES:
        raise RequestError(
            f"unknown profile {profile_name!r} (have {sorted(PROFILES)})"
        )
    trials = data.get("trials")
    if trials is not None and (not isinstance(trials, int) or trials < 1):
        raise RequestError(f"trials must be a positive integer, got {trials!r}")
    n_nodes = data.get("n_nodes", 350)
    if not isinstance(n_nodes, int) or n_nodes < 1:
        raise RequestError(f"n_nodes must be a positive integer, got {n_nodes!r}")
    xs = data.get("xs")
    if xs is not None:
        if not isinstance(xs, list) or not xs:
            raise RequestError("xs must be a non-empty list of sweep values")
        xs = [int(x) for x in xs]
    channel = data.get("channel")
    if channel is not None:
        if not isinstance(channel, dict):
            raise RequestError("channel must be a channel-spec object")
        try:
            channel = ChannelSpec(**channel)
        except (TypeError, ValueError) as exc:
            raise RequestError(f"bad channel spec: {exc}") from exc
    try:
        return figure_plan(
            figure_id,
            PROFILES[profile_name](),
            trials=trials,
            channel=channel,
            n_nodes=n_nodes,
            xs=xs,
        )
    except (TypeError, ValueError, KeyError) as exc:
        raise RequestError(f"cannot plan figure {figure_id!r}: {exc}") from exc
