"""``repro top`` — a live terminal dashboard over the daemon's /metrics.

One screenful, refreshed in place: worker utilization, queue depth,
job/run/dedup counters, span-ring health, and a per-route latency table
with the p50/p95/p99 summaries the daemon now derives from its latency
histograms.  Pure rendering (:func:`render_top`) is separated from the
fetch/refresh loop (:func:`run_top`) so tests can feed synthetic
payloads without a socket.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Optional, TextIO

from .client import ServiceClient, ServiceError

__all__ = ["render_top", "run_top"]

#: ANSI: clear screen + home (plain strings; no terminfo dependency)
_CLEAR = "\x1b[2J\x1b[H"


def _fmt_ms(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    return f"{seconds * 1e3:8.2f}"


def _fmt_ratio(value: Optional[float]) -> str:
    return "-" if value is None else f"{value * 100:5.1f}%"


def _counter_total(counters: dict[str, Any], name: str) -> float:
    """Sum every label-series of one counter family (``name`` and
    ``name{...}`` flat keys)."""
    total = 0.0
    for key, value in counters.items():
        if key == name or key.startswith(name + "{"):
            total += value
    return total


def _bar(fraction: float, width: int = 20) -> str:
    fraction = min(1.0, max(0.0, fraction))
    filled = round(fraction * width)
    return "#" * filled + "." * (width - filled)


def render_top(
    metrics: dict[str, Any], health: Optional[dict[str, Any]] = None
) -> str:
    """Render one dashboard frame from a ``/metrics`` payload."""
    derived = metrics.get("derived", {})
    registry = metrics.get("registry", {})
    counters = registry.get("counters", {})
    gauges = registry.get("gauges", {})
    spans = metrics.get("spans", {})
    backend = metrics.get("backend", {})

    run_workers = gauges.get("service.run_workers", 0) or 0
    busy = derived.get("workers_busy", 0) or 0
    queue = derived.get("queue_depth", 0) or 0
    utilization = (busy / run_workers) if run_workers else 0.0

    uptime = ""
    if health and health.get("started_at"):
        uptime = f"  up {time.time() - health['started_at']:8.0f}s"

    lines = [
        f"repro serve — live{uptime}",
        "",
        f"workers  [{_bar(utilization)}] {busy:.0f}/{run_workers:.0f} busy"
        f"   queue depth {queue:.0f}",
        f"jobs     submitted {_counter_total(counters, 'service.jobs_submitted'):.0f}"
        f"  done {_counter_total(counters, 'service.jobs_done'):.0f}"
        f"  failed {_counter_total(counters, 'service.jobs_failed'):.0f}"
        f"  coalesced {_counter_total(counters, 'service.jobs_coalesced'):.0f}"
        f"  active {derived.get('jobs', 0):.0f} known",
        f"runs     executed {_counter_total(counters, 'service.runs_executed'):.0f}"
        f"  coalesced {_counter_total(counters, 'service.runs_coalesced'):.0f}"
        f"  failed {_counter_total(counters, 'service.runs_failed'):.0f}",
        f"dedup    store hit ratio {_fmt_ratio(derived.get('hit_ratio'))}"
        f"  ({derived.get('store_lookups', 0):.0f} lookups,"
        f" {backend.get('entries', 0)} runs stored)",
        f"spans    retained {spans.get('retained', 0)}/{spans.get('capacity', 0)}"
        f"  active {spans.get('active', 0)}"
        f"  dropped {spans.get('dropped', 0)}",
        f"errors   http 5xx {_counter_total(counters, 'http.errors'):.0f}",
        "",
        f"{'route':<34} {'reqs':>7} {'p50 ms':>8} {'p95 ms':>8} {'p99 ms':>8}",
    ]
    latency = metrics.get("latency", {})
    for route in sorted(latency):
        summary = latency[route]
        lines.append(
            f"{route:<34} {summary.get('count', 0):>7}"
            f" {_fmt_ms(summary.get('p50'))}"
            f" {_fmt_ms(summary.get('p95'))}"
            f" {_fmt_ms(summary.get('p99'))}"
        )
    if not latency:
        lines.append("(no requests observed yet)")
    job_wall = metrics.get("job_wall")
    if job_wall and job_wall.get("count"):
        lines.append("")
        lines.append(
            f"job wall time: n={job_wall['count']}"
            f" mean {job_wall['mean']:.3f}s"
            f" p50 {job_wall.get('p50'):.3f}s"
            f" p95 {job_wall.get('p95'):.3f}s"
            f" p99 {job_wall.get('p99'):.3f}s"
        )
    return "\n".join(lines) + "\n"


def run_top(
    host: str = "127.0.0.1",
    port: int = 8642,
    interval: float = 2.0,
    iterations: int = 0,
    stream: Optional[TextIO] = None,
    clear: bool = True,
) -> int:
    """Fetch-and-render loop (``iterations=0`` runs until interrupted).

    Returns a process exit code: 0 on a clean run, 1 if the daemon was
    unreachable on the first fetch.
    """
    out = stream if stream is not None else sys.stdout
    client = ServiceClient(host=host, port=port)
    n = 0
    while True:
        try:
            metrics = client.metrics()
            health = client.health()
        except (ConnectionError, OSError, ServiceError) as exc:
            out.write(f"repro top: cannot reach daemon at {host}:{port}: {exc}\n")
            return 1
        if clear:
            out.write(_CLEAR)
        out.write(render_top(metrics, health))
        out.flush()
        n += 1
        if iterations and n >= iterations:
            return 0
        try:
            time.sleep(interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive exit
            return 0
