"""Blocking client for the service daemon (stdlib ``http.client``).

The client mirrors the daemon's JSON API one method per route, plus the
two conveniences scripts actually want: :meth:`ServiceClient.wait`
(poll until a job is terminal) and :meth:`ServiceClient.stream` (follow
the SSE progress feed).  Non-2xx responses raise :class:`ServiceError`
carrying the HTTP status and the daemon's ``error`` message.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Iterator, Optional
from urllib.parse import quote

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A non-2xx daemon response.

    ``payload`` is the daemon's full JSON error body — it carries the
    request's ``correlation_id``, which is the trace id to hand to
    ``GET /api/v1/trace?trace=...`` when debugging a failure.
    """

    def __init__(
        self, code: int, message: str, payload: Optional[dict] = None
    ) -> None:
        super().__init__(f"HTTP {code}: {message}")
        self.code = code
        self.payload = payload if payload is not None else {}

    @property
    def correlation_id(self) -> Optional[str]:
        return self.payload.get("correlation_id")


class ServiceClient:
    """One daemon endpoint; connections are per-call (daemon closes them)."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8642, timeout: float = 60.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    # raw request plumbing
    # ------------------------------------------------------------------
    def _request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> dict[str, Any]:
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            payload = json.dumps(body).encode("utf-8") if body is not None else None
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            resp = conn.getresponse()
            data = json.loads(resp.read().decode("utf-8"))
            if resp.status >= 300:
                raise ServiceError(
                    resp.status, data.get("error", "unknown error"), payload=data
                )
            return data
        finally:
            conn.close()

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------
    def health(self) -> dict[str, Any]:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict[str, Any]:
        return self._request("GET", "/metrics")

    def submit(self, spec: dict[str, Any]) -> dict[str, Any]:
        """Submit a run/sweep/figure spec; returns ``{job, coalesced}``."""
        return self._request("POST", "/api/v1/jobs", body=spec)

    def submit_figure(
        self,
        figure: str,
        profile: str = "fast",
        trials: Optional[int] = None,
        n_nodes: Optional[int] = None,
        xs: Optional[list] = None,
        channel: Optional[dict] = None,
        priority: Optional[int] = None,
    ) -> dict[str, Any]:
        spec: dict[str, Any] = {"kind": "figure", "figure": figure, "profile": profile}
        for name, value in (
            ("trials", trials),
            ("n_nodes", n_nodes),
            ("xs", xs),
            ("channel", channel),
            ("priority", priority),
        ):
            if value is not None:
                spec[name] = value
        return self.submit(spec)

    def jobs(self) -> list[dict[str, Any]]:
        return self._request("GET", "/api/v1/jobs")["jobs"]

    def job(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/api/v1/jobs/{job_id}")

    def result(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/api/v1/jobs/{job_id}/result")

    def runs(self) -> list[dict[str, Any]]:
        return self._request("GET", "/api/v1/runs")["runs"]

    def run(self, key: str) -> dict[str, Any]:
        return self._request("GET", f"/api/v1/runs/{key}")

    def run_timeline(self, key: str) -> dict[str, Any]:
        return self._request("GET", f"/api/v1/runs/{key}/timeline")

    def trace(self, job_id: str) -> dict[str, Any]:
        """The job's span tree: ``{job_id, trace_id, spans, tree}``."""
        return self._request("GET", f"/api/v1/jobs/{job_id}/trace")

    def recent_spans(
        self,
        limit: int = 100,
        name: Optional[str] = None,
        trace: Optional[str] = None,
    ) -> dict[str, Any]:
        """Recent finished spans, newest first (``GET /api/v1/trace``)."""
        params = [f"limit={limit}"]
        if name:
            params.append(f"name={quote(name)}")
        if trace:
            params.append(f"trace={quote(trace)}")
        return self._request("GET", "/api/v1/trace?" + "&".join(params))

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------
    def wait(
        self, job_id: str, poll: float = 0.2, timeout: Optional[float] = None
    ) -> dict[str, Any]:
        """Poll until the job is terminal; returns its final status."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            status = self.job(job_id)
            if status["status"] in ("done", "failed"):
                return status
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(f"job {job_id} still {status['status']} after {timeout}s")
            time.sleep(poll)

    def fetch(
        self, job_id: str, poll: float = 0.2, timeout: Optional[float] = None
    ) -> dict[str, Any]:
        """Wait for the job, then return its results.

        Raises :class:`ServiceError` (409) if the job failed.
        """
        self.wait(job_id, poll=poll, timeout=timeout)
        return self.result(job_id)

    def stream(self, job_id: str) -> Iterator[dict[str, Any]]:
        """Yield SSE progress snapshots until the job is terminal."""
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            conn.request("GET", f"/api/v1/jobs/{job_id}/events")
            resp = conn.getresponse()
            if resp.status >= 300:
                data = json.loads(resp.read().decode("utf-8"))
                raise ServiceError(resp.status, data.get("error", "unknown error"))
            while True:
                line = resp.readline()
                if not line:
                    return
                line = line.strip()
                if not line.startswith(b"data: "):
                    continue  # keep-alive comment or blank separator
                snapshot = json.loads(line[len(b"data: "):].decode("utf-8"))
                yield snapshot
                if snapshot["status"] in ("done", "failed"):
                    return
        finally:
            conn.close()
