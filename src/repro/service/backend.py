"""Storage backends for the sweep service.

The daemon never talks to a :class:`~repro.experiments.store.RunStore`
directly — it goes through a :class:`StorageBackend`, which narrows the
store surface to what the service needs (hash-keyed run lookup/persist,
entry/timeline fetch, fast listing) so a remote backend (S3 + a shared
index, say) can slot in behind the same interface later.

:class:`LocalDirBackend` is the one shipped implementation: the
content-addressed run directory stays exactly as ``RunStore`` lays it
out (``runs/<sha256>.json`` payloads are authoritative, writes atomic),
and a sqlite ``index.db`` rides beside it so listing thousands of
entries for the ``/api/v1/runs`` endpoint is one indexed query instead
of a directory scan.  The sqlite index is a cache with the same contract
as ``index.json``: rebuildable from the payload files at any time
(:meth:`LocalDirBackend.reindex`), never consulted for lookups.
"""

from __future__ import annotations

import abc
import sqlite3
from pathlib import Path
from typing import Any, Optional, Union

from ..experiments.config import ExperimentConfig
from ..experiments.metrics import RunMetrics
from ..experiments.store import RunStore, run_key
from ..obs.registry import MetricsRegistry

__all__ = ["StorageBackend", "LocalDirBackend"]


class StorageBackend(abc.ABC):
    """What the service needs from result storage.

    All methods are synchronous and fast (local disk / one sqlite
    query); the scheduler calls them from the event loop thread.  A
    future remote backend would wrap its network calls behind the same
    signatures via an executor.
    """

    #: shared metrics registry; ``store.hit``/``store.miss`` land here
    registry: MetricsRegistry

    @abc.abstractmethod
    def get_run(self, cfg: ExperimentConfig) -> Optional[RunMetrics]:
        """Stored metrics for ``cfg`` (content-hash lookup), or None."""

    @abc.abstractmethod
    def put_run(self, cfg: ExperimentConfig, metrics: RunMetrics) -> str:
        """Persist one completed run; returns its content key."""

    @abc.abstractmethod
    def entry(self, key: str) -> Optional[dict[str, Any]]:
        """The full stored entry (identity + metrics) for a key."""

    @abc.abstractmethod
    def timeline(self, key: str) -> Optional[dict[str, Any]]:
        """The stored probe timeline for a key, if any."""

    @abc.abstractmethod
    def summaries(self) -> list[dict[str, Any]]:
        """One summary row per stored run (from the fast index)."""

    @abc.abstractmethod
    def reindex(self) -> int:
        """Rebuild the fast index from authoritative storage."""

    @abc.abstractmethod
    def stats(self) -> dict[str, Any]:
        """Backend counters for ``/metrics`` (hits, misses, entries)."""

    def close(self) -> None:  # pragma: no cover - trivial default
        """Release backend resources (db handles, connections)."""


_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    key TEXT PRIMARY KEY,
    scheme TEXT,
    n_nodes INTEGER,
    seed INTEGER,
    created_at TEXT,
    code_version TEXT,
    delivery_ratio REAL
)
"""

_COLUMNS = (
    "key",
    "scheme",
    "n_nodes",
    "seed",
    "created_at",
    "code_version",
    "delivery_ratio",
)


class LocalDirBackend(StorageBackend):
    """A local ``RunStore`` directory fronted by a sqlite listing index.

    ``index.db`` lives inside the store root, one row per entry, upserted
    on every :meth:`put_run`.  Opening a backend over a store that
    already has entries (a warm cache produced by ``repro figure`` runs)
    lazily reindexes so the listing is complete from the first request.
    """

    def __init__(
        self, root: Union[str, Path], registry: Optional[MetricsRegistry] = None
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.store = RunStore(root, registry=self.registry)
        self.db_path = self.store.root / "index.db"
        self._db = sqlite3.connect(self.db_path)
        self._db.execute(_SCHEMA)
        self._db.commit()
        if self._count() == 0 and any(self.store.runs_dir.glob("*.json")):
            self.reindex()

    # ------------------------------------------------------------------
    # run lookup / persist
    # ------------------------------------------------------------------
    def get_run(self, cfg: ExperimentConfig) -> Optional[RunMetrics]:
        return self.store.get(cfg)

    def put_run(self, cfg: ExperimentConfig, metrics: RunMetrics) -> str:
        key = run_key(cfg)
        entry_path = self.store.put(cfg, metrics)
        entry = self.store._read_entry(entry_path)
        if entry is not None:
            self._upsert(self.store._summary(entry))
        return key

    def entry(self, key: str) -> Optional[dict[str, Any]]:
        return self.store._read_entry(self.store.path_for(key))

    def timeline(self, key: str) -> Optional[dict[str, Any]]:
        return self.store.get_timeline(key)

    # ------------------------------------------------------------------
    # listing index
    # ------------------------------------------------------------------
    def summaries(self) -> list[dict[str, Any]]:
        rows = self._db.execute(
            f"SELECT {', '.join(_COLUMNS)} FROM runs ORDER BY created_at, key"
        ).fetchall()
        return [dict(zip(_COLUMNS, row)) for row in rows]

    def reindex(self) -> int:
        rows = self.store.ls()
        with self._db:
            self._db.execute("DELETE FROM runs")
            for row in rows:
                self._upsert(row, commit=False)
        return len(rows)

    def stats(self) -> dict[str, Any]:
        return {"entries": self._count(), **self.store.stats.as_dict()}

    def close(self) -> None:
        self._db.close()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _count(self) -> int:
        return int(self._db.execute("SELECT COUNT(*) FROM runs").fetchone()[0])

    def _upsert(self, summary: dict[str, Any], commit: bool = True) -> None:
        self._db.execute(
            f"INSERT OR REPLACE INTO runs ({', '.join(_COLUMNS)}) "
            f"VALUES ({', '.join('?' * len(_COLUMNS))})",
            tuple(summary.get(col) for col in _COLUMNS),
        )
        if commit:
            self._db.commit()
