"""Load tester: replay concurrent figure requests against a daemon.

The intended workload is a *warm* store — every submission resolves to
hits, so the measured path is request parsing, content-hash probing,
and JSON assembly, not simulation time.  The tester is asyncio-based
(each in-flight request is one connection coroutine, not a thread), so
hundreds of truly concurrent requests cost only file descriptors.

``run_load_test`` drives ``requests`` total submissions with at most
``concurrency`` in flight, checks every response (a submission that
does not come back ``done``/``queued`` counts as an error), and returns
a summary payload: error count, wall time, throughput, and latency
quantiles.  The ``repro loadtest`` CLI verb prints it as JSON.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any, Optional

__all__ = ["run_load_test"]


def _quantile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[idx]


async def _one_request(
    host: str, port: int, request: bytes, timeout: float
) -> tuple[bool, float, str]:
    """One POST over a fresh connection; returns (ok, latency, detail)."""
    started = time.perf_counter()
    try:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout
        )
        try:
            writer.write(request)
            await asyncio.wait_for(writer.drain(), timeout)
            raw = await asyncio.wait_for(reader.read(), timeout)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        elapsed = time.perf_counter() - started
        head, _, body = raw.partition(b"\r\n\r\n")
        status_line = head.split(b"\r\n", 1)[0].decode("latin-1", "replace")
        parts = status_line.split()
        if len(parts) < 2 or parts[1] != "200":
            return False, elapsed, status_line or "empty response"
        payload = json.loads(body.decode("utf-8"))
        job_status = payload.get("job", {}).get("status")
        if job_status not in ("done", "queued", "running"):
            return False, elapsed, f"unexpected job status {job_status!r}"
        return True, elapsed, job_status
    except Exception as exc:  # noqa: BLE001 - every failure is a data point
        return False, time.perf_counter() - started, f"{type(exc).__name__}: {exc}"


async def _run_async(
    host: str,
    port: int,
    spec: dict[str, Any],
    requests: int,
    concurrency: int,
    timeout: float,
) -> dict[str, Any]:
    body = json.dumps(spec).encode("utf-8")
    request = (
        b"POST /api/v1/jobs HTTP/1.1\r\n"
        b"Host: " + host.encode("latin-1") + b"\r\n"
        b"Content-Type: application/json\r\n"
        b"Content-Length: " + str(len(body)).encode("latin-1") + b"\r\n"
        b"Connection: close\r\n\r\n" + body
    )
    semaphore = asyncio.Semaphore(concurrency)

    async def bounded() -> tuple[bool, float, str]:
        async with semaphore:
            return await _one_request(host, port, request, timeout)

    started = time.perf_counter()
    outcomes = await asyncio.gather(*(bounded() for _ in range(requests)))
    wall = time.perf_counter() - started

    latencies = sorted(lat for _ok, lat, _detail in outcomes)
    errors = [detail for ok, _lat, detail in outcomes if not ok]
    statuses: dict[str, int] = {}
    for ok, _lat, detail in outcomes:
        if ok:
            statuses[detail] = statuses.get(detail, 0) + 1
    return {
        "requests": requests,
        "concurrency": concurrency,
        "ok": requests - len(errors),
        "errors": len(errors),
        "error_samples": errors[:5],
        "job_statuses": statuses,
        "wall_s": wall,
        "rps": requests / wall if wall > 0 else 0.0,
        "latency_s": {
            "mean": sum(latencies) / len(latencies) if latencies else 0.0,
            "p50": _quantile(latencies, 0.50),
            "p95": _quantile(latencies, 0.95),
            "p99": _quantile(latencies, 0.99),
            "max": latencies[-1] if latencies else 0.0,
        },
    }


def run_load_test(
    host: str,
    port: int,
    spec: Optional[dict[str, Any]] = None,
    requests: int = 500,
    concurrency: int = 100,
    timeout: float = 30.0,
) -> dict[str, Any]:
    """Replay ``requests`` submissions of ``spec`` with bounded concurrency.

    ``spec`` defaults to a fast-profile fig5 over the two smallest
    densities — the canonical warm-store probe.  Runs its own event
    loop; call from sync code only.
    """
    if spec is None:
        spec = {"kind": "figure", "figure": "fig5", "profile": "fast", "xs": [50, 100]}
    if requests < 1 or concurrency < 1:
        raise ValueError("requests and concurrency must be positive")
    return asyncio.run(
        _run_async(host, port, spec, requests, min(concurrency, requests), timeout)
    )
