"""``repro.service`` — the async sweep/results service.

The experiment layer answers "run this figure *here*, *now*"; this
package turns the same machinery into a long-lived daemon: submit a
run, sweep, or figure spec over HTTP, get a job id, poll or stream its
progress, and fetch results that are **bit-identical** to an in-process
``repro figure`` run — the daemon executes the exact
:class:`~repro.experiments.figures.FigurePlan` configs through the same
``_safe_run`` entry point and reassembles them through the same
summarization path.

Layering (each module only looks down):

* :mod:`.backend` — :class:`StorageBackend` abstraction over the
  content-addressed :class:`~repro.experiments.store.RunStore`;
  :class:`LocalDirBackend` adds a sqlite listing index.
* :mod:`.jobs` — untrusted-JSON request parsing into immutable
  :class:`JobRequest` specs, request-key hashing, the mutable
  :class:`Job` record.
* :mod:`.scheduler` — :class:`JobScheduler`: priority queue, process
  pool, store-hit short-circuit, job- and run-level coalescing,
  persist-on-resolve.
* :mod:`.http` — :class:`ServiceDaemon`: the stdlib-asyncio HTTP/1.1
  JSON API with SSE progress streams and ``/metrics``.
* :mod:`.client` — blocking :class:`ServiceClient` for scripts and the
  ``repro client`` CLI verbs.
* :mod:`.loadtest` — :func:`run_load_test`, the concurrent replay tool
  behind ``repro loadtest``.
* :mod:`.logs` — :class:`JsonLogger`, line-oriented structured logs
  with request/job/run correlation ids (``repro serve --log-json``).
* :mod:`.top` — :func:`run_top`, the live terminal dashboard behind
  ``repro top``.

Every request is traced end to end through these layers via
:mod:`repro.obs.spans`: the daemon roots an ``http.request`` span, the
scheduler hangs queue-wait/dedup/execute/store spans under it (including
in-worker spans propagated across the process boundary), and
``GET /api/v1/jobs/<id>/trace`` serves the assembled tree.
"""

from .backend import LocalDirBackend, StorageBackend
from .client import ServiceClient, ServiceError
from .http import ServiceDaemon, build_service
from .jobs import DEFAULT_PRIORITY, Job, JobRequest, RequestError, parse_request
from .loadtest import run_load_test
from .logs import JsonLogger
from .scheduler import JobScheduler
from .top import render_top, run_top

__all__ = [
    "StorageBackend",
    "LocalDirBackend",
    "RequestError",
    "JobRequest",
    "Job",
    "parse_request",
    "DEFAULT_PRIORITY",
    "JobScheduler",
    "ServiceDaemon",
    "build_service",
    "ServiceClient",
    "ServiceError",
    "run_load_test",
    "JsonLogger",
    "render_top",
    "run_top",
]
