"""Structured JSON logging for the service daemon.

One JSON object per line on a stream (stderr by default), so daemon
output can be shipped straight into any log pipeline and joined against
traces: every event carries the ids that matter — ``correlation_id``
(the request's trace id), ``job`` and ``run.key`` where applicable — so
a log line, a span tree, and a stored run artifact all cross-reference.

Disabled loggers (the default — ``repro serve`` without ``--log-json``)
are a no-op: one attribute check per call site, no formatting cost.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Any, Optional, TextIO

__all__ = ["JsonLogger"]


class JsonLogger:
    """Line-oriented JSON event logger.

    ``log("job.finished", job="job-000001", status="done")`` emits::

        {"event": "job.finished", "job": "job-000001", "level": "info",
         "service": "repro-serve", "status": "done", "ts": 1719...}

    Keys are sorted, values fall back to ``str`` — a log call can never
    raise out of the serving path.
    """

    __slots__ = ("enabled", "service", "stream", "lines")

    def __init__(
        self,
        enabled: bool = True,
        stream: Optional[TextIO] = None,
        service: str = "repro-serve",
    ) -> None:
        self.enabled = enabled
        self.stream = stream
        self.service = service
        self.lines = 0

    def log(self, event: str, level: str = "info", **fields: Any) -> None:
        if not self.enabled:
            return
        record = {
            "ts": time.time(),
            "level": level,
            "service": self.service,
            "event": event,
            **fields,
        }
        out = self.stream if self.stream is not None else sys.stderr
        try:
            out.write(json.dumps(record, sort_keys=True, default=str) + "\n")
            out.flush()
            self.lines += 1
        except (ValueError, OSError):  # closed stream: logging must not kill serving
            pass

    def error(self, event: str, **fields: Any) -> None:
        self.log(event, level="error", **fields)
