"""The service daemon: a stdlib-asyncio HTTP/1.1 JSON API.

No web framework — the container ships only the standard library, so
the daemon speaks a deliberately small slice of HTTP/1.1 over
``asyncio.start_server``: one request per connection (the daemon always
answers ``Connection: close``), JSON bodies, and ``text/event-stream``
for progress streaming.  That slice is all the bundled client, the load
tester, and ``curl`` need.

Routes (all under ``/api/v1`` except the operational pair)::

    POST /api/v1/jobs               submit a run/sweep/figure request
    GET  /api/v1/jobs               list jobs
    GET  /api/v1/jobs/<id>          job status
    GET  /api/v1/jobs/<id>/events   SSE progress stream (until terminal)
    GET  /api/v1/jobs/<id>/result   results of a finished job
    GET  /api/v1/jobs/<id>/trace    the job's span tree (request tracing)
    GET  /api/v1/trace              recent spans (?limit=&name=&trace=)
    GET  /api/v1/runs               stored-run summaries (sqlite index)
    GET  /api/v1/runs/<key>         one stored entry (identity+metrics)
    GET  /api/v1/runs/<key>/timeline  stored probe timeline
    GET  /metrics                   registry snapshot + derived ratios
    GET  /healthz                   liveness probe

Every request increments ``service.requests{route=...,code=...}`` and
observes ``service.request_latency_s{route=...}`` — route labels are
the *templates* (``/api/v1/jobs/{id}``), not raw paths, to keep label
cardinality bounded.

Every request also opens an ``http.request`` span whose trace id is the
request's **correlation id**: error payloads echo it, structured logs
carry it, and a submission's whole job tree (queue wait, dedup verdicts,
worker execution, store writes) parents under it — see
:mod:`repro.obs.spans` and ``GET /api/v1/jobs/<id>/trace``.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any, Optional
from urllib.parse import parse_qs

from ..obs.registry import MetricsRegistry, summarize_histogram
from ..obs.spans import DEFAULT_SPAN_CAPACITY, SpanStore, span_tree
from .backend import StorageBackend
from .jobs import RequestError, parse_request
from .logs import JsonLogger
from .scheduler import JobScheduler

__all__ = ["ServiceDaemon", "build_service"]

#: submission bodies above this are rejected (413) before parsing
MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
}

#: request-latency histogram edges (seconds): service calls are fast
_LATENCY_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5)


class _HttpError(Exception):
    def __init__(self, code: int, message: str) -> None:
        super().__init__(message)
        self.code = code


class ServiceDaemon:
    """One listening socket over a backend + scheduler pair."""

    def __init__(
        self,
        backend: StorageBackend,
        scheduler: JobScheduler,
        host: str = "127.0.0.1",
        port: int = 0,
        sse_keepalive: float = 15.0,
    ) -> None:
        self.backend = backend
        self.scheduler = scheduler
        self.registry = scheduler.registry
        self.spans = scheduler.spans
        self.log = scheduler.log
        self.host = host
        self.port = port
        self.sse_keepalive = sse_keepalive
        self.started_at: Optional[float] = None
        self._server: Optional[asyncio.base_events.Server] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the socket (port 0 picks an ephemeral port) and serve."""
        await self.scheduler.start()
        self._server = await asyncio.start_server(self._handle_conn, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self.started_at = time.time()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.scheduler.stop()
        self.backend.close()

    async def serve_forever(self) -> None:
        assert self._server is not None, "daemon not started"
        await self._server.serve_forever()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        started = time.perf_counter()
        route = "unknown"
        code = 500
        # the span's trace id doubles as the request correlation id:
        # error payloads echo it, log lines and the job's span tree join on it
        span = self.spans.start("http.request")
        try:
            parse_span = self.spans.start("http.parse", parent=span)
            parsed = await self._read_request(reader)
            if parsed is None:
                parse_span.end(empty=True)
                code = 0  # connection probe, no request to answer
                return
            method, path, query, body = parsed
            parse_span.end(method=method, path=path)
            span.set(method=method, path=path)
            # resolve the route label up front so a handler that raises is
            # still attributed to its route (error counters, access logs)
            route = self._route_label(method, path)
            route, code, payload, stream = self._dispatch(method, path, query, body, span)
            if stream is not None:
                code = 200
                await stream(writer)
            else:
                write_span = self.spans.start("response.write", parent=span, code=code)
                self._send_json(writer, code, payload)
                write_span.end()
        except _HttpError as exc:
            code = exc.code
            self._send_json(
                writer,
                exc.code,
                {"error": str(exc), "correlation_id": span.trace_id},
            )
        except (ConnectionError, asyncio.IncompleteReadError):
            return  # client went away mid-request; nothing to answer
        except Exception as exc:  # noqa: BLE001 - one bad request must not kill the daemon
            code = 500
            self.registry.counter("http.errors", route=route).inc()
            self.log.error(
                "http.error",
                route=route,
                correlation_id=span.trace_id,
                error=f"{type(exc).__name__}: {exc}",
            )
            try:
                self._send_json(
                    writer,
                    500,
                    {
                        "error": f"{type(exc).__name__}: {exc}",
                        "correlation_id": span.trace_id,
                    },
                )
            except ConnectionError:
                pass
        finally:
            duration = time.perf_counter() - started
            span.end(
                "error" if code >= 500 else "ok", route=route, code=code
            )
            self.registry.counter("service.requests", route=route, code=str(code)).inc()
            self.registry.histogram(
                "service.request_latency_s", _LATENCY_BUCKETS, route=route
            ).observe(duration)
            self.log.log(
                "http.request",
                route=route,
                code=code,
                duration_s=round(duration, 6),
                correlation_id=span.trace_id,
            )
            try:
                if writer.can_write_eof():
                    writer.write_eof()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _read_request(
        reader: asyncio.StreamReader,
    ) -> Optional[tuple[str, str, dict[str, str], bytes]]:
        request_line = await reader.readline()
        if not request_line.strip():
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            raise _HttpError(400, "malformed request line")
        method, target = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError as exc:
            raise _HttpError(400, "bad content-length") from exc
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length) if length > 0 else b""
        path, _, query_string = target.partition("?")
        query = {k: v[-1] for k, v in parse_qs(query_string).items()}
        return method, path, query, body

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _dispatch(
        self,
        method: str,
        path: str,
        query: dict[str, str],
        body: bytes,
        span=None,
    ):
        """Returns ``(route_label, code, payload, sse_coroutine_or_None)``."""
        # NOTE: keep in sync with _route_label, which resolves the same
        # patterns without side effects for error attribution
        parts = [p for p in path.split("/") if p]
        if parts == ["healthz"] and method == "GET":
            return "/healthz", 200, {"ok": True, "started_at": self.started_at}, None
        if parts == ["metrics"] and method == "GET":
            return "/metrics", 200, self._metrics_payload(), None
        if len(parts) >= 2 and parts[:2] == ["api", "v1"]:
            rest = parts[2:]
            if rest == ["jobs"]:
                if method == "POST":
                    return "POST /api/v1/jobs", *self._submit(body, span), None
                if method == "GET":
                    jobs = [j.as_dict() for j in self.scheduler.list_jobs()]
                    return "GET /api/v1/jobs", 200, {"jobs": jobs}, None
                raise _HttpError(405, f"{method} not allowed on /api/v1/jobs")
            if rest == ["trace"] and method == "GET":
                return "GET /api/v1/trace", 200, self._trace_payload(query), None
            if len(rest) >= 2 and rest[0] == "jobs" and method == "GET":
                job = self.scheduler.get(rest[1])
                if job is None:
                    raise _HttpError(404, f"no such job {rest[1]!r}")
                if len(rest) == 2:
                    return "GET /api/v1/jobs/{id}", 200, job.as_dict(), None
                if rest[2:] == ["result"]:
                    route = "GET /api/v1/jobs/{id}/result"
                    if job.status == "failed":
                        raise _HttpError(409, f"job {job.id} failed: {job.error}")
                    if job.status != "done":
                        raise _HttpError(409, f"job {job.id} is {job.status}")
                    return route, 200, job.result_payload(), None
                if rest[2:] == ["trace"]:
                    route = "GET /api/v1/jobs/{id}/trace"
                    return route, 200, self._job_trace_payload(job), None
                if rest[2:] == ["events"]:
                    stream = lambda w: self._stream_events(w, job)  # noqa: E731
                    return "GET /api/v1/jobs/{id}/events", 200, None, stream
            if rest == ["runs"] and method == "GET":
                return "GET /api/v1/runs", 200, {"runs": self.backend.summaries()}, None
            if len(rest) >= 2 and rest[0] == "runs" and method == "GET":
                key = rest[1]
                if len(rest) == 2:
                    entry = self.backend.entry(key)
                    if entry is None:
                        raise _HttpError(404, f"no stored run {key!r}")
                    return "GET /api/v1/runs/{key}", 200, entry, None
                if rest[2:] == ["timeline"]:
                    timeline = self.backend.timeline(key)
                    if timeline is None:
                        raise _HttpError(404, f"no stored timeline for {key!r}")
                    return "GET /api/v1/runs/{key}/timeline", 200, timeline, None
        raise _HttpError(404, f"no route for {method} {path}")

    @staticmethod
    def _route_label(method: str, path: str) -> str:
        """The low-cardinality route label for a request path.

        Pure pattern matching — no lookups, no side effects — so it can
        run before dispatch; unmatched paths collapse to ``"unknown"``
        rather than minting one counter series per garbage URL.
        """
        parts = [p for p in path.split("/") if p]
        if parts == ["healthz"]:
            return "/healthz"
        if parts == ["metrics"]:
            return "/metrics"
        if parts[:2] == ["api", "v1"]:
            rest = parts[2:]
            if rest == ["jobs"] or rest == ["runs"] or rest == ["trace"]:
                return f"{method} /api/v1/{rest[0]}"
            if len(rest) >= 2 and rest[0] == "jobs":
                if len(rest) == 2:
                    return f"{method} /api/v1/jobs/{{id}}"
                if rest[2:] in (["result"], ["trace"], ["events"]):
                    return f"{method} /api/v1/jobs/{{id}}/{rest[2]}"
            if len(rest) >= 2 and rest[0] == "runs":
                if len(rest) == 2:
                    return f"{method} /api/v1/runs/{{key}}"
                if rest[2:] == ["timeline"]:
                    return f"{method} /api/v1/runs/{{key}}/timeline"
        return "unknown"

    def _submit(self, body: bytes, span=None) -> tuple[int, dict[str, Any]]:
        try:
            data = json.loads(body.decode("utf-8")) if body else None
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HttpError(400, f"body is not valid JSON: {exc}") from exc
        try:
            request = parse_request(data)
        except RequestError as exc:
            raise _HttpError(400, str(exc)) from exc
        job, coalesced = self.scheduler.submit(request, parent=span)
        return 200, {"job": job.as_dict(), "coalesced": coalesced}

    def _job_trace_payload(self, job) -> dict[str, Any]:
        spans = self.spans.trace(job.trace_id) if job.trace_id else []
        return {
            "job_id": job.id,
            "trace_id": job.trace_id,
            "tracing_enabled": self.spans.enabled,
            "spans": spans,
            "tree": span_tree(spans),
        }

    def _trace_payload(self, query: dict[str, str]) -> dict[str, Any]:
        raw_limit = query.get("limit", "100")
        try:
            limit = int(raw_limit)
        except ValueError as exc:
            raise _HttpError(400, f"bad limit {raw_limit!r}") from exc
        if limit < 1:
            raise _HttpError(400, f"limit must be positive, got {limit}")
        spans = self.spans.recent(
            limit=limit, name=query.get("name"), trace_id=query.get("trace")
        )
        return {"spans": spans, "stats": self.spans.stats()}

    def _metrics_payload(self) -> dict[str, Any]:
        hits = self.registry.value("store.hit")
        misses = self.registry.value("store.miss")
        lookups = hits + misses
        snapshot = self.registry.snapshot()
        # percentile summaries derived from the histogram buckets, so
        # dashboards don't have to re-implement the interpolation
        latency: dict[str, Any] = {}
        prefix = "service.request_latency_s{route="
        for key, sample in snapshot["histograms"].items():
            if key.startswith(prefix) and key.endswith("}"):
                latency[key[len(prefix):-1]] = summarize_histogram(sample)
        job_wall = snapshot["histograms"].get("service.job_wall_s")
        return {
            "derived": {
                "hit_ratio": (hits / lookups) if lookups else None,
                "store_lookups": lookups,
                "queue_depth": self.registry.value("service.queue_depth"),
                "workers_busy": self.registry.value("service.workers_busy"),
                "jobs": len(self.scheduler.jobs),
            },
            "latency": latency,
            "job_wall": summarize_histogram(job_wall) if job_wall else None,
            "spans": self.spans.stats(),
            "backend": self.backend.stats(),
            "registry": snapshot,
        }

    # ------------------------------------------------------------------
    # responses
    # ------------------------------------------------------------------
    @staticmethod
    def _send_json(writer: asyncio.StreamWriter, code: int, payload: Any) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        reason = _REASONS.get(code, "Unknown")
        head = (
            f"HTTP/1.1 {code} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)

    async def _stream_events(self, writer: asyncio.StreamWriter, job) -> None:
        """SSE: emit the job snapshot on every change until terminal."""
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n"
        )
        last = -1
        while True:
            if job.version != last:
                snapshot = job.as_dict()
                last = snapshot["version"]
                writer.write(
                    f"data: {json.dumps(snapshot, sort_keys=True)}\n\n".encode("utf-8")
                )
                await writer.drain()
                if job.terminal:
                    return
            changed = await self.scheduler.wait_change(
                job, last, timeout=self.sse_keepalive
            )
            if not changed:
                writer.write(b": keep-alive\n\n")
                await writer.drain()


def build_service(
    store_root,
    host: str = "127.0.0.1",
    port: int = 0,
    run_workers: int = 2,
    registry: Optional[MetricsRegistry] = None,
    spans: bool = True,
    span_capacity: int = DEFAULT_SPAN_CAPACITY,
    log_json: bool = False,
) -> ServiceDaemon:
    """Wire backend + scheduler + daemon over one store directory.

    Request tracing is on by default (``spans=False`` or
    ``span_capacity=0`` disables retention without touching the serving
    path); ``log_json`` turns on structured JSON logs on stderr.
    """
    from .backend import LocalDirBackend

    backend = LocalDirBackend(store_root, registry=registry)
    span_store = SpanStore(span_capacity if spans else 0, registry=backend.registry)
    log = JsonLogger(enabled=log_json)
    scheduler = JobScheduler(
        backend, run_workers=run_workers, spans=span_store, log=log
    )
    return ServiceDaemon(backend, scheduler, host=host, port=port)
