"""Async job scheduler: priority queue over a process pool.

The scheduler owns the daemon's execution state:

* a **priority queue** of accepted jobs (``(priority, seq)`` order, so
  equal priorities drain FIFO) drained by N async job workers;
* a shared :class:`~concurrent.futures.ProcessPoolExecutor` that runs
  the actual simulations via the same picklable
  :func:`~repro.experiments.sweeps._safe_run` entry point the sweep
  machinery uses — results are bit-identical to a local run;
* three layers of **work deduplication**, cheapest first:

  1. *store hits* — every run is probed against the backend at
     submission, so a warm request finishes without queueing at all
     (``from_cache``);
  2. *job coalescing* — a submission whose request key matches a
     queued/running job returns that job's id instead of enqueueing a
     duplicate;
  3. *run coalescing* — distinct jobs that overlap on individual runs
     share in-flight futures keyed by content hash, so each unique run
     executes exactly once no matter how many jobs want it.

Results are persisted through the backend **the moment each future
resolves**, before the owning job finishes — a crash loses at most the
in-flight runs, and later duplicate submissions resolve as store hits.

A hard-crashed pool worker (``BrokenProcessPool``) fails the affected
runs, and the pool is rebuilt so the daemon keeps serving subsequent
jobs.
"""

from __future__ import annotations

import asyncio
import dataclasses
import itertools
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Optional

from ..experiments.metrics import RunMetrics
from ..experiments.sweeps import RunFailure, _safe_run
from ..obs.registry import MetricsRegistry
from ..obs.spans import SpanStore, make_span, new_span_id
from .backend import StorageBackend
from .jobs import Job, JobRequest
from .logs import JsonLogger

__all__ = ["JobScheduler", "_traced_safe_run"]

#: job wall-clock histogram edges (seconds) — jobs run longer than the
#: default latency-oriented buckets
JOB_WALL_BUCKETS = (0.005, 0.02, 0.1, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0)


def _traced_safe_run(index: int, cfg, ctx: Optional[dict[str, Any]]):
    """Pool entry point: ``_safe_run`` plus an in-worker span.

    The worker process cannot reach the daemon's :class:`SpanStore`, so
    it returns ``(outcome, [span payload])`` built against the
    propagated ids (``ctx``: trace_id + parent span id + run key); the
    scheduler ingests the payloads and the tree crosses the process
    boundary seamlessly.  With ``ctx=None`` (tracing off) this is
    ``_safe_run`` plus one tuple — the simulation itself is untouched
    either way, which is what keeps RunMetrics bit-identical.
    """
    start_s = time.time()
    outcome = _safe_run(index, cfg)
    if ctx is None:
        return outcome, []
    failed = isinstance(outcome, RunFailure)
    span = make_span(
        "worker.run",
        ctx["trace_id"],
        new_span_id(),
        ctx["parent_id"],
        start_s,
        time.time(),
        {"run.key": ctx.get("run_key"), "worker.pid": os.getpid()},
        "error" if failed else "ok",
    )
    return outcome, [span]


class JobScheduler:
    """Priority job queue + process-pool execution + coalescing."""

    def __init__(
        self,
        backend: StorageBackend,
        run_workers: int = 2,
        job_workers: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
        spans: Optional[SpanStore] = None,
        log: Optional[JsonLogger] = None,
    ) -> None:
        self.backend = backend
        self.registry = registry if registry is not None else backend.registry
        #: span sink — on by default (bounded ring); SpanStore(0) disables
        self.spans = spans if spans is not None else SpanStore(registry=self.registry)
        self.log = log if log is not None else JsonLogger(enabled=False)
        self.run_workers = max(1, run_workers)
        #: concurrent jobs in flight; more than pool slots so an
        #: all-coalesced job cannot starve behind a pool-bound one
        self.job_workers = job_workers if job_workers is not None else self.run_workers + 1
        self.jobs: dict[str, Job] = {}
        self._queue: asyncio.PriorityQueue = asyncio.PriorityQueue()
        self._seq = itertools.count()
        self._job_seq = itertools.count(1)
        #: queued/running jobs by request key (job-level coalescing)
        self._active: dict[str, Job] = {}
        #: in-flight run futures by content key (run-level coalescing)
        self._inflight: dict[str, asyncio.Future] = {}
        self._pool: Optional[ProcessPoolExecutor] = None
        self._tasks: list[asyncio.Task] = []
        self._wakeup: Optional[asyncio.Event] = None
        self._gauge_queue = self.registry.gauge("service.queue_depth")
        self._gauge_busy = self.registry.gauge("service.workers_busy")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._wakeup = asyncio.Event()
        self._pool = ProcessPoolExecutor(max_workers=self.run_workers)
        self.registry.gauge("service.run_workers").set(self.run_workers)
        self.registry.gauge("service.job_workers").set(self.job_workers)
        self._tasks = [
            asyncio.create_task(self._job_worker(), name=f"job-worker-{i}")
            for i in range(self.job_workers)
        ]

    async def stop(self) -> None:
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._tasks = []
        if self._pool is not None:
            pool, self._pool = self._pool, None
            # join the pool off-loop: wait=False would leave its
            # management thread racing the interpreter's atexit hook
            # (an "Exception ignored ... Bad file descriptor" at exit)
            await asyncio.get_running_loop().run_in_executor(
                None, lambda: pool.shutdown(wait=True, cancel_futures=True)
            )

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self, request: JobRequest, parent: Optional[object] = None
    ) -> tuple[Job, bool]:
        """Accept a parsed request; returns ``(job, coalesced)``.

        Runs already in the store resolve immediately; a request whose
        every run is stored completes synchronously (``from_cache``)
        without touching the queue.  A request key matching an active
        job coalesces onto it instead of enqueueing a duplicate.

        ``parent`` (a span or span context, usually the daemon's
        ``http.request`` span) roots the job's span tree in the
        submitting request's trace.
        """
        existing = self._active.get(request.request_key)
        if existing is not None:
            self.registry.counter("service.jobs_coalesced").inc()
            if parent is not None:
                self.spans.event(
                    "dedup",
                    parent=parent,
                    verdict="coalesced",
                    job=existing.id,
                    request_key=request.request_key,
                )
            self.log.log(
                "job.coalesced", job=existing.id, request_key=request.request_key
            )
            return existing, True

        job = Job(id=f"job-{next(self._job_seq):06d}", request=request)
        span = self.spans.start(
            "job",
            parent=parent,
            job=job.id,
            kind=request.kind,
            request_key=request.request_key,
            priority=request.priority,
        )
        job.span = span
        job.trace_id = span.trace_id
        job.results = [None] * job.total
        self.registry.counter("service.jobs_submitted", kind=request.kind).inc()
        probe = self.spans.start("store.probe", parent=span, runs=job.total)
        for i, cfg in enumerate(request.configs):
            cached = self.backend.get_run(cfg)
            if cached is not None:
                job.results[i] = cached
                job.hits += 1
                job.done += 1
                # submit-time store hit: this run never reaches the queue
                self.spans.event(
                    "dedup", parent=span, verdict="store-hit", **{"run.key": request.run_keys[i]}
                )
            else:
                job.pending.append((i, cfg))
        probe.end(hits=job.hits, misses=len(job.pending))
        self.jobs[job.id] = job
        self.log.log(
            "job.submitted",
            job=job.id,
            kind=request.kind,
            correlation_id=span.trace_id,
            runs=job.total,
            store_hits=job.hits,
        )
        if not job.pending:
            job.from_cache = True
            job.finished_at = time.time()
            self._finish(job, "done")
        else:
            self._active[request.request_key] = job
            job.queue_span = self.spans.start("queue.wait", parent=span, job=job.id)
            self._queue.put_nowait((request.priority, next(self._seq), job.id))
            self._gauge_queue.inc()
            self._touch(job)
        return job, False

    def get(self, job_id: str) -> Optional[Job]:
        return self.jobs.get(job_id)

    def list_jobs(self) -> list[Job]:
        return sorted(self.jobs.values(), key=lambda j: j.id)

    # ------------------------------------------------------------------
    # change notification (SSE)
    # ------------------------------------------------------------------
    async def wait_change(
        self, job: Job, last_version: int, timeout: float = 30.0
    ) -> bool:
        """Block until ``job.version`` moves past ``last_version``.

        Returns True on a change, False on timeout (SSE keep-alive).
        """
        deadline = time.monotonic() + timeout
        while job.version == last_version:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return False
            event = self._wakeup
            assert event is not None, "scheduler not started"
            try:
                await asyncio.wait_for(event.wait(), timeout=remaining)
            except asyncio.TimeoutError:
                return False
        return True

    def _touch(self, job: Job) -> None:
        job.version += 1
        if self._wakeup is not None:
            event, self._wakeup = self._wakeup, asyncio.Event()
            event.set()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    async def _job_worker(self) -> None:
        while True:
            _prio, _seq, job_id = await self._queue.get()
            self._gauge_queue.dec()
            job = self.jobs[job_id]
            self._gauge_busy.inc()
            job.status = "running"
            job.started_at = time.time()
            if job.queue_span is not None:
                job.queue_span.end()
            self.log.log("job.started", job=job.id, correlation_id=job.trace_id)
            self._touch(job)
            try:
                await self._execute(job)
                status = "failed" if job.error else "done"
            except asyncio.CancelledError:
                job.error = "daemon shut down"
                job.finished_at = time.time()
                self._finish(job, "failed")
                self._gauge_busy.dec()
                raise
            except BaseException as exc:  # pragma: no cover - defensive
                job.error = f"{type(exc).__name__}: {exc}"
                status = "failed"
            job.finished_at = time.time()
            self._finish(job, status)
            self._gauge_busy.dec()
            self._queue.task_done()

    def _finish(self, job: Job, status: str) -> None:
        job.status = status
        self._active.pop(job.request.request_key, None)
        self.registry.counter(f"service.jobs_{status}").inc()
        if job.finished_at is not None:
            self.registry.histogram("service.job_wall_s", JOB_WALL_BUCKETS).observe(
                job.finished_at - job.submitted_at
            )
        if job.queue_span is not None:
            job.queue_span.end()
        if job.span is not None:
            job.span.end(
                "error" if status == "failed" else "ok",
                job_status=status,
                from_cache=job.from_cache,
                hits=job.hits,
                executed=job.executed,
                coalesced=job.coalesced,
            )
        self.log.log(
            "job.finished",
            job=job.id,
            correlation_id=job.trace_id,
            status=status,
            from_cache=job.from_cache,
            hits=job.hits,
            executed=job.executed,
            coalesced=job.coalesced,
            error=job.error,
        )
        self._touch(job)

    async def _execute(self, job: Job) -> None:
        await asyncio.gather(
            *(self._run_one(job, i, cfg) for i, cfg in job.pending)
        )
        failures = [r for r in job.results if isinstance(r, RunFailure)]
        if failures:
            job.error = (
                f"{len(failures)} of {job.total} runs failed: {failures[0]}"
            )

    async def _run_one(self, job: Job, index: int, cfg) -> None:
        key = job.request.run_keys[index]
        run_span = self.spans.start(
            "run", parent=job.span, **{"run.key": key, "index": index}
        )
        shared = self._inflight.get(key)
        if shared is not None:
            # another job owns this run; share its future
            self.registry.counter("service.runs_coalesced").inc()
            job.coalesced += 1
            self.spans.event(
                "dedup", parent=run_span, verdict="in-flight", **{"run.key": key}
            )
            self.log.log(
                "run.coalesced", job=job.id, correlation_id=job.trace_id, **{"run.key": key}
            )
            outcome = await shared
        else:
            # the run may have landed in the store since submission
            # (an overlapping job persisted it) — re-probe before paying
            # for an execution, preserving exactly-once per content key
            cached = self.backend.get_run(cfg)
            if cached is not None:
                job.hits += 1
                self.spans.event(
                    "dedup", parent=run_span, verdict="store-hit", **{"run.key": key}
                )
                self.log.log(
                    "run.hit", job=job.id, correlation_id=job.trace_id, **{"run.key": key}
                )
                outcome = cached
            else:
                self.spans.event(
                    "dedup", parent=run_span, verdict="miss", **{"run.key": key}
                )
                future: asyncio.Future = asyncio.get_running_loop().create_future()
                self._inflight[key] = future
                outcome = None
                try:
                    outcome = await self._execute_run(index, cfg, key, run_span)
                    if isinstance(outcome, RunMetrics):
                        # persist before resolving waiters: by the time
                        # anyone observes completion, the store has it
                        put = self.spans.start(
                            "store.put", parent=run_span, **{"run.key": key}
                        )
                        self.backend.put_run(cfg, outcome)
                        put.end()
                    else:
                        self.registry.counter("service.runs_failed").inc()
                    job.executed += 1
                    self.log.log(
                        "run.executed",
                        job=job.id,
                        correlation_id=job.trace_id,
                        ok=isinstance(outcome, RunMetrics),
                        **{"run.key": key},
                    )
                finally:
                    self._inflight.pop(key, None)
                    if outcome is None:  # cancelled before the run resolved
                        outcome = RunFailure(index, cfg, "run aborted")
                    if not future.done():
                        future.set_result(outcome)
        failed = isinstance(outcome, RunFailure)
        run_span.end("error" if failed else "ok")
        if failed and outcome.index != index:
            outcome = dataclasses.replace(outcome, index=index)
        job.results[index] = outcome
        job.done += 1
        self._touch(job)

    async def _execute_run(self, index: int, cfg, key: str, parent=None):
        """One simulation on the pool; a dead worker becomes a failure."""
        pool = self._pool
        assert pool is not None, "scheduler not started"
        self.registry.counter("service.runs_executed").inc()
        loop = asyncio.get_running_loop()
        span = self.spans.start("worker.execute", parent=parent, **{"run.key": key})
        # propagate ids into the worker process so its in-worker span
        # parents under this one; skip the pickle round trip when off
        ctx = (
            {"trace_id": span.trace_id, "parent_id": span.span_id, "run_key": key}
            if self.spans.enabled
            else None
        )
        try:
            outcome, worker_spans = await loop.run_in_executor(
                pool, _traced_safe_run, index, cfg, ctx
            )
            self.spans.ingest(worker_spans)
            span.end("error" if isinstance(outcome, RunFailure) else "ok")
            return outcome
        except BrokenProcessPool as exc:
            span.end("error", error=f"worker process died: {exc}")
            self._rebuild_pool(pool)
            return RunFailure(index, cfg, f"worker process died: {exc}")
        except Exception as exc:  # pragma: no cover - defensive
            span.end("error", error=f"{type(exc).__name__}: {exc}")
            return RunFailure(index, cfg, f"{type(exc).__name__}: {exc}")

    def _rebuild_pool(self, broken: ProcessPoolExecutor) -> None:
        """Replace a broken pool so subsequent jobs keep executing."""
        if self._pool is not broken:
            return  # another waiter already swapped it
        self.registry.counter("service.pool_rebuilds").inc()
        broken.shutdown(wait=False, cancel_futures=True)
        self._pool = ProcessPoolExecutor(max_workers=self.run_workers)
