"""Per-node message caches.

Directed diffusion relies on small per-node caches of recently seen
messages (§2: "this cache serves to avoid duplicates, prevent loops, and
can be used to preferentially forward interests").  Two caches matter:

* :class:`SeenCache` — bounded LRU membership set used to suppress
  duplicate interests, data items, and incremental-cost messages.
* :class:`ExploratoryCache` — per exploratory-round bookkeeping: which
  neighbor delivered each copy, at what cumulative energy cost E, when,
  and the best incremental cost C heard per neighbor.  This is exactly
  the state both reinforcement rules read: the opportunistic rule takes
  the *first* delivering neighbor, the greedy rule the *cheapest* one
  (over E and C, ties to exploratory then to earliest delivery).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Hashable, Optional

__all__ = ["SeenCache", "ExploratoryRecord", "ExploratoryCache", "ReinforceChoice"]


class SeenCache:
    """Bounded LRU membership set."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._seen: OrderedDict[Hashable, None] = OrderedDict()

    def check_and_add(self, key: Hashable) -> bool:
        """Record ``key``; returns True when the key was previously unseen."""
        if key in self._seen:
            self._seen.move_to_end(key)
            return False
        self._seen[key] = None
        if len(self._seen) > self.capacity:
            self._seen.popitem(last=False)
        return True

    def __contains__(self, key: Hashable) -> bool:
        return key in self._seen

    def __len__(self) -> int:
        return len(self._seen)


@dataclass
class ExploratoryRecord:
    """Everything one node heard about one exploratory round."""

    #: cumulative energy cost E per delivering neighbor (min per neighbor)
    energy_by_neighbor: dict[int, float] = field(default_factory=dict)
    #: delivery time per neighbor (first copy)
    time_by_neighbor: dict[int, float] = field(default_factory=dict)
    #: first neighbor to deliver any copy (the opportunistic winner)
    first_neighbor: Optional[int] = None
    first_time: float = 0.0
    #: best incremental cost C per advertising neighbor
    inc_cost_by_neighbor: dict[int, float] = field(default_factory=dict)
    inc_time_by_neighbor: dict[int, float] = field(default_factory=dict)

    def min_energy(self) -> Optional[float]:
        """Cheapest E across delivering neighbors (the node's own cost)."""
        if not self.energy_by_neighbor:
            return None
        return min(self.energy_by_neighbor.values())


@dataclass(frozen=True)
class ReinforceChoice:
    """Outcome of a local reinforcement decision."""

    neighbor: int
    cost: float
    via_incremental: bool


class ExploratoryCache:
    """Bounded FIFO cache of :class:`ExploratoryRecord` s keyed by round."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._records: OrderedDict[Hashable, ExploratoryRecord] = OrderedDict()

    def _record(self, key: Hashable) -> ExploratoryRecord:
        rec = self._records.get(key)
        if rec is None:
            rec = ExploratoryRecord()
            self._records[key] = rec
            if len(self._records) > self.capacity:
                self._records.popitem(last=False)
        return rec

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def note_exploratory(
        self, key: Hashable, neighbor: int, energy_cost: float, now: float
    ) -> bool:
        """Record one delivered exploratory copy.

        Returns True when this is the first copy of the round seen at all
        (i.e. the copy that should be re-flooded).
        """
        rec = self._record(key)
        first = rec.first_neighbor is None
        if first:
            rec.first_neighbor = neighbor
            rec.first_time = now
        prev = rec.energy_by_neighbor.get(neighbor)
        if prev is None or energy_cost < prev:
            rec.energy_by_neighbor[neighbor] = energy_cost
        rec.time_by_neighbor.setdefault(neighbor, now)
        return first

    def note_incremental_cost(
        self, key: Hashable, neighbor: int, cost: float, now: float
    ) -> None:
        """Record an incremental-cost advertisement heard from ``neighbor``."""
        rec = self._record(key)
        prev = rec.inc_cost_by_neighbor.get(neighbor)
        if prev is None or cost < prev:
            rec.inc_cost_by_neighbor[neighbor] = cost
        rec.inc_time_by_neighbor.setdefault(neighbor, now)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def get(self, key: Hashable) -> Optional[ExploratoryRecord]:
        return self._records.get(key)

    def lowest_delay_choice(self, key: Hashable) -> Optional[ReinforceChoice]:
        """Opportunistic local rule: the neighbor that delivered first."""
        rec = self._records.get(key)
        if rec is None or rec.first_neighbor is None:
            return None
        cost = rec.energy_by_neighbor.get(rec.first_neighbor, float("inf"))
        return ReinforceChoice(rec.first_neighbor, cost, via_incremental=False)

    def lowest_cost_choice(
        self, key: Hashable, prefer: frozenset = frozenset()
    ) -> Optional[ReinforceChoice]:
        """Greedy local rule (§4.1): cheapest over exploratory E and
        incremental C.

        Tie order: (1) an incumbent from ``prefer`` — typically the
        current data-gradient neighbor, so equal-cost rounds do not churn
        the established tree; (2) the exploratory sender over the
        incremental-cost sender (the paper's rule); (3) the earliest
        delivery ("other ties are decided in favor of the lowest delay").
        """
        rec = self._records.get(key)
        if rec is None:
            return None
        candidates: list[tuple[float, int, int, float, int]] = []
        for neighbor, cost in rec.energy_by_neighbor.items():
            candidates.append(
                (
                    cost,
                    0 if neighbor in prefer else 1,
                    0,  # exploratory beats incremental on ties
                    rec.time_by_neighbor.get(neighbor, float("inf")),
                    neighbor,
                )
            )
        for neighbor, cost in rec.inc_cost_by_neighbor.items():
            candidates.append(
                (
                    cost,
                    0 if neighbor in prefer else 1,
                    1,
                    rec.inc_time_by_neighbor.get(neighbor, float("inf")),
                    neighbor,
                )
            )
        if not candidates:
            return None
        cost, _pref, via, _t, neighbor = min(candidates)
        return ReinforceChoice(neighbor, cost, via_incremental=bool(via))

    def __len__(self) -> int:
        return len(self._records)
