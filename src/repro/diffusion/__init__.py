"""Directed diffusion substrate (§2-§3 of the paper).

Data-centric naming, interests and gradients, exploratory floods,
duplicate-suppressing caches, the shared protocol engine
(:class:`DiffusionAgent`), and the baseline opportunistic instantiation.
The greedy instantiation lives in :mod:`repro.core`.
"""

from .agent import DeliverySink, DiffusionAgent, DiffusionParams, SourceState
from .attributes import (
    AttributeSet,
    InterestSpec,
    Op,
    Predicate,
    node_attributes,
    tracking_task,
)
from .cache import ExploratoryCache, ExploratoryRecord, ReinforceChoice, SeenCache
from .gradient import Gradient, GradientState, GradientTable
from .messages import (
    CONTROL_SIZE,
    EVENT_SIZE,
    AggregateMsg,
    DataItem,
    ExploratoryEvent,
    IncrementalCostMsg,
    InterestMsg,
    NegativeReinforcementMsg,
    ReinforcementMsg,
)
from .opportunistic import OpportunisticAgent

__all__ = [
    "DiffusionAgent",
    "DiffusionParams",
    "DeliverySink",
    "SourceState",
    "OpportunisticAgent",
    "AttributeSet",
    "InterestSpec",
    "Op",
    "Predicate",
    "node_attributes",
    "tracking_task",
    "ExploratoryCache",
    "ExploratoryRecord",
    "ReinforceChoice",
    "SeenCache",
    "Gradient",
    "GradientState",
    "GradientTable",
    "EVENT_SIZE",
    "CONTROL_SIZE",
    "DataItem",
    "InterestMsg",
    "ExploratoryEvent",
    "AggregateMsg",
    "IncrementalCostMsg",
    "ReinforcementMsg",
    "NegativeReinforcementMsg",
]
