"""The directed-diffusion protocol engine (shared by both instantiations).

One :class:`DiffusionAgent` runs on every node and implements everything
§2 describes: interest flooding with gradient setup, exploratory-event
flooding with duplicate suppression, data forwarding along data gradients
with in-network aggregation (T_a buffering + set-cover costing), positive
reinforcement propagation, and negative-reinforcement cascades.

The two instantiations the paper compares differ **only** in the local
rules injected through subclass hooks:

==============================  ===============================  =============================
hook                            opportunistic (baseline)          greedy (the contribution)
==============================  ===============================  =============================
``sink_on_exploratory``         reinforce first deliverer now     arm T_p, then cheapest
``choose_upstream``             first (lowest-delay) neighbor     min over cached E and C
``on_exploratory_first``        nothing                           on-tree sources emit C msgs
``truncation_victims``          duplicate-only senders            outside the source set cover
==============================  ===============================  =============================

Roles are per interest: a node may be a sink for its own interest, a
source for any interest whose predicates it matches, and an intermediate
forwarder for everything else — all at once.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Optional, Protocol

from ..aggregation.aggregator import AggregationBuffer
from ..aggregation.functions import AggregationFunction, PerfectAggregation
from ..net.node import Node
from ..sim import PeriodicTimer, ScheduledEvent
from .attributes import AttributeSet, InterestSpec, node_attributes
from .cache import ExploratoryCache, ReinforceChoice, SeenCache
from .gradient import GradientTable
from .messages import (
    AggregateMsg,
    DataItem,
    ExploratoryEvent,
    IncrementalCostMsg,
    InterestMsg,
    NegativeReinforcementMsg,
    ReinforcementMsg,
)

__all__ = ["DiffusionParams", "DeliverySink", "DiffusionAgent", "SourceState"]


@dataclass(frozen=True)
class DiffusionParams:
    """Protocol constants (§5.1 defaults)."""

    data_interval: float = 0.5           # 2 events per second per source
    exploratory_interval: float = 50.0   # one exploratory event per 50 s
    interest_interval: float = 5.0       # interest refresh period
    gradient_timeout: float = 15.0
    aggregation_delay: float = 0.5       # T_a
    reinforcement_timer: float = 1.0     # T_p (greedy sink decision delay)
    negative_window: float = 2.0         # T_n (= 4 x T_a)
    interest_jitter: float = 0.5         # desynchronise sink floods
    forward_jitter: float = 0.025        # flood re-broadcast jitter
    source_window: float = 2.0           # recency window for aggregation-point test
    repair_backoff: float = 1.0          # min gap between repair exploratories
    cache_capacity: int = 8192

    def __post_init__(self) -> None:
        for name in (
            "data_interval",
            "exploratory_interval",
            "interest_interval",
            "gradient_timeout",
            "aggregation_delay",
            "reinforcement_timer",
            "negative_window",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")


class DeliverySink(Protocol):
    """Metrics interface the experiment harness implements."""

    def on_generated(self, interest_id: int, item: DataItem) -> None:  # pragma: no cover
        ...

    def on_delivered(
        self, interest_id: int, sink_id: int, item: DataItem, time: float
    ) -> None:  # pragma: no cover
        ...


@dataclass
class SourceState:
    """Per-interest sensing state at a source node."""

    interest_id: int
    data_seq: int = 0
    exp_seq: int = 0
    data_timer: Optional[PeriodicTimer] = None
    exploratory_timer: Optional[PeriodicTimer] = None


@dataclass
class _WindowEntry:
    """One incoming aggregate remembered for the truncation window."""

    time: float
    from_id: int
    accepted_keys: frozenset
    all_keys: frozenset
    cost: float
    source_of: dict


class DiffusionAgent:
    """Base diffusion engine; see module docstring for the hook table."""

    scheme_name = "base"

    def __init__(
        self,
        node: Node,
        params: DiffusionParams,
        aggfn: Optional[AggregationFunction] = None,
        metrics: Optional[DeliverySink] = None,
    ) -> None:
        self.node = node
        self.sim = node.sim
        self.tracer = node.tracer
        self.params = params
        self.aggfn = aggfn or PerfectAggregation()
        self.metrics = metrics
        self.rng = node.mac.rng  # reuse the node's deterministic stream
        self.attributes: AttributeSet = node_attributes("tracking", node.x, node.y)
        self._merge_size = self.tracer.registry.histogram(
            "agg.merge_size", buckets=(1, 2, 3, 4, 6, 8, 12, 16, 24, 32)
        )

        # interest / gradient state
        self.own_interests: dict[int, InterestMsg] = {}
        self.known_interests: dict[int, InterestMsg] = {}
        self.gradients: dict[int, GradientTable] = {}
        self.interest_seen = SeenCache(params.cache_capacity)
        self.interest_timers: dict[int, PeriodicTimer] = {}

        # exploratory / reinforcement state
        self.exploratory_cache = ExploratoryCache(512)
        self.ic_seen = SeenCache(params.cache_capacity)
        self.reinforce_forwarded = SeenCache(params.cache_capacity)

        # data path state
        self.item_seen: dict[int, SeenCache] = {}
        self.buffers: dict[int, AggregationBuffer] = {}
        self.flush_events: dict[int, ScheduledEvent] = {}
        self.recent_sources: dict[int, dict[int, float]] = {}
        self.recent_item_sources: dict[int, dict[int, float]] = {}
        self.window: dict[int, deque[_WindowEntry]] = {}
        self.truncation_events: dict[int, ScheduledEvent] = {}
        self._dead_end_sent = SeenCache(params.cache_capacity)
        self._last_repair: dict[int, float] = {}

        # roles
        self.source_for: dict[int, SourceState] = {}

        node.set_protocol(self)

    # ==================================================================
    # role setup
    # ==================================================================
    def attach_sink(self, interest_id: int, spec: InterestSpec) -> None:
        """Make this node a sink: originate and periodically refresh the
        interest for ``spec``."""
        msg = InterestMsg(
            interest_id=interest_id,
            sink_id=self.node.node_id,
            spec=spec,
            data_interval=self.params.data_interval,
            exploratory_interval=self.params.exploratory_interval,
            gradient_timeout=self.params.gradient_timeout,
            timestamp=self.sim.now,
            refresh_seq=0,
        )
        self.own_interests[interest_id] = msg
        timer = PeriodicTimer(
            self.sim,
            lambda iid=interest_id: self._send_interest(iid),
            self.params.interest_interval,
            jitter=self.params.interest_jitter,
            rng=self.rng,
        )
        self.interest_timers[interest_id] = timer
        timer.start(initial_delay=self.rng.random() * self.params.interest_jitter)

    def _send_interest(self, interest_id: int) -> None:
        if not self.node.up:
            return
        prev = self.own_interests[interest_id]
        msg = InterestMsg(
            interest_id=interest_id,
            sink_id=prev.sink_id,
            spec=prev.spec,
            data_interval=prev.data_interval,
            exploratory_interval=prev.exploratory_interval,
            gradient_timeout=prev.gradient_timeout,
            timestamp=self.sim.now,
            refresh_seq=prev.refresh_seq + 1,
        )
        self.own_interests[interest_id] = msg
        self.known_interests[interest_id] = msg
        self.tracer.count("diffusion.interest_originated")
        self.node.broadcast(msg, msg.size)

    # ==================================================================
    # dispatch
    # ==================================================================
    def on_message(self, msg: Any, from_id: int) -> None:
        """MAC delivery entry point."""
        kind = type(msg)
        if kind is AggregateMsg:
            self._handle_aggregate(msg, from_id)
        elif kind is ExploratoryEvent:
            self._handle_exploratory(msg, from_id)
        elif kind is InterestMsg:
            self._handle_interest(msg, from_id)
        elif kind is ReinforcementMsg:
            self._handle_reinforcement(msg, from_id)
        elif kind is IncrementalCostMsg:
            self._handle_incremental_cost(msg, from_id)
        elif kind is NegativeReinforcementMsg:
            self._handle_negative(msg, from_id)
        else:  # pragma: no cover - future message types
            self.tracer.count("diffusion.unknown_message")

    # ==================================================================
    # interests and gradients
    # ==================================================================
    def _gradient_table(self, interest_id: int) -> GradientTable:
        table = self.gradients.get(interest_id)
        if table is None:
            # Data strength survives a missed reinforcement round (floods
            # are lossy) but decays after two: reinforcement recurs every
            # exploratory interval.
            table = GradientTable(
                self.params.gradient_timeout,
                data_timeout=max(
                    self.params.gradient_timeout,
                    2.2 * self.params.exploratory_interval,
                ),
            )
            self.gradients[interest_id] = table
        return table

    def _handle_interest(self, msg: InterestMsg, from_id: int) -> None:
        if msg.interest_id in self.own_interests:
            return  # our own interest echoed back; no gradient toward ourselves
        self._gradient_table(msg.interest_id).refresh_exploratory(from_id, self.sim.now)
        self.known_interests[msg.interest_id] = msg
        if not self.interest_seen.check_and_add((msg.interest_id, msg.refresh_seq)):
            return
        self.tracer.count("diffusion.interest_forwarded")
        # Re-flood with a short jitter to desynchronise neighbors.
        self.sim.schedule(
            self.rng.random() * self.params.forward_jitter, self._forward_interest, msg
        )
        if msg.spec.matches(self.attributes):
            self._activate_source(msg)

    def _forward_interest(self, msg: InterestMsg) -> None:
        if self.node.up:
            self.node.broadcast(msg, msg.size)

    # ==================================================================
    # source behaviour
    # ==================================================================
    def _activate_source(self, interest: InterestMsg) -> None:
        """Start sensing for a matching interest (idempotent)."""
        if interest.interest_id in self.source_for:
            return
        state = SourceState(interest.interest_id)
        self.source_for[interest.interest_id] = state
        self.tracer.count("diffusion.source_activated")
        state.exploratory_timer = PeriodicTimer(
            self.sim,
            lambda: self._send_exploratory(state),
            interest.exploratory_interval,
            jitter=self.params.forward_jitter * 4,
            rng=self.rng,
        )
        # First exploratory goes out (nearly) immediately on detection.
        state.exploratory_timer.start(initial_delay=self.rng.random() * 0.1)
        state.data_timer = PeriodicTimer(
            self.sim,
            lambda: self._generate_data(state),
            interest.data_interval,
            jitter=self.params.forward_jitter,
            rng=self.rng,
        )
        state.data_timer.start(initial_delay=interest.data_interval * self.rng.random())

    def _interest_fresh(self, interest_id: int) -> bool:
        msg = self.known_interests.get(interest_id) or self.own_interests.get(interest_id)
        if msg is None:
            return False
        return self.sim.now - msg.timestamp <= self.params.gradient_timeout

    def _send_exploratory(self, state: SourceState) -> None:
        if not self.node.up or not self._interest_fresh(state.interest_id):
            return
        state.exp_seq += 1
        msg = ExploratoryEvent(
            interest_id=state.interest_id,
            source_id=self.node.node_id,
            exp_seq=state.exp_seq,
            energy_cost=1.0,  # E = cost of delivering this copy to its receiver
            gen_time=self.sim.now,
        )
        self.tracer.count("diffusion.exploratory_originated")
        self.node.broadcast(msg, msg.size)

    def _generate_data(self, state: SourceState) -> None:
        if not self.node.up or not self._interest_fresh(state.interest_id):
            return
        state.data_seq += 1
        item = DataItem(self.node.node_id, state.data_seq, self.sim.now)
        self.tracer.count("diffusion.item_generated")
        if self.tracer.wants("data.gen"):
            self.tracer.record(
                "data.gen",
                node=self.node.node_id,
                interest=state.interest_id,
                src=item.source_id,
                seq=item.seq,
            )
        if self.metrics is not None:
            self.metrics.on_generated(state.interest_id, item)
        self._mark_item_seen(state.interest_id, item)
        self._route_local_item(state.interest_id, item)

    def _mark_item_seen(self, interest_id: int, item: DataItem) -> None:
        cache = self.item_seen.get(interest_id)
        if cache is None:
            cache = SeenCache(self.params.cache_capacity)
            self.item_seen[interest_id] = cache
        cache.check_and_add(item.key)

    def _route_local_item(self, interest_id: int, item: DataItem) -> None:
        outlets = self._usable_outlets(interest_id)
        if not outlets:
            self.tracer.count("diffusion.local_no_gradient")
            self._request_repair(interest_id)
            return
        self._note_source(interest_id, self._LOCAL)
        self._note_item_sources(interest_id, (item.source_id,))
        if self._is_aggregation_point(interest_id):
            self._buffer(interest_id).add_local(item)
            self._arm_flush(interest_id)
            self._maybe_early_flush(interest_id)
        else:
            out = AggregateMsg(
                interest_id=interest_id,
                items=(item,),
                energy_cost=1.0,
                size=self.aggfn.size(1),
            )
            self._send_data(out, outlets)

    def _request_repair(self, interest_id: int) -> None:
        """Source-side path repair: a source holding data but no usable
        data gradient re-floods an exploratory event (rate-limited) so the
        sink can re-reinforce without waiting a full exploratory period —
        the ns-2 diffusion behaviour of sending unreinforced data in
        exploratory mode, applied identically to both schemes."""
        state = self.source_for.get(interest_id)
        if state is None:
            return
        last = self._last_repair.get(interest_id, -float("inf"))
        if self.sim.now - last < self.params.repair_backoff:
            return
        self._last_repair[interest_id] = self.sim.now
        self.tracer.count("diffusion.repair_exploratory")
        self._send_exploratory(state)

    # ==================================================================
    # exploratory flood
    # ==================================================================
    def _handle_exploratory(self, msg: ExploratoryEvent, from_id: int) -> None:
        if msg.source_id == self.node.node_id:
            return  # our own flood echoed back
        first = self.exploratory_cache.note_exploratory(
            msg.key, from_id, msg.energy_cost, self.sim.now
        )
        if msg.interest_id in self.own_interests:
            if first:
                self.tracer.count("diffusion.exploratory_at_sink")
            self.sink_on_exploratory(msg, from_id, first)
            return
        if not first:
            return
        # Sources already on the tree may advertise an incremental cost.
        self.on_exploratory_first(msg, from_id)
        if msg.interest_id not in self.known_interests:
            self.tracer.count("diffusion.exploratory_unknown_interest")
            return
        forwarded = msg.hopped()
        self.sim.schedule(
            self.rng.random() * self.params.forward_jitter,
            self._forward_exploratory,
            forwarded,
        )

    def _forward_exploratory(self, msg: ExploratoryEvent) -> None:
        if self.node.up:
            self.tracer.count("diffusion.exploratory_forwarded")
            self.node.broadcast(msg, msg.size)

    # ==================================================================
    # data path
    # ==================================================================
    def _buffer(self, interest_id: int) -> AggregationBuffer:
        buf = self.buffers.get(interest_id)
        if buf is None:
            buf = AggregationBuffer(self.aggfn)
            self.buffers[interest_id] = buf
        return buf

    #: pseudo-sender id for locally generated items
    _LOCAL = -2

    def _note_source(self, interest_id: int, sender_id: int) -> None:
        self.recent_sources.setdefault(interest_id, {})[sender_id] = self.sim.now

    def _is_aggregation_point(self, interest_id: int) -> bool:
        """A node aggregates where data *flows converge*: >= 2 distinct
        recent upstream senders (local generation counts as one flow).
        Everyone else forwards immediately (§4.2: "an intermediate node
        that is not an aggregation point does not need to delay the data
        at all")."""
        recents = self.recent_sources.get(interest_id)
        if not recents:
            return False
        horizon = self.sim.now - self.params.source_window
        live = sum(1 for t in recents.values() if t >= horizon)
        return live >= 2

    def _usable_outlets(
        self, interest_id: int, exclude: tuple[int, ...] = ()
    ) -> list[int]:
        """Data-gradient neighbors data can actually progress through.

        A gradient toward a node that has itself been sending us data for
        this interest is a two-way edge — by construction a routing loop
        (each endpoint believes the other is downstream), so it is never
        a usable outlet.  ``exclude`` additionally applies split horizon:
        an aggregate is never returned to its own sender.
        """
        now = self.sim.now
        horizon = now - self.params.source_window
        recents = self.recent_sources.get(interest_id, {})
        outlets = []
        for n in self._gradient_table(interest_id).data_neighbors(now):
            if n in exclude:
                continue
            t = recents.get(n)
            if t is not None and t >= horizon:
                self.tracer.count("diffusion.loop_outlet_skipped")
                continue
            outlets.append(n)
        return outlets

    def _dead_end_negative(self, interest_id: int, senders: list[int]) -> None:
        """Data arrived but has nowhere to go: degrade the feeding paths.

        Rate-limited per (interest, neighbor) to one NR per negative
        window so transient reconfigurations do not flap."""
        for sender in senders:
            key = (interest_id, sender, int(self.sim.now / self.params.negative_window))
            if self._dead_end_sent.check_and_add(key):
                self.tracer.count("diffusion.dead_end_negative")
                self.send_negative(interest_id, sender)

    def _handle_aggregate(self, msg: AggregateMsg, from_id: int) -> None:
        self.tracer.count("diffusion.aggregate_received")
        cache = self.item_seen.get(msg.interest_id)
        if cache is None:
            cache = SeenCache(self.params.cache_capacity)
            self.item_seen[msg.interest_id] = cache
        accepted = [item for item in msg.items if cache.check_and_add(item.key)]
        if self.tracer.wants("data.rx"):
            self.tracer.record(
                "data.rx",
                node=self.node.node_id,
                interest=msg.interest_id,
                sender=from_id,
                keys=[list(item.key) for item in msg.items],
                accepted=[list(item.key) for item in accepted],
            )
        self._note_window(msg, from_id, accepted)
        if msg.interest_id in self.own_interests:
            deliver_wanted = self.tracer.wants("data.deliver")
            for item in accepted:
                self.tracer.count("diffusion.item_delivered")
                if deliver_wanted:
                    self.tracer.record(
                        "data.deliver",
                        interest=msg.interest_id,
                        sink=self.node.node_id,
                        key=list(item.key),
                    )
                if self.metrics is not None:
                    self.metrics.on_delivered(
                        msg.interest_id, self.node.node_id, item, self.sim.now
                    )
            return
        if not accepted:
            self.tracer.count("diffusion.aggregate_all_duplicate")
            return
        self._note_source(msg.interest_id, from_id)
        self._note_item_sources(msg.interest_id, (i.source_id for i in accepted))
        outlets = self._usable_outlets(msg.interest_id, exclude=(from_id,))
        if not outlets:
            self.tracer.count("diffusion.data_no_gradient")
            self._dead_end_negative(msg.interest_id, [from_id])
            return
        if self._is_aggregation_point(msg.interest_id):
            self._buffer(msg.interest_id).add_incoming(msg, accepted, tag=from_id)
            self._arm_flush(msg.interest_id)
            self._maybe_early_flush(msg.interest_id)
        else:
            out = AggregateMsg(
                interest_id=msg.interest_id,
                items=tuple(accepted),
                energy_cost=msg.energy_cost + 1.0,
                size=self.aggfn.size(len(accepted)),
            )
            self._send_data(out, outlets)

    def _note_window(
        self, msg: AggregateMsg, from_id: int, accepted: list[DataItem]
    ) -> None:
        """Remember the incoming aggregate for the T_n truncation window."""
        win = self.window.get(msg.interest_id)
        if win is None:
            win = deque()
            self.window[msg.interest_id] = win
        win.append(
            _WindowEntry(
                time=self.sim.now,
                from_id=from_id,
                accepted_keys=frozenset(i.key for i in accepted),
                all_keys=msg.item_keys,
                cost=msg.energy_cost,
                source_of={i.key: i.source_id for i in msg.items},
            )
        )
        self._arm_truncation(msg.interest_id)

    def _prune_window(self, interest_id: int) -> deque[_WindowEntry]:
        win = self.window.get(interest_id)
        if win is None:
            win = deque()
            self.window[interest_id] = win
        horizon = self.sim.now - self.params.negative_window
        while win and win[0].time < horizon:
            win.popleft()
        return win

    def _note_item_sources(self, interest_id: int, source_ids) -> None:
        recents = self.recent_item_sources.setdefault(interest_id, {})
        now = self.sim.now
        for sid in source_ids:
            recents[sid] = now

    def _maybe_early_flush(self, interest_id: int) -> None:
        """§4.2: "an intermediate node that receives a sufficient amount
        of data for aggregation does not need to delay the received data
        any further."  Sufficient = the buffer already holds data from
        every source recently flowing through this node, so waiting out
        the rest of T_a cannot improve the aggregate."""
        buf = self.buffers.get(interest_id)
        if buf is None or buf.empty:
            return
        recents = self.recent_item_sources.get(interest_id)
        if not recents:
            return
        horizon = self.sim.now - self.params.source_window
        expected = {sid for sid, t in recents.items() if t >= horizon}
        if expected and expected <= buf.pending_sources():
            ev = self.flush_events.pop(interest_id, None)
            if ev is not None:
                ev.cancel()
            self.tracer.count("diffusion.early_flush")
            self._flush(interest_id)

    def _arm_flush(self, interest_id: int) -> None:
        ev = self.flush_events.get(interest_id)
        if ev is not None and ev.pending:
            return
        self.flush_events[interest_id] = self.sim.schedule(
            self.params.aggregation_delay, self._flush, interest_id
        )

    def _flush(self, interest_id: int) -> None:
        self.flush_events.pop(interest_id, None)
        if not self.node.up:
            return
        buf = self.buffers.get(interest_id)
        if buf is None or buf.empty:
            return
        outlets = self._usable_outlets(interest_id)
        if not outlets:
            self.tracer.count("diffusion.flush_no_gradient")
            buf.flush()  # items are lost; clear the buffer
            win = self._prune_window(interest_id)
            self._dead_end_negative(interest_id, sorted({e.from_id for e in win}))
            return
        result = buf.flush()
        self.tracer.count("diffusion.flushes")
        if self.tracer.wants("data.merge"):
            self.tracer.record(
                "data.merge",
                node=self.node.node_id,
                interest=interest_id,
                n_contributions=result.n_contributions,
                aggregates=[
                    [list(item.key) for item in agg.items]
                    for agg in result.aggregates
                ],
            )
        for agg in result.aggregates:
            self._merge_size.observe(len(agg.items))
            if len(agg.items) > 1:
                self.tracer.count("diffusion.items_aggregated", len(agg.items))
            out = AggregateMsg(
                interest_id=interest_id,
                items=agg.items,
                energy_cost=agg.cost,
                size=agg.size,
            )
            self._send_data(out, outlets)

    def _send_data(self, msg: AggregateMsg, outlets: list[int]) -> None:
        """Unicast an aggregate along the given usable data gradients."""
        if self.tracer.wants("data.tx"):
            self.tracer.record(
                "data.tx",
                node=self.node.node_id,
                interest=msg.interest_id,
                keys=[list(item.key) for item in msg.items],
                outlets=list(outlets),
            )
        for neighbor in outlets:
            self.tracer.count("diffusion.data_sent")
            self.node.send(msg, neighbor, msg.size)

    # ==================================================================
    # reinforcement
    # ==================================================================
    def send_reinforcement(self, interest_id: int, event_key: tuple, neighbor: int) -> None:
        """Unicast positive reinforcement for one exploratory round."""
        self.tracer.count("diffusion.reinforcement_sent")
        self.node.send(
            ReinforcementMsg(interest_id, event_key),
            neighbor,
            ReinforcementMsg.size,
        )

    def _handle_reinforcement(self, msg: ReinforcementMsg, from_id: int) -> None:
        self.tracer.count("diffusion.reinforcement_received")
        self._gradient_table(msg.interest_id).reinforce(from_id, self.sim.now)
        if self.tracer.wants("gradient.reinforce"):
            self.tracer.record(
                "gradient.reinforce",
                node=self.node.node_id,
                interest=msg.interest_id,
                neighbor=from_id,
            )
        _iid, source_id, _seq = msg.event_key
        if source_id == self.node.node_id:
            return  # reached the source that originated the round
        if not self.reinforce_forwarded.check_and_add((msg.event_key, "fwd")):
            return  # already continued this round upstream
        choice = self.choose_upstream(msg.event_key)
        if choice is None:
            self.tracer.count("diffusion.reinforce_dead_end")
            return
        if choice.neighbor == from_id:
            self.tracer.count("diffusion.reinforce_backtrack")
            return
        self.send_reinforcement(msg.interest_id, msg.event_key, choice.neighbor)

    # ==================================================================
    # negative reinforcement
    # ==================================================================
    def send_negative(self, interest_id: int, neighbor: int) -> None:
        self.tracer.count("diffusion.negative_sent")
        self.node.send(
            NegativeReinforcementMsg(interest_id),
            neighbor,
            NegativeReinforcementMsg.size,
        )

    def _handle_negative(self, msg: NegativeReinforcementMsg, from_id: int) -> None:
        self.tracer.count("diffusion.negative_received")
        table = self._gradient_table(msg.interest_id)
        degraded = table.degrade(from_id)
        if not degraded:
            return
        if self.tracer.wants("gradient.degrade"):
            self.tracer.record(
                "gradient.degrade",
                node=self.node.node_id,
                interest=msg.interest_id,
                neighbor=from_id,
            )
        if self._usable_outlets(msg.interest_id):
            return
        # §4.3: with no usable data gradients left (loop edges toward our
        # own senders do not count), rapidly degrade the path by
        # negatively reinforcing everyone who has been sending us data.
        win = self._prune_window(msg.interest_id)
        senders = {entry.from_id for entry in win}
        for sender in senders:
            self.send_negative(msg.interest_id, sender)

    def _arm_truncation(self, interest_id: int) -> None:
        ev = self.truncation_events.get(interest_id)
        if ev is not None and ev.pending:
            return
        delay = self.params.negative_window * (1.0 + 0.1 * self.rng.random())
        self.truncation_events[interest_id] = self.sim.schedule(
            delay, self._truncation_tick, interest_id
        )

    def _truncation_tick(self, interest_id: int) -> None:
        self.truncation_events.pop(interest_id, None)
        if not self.node.up:
            return
        if interest_id in self.own_interests or self._gradient_table(
            interest_id
        ).has_data_gradient(self.sim.now):
            win = self._prune_window(interest_id)
            if win:
                victims = self.truncation_victims(interest_id, list(win))
                for victim in victims:
                    self.tracer.count("diffusion.truncation")
                    self.send_negative(interest_id, victim)
                self._arm_truncation(interest_id)

    # ==================================================================
    # subclass hooks
    # ==================================================================
    def sink_on_exploratory(
        self, msg: ExploratoryEvent, from_id: int, first: bool
    ) -> None:
        """Sink-side handling of an exploratory copy (reinforcement policy)."""
        raise NotImplementedError

    def choose_upstream(self, event_key: tuple) -> Optional[ReinforceChoice]:
        """Local rule: which neighbor to reinforce for this round."""
        raise NotImplementedError

    def on_exploratory_first(self, msg: ExploratoryEvent, from_id: int) -> None:
        """First copy of another source's round arrived (greedy: emit C)."""

    def _handle_incremental_cost(self, msg: IncrementalCostMsg, from_id: int) -> None:
        """Incremental-cost routing (greedy only; base drops)."""
        self.tracer.count("diffusion.ic_ignored")

    def truncation_victims(
        self, interest_id: int, window: list[_WindowEntry]
    ) -> list[int]:
        """Which upstream senders to negatively reinforce this window."""
        raise NotImplementedError
