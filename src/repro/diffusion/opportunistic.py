"""The baseline instantiation: opportunistic aggregation on a
lowest-latency tree (the prior directed-diffusion scheme, §2/§5).

Local rules:

* **positive reinforcement** — "reinforce any neighbor from which a node
  receives a previously unseen exploratory event": the sink reinforces
  the *first* deliverer immediately; every reinforced node continues to
  its own first deliverer.  The result is an empirically-lowest-delay
  path per source; paths from different sources only share by accident,
  so aggregation is opportunistic.
* **negative reinforcement** — the original diffusion rule: degrade
  neighbors that delivered *no previously-unseen events* within the
  window T_n (they are pure duplicate paths).
"""

from __future__ import annotations

from typing import Optional

from .agent import DiffusionAgent, _WindowEntry
from .cache import ReinforceChoice
from .messages import ExploratoryEvent

__all__ = ["OpportunisticAgent"]


class OpportunisticAgent(DiffusionAgent):
    """Opportunistic aggregation on the low-latency tree."""

    scheme_name = "opportunistic"

    def sink_on_exploratory(
        self, msg: ExploratoryEvent, from_id: int, first: bool
    ) -> None:
        if not first:
            return
        # Low-delay rule: the first copy defines the path; reinforce now.
        self.send_reinforcement(msg.interest_id, msg.key, from_id)

    def choose_upstream(self, event_key: tuple) -> Optional[ReinforceChoice]:
        return self.exploratory_cache.lowest_delay_choice(event_key)

    def truncation_victims(
        self, interest_id: int, window: list[_WindowEntry]
    ) -> list[int]:
        """Degrade senders whose whole window was duplicates."""
        fresh_by_sender: dict[int, int] = {}
        for entry in window:
            fresh_by_sender[entry.from_id] = fresh_by_sender.get(entry.from_id, 0) + len(
                entry.accepted_keys
            )
        victims = [sender for sender, fresh in fresh_by_sender.items() if fresh == 0]
        # Never cut the only sender: losing the last path would partition us.
        if len(victims) == len(fresh_by_sender):
            return []
        return victims
