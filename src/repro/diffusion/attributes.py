"""Attribute-based naming for directed diffusion.

Diffusion is data-centric: tasks (interests) and data are named by
attribute-value tuples, and an interest matches a sensor when its operator
predicates are satisfied by the sensor's own attributes (§2 of the paper:
"attributes describe the data that is desired by specifying sensor types
and some geographic region").

We implement the one-way match used by the ns-2 diffusion code:

* an :class:`AttributeSet` is an immutable mapping of key -> value;
* an :class:`InterestSpec` is a set of :class:`Predicate` s
  (``IS`` / ``GE`` / ``LE``) over those keys;
* :func:`InterestSpec.matches` evaluates the predicates against a node's
  attribute set.

The tracking workload names data with a task type and a rectangular
geographic region (:func:`tracking_task`), matching the paper's
wilderness-tracking example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping

__all__ = ["AttributeSet", "Predicate", "InterestSpec", "Op", "tracking_task", "node_attributes"]


class Op:
    """Match operators (the subset the diffusion filter core needs)."""

    IS = "is"
    GE = "ge"
    LE = "le"

    ALL = (IS, GE, LE)


@dataclass(frozen=True)
class Predicate:
    """One operator predicate over an attribute key."""

    key: str
    op: str
    value: Any

    def __post_init__(self) -> None:
        if self.op not in Op.ALL:
            raise ValueError(f"unknown operator {self.op!r}")

    def holds(self, attrs: "AttributeSet") -> bool:
        if self.key not in attrs:
            return False
        actual = attrs[self.key]
        if self.op == Op.IS:
            return actual == self.value
        if self.op == Op.GE:
            return actual >= self.value
        return actual <= self.value


class AttributeSet(Mapping[str, Any]):
    """Immutable, hashable attribute-value mapping."""

    __slots__ = ("_items",)

    def __init__(self, items: Mapping[str, Any] | Iterable[tuple[str, Any]] = ()):
        if isinstance(items, Mapping):
            pairs = tuple(sorted(items.items()))
        else:
            pairs = tuple(sorted(items))
        object.__setattr__(self, "_items", pairs)

    def __getitem__(self, key: str) -> Any:
        for k, v in self._items:
            if k == key:
                return v
        raise KeyError(key)

    def __iter__(self) -> Iterator[str]:
        return (k for k, _ in self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __hash__(self) -> int:
        return hash(self._items)

    def __setattr__(self, name: str, value: Any) -> None:  # immutability guard
        raise AttributeError("AttributeSet is immutable")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"{k}={v!r}" for k, v in self._items)
        return f"AttributeSet({body})"


@dataclass(frozen=True)
class InterestSpec:
    """A named task: the conjunction of predicates an interest carries."""

    predicates: tuple[Predicate, ...]

    def matches(self, attrs: AttributeSet) -> bool:
        """True when every predicate holds for ``attrs``."""
        return all(p.holds(attrs) for p in self.predicates)

    @staticmethod
    def of(*predicates: Predicate) -> "InterestSpec":
        return InterestSpec(tuple(predicates))


def tracking_task(
    task: str, x1: float, y1: float, x2: float, y2: float
) -> InterestSpec:
    """The paper's canonical interest: a task type over a geographic rect."""
    return InterestSpec.of(
        Predicate("task", Op.IS, task),
        Predicate("x", Op.GE, x1),
        Predicate("x", Op.LE, x2),
        Predicate("y", Op.GE, y1),
        Predicate("y", Op.LE, y2),
    )


def node_attributes(task: str, x: float, y: float) -> AttributeSet:
    """The attribute set a sensor node publishes for matching."""
    return AttributeSet({"task": task, "x": x, "y": y})
