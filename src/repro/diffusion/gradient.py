"""Gradient state.

A gradient is directional demand state toward a neighbor (§2: "a gradient
represents both the direction towards which data matching an interest
flows, and the status of that demand").  Gradients at a node point
*sink-ward*: receiving an interest from neighbor m sets up a gradient
toward m, and data later flows along it.

Two strengths exist (§4.1):

* **exploratory** — set up by interest flooding; carries only low-rate
  exploratory events;
* **data** — set up by positive reinforcement; carries high-rate data.

Negative reinforcement degrades data -> exploratory; silence past the
gradient timeout removes the gradient entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

__all__ = ["GradientState", "Gradient", "GradientTable"]


class GradientState:
    EXPLORATORY = "exploratory"
    DATA = "data"


@dataclass(slots=True)
class Gradient:
    """State of demand toward one neighbor for one interest.

    ``expires_at`` bounds the gradient's existence (refreshed by interest
    copies from the neighbor); ``data_until`` bounds its *data* strength
    (refreshed only by positive reinforcement).  Reinforcement recurs
    every exploratory round, so a data gradient that misses a couple of
    rounds silently decays back to exploratory — ns-2 diffusion's
    implicit negative reinforcement by timeout.
    """

    neighbor: int
    state: str
    expires_at: float
    reinforced_at: Optional[float] = None
    data_until: float = 0.0

    def is_data(self, now: Optional[float] = None) -> bool:
        if self.state != GradientState.DATA:
            return False
        return now is None or self.data_until > now


class GradientTable:
    """All gradients of one node for one interest.

    The table maintains at most one gradient in the *data* state (see
    :meth:`reinforce`), and caches which neighbor holds it
    (``_data_neighbor``) so the data-path queries the sender hits per
    generated event (:meth:`data_neighbors`, :meth:`has_data_gradient`)
    are O(1) pointer checks instead of full-table scans.  Only
    :meth:`reinforce` puts a gradient into the data state, and only
    :meth:`degrade` / :meth:`expire` (and reinforcement of a different
    neighbor) take it out — each keeps the pointer exact.
    """

    __slots__ = ("gradient_timeout", "data_timeout", "_by_neighbor", "_data_neighbor")

    def __init__(self, gradient_timeout: float, data_timeout: Optional[float] = None) -> None:
        self.gradient_timeout = gradient_timeout
        #: how long reinforcement keeps a gradient in the data state
        #: (defaults to the plain gradient timeout)
        self.data_timeout = data_timeout if data_timeout is not None else gradient_timeout
        self._by_neighbor: dict[int, Gradient] = {}
        #: neighbor whose gradient is in the data state, if any
        self._data_neighbor: Optional[int] = None

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def refresh_exploratory(self, neighbor: int, now: float) -> Gradient:
        """Interest received from ``neighbor``: create or refresh its gradient.

        A data gradient stays a data gradient (interest refreshes extend
        its lifetime without downgrading it).
        """
        g = self._by_neighbor.get(neighbor)
        expires = now + self.gradient_timeout
        if g is None:
            g = Gradient(neighbor, GradientState.EXPLORATORY, expires)
            self._by_neighbor[neighbor] = g
        else:
            g.expires_at = max(g.expires_at, expires)
        return g

    def reinforce(self, neighbor: int, now: float) -> Gradient:
        """Positive reinforcement from ``neighbor``: upgrade to data gradient.

        A node keeps a *single* outgoing data gradient per interest — the
        preferred neighbor (§2: the sink "chooses to receive subsequent
        data messages for the same interest from a preferred neighbor").
        Reinforcing a new neighbor therefore degrades any previous data
        gradient back to exploratory; without this, every exploratory
        round accumulates another outgoing path and data fans out along
        all of them.
        """
        data_until = now + self.data_timeout
        expires = max(now + self.gradient_timeout, data_until)
        prev = self._data_neighbor
        if prev is not None and prev != neighbor:
            other = self._by_neighbor.get(prev)
            if other is not None and other.is_data():
                other.state = GradientState.EXPLORATORY
                other.reinforced_at = None
                other.data_until = 0.0
        self._data_neighbor = neighbor
        g = self._by_neighbor.get(neighbor)
        if g is None:
            g = Gradient(
                neighbor, GradientState.DATA, expires, reinforced_at=now,
                data_until=data_until,
            )
            self._by_neighbor[neighbor] = g
        else:
            g.state = GradientState.DATA
            g.expires_at = max(g.expires_at, expires)
            g.reinforced_at = now
            g.data_until = data_until
        return g

    def degrade(self, neighbor: int) -> bool:
        """Negative reinforcement from ``neighbor``: data -> exploratory.

        Returns True if a data gradient was actually degraded.
        """
        g = self._by_neighbor.get(neighbor)
        if g is None or not g.is_data():
            return False
        g.state = GradientState.EXPLORATORY
        g.reinforced_at = None
        g.data_until = 0.0
        if self._data_neighbor == neighbor:
            self._data_neighbor = None
        return True

    def expire(self, now: float) -> list[int]:
        """Drop gradients past their timeout; returns the dropped neighbors."""
        dead = [n for n, g in self._by_neighbor.items() if g.expires_at <= now]
        for n in dead:
            del self._by_neighbor[n]
            if self._data_neighbor == n:
                self._data_neighbor = None
        return dead

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def get(self, neighbor: int) -> Optional[Gradient]:
        return self._by_neighbor.get(neighbor)

    def neighbors(self, now: Optional[float] = None) -> list[int]:
        """All gradient neighbors (optionally only unexpired ones)."""
        if now is None:
            return list(self._by_neighbor)
        return [n for n, g in self._by_neighbor.items() if g.expires_at > now]

    def _live_data_gradient(self, now: float) -> Optional[Gradient]:
        """The (unique) gradient that is in the data state and live at ``now``."""
        n = self._data_neighbor
        if n is None:
            return None
        g = self._by_neighbor.get(n)
        if g is not None and g.is_data(now) and g.expires_at > now:
            return g
        return None

    def data_neighbors(self, now: float) -> list[int]:
        """Neighbors with live data gradients (where high-rate data goes).

        At most one entry (see :meth:`reinforce`); resolved through the
        cached data-neighbor pointer, not a table scan — the sender asks
        this per generated event.
        """
        g = self._live_data_gradient(now)
        return [g.neighbor] if g is not None else []

    def has_data_gradient(self, now: float) -> bool:
        return self._live_data_gradient(now) is not None

    def all(self) -> Iterable[Gradient]:
        return self._by_neighbor.values()

    def __len__(self) -> int:
        return len(self._by_neighbor)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{g.neighbor}:{'D' if g.is_data() else 'e'}" for g in self._by_neighbor.values()
        )
        return f"<GradientTable {parts}>"
