"""Idealized comparison schemes from the directed-diffusion lineage.

The paper's metrics "were used in earlier work to compare diffusion with
other idealized schemes" (§5.1, citing the original diffusion paper).
Two of those schemes bracket the design space and are implemented here so
the harness can reproduce that framing:

* :class:`FloodingAgent` — every data event is flooded network-wide with
  duplicate suppression.  Maximal robustness, no aggregation, and an
  energy upper bound: useful to show how much *any* tree buys.
* :class:`OmniscientAgent` — data follows a centrally computed greedy
  incremental tree with **zero control traffic** (no interests, no
  exploratory events, no reinforcement): the idealized lower bound the
  distributed greedy scheme approximates.  The runner computes the tree
  from the field's connectivity graph and installs static parent
  pointers.

Both reuse the full packet substrate (radio, MAC, energy), so their
numbers are comparable with the two real schemes.
"""

from __future__ import annotations

from typing import Optional

from ..sim import PeriodicTimer
from .agent import DiffusionAgent, SourceState, _WindowEntry
from .cache import ReinforceChoice, SeenCache
from .messages import AggregateMsg, DataItem, ExploratoryEvent, InterestMsg

__all__ = ["FloodingAgent", "OmniscientAgent"]


class FloodingAgent(DiffusionAgent):
    """Data flooding: no gradients, no trees, no aggregation.

    Interests still flood (that is how sources learn of the task), but
    sources broadcast every event and intermediate nodes re-broadcast
    previously unseen items.  Delivery is as robust as connectivity
    allows; energy scales with the whole network instead of a tree.
    """

    scheme_name = "flooding"

    # ------------------------------------------------------------------
    # sources: no exploratory machinery, data is flooded
    # ------------------------------------------------------------------
    def _activate_source(self, interest: InterestMsg) -> None:
        if interest.interest_id in self.source_for:
            return
        state = SourceState(interest.interest_id)
        self.source_for[interest.interest_id] = state
        self.tracer.count("diffusion.source_activated")
        state.data_timer = PeriodicTimer(
            self.sim,
            lambda: self._generate_data(state),
            interest.data_interval,
            jitter=self.params.forward_jitter,
            rng=self.rng,
        )
        state.data_timer.start(initial_delay=interest.data_interval * self.rng.random())

    def _route_local_item(self, interest_id: int, item: DataItem) -> None:
        msg = AggregateMsg(
            interest_id=interest_id,
            items=(item,),
            energy_cost=1.0,
            size=self.aggfn.size(1),
        )
        self.tracer.count("diffusion.data_sent")
        self.node.broadcast(msg, msg.size)

    # ------------------------------------------------------------------
    # forwarding: re-broadcast unseen items
    # ------------------------------------------------------------------
    def _handle_aggregate(self, msg: AggregateMsg, from_id: int) -> None:
        self.tracer.count("diffusion.aggregate_received")
        cache = self.item_seen.get(msg.interest_id)
        if cache is None:
            cache = SeenCache(self.params.cache_capacity)
            self.item_seen[msg.interest_id] = cache
        accepted = [item for item in msg.items if cache.check_and_add(item.key)]
        if not accepted:
            self.tracer.count("diffusion.aggregate_all_duplicate")
            return
        if msg.interest_id in self.own_interests:
            for item in accepted:
                self.tracer.count("diffusion.item_delivered")
                if self.metrics is not None:
                    self.metrics.on_delivered(
                        msg.interest_id, self.node.node_id, item, self.sim.now
                    )
            return
        if msg.interest_id not in self.known_interests:
            return
        out = AggregateMsg(
            interest_id=msg.interest_id,
            items=tuple(accepted),
            energy_cost=msg.energy_cost + 1.0,
            size=self.aggfn.size(len(accepted)),
        )
        self.tracer.count("diffusion.data_sent")
        self.sim.schedule(
            self.rng.random() * self.params.forward_jitter,
            self._rebroadcast,
            out,
        )

    def _rebroadcast(self, msg: AggregateMsg) -> None:
        if self.node.up:
            self.node.broadcast(msg, msg.size)

    # ------------------------------------------------------------------
    # unused machinery
    # ------------------------------------------------------------------
    def sink_on_exploratory(self, msg: ExploratoryEvent, from_id: int, first: bool) -> None:
        pass  # flooding has no reinforcement

    def choose_upstream(self, event_key: tuple) -> Optional[ReinforceChoice]:
        return None

    def truncation_victims(self, interest_id: int, window: list[_WindowEntry]) -> list[int]:
        return []


class OmniscientAgent(DiffusionAgent):
    """Zero-overhead dissemination along a precomputed aggregation tree.

    The runner calls :meth:`install_tree` with each node's parent on the
    centrally computed GIT and :meth:`activate_source` on the workload's
    sources; there is no control traffic of any kind.  Aggregation still
    buffers for T_a at junctions, so the comparison isolates *control and
    path-selection* overhead.
    """

    scheme_name = "omniscient"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: static next hop toward the sink per interest (None = at sink)
        self.parent: dict[int, Optional[int]] = {}

    # ------------------------------------------------------------------
    # wiring (called by the runner)
    # ------------------------------------------------------------------
    def install_tree(self, interest_id: int, parent: Optional[int]) -> None:
        """Set this node's parent on the interest's aggregation tree."""
        self.parent[interest_id] = parent
        if parent is not None:
            # Express the static route as a permanent data gradient so
            # the shared aggregation/forwarding machinery applies.
            self._gradient_table(interest_id).reinforce(parent, self.sim.now)

    def attach_sink(self, interest_id: int, spec) -> None:  # type: ignore[override]
        """A sink without interests: just register ownership."""
        self.own_interests[interest_id] = InterestMsg(
            interest_id=interest_id,
            sink_id=self.node.node_id,
            spec=spec,
            data_interval=self.params.data_interval,
            exploratory_interval=self.params.exploratory_interval,
            gradient_timeout=float("inf"),
            timestamp=self.sim.now,
            refresh_seq=0,
        )

    def activate_source(self, interest_id: int) -> None:
        if interest_id in self.source_for:
            return
        state = SourceState(interest_id)
        self.source_for[interest_id] = state
        self.tracer.count("diffusion.source_activated")
        state.data_timer = PeriodicTimer(
            self.sim,
            lambda: self._generate_data(state),
            self.params.data_interval,
            jitter=self.params.forward_jitter,
            rng=self.rng,
        )
        state.data_timer.start(
            initial_delay=self.params.data_interval * self.rng.random()
        )

    # ------------------------------------------------------------------
    # static routing: gradients never expire, interests never refresh
    # ------------------------------------------------------------------
    def _interest_fresh(self, interest_id: int) -> bool:
        return interest_id in self.parent or interest_id in self.own_interests

    def _gradient_table(self, interest_id: int):
        table = super()._gradient_table(interest_id)
        table.gradient_timeout = float("inf")
        table.data_timeout = float("inf")
        return table

    # ------------------------------------------------------------------
    # unused diffusion machinery
    # ------------------------------------------------------------------
    def sink_on_exploratory(self, msg: ExploratoryEvent, from_id: int, first: bool) -> None:
        pass

    def choose_upstream(self, event_key: tuple) -> Optional[ReinforceChoice]:
        return None

    def truncation_victims(self, interest_id: int, window: list[_WindowEntry]) -> list[int]:
        return []
