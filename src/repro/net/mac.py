"""Simplified 802.11-style CSMA/CA MAC.

Replaces the ns-2 1.6 Mbps 802.11 MAC the paper used.  The mechanisms that
matter for the study are kept:

* **carrier sense + random backoff** — contention grows with density, which
  jitters delivery order (the effect that de-synchronises the opportunistic
  scheme's lowest-latency paths, §5.2);
* **collisions** — simultaneous transmissions are lost at common receivers
  (handled in the PHY), so congestion costs both energy and delivery ratio;
* **broadcast vs unicast** — broadcasts (interest/exploratory floods) are
  fire-and-forget; unicasts (data along gradients, reinforcements) are
  ACKed with bounded retransmission, like 802.11 DCF.

RTS/CTS and virtual carrier sense are omitted — the original study ran with
small frames (64 B) far below any RTS threshold.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..sim import ScheduledEvent, Simulator, Tracer
from .packet import BROADCAST, Frame, FrameKind
from .radio import Radio

__all__ = ["MacParams", "CsmaMac"]


@dataclass(frozen=True)
class MacParams:
    """MAC timing and retry constants (802.11-flavored defaults)."""

    slot_time_s: float = 20e-6
    sifs_s: float = 10e-6
    difs_s: float = 50e-6
    cw_min: int = 8
    cw_max: int = 256
    retry_limit: int = 4
    ack_size_bytes: int = 10
    queue_limit: int = 128

    def __post_init__(self) -> None:
        if self.cw_min < 1 or self.cw_max < self.cw_min:
            raise ValueError("invalid contention window bounds")
        if self.retry_limit < 0 or self.queue_limit < 1:
            raise ValueError("invalid retry/queue limits")


class CsmaMac:
    """Per-node CSMA/CA transmitter + receiver.

    Upper layers call :meth:`send`; clean receptions are handed to the
    ``receive_callback(payload, from_id)`` installed by the node.  The MAC
    owns a FIFO queue and transmits one frame at a time.
    """

    def __init__(
        self,
        sim: Simulator,
        radio: Radio,
        params: MacParams,
        rng: random.Random,
        tracer: Tracer,
    ) -> None:
        self.sim = sim
        self.radio = radio
        self.params = params
        self.rng = rng
        self.tracer = tracer
        radio.deliver = self._on_phy_receive

        self.receive_callback: Optional[Callable[[Any, int], None]] = None
        self._queue: deque[Frame] = deque()
        self._current: Optional[Frame] = None
        self._retries = 0
        self._cw = params.cw_min
        self._pending: Optional[ScheduledEvent] = None
        self._ack_timer: Optional[ScheduledEvent] = None
        # ACK air time + SIFS + propagation both ways + one slot of slack.
        ack_air = radio.channel.params.air_time(params.ack_size_bytes)
        prop = radio.channel.params.propagation_delay_s
        self._ack_timeout = params.sifs_s + ack_air + 2 * prop + params.slot_time_s

        registry = tracer.registry
        self._backoff_slots = registry.histogram(
            "mac.backoff_slots", buckets=(0, 1, 2, 4, 8, 16, 32, 64, 128, 256)
        )
        self._queue_depth = registry.histogram(
            "mac.queue_depth", buckets=(0, 1, 2, 4, 8, 16, 32, 64, 128)
        )
        # Per-node series are opt-in: one labelled counter per node is
        # fine at paper scale but not free, so it rides the detailed flag.
        self._tx_by_node = (
            registry.counter("mac.tx", node=str(radio.node_id)) if registry.detailed else None
        )

    # ------------------------------------------------------------------
    # transmit path
    # ------------------------------------------------------------------
    def send(self, payload: Any, dst: int, size: int) -> bool:
        """Queue ``payload`` for transmission.  Returns False on queue drop."""
        if not self.radio.up:
            self.tracer.count("mac.drop_down")
            return False
        if len(self._queue) >= self.params.queue_limit:
            self.tracer.count("mac.drop_queue")
            return False
        self._queue.append(
            Frame(
                src=self.radio.node_id,
                dst=dst,
                size=size,
                payload=payload,
                # duck-typed: diffusion messages declare a wire_class; the
                # net layer stays payload-agnostic and just carries it.
                msg_class=getattr(payload, "wire_class", "other"),
            )
        )
        self._queue_depth.observe(len(self._queue))
        self._kick()
        return True

    @property
    def busy(self) -> bool:
        """True while a frame is being contended for, sent, or awaiting ACK."""
        return self._current is not None

    def queue_length(self) -> int:
        return len(self._queue)

    def _kick(self) -> None:
        if self._current is not None or not self._queue:
            return
        self._current = self._queue.popleft()
        self._retries = 0
        self._cw = self.params.cw_min
        self._backoff()

    def _backoff(self) -> None:
        """Defer DIFS + a random number of slots, then sense-and-transmit."""
        slots = self.rng.randrange(self._cw)
        self._backoff_slots.observe(slots)
        delay = self.params.difs_s + slots * self.params.slot_time_s
        self._pending = self.sim.schedule(delay, self._sense_and_transmit)

    def _sense_and_transmit(self) -> None:
        self._pending = None
        if self._current is None:
            return
        if not self.radio.up:
            self._abort_current("mac.drop_down")
            return
        if self.radio.medium_busy():
            # Medium busy: double the window and re-contend after it frees.
            self.tracer.count("mac.defer")
            self._cw = min(self._cw * 2, self.params.cw_max)
            wait = max(self.radio.busy_until - self.sim.now, 0.0)
            self._pending = self.sim.schedule(wait + self._jitter(), self._backoff_now)
            return
        frame = self._current
        duration = self.radio.start_tx(frame)
        self.tracer.count("mac.tx")
        if self._tx_by_node is not None:
            self._tx_by_node.inc()
        self.sim.schedule(duration, self._tx_done)

    def _backoff_now(self) -> None:
        self._pending = None
        self._backoff()

    def _jitter(self) -> float:
        return self.rng.random() * self.params.slot_time_s

    def _tx_done(self) -> None:
        frame = self._current
        if frame is None:
            return
        if frame.is_broadcast:
            self._complete()
        else:
            self._ack_timer = self.sim.schedule(self._ack_timeout, self._on_ack_timeout)

    def _on_ack_timeout(self) -> None:
        self._ack_timer = None
        self._retries += 1
        self.tracer.count("mac.retry")
        if self._retries > self.params.retry_limit:
            self._abort_current("mac.drop_retry")
            return
        self._cw = min(self._cw * 2, self.params.cw_max)
        self._backoff()

    def _complete(self) -> None:
        self._current = None
        if self._ack_timer is not None:
            self._ack_timer.cancel()
            self._ack_timer = None
        self._kick()

    def _abort_current(self, counter: str) -> None:
        self.tracer.count(counter)
        self._current = None
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
        if self._ack_timer is not None:
            self._ack_timer.cancel()
            self._ack_timer = None
        self._kick()

    def fail(self) -> None:
        """Node went down: flush all MAC state and the queue."""
        self._queue.clear()
        self._current = None
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
        if self._ack_timer is not None:
            self._ack_timer.cancel()
            self._ack_timer = None

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------
    def _on_phy_receive(self, frame: Frame) -> None:
        if frame.kind == FrameKind.ACK:
            self._handle_ack(frame)
            return
        if frame.dst != BROADCAST and frame.dst != self.radio.node_id:
            return  # overheard unicast for someone else (energy already paid)
        if frame.dst == self.radio.node_id:
            self._send_ack(frame)
        self.tracer.count("mac.rx")
        if self.receive_callback is not None:
            self.receive_callback(frame.payload, frame.src)

    def _handle_ack(self, ack: Frame) -> None:
        if ack.dst != self.radio.node_id:
            return
        current = self._current
        if (
            current is not None
            and self._ack_timer is not None
            and ack.payload == current.frame_id
        ):
            self.tracer.count("mac.acked")
            self._complete()

    def _send_ack(self, frame: Frame) -> None:
        ack = frame.ack_frame(self.params.ack_size_bytes)
        self.sim.schedule(self.params.sifs_s, self._transmit_ack, ack)

    def _transmit_ack(self, ack: Frame) -> None:
        # ACKs pre-empt via SIFS (no carrier sense), but a half-duplex radio
        # that is mid-transmission simply cannot send one.
        if not self.radio.up or self.radio.transmitting:
            self.tracer.count("mac.ack_skipped")
            return
        self.radio.start_tx(ack)
        self.tracer.count("mac.ack_tx")
