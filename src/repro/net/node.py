"""Sensor node: radio + MAC + energy + protocol composition, with failures.

A :class:`Node` wires one radio and one MAC onto the shared channel and
hosts a single protocol agent (a diffusion instantiation).  Node failure
follows the paper's dynamics experiment (§5.3): a down node neither
transmits nor receives; on recovery its protocol state is still present but
stale, and is repaired by the normal interest/exploratory refresh cycle —
the same behaviour as energized-off ns-2 nodes.
"""

from __future__ import annotations

from typing import Any, Optional, Protocol

from ..sim import RngRegistry, Simulator, Tracer
from .energy import EnergyMeter, EnergyParams
from .mac import CsmaMac, MacParams
from .packet import BROADCAST
from .radio import Channel, Radio, VectorRadio
from .state import MeterView

__all__ = ["Node", "ProtocolAgent", "BROADCAST"]


class ProtocolAgent(Protocol):
    """What a node expects from its protocol layer."""

    def on_message(self, msg: Any, from_id: int) -> None:  # pragma: no cover
        """Handle an upper-layer message delivered by the MAC."""


class Node:
    """One sensor node."""

    def __init__(
        self,
        node_id: int,
        x: float,
        y: float,
        sim: Simulator,
        channel: Channel,
        tracer: Tracer,
        rng_registry: RngRegistry,
        energy_params: Optional[EnergyParams] = None,
        mac_params: Optional[MacParams] = None,
    ) -> None:
        self.node_id = node_id
        self.x = x
        self.y = y
        self.sim = sim
        self.tracer = tracer
        self._up = True
        eparams = energy_params or EnergyParams()
        if channel.state is not None:
            # Vector kernel: meter and radio are views over one SoA row.
            row = channel.state.add_node(x, y)
            self.energy = MeterView(channel.state, row, eparams)
            self.radio = VectorRadio(node_id, x, y, channel, self.energy, row)
        else:
            self.energy = EnergyMeter(eparams)
            self.radio = Radio(node_id, x, y, channel, self.energy)
        self.mac = CsmaMac(
            sim,
            self.radio,
            mac_params or MacParams(),
            rng_registry.stream(f"mac.{node_id}"),
            tracer,
        )
        self.mac.receive_callback = self._deliver
        self.protocol: Optional[ProtocolAgent] = None
        self.fail_count = 0
        self.downtime = 0.0
        self._down_since: Optional[float] = None
        #: sim time of this node's first failure (None if it never failed);
        #: feeds the lifetime metric time_to_first_death
        self.first_down_at: Optional[float] = None

    # ------------------------------------------------------------------
    # liveness
    # ------------------------------------------------------------------
    @property
    def up(self) -> bool:
        return self._up

    def fail(self) -> None:
        """Turn the node off (idempotent)."""
        if not self._up:
            return
        self._up = False
        self.radio.up = False
        self.fail_count += 1
        self._down_since = self.sim.now
        if self.first_down_at is None:
            self.first_down_at = self.sim.now
        self.mac.fail()
        self.tracer.count("node.fail")
        if self.tracer.registry.detailed:
            self.tracer.registry.counter("node.fail", node=str(self.node_id)).inc()
        self.tracer.record("node.fail", node=self.node_id)

    def recover(self) -> None:
        """Turn the node back on (idempotent)."""
        if self._up:
            return
        self._up = True
        self.radio.up = True
        if self._down_since is not None:
            self.downtime += self.sim.now - self._down_since
            self._down_since = None
        self.tracer.count("node.recover")
        self.tracer.record("node.recover", node=self.node_id)

    # ------------------------------------------------------------------
    # protocol plumbing
    # ------------------------------------------------------------------
    def set_protocol(self, agent: ProtocolAgent) -> None:
        self.protocol = agent

    def send(self, msg: Any, dst: int, size: int) -> bool:
        """Hand a protocol message to the MAC (``dst`` may be BROADCAST)."""
        return self.mac.send(msg, dst, size)

    def broadcast(self, msg: Any, size: int) -> bool:
        return self.mac.send(msg, BROADCAST, size)

    def _deliver(self, payload: Any, from_id: int) -> None:
        if not self._up:
            return
        if self.protocol is not None:
            self.protocol.on_message(payload, from_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self._up else "DOWN"
        return f"<Node {self.node_id} ({self.x:.1f},{self.y:.1f}) {state}>"
