"""Structure-of-arrays node state for the vectorized kernel.

The scalar kernel keeps per-node radio and energy state on Python
objects (:class:`~repro.net.radio.Radio`,
:class:`~repro.net.energy.EnergyMeter`) and walks them one receiver at a
time.  The vectorized kernel (``Channel(kernel="vector")``) keeps the
same state in numpy columns indexed by *row* — one row per registered
radio — so a whole broadcast fan-out (energy charge, carrier sense,
collision bookkeeping at every in-range receiver) is a handful of
fancy-indexed array ops instead of a Python loop.

Layout: the nine per-receiver fields the fan-out touches live in one
``(capacity, 9)`` float64 matrix (``hot``, column indices ``C_*``), so a
cohort is serviced by a single row gather, column arithmetic on the
small ``(k, 9)`` block, and a single row scatter — numpy per-call
overhead is what dominates at paper-scale neighborhood sizes (~6–15
receivers), so call count matters more than element count.  Fields that
only see per-sender scalar access (positions, liveness, tx accounting,
per-class time columns) stay 1D.

Two access layers share the columns:

* :class:`NodeState` — the column store (``Channel._cohort_start`` /
  ``_cohort_end`` do the batched math).
* :class:`MeterView` — an :class:`~repro.net.energy.EnergyMeter`-shaped
  view of one row, so the runner / auditor / timeline probes read energy
  exactly as they do from a scalar meter.

Bit-identity contract: every float cell is accumulated with the same
per-node operation order and the same IEEE-754 arithmetic as the scalar
path (numpy float64 ops are bitwise-identical to Python float ops), and
every value handed back out is converted to a built-in ``float`` /
``int`` / ``bool`` so numpy scalars never leak into simulator timestamps
or JSON artifacts.  Counters (``active``, ``clean``, ``rx_count``) ride
in float64 cells — exact far past any realistic event count.
"""

from __future__ import annotations

import numpy as np

from .energy import EnergyParams, UNCLASSIFIED

__all__ = ["NodeState", "MeterView"]

_NEG_INF = float("-inf")

#: ``hot`` column indices (one row per node)
C_TX_UNTIL = 0    #: end of the row's own current transmission (half duplex)
C_BUSY_UNTIL = 1  #: carrier-sense horizon
C_ACTIVE = 2      #: in-flight arrivals at this receiver
C_CLEAN = 3       #: in-flight arrivals not yet corrupted
C_OVERLAP = 4     #: sim time of the last arrival overlap at this receiver
C_RX_LAST = 5     #: rightmost charged rx edge (EnergyMeter._rx_last)
C_RX_PREV = 6     #: start of the rightmost charged rx interval (edges[-2])
C_RX_TIME = 7     #: cumulative charged receive time
C_RX_COUNT = 8    #: number of charged receptions
HOT_COLS = 9


class NodeState:
    """Column store of per-node radio/energy state, indexed by row."""

    __slots__ = (
        "n",
        "n_down",
        "_cap",
        "x",
        "y",
        "up",
        "hot",
        "tx_time",
        "tx_count",
        "tx_cls",
        "rx_cls",
        "interf",
    )

    def __init__(self, capacity: int = 64) -> None:
        cap = max(int(capacity), 1)
        self.n = 0
        #: rows currently down — lets fan-outs skip liveness masks when 0
        self.n_down = 0
        self._cap = cap
        #: positions (immutable after registration)
        self.x = np.zeros(cap)
        self.y = np.zeros(cap)
        #: liveness flag (VectorRadio.up pushes into this)
        self.up = np.ones(cap, dtype=bool)
        #: fused per-receiver state, see the C_* column constants
        self.hot = self._fresh_hot(cap)
        self.tx_time = np.zeros(cap)
        self.tx_count = np.zeros(cap, dtype=np.int64)
        #: per-message-class time-in-state columns, created on first charge
        self.tx_cls: dict[str, np.ndarray] = {}
        self.rx_cls: dict[str, np.ndarray] = {}
        #: ``(capacity, n_bands)`` running same-band interference power
        #: sums (mW) — SINR-capture channels only (see ensure_interf)
        self.interf: np.ndarray | None = None

    @staticmethod
    def _fresh_hot(cap: int) -> np.ndarray:
        hot = np.zeros((cap, HOT_COLS))
        hot[:, C_OVERLAP] = _NEG_INF
        hot[:, C_RX_LAST] = _NEG_INF
        hot[:, C_RX_PREV] = _NEG_INF
        return hot

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def add_node(self, x: float, y: float) -> int:
        """Allocate one row; returns its index."""
        row = self.n
        if row == self._cap:
            self._grow()
        self.n = row + 1
        self.x[row] = x
        self.y[row] = y
        return row

    def _grow(self) -> None:
        cap = self._cap
        new_cap = cap * 2
        for name in ("x", "y", "tx_time", "tx_count"):
            old = getattr(self, name)
            col = np.zeros(new_cap, dtype=old.dtype)
            col[:cap] = old
            setattr(self, name, col)
        up = np.ones(new_cap, dtype=bool)
        up[:cap] = self.up
        self.up = up
        hot = self._fresh_hot(new_cap)
        hot[:cap] = self.hot
        self.hot = hot
        for cols in (self.tx_cls, self.rx_cls):
            for cls, old in cols.items():
                col = np.zeros(new_cap)
                col[:cap] = old
                cols[cls] = col
        if self.interf is not None:
            interf = np.zeros((new_cap, self.interf.shape[1]))
            interf[:cap] = self.interf
            self.interf = interf
        self._cap = new_cap

    def ensure_interf(self, n_bands: int) -> np.ndarray:
        """Allocate the per-band interference matrix (idempotent).

        Called once by SINR-capture channels at construction; each
        column is one frequency band's running receive-power sum per
        node, advanced by the capture cohort handlers.
        """
        if n_bands < 1:
            raise ValueError("need at least one frequency band")
        if self.interf is None or self.interf.shape[1] != n_bands:
            self.interf = np.zeros((self._cap, n_bands))
        return self.interf

    def class_col(self, cols: dict[str, np.ndarray], cls: str) -> np.ndarray:
        """Get-or-create the per-class time column for ``cls``."""
        col = cols.get(cls)
        if col is None:
            col = cols[cls] = np.zeros(self._cap)
        return col

    def set_up(self, row: int, value: bool) -> None:
        """Flip liveness, maintaining the ``n_down`` fast-path counter."""
        up = self.up
        if bool(up[row]) != value:
            self.n_down += -1 if value else 1
            up[row] = value


class MeterView:
    """:class:`~repro.net.energy.EnergyMeter` API over one NodeState row.

    Readouts return built-in ``float``/``int`` (never numpy scalars —
    they would leak into simulator timestamps and JSON artifacts).  The
    charge paths mirror the scalar meter's fast and overlap paths; the
    out-of-order slow path raises, because the vector kernel only ever
    charges in event-time order.
    """

    __slots__ = ("_st", "_row", "params")

    def __init__(self, state: NodeState, row: int, params: EnergyParams) -> None:
        self._st = state
        self._row = row
        self.params = params

    # ------------------------------------------------------------------
    # scalar-meter surface
    # ------------------------------------------------------------------
    @property
    def tx_time(self) -> float:
        return float(self._st.tx_time[self._row])

    @property
    def rx_time(self) -> float:
        return float(self._st.hot[self._row, C_RX_TIME])

    @property
    def tx_count(self) -> int:
        return int(self._st.tx_count[self._row])

    @property
    def rx_count(self) -> int:
        return int(self._st.hot[self._row, C_RX_COUNT])

    @property
    def tx_time_by_class(self) -> dict[str, float]:
        """Per-class tx time (charged classes only, like the scalar dict)."""
        row = self._row
        return {
            cls: float(col[row])
            for cls, col in self._st.tx_cls.items()
            if col[row] != 0.0
        }

    @property
    def rx_time_by_class(self) -> dict[str, float]:
        row = self._row
        return {
            cls: float(col[row])
            for cls, col in self._st.rx_cls.items()
            if col[row] != 0.0
        }

    # ------------------------------------------------------------------
    # charges
    # ------------------------------------------------------------------
    def note_tx(self, duration: float, cls: str = UNCLASSIFIED) -> None:
        if duration < 0:
            raise ValueError("negative duration")
        st, row = self._st, self._row
        st.tx_time[row] += duration
        st.tx_count[row] += 1
        st.class_col(st.tx_cls, cls)[row] += duration

    def note_rx(self, start: float, duration: float, cls: str = UNCLASSIFIED) -> None:
        if duration < 0:
            raise ValueError("negative duration")
        st, row = self._st, self._row
        cell = st.hot[row]
        end = start + duration
        last = cell[C_RX_LAST]
        if start >= last:
            if end <= start:
                return
            cell[C_RX_PREV] = start
            cell[C_RX_LAST] = end
            charged = end - start
        elif start >= cell[C_RX_PREV]:
            if end <= last:
                return
            charged = end - last
            cell[C_RX_LAST] = end
        else:
            raise RuntimeError(
                "out-of-order rx charge on a vector-kernel meter "
                "(start precedes the previous charged interval)"
            )
        cell[C_RX_TIME] += charged
        cell[C_RX_COUNT] += 1.0
        st.class_col(st.rx_cls, cls)[row] += charged

    # ------------------------------------------------------------------
    # readout (identical arithmetic to EnergyMeter)
    # ------------------------------------------------------------------
    def class_times(self) -> dict[str, tuple[float, float]]:
        """Per-class ``(tx_time, rx_time)`` snapshot (copies, safe to keep)."""
        tx = self.tx_time_by_class
        rx = self.rx_time_by_class
        return {
            cls: (tx.get(cls, 0.0), rx.get(cls, 0.0)) for cls in set(tx) | set(rx)
        }

    def energy_by_class_j(self) -> dict[str, float]:
        """Communication energy decomposed by message class (joules)."""
        txp, rxp = self.params.tx_power_w, self.params.rx_power_w
        out: dict[str, float] = {}
        for cls, t in self.tx_time_by_class.items():
            out[cls] = out.get(cls, 0.0) + txp * t
        for cls, t in self.rx_time_by_class.items():
            out[cls] = out.get(cls, 0.0) + rxp * t
        return out

    def idle_time(self, total_time: float) -> float:
        busy = self.tx_time + self.rx_time
        return max(0.0, total_time - busy)

    def communication_energy_j(self) -> float:
        return (
            self.params.tx_power_w * self.tx_time
            + self.params.rx_power_w * self.rx_time
        )

    def total_energy_j(self, total_time: float) -> float:
        return (
            self.communication_energy_j()
            + self.params.idle_power_w * self.idle_time(total_time)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MeterView row={self._row} tx={self.tx_time:.4f}s({self.tx_count}) "
            f"rx={self.rx_time:.4f}s({self.rx_count})>"
        )
