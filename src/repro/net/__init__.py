"""Wireless network substrate: PHY, MAC, nodes, topology, energy.

This package replaces the ns-2 stack the paper's evaluation ran on:
pluggable channel models (the paper's disc propagation with collisions,
or log-distance pathloss with SINR capture) over a radio layer with
promiscuous energy, a CSMA/CA MAC with ACK'd unicast, per-node energy
meters with the Sensoria WINS-like power profile, and the paper's
sensor-field generators.
"""

from .channel import (
    CHANNEL_MODELS,
    ChannelModel,
    ChannelSpec,
    DiscModel,
    PathlossModel,
    model_from_spec,
)
from .energy import EnergyMeter, EnergyParams
from .fieldcache import FieldCache, cached_field, default_field_cache
from .mac import CsmaMac, MacParams
from .node import Node
from .packet import BROADCAST, Frame, FrameKind
from .radio import Channel, Radio, RadioParams
from .topology import (
    SensorField,
    corner_sink_node,
    corner_source_nodes,
    event_radius_sources,
    expected_degree,
    generate_field,
    random_source_nodes,
    scattered_sink_nodes,
)

__all__ = [
    "CHANNEL_MODELS",
    "ChannelSpec",
    "ChannelModel",
    "DiscModel",
    "PathlossModel",
    "model_from_spec",
    "EnergyMeter",
    "EnergyParams",
    "CsmaMac",
    "MacParams",
    "Node",
    "BROADCAST",
    "Frame",
    "FrameKind",
    "Channel",
    "Radio",
    "RadioParams",
    "SensorField",
    "FieldCache",
    "cached_field",
    "default_field_cache",
    "generate_field",
    "corner_source_nodes",
    "corner_sink_node",
    "random_source_nodes",
    "scattered_sink_nodes",
    "event_radius_sources",
    "expected_degree",
]
