"""Pluggable channel models: ``disc`` and log-distance ``pathloss``/SINR.

The paper's entire density result rests on a fixed 40 m disc radio
(:mod:`repro.net.radio`).  This module extracts that assumption behind a
small strategy interface so the same simulator — both PHY kernels, the
MAC, energy attribution, timelines — can run under a realistic channel:

* :class:`DiscModel` — today's semantics, bit-identical: a frame is
  heard by every up node within ``range_m`` and any overlap at a
  receiver corrupts all frames involved (no capture).
* :class:`PathlossModel` — log-distance pathloss with a configurable
  exponent, noise floor, and receive sensitivity; frame corruption is
  decided by an SINR test with a capture threshold instead of
  all-or-nothing collisions, and frames can be spread over multiple
  frequency bands (``band = src_id % n_bands``; only same-band frames
  interfere, while every in-reach receiver still pays promiscuous
  receive energy — a wideband listening front end).

Math (units in dB/dBm, powers converted once to linear mW):

* received power: ``rx_dBm(d) = tx_power_dbm - PL(d)`` with the
  log-distance model ``PL(d) = reference_loss_db +
  10 * pathloss_exponent * log10(max(d, 1 m))`` (reference distance
  1 m; the 1 m floor also bounds near-field powers);
* link eligibility: a receiver hears a sender iff
  ``rx_dBm >= rx_sensitivity_dbm`` (and ``d <= max_range_m`` when set —
  the hard cutoff uses the *squared* distance test so a degenerate
  pathloss config reproduces the disc neighbor sets bit-identically);
* capture: a frame is decodable iff
  ``rx_mw >= thr * (noise_mw + (smax - rx_mw))`` where ``thr`` is the
  linear capture threshold and ``smax`` is the maximum over the frame's
  airtime of the receiver's same-band running power sum (its own power
  included).  The running sum only increases at arrival starts, so
  tracking the max at starts is exact, and elementwise float64 array
  math reproduces the scalar arithmetic bitwise (the kernel-equivalence
  contract, DESIGN.md §14).

The *spec* (:class:`ChannelSpec`) is a frozen, JSON-friendly dataclass
that lives inside :class:`~repro.experiments.config.ExperimentConfig`
and therefore inside the store content hash and every provenance
manifest; the *model* (:func:`model_from_spec`) is the runtime strategy
:class:`~repro.net.radio.Channel` executes.  Channel choice never
touches field generation or any RNG stream: geometry is drawn on the
nominal disc ``range_m`` so disc and pathloss runs of one seed share the
exact same field, sources, and sinks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = [
    "CHANNEL_MODELS",
    "ChannelSpec",
    "ChannelModel",
    "DiscModel",
    "PathlossModel",
    "model_from_spec",
]

#: the selectable channel models (the CLI's ``--channel`` choices)
CHANNEL_MODELS = ("disc", "pathloss")


@dataclass(frozen=True)
class ChannelSpec:
    """The channel block of an experiment config (hash- and JSON-stable).

    Defaults are chosen so the pathloss reach roughly matches the
    paper's 40 m disc: a 0 dBm transmitter over ``PL(d) = 40 +
    30 log10(d)`` reaches the -88 dBm sensitivity at
    ``10^(48/30) ≈ 39.81 m`` — same nominal connectivity, but with
    SINR capture resolving overlaps instead of corrupting everything.
    Keep ``rx_sensitivity_dbm >= noise_floor_dbm +
    capture_threshold_db`` (with capture on): links below that margin
    are eligible but can never decode even in silence, wasting receive
    energy forever.
    """

    model: str = "disc"
    #: transmit power (dBm); fixed per run — the paper has no power control
    tx_power_dbm: float = 0.0
    #: log-distance exponent ``n`` (2 = free space, 3-4 = indoor/ground)
    pathloss_exponent: float = 3.0
    #: pathloss at the 1 m reference distance (dB)
    reference_loss_db: float = 40.0
    #: thermal + ambient noise power (dBm)
    noise_floor_dbm: float = -100.0
    #: weakest decodable received power (dBm); defines link eligibility
    rx_sensitivity_dbm: float = -88.0
    #: SINR needed to decode under interference (dB)
    capture_threshold_db: float = 10.0
    #: SINR capture on/off; off = disc-style all-or-nothing within reach
    capture: bool = True
    #: optional hard reach cutoff in meters (squared-distance test)
    max_range_m: Optional[float] = None
    #: frequency bands; frames on different bands never interfere
    n_bands: int = 1

    def __post_init__(self) -> None:
        if self.model not in CHANNEL_MODELS:
            raise ValueError(
                f"channel model must be one of {CHANNEL_MODELS}, got {self.model!r}"
            )
        if self.pathloss_exponent <= 0:
            raise ValueError("pathloss exponent must be positive")
        if self.n_bands < 1:
            raise ValueError("need at least one frequency band")
        if self.model == "disc" and self.n_bands != 1:
            raise ValueError("the disc model is single-band (n_bands must be 1)")
        if self.max_range_m is not None and self.max_range_m <= 0:
            raise ValueError("max_range_m must be positive when set")

    @staticmethod
    def degenerate_disc(range_m: float = 40.0) -> "ChannelSpec":
        """A pathloss spec that reproduces the disc channel bit-identically.

        Sensitivity is set far below any reachable power, so eligibility
        collapses to the ``max_range_m`` squared-distance cutoff — the
        disc neighbor test verbatim — and ``capture=False`` reuses the
        disc corruption logic wholesale.  The equivalence property test
        (``tests/property/test_channel_equivalence.py``) pins this.
        """
        return ChannelSpec(
            model="pathloss",
            rx_sensitivity_dbm=-500.0,
            capture=False,
            max_range_m=range_m,
        )


class ChannelModel:
    """Runtime strategy contract behind :class:`~repro.net.radio.Channel`.

    A model supplies, per sender-receiver pair, link *eligibility* and
    (for capture models) linear received power; the Channel owns all
    event scheduling, energy charging, and corruption bookkeeping.  A
    conforming model must be:

    * **pure** — ``link()`` is a function of squared distances only, so
      the neighbor/rx-power cache both kernels share is deterministic
      and RNG-free;
    * **kernel-agnostic** — it never sees per-event state; anything
      per-frame (interference sums, SINR tests) lives in the Channel so
      the scalar and vector kernels provably execute the same per-cell
      arithmetic;
    * **energy-neutral** — eligibility decides who pays promiscuous
      receive energy; decode failures (collision or SINR) still charge
      the receiver, exactly like the disc baseline.
    """

    #: model name (matches a :data:`CHANNEL_MODELS` entry)
    kind: str = "abstract"
    #: whether corruption is settled by the SINR capture test
    capture: bool = False
    #: frequency bands (interference is per band)
    n_bands: int = 1
    #: nominal connectivity radius in meters (mean-degree reporting)
    reach_m: float = 0.0
    #: neighbor-grid bucket size (must cover the eligibility radius)
    grid_cell_m: float = 1.0
    #: linear noise floor (mW) and capture threshold, for the SINR test
    noise_mw: float = 0.0
    thr: float = 0.0

    def link(self, d2: np.ndarray) -> tuple[np.ndarray, Optional[np.ndarray]]:
        """Per-pair link computation from squared distances (meters²).

        Returns ``(eligible, rx_mw)``: a boolean mask of receivers that
        hear the sender, and their linear received powers (``None`` for
        non-capture models — power is then irrelevant).
        """
        raise NotImplementedError


class DiscModel(ChannelModel):
    """The paper's PHY: everyone within ``range_m`` hears, nobody beyond.

    ``link`` applies the squared-distance test byte-for-byte as the
    pre-refactor neighbor cache did, so disc runs are bit-identical to
    the hard-coded implementation this interface replaced.
    """

    kind = "disc"

    def __init__(self, range_m: float) -> None:
        if range_m <= 0:
            raise ValueError("disc range must be positive")
        self.reach_m = range_m
        self.grid_cell_m = range_m
        self._range_sq = range_m ** 2

    def link(self, d2: np.ndarray) -> tuple[np.ndarray, Optional[np.ndarray]]:
        return d2 <= self._range_sq, None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DiscModel range={self.reach_m:g}m>"


class PathlossModel(ChannelModel):
    """Log-distance pathloss with rx sensitivity and SINR capture."""

    kind = "pathloss"

    def __init__(self, spec: ChannelSpec) -> None:
        if spec.model != "pathloss":
            raise ValueError(f"not a pathloss spec: {spec.model!r}")
        self.spec = spec
        self.capture = spec.capture
        self.n_bands = spec.n_bands
        self.noise_mw = 10.0 ** (spec.noise_floor_dbm / 10.0)
        self.thr = 10.0 ** (spec.capture_threshold_db / 10.0)
        # Link budget -> nominal reach: rx(d) == sensitivity at
        # d = 10^(budget / 10n); the 1 m pathloss floor makes any
        # positive budget reach at least 1 m, a negative budget nothing.
        budget = spec.tx_power_dbm - spec.reference_loss_db - spec.rx_sensitivity_dbm
        if budget < 0:
            reach = 0.0
        else:
            reach = max(1.0, 10.0 ** (budget / (10.0 * spec.pathloss_exponent)))
        if spec.max_range_m is not None:
            reach = min(reach, spec.max_range_m)
        self.reach_m = reach
        # Grid cells must cover the eligibility radius; the epsilon pad
        # absorbs the ~1-ulp slack between the analytic reach and the
        # rounded log10 eligibility test.
        self.grid_cell_m = max(reach, 1.0) + 1e-9
        self._max_range_sq = (
            None if spec.max_range_m is None else spec.max_range_m ** 2
        )

    def rx_dbm(self, distance_m: float) -> float:
        """Received power (dBm) at one distance (scalar convenience)."""
        s = self.spec
        d = max(float(distance_m), 1.0)
        return s.tx_power_dbm - (
            s.reference_loss_db + 10.0 * s.pathloss_exponent * math.log10(d)
        )

    def link(self, d2: np.ndarray) -> tuple[np.ndarray, Optional[np.ndarray]]:
        s = self.spec
        d = np.sqrt(d2)
        rx_dbm = s.tx_power_dbm - (
            s.reference_loss_db
            + 10.0 * s.pathloss_exponent * np.log10(np.maximum(d, 1.0))
        )
        eligible = rx_dbm >= s.rx_sensitivity_dbm
        if self._max_range_sq is not None:
            # Squared-distance cutoff: identical to the disc test, which
            # is what makes ChannelSpec.degenerate_disc() exact.
            eligible &= d2 <= self._max_range_sq
        return eligible, 10.0 ** (rx_dbm / 10.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.spec
        return (
            f"<PathlossModel n={s.pathloss_exponent:g} reach={self.reach_m:.2f}m "
            f"capture={'on' if self.capture else 'off'} bands={self.n_bands}>"
        )


def model_from_spec(spec: Optional[ChannelSpec], range_m: float) -> ChannelModel:
    """Build the runtime model for a config's channel block.

    ``range_m`` is the config's nominal disc range — the disc model's
    radius, and never consulted by pathloss (whose reach comes from its
    own link budget / ``max_range_m``).
    """
    if spec is None or spec.model == "disc":
        return DiscModel(range_m)
    return PathlossModel(spec)
