"""Radio energy accounting.

Reproduces the paper's modified ns-2 energy model, calibrated to the
Sensoria WINS NG radio [Kaiser]:

* transmit:  660 mW
* receive:   395 mW   (also charged for promiscuous overhearing — every
  in-range radio pays reception cost, as in ns-2)
* idle:       35 mW   ("about 10% of receive, about 5% of transmit")

The model accumulates time-in-state; energy is derived on demand.  The
paper's *average dissipated energy* metric is dominated by communication
energy (see DESIGN.md §4): with idle charged over the full run, the idle
floor (35 mW x N x T) is identical across schemes and would flatten the
comparison, so the experiment harness reports tx+rx by default and exposes
``include_idle`` for the full number.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EnergyParams", "EnergyMeter"]


@dataclass(frozen=True)
class EnergyParams:
    """Per-state radio power draw in watts (paper defaults)."""

    tx_power_w: float = 0.660
    rx_power_w: float = 0.395
    idle_power_w: float = 0.035

    def __post_init__(self) -> None:
        for name in ("tx_power_w", "rx_power_w", "idle_power_w"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


class EnergyMeter:
    """Accumulates radio time-in-state for one node.

    The radio layer calls :meth:`note_tx` / :meth:`note_rx` with frame air
    times.  Idle time is everything else: a node's radio is either
    transmitting, receiving (possibly a corrupted frame — energy is spent
    either way), or idle-listening.  Concurrent overlapping receptions are
    merged so receive time never exceeds wall-clock time.
    """

    __slots__ = ("params", "tx_time", "rx_time", "_rx_busy_until", "tx_count", "rx_count")

    def __init__(self, params: EnergyParams) -> None:
        self.params = params
        self.tx_time = 0.0
        self.rx_time = 0.0
        self._rx_busy_until = 0.0
        self.tx_count = 0
        self.rx_count = 0

    def note_tx(self, duration: float) -> None:
        """Charge one transmission of ``duration`` seconds."""
        if duration < 0:
            raise ValueError("negative duration")
        self.tx_time += duration
        self.tx_count += 1

    def note_rx(self, start: float, duration: float) -> None:
        """Charge a reception starting at ``start`` lasting ``duration``.

        Overlapping receptions (collisions) only charge the uncovered part
        of the interval, so total receive time stays physical.
        """
        if duration < 0:
            raise ValueError("negative duration")
        end = start + duration
        if end <= self._rx_busy_until:
            return  # entirely inside an already-charged busy interval
        effective_start = max(start, self._rx_busy_until)
        self.rx_time += end - effective_start
        self._rx_busy_until = end
        self.rx_count += 1

    # ------------------------------------------------------------------
    # readout
    # ------------------------------------------------------------------
    def idle_time(self, total_time: float) -> float:
        """Idle-listening time over a run of ``total_time`` seconds."""
        busy = self.tx_time + self.rx_time
        return max(0.0, total_time - busy)

    def communication_energy_j(self) -> float:
        """Energy spent transmitting and receiving (the comparison metric)."""
        return (
            self.params.tx_power_w * self.tx_time
            + self.params.rx_power_w * self.rx_time
        )

    def total_energy_j(self, total_time: float) -> float:
        """Full dissipated energy including idle listening."""
        return (
            self.communication_energy_j()
            + self.params.idle_power_w * self.idle_time(total_time)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<EnergyMeter tx={self.tx_time:.4f}s({self.tx_count}) "
            f"rx={self.rx_time:.4f}s({self.rx_count})>"
        )
