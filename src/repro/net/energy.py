"""Radio energy accounting.

Reproduces the paper's modified ns-2 energy model, calibrated to the
Sensoria WINS NG radio [Kaiser]:

* transmit:  660 mW
* receive:   395 mW   (also charged for promiscuous overhearing — every
  in-range radio pays reception cost, as in ns-2)
* idle:       35 mW   ("about 10% of receive, about 5% of transmit")

The model accumulates time-in-state; energy is derived on demand.  The
paper's *average dissipated energy* metric is dominated by communication
energy (see DESIGN.md §4): with idle charged over the full run, the idle
floor (35 mW x N x T) is identical across schemes and would flatten the
comparison, so the experiment harness reports tx+rx by default and exposes
``include_idle`` for the full number.

Every charge additionally carries a **message class** (``"interest"``,
``"exploratory"``, ``"data"``, ``"aggregate"``, ``"reinforcement"``, ...;
see :data:`MESSAGE_CLASSES`) so a run's energy decomposes by protocol
phase — the breakdown the original diffusion and LEACH evaluations report.
The same increment feeds both the total and its class bucket, so class
totals sum to ``tx_time`` / ``rx_time`` up to float summation order
(within 1e-9 over any realistic run); the auditor
(:class:`repro.obs.audit.EnergyAttributionChecker`) verifies the identity
on every audited run.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EnergyParams", "EnergyMeter", "MESSAGE_CLASSES", "UNCLASSIFIED"]

#: the message classes energy charges are attributed to (wire classes of
#: the diffusion messages, plus the MAC's ACKs and a catch-all)
MESSAGE_CLASSES = (
    "interest",
    "exploratory",
    "data",        # single-item aggregates (unmerged readings)
    "aggregate",   # multi-item aggregates (merged readings)
    "reinforcement",
    "negative",
    "cost",        # greedy incremental-cost advertisements
    "ack",
    "other",
)

#: class used when a frame's payload does not declare a wire class
UNCLASSIFIED = "other"


@dataclass(frozen=True)
class EnergyParams:
    """Per-state radio power draw in watts (paper defaults)."""

    tx_power_w: float = 0.660
    rx_power_w: float = 0.395
    idle_power_w: float = 0.035

    def __post_init__(self) -> None:
        for name in ("tx_power_w", "rx_power_w", "idle_power_w"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


class EnergyMeter:
    """Accumulates radio time-in-state for one node.

    The radio layer calls :meth:`note_tx` / :meth:`note_rx` with frame air
    times.  Idle time is everything else: a node's radio is either
    transmitting, receiving (possibly a corrupted frame — energy is spent
    either way), or idle-listening.  Concurrent overlapping receptions are
    merged with a proper interval union, so receive time never exceeds
    wall-clock time and out-of-order receptions are neither double- nor
    under-charged.
    """

    __slots__ = (
        "params",
        "tx_time",
        "rx_time",
        "_rx_intervals",
        "_rx_last",
        "tx_count",
        "rx_count",
        "tx_time_by_class",
        "rx_time_by_class",
    )

    def __init__(self, params: EnergyParams) -> None:
        self.params = params
        self.tx_time = 0.0
        self.rx_time = 0.0
        #: sorted charged receive intervals as a flat edge list
        #: [s0, e0, s1, e1, ...] — disjoint or touching (the fast path
        #: appends without coalescing; the slow-path merge coalesces).
        #: The common in-order case only ever touches the last edge, so
        #: the merge stays O(1) on the hot path.
        self._rx_intervals: list[float] = []
        #: cached rightmost charged edge (== _rx_intervals[-1]), kept as
        #: a float attribute so the hot path skips the list indexing
        self._rx_last = float("-inf")
        self.tx_count = 0
        self.rx_count = 0
        #: per-message-class time-in-state (sums to tx_time / rx_time)
        self.tx_time_by_class: dict[str, float] = {}
        self.rx_time_by_class: dict[str, float] = {}

    def note_tx(self, duration: float, cls: str = UNCLASSIFIED) -> None:
        """Charge one transmission of ``duration`` seconds to class ``cls``."""
        if duration < 0:
            raise ValueError("negative duration")
        self.tx_time += duration
        self.tx_count += 1
        by_class = self.tx_time_by_class
        try:
            by_class[cls] += duration
        except KeyError:
            by_class[cls] = duration

    def note_rx(self, start: float, duration: float, cls: str = UNCLASSIFIED) -> None:
        """Charge a reception starting at ``start`` lasting ``duration``.

        Only the part of ``[start, start + duration]`` not already covered
        by earlier charges is billed (to class ``cls``), so total receive
        time stays physical no matter how receptions overlap or in which
        order they are reported.
        """
        if duration < 0:
            raise ValueError("negative duration")
        end = start + duration
        last = self._rx_last
        if start >= last:
            # Fast path: at or past the rightmost charged edge.
            if end <= start:
                return
            edges = self._rx_intervals
            edges.append(start)
            edges.append(end)
            self._rx_last = end
            charged = end - start
        elif start >= self._rx_intervals[-2]:
            # Overlaps only the rightmost interval — what time-ordered
            # arrival starts (the simulator's only pattern) produce on a
            # collision.  Charging ``end - last`` here keeps the
            # arithmetic identical to the historical watermark meter, so
            # in-order runs stay bit-for-bit reproducible.
            if end <= last:
                return  # entirely inside the already-charged interval
            charged = end - last
            self._rx_intervals[-1] = end
            self._rx_last = end
        else:
            charged = self._merge_interval(start, end)
            self._rx_last = self._rx_intervals[-1]
            if charged <= 0.0:
                return  # entirely inside already-charged intervals
        self.rx_time += charged
        self.rx_count += 1
        by_class = self.rx_time_by_class
        try:
            by_class[cls] += charged
        except KeyError:
            by_class[cls] = charged

    def _merge_interval(self, start: float, end: float) -> float:
        """Insert ``[start, end]`` into the charged set; return new coverage.

        Out-of-line slow path, only reached when a reception starts before
        the rightmost already-charged edge (out-of-order reporting) — rare
        enough that an O(n) rebuild beats clever splicing.
        """
        edges = self._rx_intervals
        pairs = [(edges[i], edges[i + 1]) for i in range(0, len(edges), 2)]
        covered = 0.0
        # pairs are disjoint or touching, so clips never double-count
        for s, e in pairs:
            lo, hi = max(s, start), min(e, end)
            if hi > lo:
                covered += hi - lo
        new_cov = (end - start) - covered
        pairs.append((start, end))
        pairs.sort()
        merged_s, merged_e = pairs[0]
        rebuilt: list[float] = []
        for s, e in pairs[1:]:
            if s <= merged_e:  # overlapping or touching: coalesce
                if e > merged_e:
                    merged_e = e
            else:
                rebuilt.append(merged_s)
                rebuilt.append(merged_e)
                merged_s, merged_e = s, e
        rebuilt.append(merged_s)
        rebuilt.append(merged_e)
        edges[:] = rebuilt
        return new_cov

    # ------------------------------------------------------------------
    # readout
    # ------------------------------------------------------------------
    def class_times(self) -> dict[str, tuple[float, float]]:
        """Per-class ``(tx_time, rx_time)`` snapshot (copies, safe to keep)."""
        classes = set(self.tx_time_by_class) | set(self.rx_time_by_class)
        return {
            cls: (self.tx_time_by_class.get(cls, 0.0), self.rx_time_by_class.get(cls, 0.0))
            for cls in classes
        }

    def energy_by_class_j(self) -> dict[str, float]:
        """Communication energy decomposed by message class (joules)."""
        txp, rxp = self.params.tx_power_w, self.params.rx_power_w
        out: dict[str, float] = {}
        for cls, t in self.tx_time_by_class.items():
            out[cls] = out.get(cls, 0.0) + txp * t
        for cls, t in self.rx_time_by_class.items():
            out[cls] = out.get(cls, 0.0) + rxp * t
        return out

    def idle_time(self, total_time: float) -> float:
        """Idle-listening time over a run of ``total_time`` seconds."""
        busy = self.tx_time + self.rx_time
        return max(0.0, total_time - busy)

    def communication_energy_j(self) -> float:
        """Energy spent transmitting and receiving (the comparison metric)."""
        return (
            self.params.tx_power_w * self.tx_time
            + self.params.rx_power_w * self.rx_time
        )

    def total_energy_j(self, total_time: float) -> float:
        """Full dissipated energy including idle listening."""
        return (
            self.communication_energy_j()
            + self.params.idle_power_w * self.idle_time(total_time)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<EnergyMeter tx={self.tx_time:.4f}s({self.tx_count}) "
            f"rx={self.rx_time:.4f}s({self.rx_count})>"
        )
