"""Wireless PHY: shared channel, propagation models, collisions, energy.

Baseline model (matching the ns-2 setup the paper used):

* **Disc propagation** — a transmission is heard by every *up* node within
  ``range_m`` (40 m default); nothing beyond.  Propagation delay is a small
  constant (distances are ~100 m, so ~0.3 us; we use 1 us).
* **Fixed transmit power** — no power control; "we measure energy as
  equivalent to hops" (paper §4.1) holds because every hop costs the same.
* **Half duplex** — a radio cannot receive while transmitting.
* **Collisions, no capture** — two frames overlapping in time at a receiver
  corrupt each other there (this includes hidden-terminal collisions, which
  is what degrades the opportunistic scheme's low-latency paths at high
  density).
* **Promiscuous energy** — every in-range radio pays receive energy for
  every frame, corrupted or not, exactly like a real listening radio.

Propagation and corruption are pluggable behind
:class:`~repro.net.channel.ChannelModel` (``Channel(..., model=...)``):
the default :class:`~repro.net.channel.DiscModel` keeps the baseline
above bit-identically, while :class:`~repro.net.channel.PathlossModel`
replaces the disc with a log-distance link budget and all-or-nothing
collisions with an SINR capture test over per-receiver, per-band running
interference sums (see DESIGN.md §14 for the math and the equivalence
argument).

The :class:`Channel` owns topology (positions, precomputed neighbor index
arrays — and, for capture models, per-pair receive powers — via a uniform
grid) and the :class:`Radio` instances; radios are driven by the MAC
layer above.

Two kernels share these semantics (``Channel(kernel=...)``):

* ``"scalar"`` (default for bare construction) — per-receiver
  :class:`_Arrival` objects walked in Python, the reference
  implementation.
* ``"vector"`` (what :func:`~repro.experiments.runner.build_world`
  uses) — per-node state lives in numpy columns
  (:class:`~repro.net.state.NodeState`) and each broadcast services its
  whole neighborhood with two *cohort* events whose bookkeeping (energy,
  carrier sense, collisions) is fancy-indexed array math.  RunMetrics
  and timelines are bit-identical between the kernels; the equivalence
  property test (``tests/property/test_kernel_equivalence.py``) enforces
  it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from ..sim import Simulator, Tracer
from .channel import ChannelModel, DiscModel
from .energy import EnergyMeter
from .packet import Frame
from .state import (
    C_ACTIVE,
    C_BUSY_UNTIL,
    C_CLEAN,
    C_OVERLAP,
    C_RX_COUNT,
    C_RX_LAST,
    C_RX_PREV,
    C_RX_TIME,
    C_TX_UNTIL,
    NodeState,
)

if TYPE_CHECKING:  # pragma: no cover
    from .node import Node

__all__ = ["RadioParams", "Channel", "Radio", "VectorRadio"]


@dataclass(frozen=True)
class RadioParams:
    """PHY constants (paper defaults: 40 m range, 1.6 Mbps)."""

    range_m: float = 40.0
    bitrate_bps: float = 1.6e6
    propagation_delay_s: float = 1e-6

    def __post_init__(self) -> None:
        if self.range_m <= 0 or self.bitrate_bps <= 0 or self.propagation_delay_s < 0:
            raise ValueError("invalid radio parameters")

    def air_time(self, size_bytes: int) -> float:
        """Seconds the channel is occupied by a frame of ``size_bytes``."""
        return size_bytes * 8.0 / self.bitrate_bps


class _Arrival:
    """One in-flight frame at one receiver.

    ``rx_mw``/``band``/``smax`` only carry state under a capture-mode
    channel model (SINR bookkeeping); the disc path leaves them at their
    defaults.
    """

    __slots__ = ("frame", "cls", "start", "end", "corrupted", "rx_mw", "band", "smax")

    def __init__(
        self,
        frame: Frame,
        cls: str,
        start: float,
        end: float,
        rx_mw: float = 0.0,
        band: int = 0,
    ) -> None:
        self.frame = frame
        #: frame.msg_class, stashed once per fan-out (hot-path alias)
        self.cls = cls
        self.start = start
        self.end = end
        self.corrupted = False
        #: linear received power at this receiver (capture models)
        self.rx_mw = rx_mw
        #: frequency band of the frame (``src % n_bands``)
        self.band = band
        #: max same-band power sum seen during this arrival's airtime
        self.smax = 0.0


def _fanout_start(arrivals: list) -> None:
    """Begin reception of one frame at every in-range receiver."""
    for receiver, arrival in arrivals:
        receiver.arrival_start(arrival)


def _fanout_end(arrivals: list) -> None:
    """Finish reception of one frame at every in-range receiver."""
    for receiver, arrival in arrivals:
        receiver.arrival_end(arrival)


class _Cohort:
    """One in-flight frame at a whole neighborhood (vector kernel).

    ``rows`` are the receivers alive at transmit time; ``started`` and
    ``corrupted_at_start`` are filled in by ``Channel._cohort_start``
    (receivers still alive at arrival, and their halfduplex/overlap
    corruption state) for ``_cohort_end`` to finish against.

    ``rx_mw``/``band``/``smax`` only carry state under a capture-mode
    channel model (the per-receiver SINR bookkeeping arrays mirroring
    ``_Arrival``'s scalars).
    """

    __slots__ = (
        "frame",
        "cls",
        "start",
        "end",
        "rows",
        "started",
        "corrupted_at_start",
        "rx_mw",
        "band",
        "smax",
    )

    def __init__(
        self,
        frame: Frame,
        cls: str,
        start: float,
        end: float,
        rows: np.ndarray,
        rx_mw: Optional[np.ndarray] = None,
        band: int = 0,
    ) -> None:
        self.frame = frame
        self.cls = cls
        self.start = start
        self.end = end
        self.rows = rows
        self.started: Optional[np.ndarray] = None
        self.corrupted_at_start: Optional[np.ndarray] = None
        #: per-receiver linear rx power, aligned with ``rows``/``started``
        self.rx_mw = rx_mw
        self.band = band
        #: per-receiver max same-band power sum over the airtime
        self.smax: Optional[np.ndarray] = None


class Channel:
    """The shared wireless medium: positions, neighborhoods, delivery."""

    def __init__(
        self,
        sim: Simulator,
        tracer: Tracer,
        params: RadioParams,
        kernel: str = "scalar",
        model: Optional[ChannelModel] = None,
    ) -> None:
        if kernel not in ("scalar", "vector"):
            raise ValueError(f"unknown channel kernel {kernel!r}")
        self.sim = sim
        self.tracer = tracer
        self.params = params
        self.kernel = kernel
        #: propagation/corruption strategy (default: the paper's disc)
        self.model: ChannelModel = model if model is not None else DiscModel(params.range_m)
        #: SINR-capture mode (pathloss with capture on); hot-path alias
        self._capture = self.model.capture
        self._n_bands = self.model.n_bands
        self._noise_mw = self.model.noise_mw
        self._thr = self.model.thr
        #: in-flight capture-mode cohorts (vector kernel SINR bookkeeping)
        self._active_cohorts: list[_Cohort] = []
        #: SoA node state (vector kernel only; rows assigned at register)
        self.state: Optional[NodeState] = NodeState() if kernel == "vector" else None
        if self.state is not None and self._capture:
            self.state.ensure_interf(self._n_bands)
        self.radios: dict[int, Radio] = {}
        #: radios by row (row = registration order == NodeState row)
        self._row_radio: list["Radio"] = []
        self._row_of: dict[int, int] = {}
        #: per-row neighbor rows, presorted by neighbor node id
        self._nbr_rows: Optional[list[np.ndarray]] = None
        #: per-row linear rx power at each neighbor, aligned with
        #: ``_nbr_rows`` (capture models only; None otherwise)
        self._nbr_rxmw: Optional[list[np.ndarray]] = None
        #: lazily materialized Radio lists for the neighbors() API
        self._nbr_radios: dict[int, list["Radio"]] = {}
        #: lazily materialized per-neighbor rx powers as builtin floats
        self._nbr_rx_list: dict[int, list[float]] = {}
        self._frame_bytes = tracer.registry.histogram(
            "radio.frame_bytes", buckets=(10, 36, 64, 128, 256, 512)
        )
        # Per-message-class tx/rx frame counts.  Cardinality is bounded by
        # MESSAGE_CLASSES (~9).  The hot path pays a plain dict increment
        # per frame; flush_class_counters() materializes the totals into
        # labeled registry counters at end of run (a labeled-counter inc
        # per frame is measurable at PHY fan-out rates).
        self._tx_class_counts: dict[str, int] = {}
        self._rx_class_counts: dict[str, int] = {}

    def flush_class_counters(self) -> None:
        """Publish per-class frame counts as labeled registry counters.

        Creates/updates ``radio.tx_class{cls=...}`` and
        ``radio.rx_class{cls=...}``.  Idempotent: each call tops the
        counters up to the accumulated totals, so calling it again after
        more traffic (or twice at end of run) never double-counts.
        """
        counter = self.tracer.registry.counter
        for name, counts in (
            ("radio.tx_class", self._tx_class_counts),
            ("radio.rx_class", self._rx_class_counts),
        ):
            for cls in sorted(counts):
                c = counter(name, cls=cls)
                n = counts[cls]
                if n > c.value:
                    c.inc(n - c.value)

    def register(self, radio: "Radio") -> None:
        if radio.node_id in self.radios:
            raise ValueError(f"duplicate node id {radio.node_id}")
        row = getattr(radio, "_row", None)
        if row is not None and row != len(self._row_radio):
            raise ValueError(
                f"radio row {row} out of registration order "
                f"(expected {len(self._row_radio)})"
            )
        self.radios[radio.node_id] = radio
        self._row_of[radio.node_id] = len(self._row_radio)
        self._row_radio.append(radio)
        self._nbr_rows = None  # invalidate cache
        self._nbr_rxmw = None
        self._nbr_radios.clear()
        self._nbr_rx_list.clear()

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def neighbors(self, node_id: int) -> list["Radio"]:
        """Radios within range of ``node_id`` (excluding itself).

        Materialized lazily from the row-index cache, in ascending
        neighbor node-id order, and memoized — the scalar transmit path
        hits this per frame.
        """
        cached = self._nbr_radios.get(node_id)
        if cached is None:
            rows = self.neighbor_rows(node_id)
            radios = self._row_radio
            cached = [radios[r] for r in rows]
            self._nbr_radios[node_id] = cached
        return cached

    def neighbor_rows(self, node_id: int) -> np.ndarray:
        """Rows within range of ``node_id``, presorted by node id."""
        if self._nbr_rows is None:
            self._build_neighbor_cache()
        assert self._nbr_rows is not None
        return self._nbr_rows[self._row_of[node_id]]

    def _neighbor_rx(self, node_id: int) -> list[float]:
        """Per-neighbor linear rx powers as builtin floats (memoized).

        Aligned with :meth:`neighbors`; scalar-kernel capture fan-outs
        read these so numpy scalars never enter per-arrival arithmetic.
        """
        cached = self._nbr_rx_list.get(node_id)
        if cached is None:
            if self._nbr_rows is None:
                self._build_neighbor_cache()
            assert self._nbr_rxmw is not None
            cached = [float(v) for v in self._nbr_rxmw[self._row_of[node_id]]]
            self._nbr_rx_list[node_id] = cached
        return cached

    def _build_neighbor_cache(self) -> None:
        """Grid-bucketed neighbor computation: O(N * degree).

        The cache is a list of presorted ``np.intp`` row arrays (shared
        with the SoA state in the vector kernel — reachability is then a
        single fancy-index); distances are float64, bitwise the same
        tests the per-object implementation applied.  Link eligibility
        comes from the channel model; capture models additionally yield
        a per-pair linear rx-power array aligned with each row array, so
        both kernels read identical link powers (the SINR test is then
        pure per-receiver arithmetic).
        """
        n = len(self._row_radio)
        st = self.state
        if st is not None:
            xs, ys = st.x[:n], st.y[:n]
        else:
            xs = np.array([r.x for r in self._row_radio])
            ys = np.array([r.y for r in self._row_radio])
        ids = np.array([r.node_id for r in self._row_radio], dtype=np.int64)
        model = self.model
        cell = model.grid_cell_m
        cx = np.floor_divide(xs, cell).astype(np.int64)
        cy = np.floor_divide(ys, cell).astype(np.int64)
        grid: dict[tuple[int, int], list[int]] = {}
        for row in range(n):
            grid.setdefault((int(cx[row]), int(cy[row])), []).append(row)
        want_rx = self._capture
        result: list[np.ndarray] = [None] * n  # type: ignore[list-item]
        result_rx: list[np.ndarray] = [None] * n if want_rx else None  # type: ignore[assignment]
        empty = np.empty(0, dtype=np.intp)
        empty_f = np.empty(0)
        for (gx, gy), rows_here in grid.items():
            cand_lists = [
                got
                for dx in (-1, 0, 1)
                for dy in (-1, 0, 1)
                if (got := grid.get((gx + dx, gy + dy))) is not None
            ]
            cand = np.concatenate([np.asarray(c, dtype=np.intp) for c in cand_lists])
            # presort once per cell so every row's mask comes out id-ordered
            cand = cand[np.argsort(ids[cand], kind="stable")]
            candx, candy = xs[cand], ys[cand]
            for row in rows_here:
                ddx = candx - xs[row]
                ddy = candy - ys[row]
                eligible, rx = model.link(ddx * ddx + ddy * ddy)
                keep = eligible & (cand != row)
                near = cand[keep]
                result[row] = near if near.size else empty
                if want_rx:
                    result_rx[row] = rx[keep] if near.size else empty_f
        self._nbr_rows = result
        self._nbr_rxmw = result_rx

    def distance(self, a: int, b: int) -> float:
        ra, rb = self.radios[a], self.radios[b]
        return math.hypot(ra.x - rb.x, ra.y - rb.y)

    # ------------------------------------------------------------------
    # transmission
    # ------------------------------------------------------------------
    def transmit(self, sender: "Radio", frame: Frame) -> float:
        """Put ``frame`` on the air from ``sender``; returns air time.

        Delivery (or corruption) at each in-range receiver is scheduled on
        the simulator; the caller (MAC) is responsible for its own
        end-of-transmission bookkeeping.

        All receivers hear the frame at the same two instants (start and
        end of reception), so the whole neighborhood is serviced by *two*
        scheduled cohort events — carrying one preallocated
        ``(receiver, arrival)`` list in the scalar kernel, or a
        :class:`_Cohort` over SoA rows in the vector kernel — not two
        events per receiver.  Receivers are visited in ascending node-id
        order inside each fan-out in both kernels (same timestamps, same
        tie-order), so runs stay bit-identical across kernels.  Each
        cohort entry counts one logical event per receiver toward
        ``Simulator.events_processed``.
        """
        params = self.params
        duration = params.air_time(frame.size)
        prop = params.propagation_delay_s
        sim = self.sim
        now = sim.now
        tracer = self.tracer
        tracer.count("radio.tx")
        tracer.count("radio.tx_bytes", frame.size)
        self._frame_bytes.observe(frame.size)
        cls = frame.msg_class
        counts = self._tx_class_counts
        try:
            counts[cls] += 1
        except KeyError:
            counts[cls] = 1
        if tracer.wants("phy.tx"):
            tracer.record(
                "phy.tx",
                frame=frame.frame_id,
                src=sender.node_id,
                dst=frame.dst,
                size=frame.size,
                kind=frame.kind,
                cls=cls,
            )
        sender.energy.note_tx(duration, cls)
        end_of_tx = now + duration
        start = now + prop
        end = start + duration
        st = self.state
        if st is not None:
            row = sender._row  # type: ignore[attr-defined]
            hot = st.hot
            if end_of_tx > hot[row, C_TX_UNTIL]:
                hot[row, C_TX_UNTIL] = end_of_tx
            if self._nbr_rows is None:
                self._build_neighbor_cache()
            nbr = self._nbr_rows[row]  # type: ignore[index]
            if st.n_down:
                up = st.up[nbr]
                recv = nbr if up.all() else nbr[up]
            else:
                recv = nbr
            if recv.size:
                n = int(recv.size)
                if self._capture:
                    rx = self._nbr_rxmw[row]  # type: ignore[index]
                    if recv.size != nbr.size:
                        rx = rx[up]
                    cohort = _Cohort(
                        frame, cls, start, end, recv,
                        rx_mw=rx, band=sender.node_id % self._n_bands,
                    )
                    start_h, end_h = self._cohort_start_capture, self._cohort_end_capture
                else:
                    cohort = _Cohort(frame, cls, start, end, recv)
                    start_h, end_h = self._cohort_start, self._cohort_end
                sim.schedule_cohort_at(start, n, start_h, cohort)
                # NB: now + (prop + duration), not (now + prop) + duration —
                # the end event's timestamp must match the historical float
                # exactly (it differs from arrival.end by an ULP on some
                # inputs, and event timestamps feed tie-breaking and MAC
                # timing).
                sim.schedule_cohort_at(now + (prop + duration), n, end_h, cohort)
            return duration
        if end_of_tx > sender.tx_until:
            sender.tx_until = end_of_tx
        if self._capture:
            band = sender.node_id % self._n_bands
            arrivals = [
                (receiver, _Arrival(frame, cls, start, end, rx_mw, band))
                for receiver, rx_mw in zip(
                    self.neighbors(sender.node_id), self._neighbor_rx(sender.node_id)
                )
                if receiver.up
            ]
        else:
            arrivals = [
                (receiver, _Arrival(frame, cls, start, end))
                for receiver in self.neighbors(sender.node_id)
                if receiver.up
            ]
        if arrivals:
            n = len(arrivals)
            sim.schedule_cohort_at(start, n, _fanout_start, arrivals)
            # NB: see the vector branch — same ULP caveat.
            sim.schedule_cohort_at(now + (prop + duration), n, _fanout_end, arrivals)
        return duration

    # ------------------------------------------------------------------
    # vectorized fan-out (kernel="vector")
    # ------------------------------------------------------------------
    def _cohort_start(self, c: _Cohort) -> None:
        """Begin reception at every cohort receiver, in one array pass.

        Per-receiver scalar semantics reproduced exactly: busy-until
        extension, promiscuous energy charge, half-duplex loss while
        transmitting, and pairwise collision corruption — a receiver with
        other in-flight arrivals corrupts every still-clean one of them
        (one collision count each) plus, unless already lost to half
        duplex, this arrival (one more).  The ``C_CLEAN``/``C_OVERLAP``
        columns carry exactly enough state to settle corruption at cohort
        end without per-arrival objects.

        numpy *call count* (not element count) dominates at realistic
        neighborhood sizes, so the handler works on a single gathered
        ``(k, 9)`` block and probes the rare conditions (any receiver
        down / transmitting / mid-arrival / mid-charge) with cheap
        ``max()`` reductions before building any boolean mask.  The
        common cohort — everyone up, idle and quiet — costs about a
        dozen numpy calls regardless of degree.
        """
        st = self.state
        assert st is not None
        rows = c.rows
        if st.n_down:
            alive = st.up[rows]
            started = rows if alive.all() else rows[alive]
            c.started = started
            if started.size == 0:
                return
        else:
            started = rows
            c.started = started
        g = st.hot[started]
        now = self.sim.now  # == c.start
        start = c.start
        end = c.end
        # carrier-sense horizon
        bu = g[:, C_BUSY_UNTIL]
        np.maximum(bu, end, out=bu)
        # promiscuous energy charge
        rl = g[:, C_RX_LAST]
        if start >= rl.max():
            # Every receiver is on the meter fast path (no rx overlap):
            # identical per-node arithmetic, one scalar subtraction.
            # Adjacent columns are written in fused slices (RX_LAST |
            # RX_PREV, RX_TIME | RX_COUNT) to halve the ufunc dispatches.
            charged = end - start
            g[:, C_RX_LAST : C_RX_PREV + 1] = (end, start)
            g[:, C_RX_TIME : C_RX_COUNT + 1] += (charged, 1.0)
            st.class_col(st.rx_cls, c.cls)[started] += charged
        else:
            self._charge_overlapped(st, started, g, start, end, c.cls)
        tracer = self.tracer
        # half duplex: anyone still transmitting at arrival start?
        txu = g[:, C_TX_UNTIL]
        halfdup = None
        if now < txu.max():
            halfdup = now < txu
            tracer.count("radio.halfduplex_loss", int(halfdup.sum()))
        # collisions: anyone with another arrival in flight?
        ac = g[:, C_ACTIVE]
        ca = g[:, C_CLEAN]
        if ac.max() > 0.0:
            overlapping = ac > 0.0
            n_coll = int(ca[overlapping].sum())
            if halfdup is None:
                n_coll += int(overlapping.sum())
            else:
                n_coll += int((overlapping & ~halfdup).sum())
            if n_coll:
                tracer.count("radio.collision", n_coll)
            ca[overlapping] = 0.0
            g[:, C_OVERLAP][overlapping] = now
            if halfdup is None:
                ca[~overlapping] += 1.0
                c.corrupted_at_start = overlapping
            else:
                ca[~(overlapping | halfdup)] += 1.0
                c.corrupted_at_start = overlapping | halfdup
            ac += 1.0
        elif halfdup is None:
            # Common cohort: fused in-flight/clean increment.
            g[:, C_ACTIVE : C_CLEAN + 1] += 1.0
            c.corrupted_at_start = None  # nobody corrupted at start
        else:
            ca[~halfdup] += 1.0
            c.corrupted_at_start = halfdup
            ac += 1.0
        st.hot[started] = g

    @staticmethod
    def _charge_overlapped(
        st: NodeState,
        started: np.ndarray,
        g: np.ndarray,
        start: float,
        end: float,
        cls: str,
    ) -> None:
        """Energy charge when some receiver has an overlapping rx charge.

        Mirrors :meth:`repro.net.state.MeterView.note_rx` per row: *fast*
        rows charge the whole interval, *mid* rows (arrival starts inside
        the previously charged interval) charge only the extension beyond
        the last charged edge.  Out-of-order charges raise — cohorts are
        serviced in event-time order, so the meter's slow path is
        unreachable.
        """
        rl = g[:, C_RX_LAST]
        fast = start >= rl
        charged = np.empty(rl.size)
        charged[fast] = end - start
        mid = ~fast
        rp = g[:, C_RX_PREV]
        if not (start >= rp[mid]).all():
            raise RuntimeError(
                "out-of-order rx charge in cohort "
                "(start precedes a previously charged interval)"
            )
        charged[mid] = end - rl[mid]
        rp[fast] = start
        np.maximum(rl, end, out=rl)
        pos = charged > 0.0
        col = st.class_col(st.rx_cls, cls)
        if pos.all():
            g[:, C_RX_TIME] += charged
            g[:, C_RX_COUNT] += 1.0
            col[started] += charged
        else:
            g[:, C_RX_TIME][pos] += charged[pos]
            g[:, C_RX_COUNT][pos] += 1.0
            col[started[pos]] += charged[pos]

    def _cohort_end(self, c: _Cohort) -> None:
        """Finish reception: settle corruption, deliver clean frames.

        An arrival was corrupted mid-flight iff some overlap happened at
        this receiver at or after the arrival's start (events fire in
        time order, so ``C_OVERLAP >= c.start`` can only come from an
        overlap the arrival was active for — a same-instant overlap
        before our start implies other arrivals were still active and we
        were corrupted at start anyway).  The transmitting check uses the
        event timestamp (``sim.now``), not ``c.end``: the end event is
        scheduled at ``tx + (prop + duration)``, which can differ from
        ``start + duration`` by one ULP, and the scalar path compares
        against the event clock.

        Same call-count discipline as ``_cohort_start``: one gather, one
        scatter, ``max()`` probes before masks, and ``None`` standing for
        all-clean / all-up / none-transmitting so the common cohort never
        materializes a boolean array.  Deliveries run after the scatter,
        in ascending node-id order (cohort rows are presorted), matching
        the scalar fan-out's visit order.
        """
        started = c.started
        if started is None or started.size == 0:
            return
        st = self.state
        assert st is not None
        g = st.hot[started]
        start = c.start
        cas = c.corrupted_at_start
        lo = g[:, C_OVERLAP]
        if cas is None and lo.max() < start:
            clean = None  # every arrival survived
        else:
            corrupted = (lo >= start) if cas is None else cas | (lo >= start)
            clean = ~corrupted
        if clean is None:
            # Common cohort: fused in-flight/clean decrement.
            g[:, C_ACTIVE : C_CLEAN + 1] -= 1.0
        else:
            g[:, C_ACTIVE] -= 1.0
            if not clean.any():
                st.hot[started] = g
                return
            g[:, C_CLEAN][clean] -= 1.0
        now = self.sim.now
        txu = g[:, C_TX_UNTIL]
        transmitting = (now < txu) if now < txu.max() else None
        st.hot[started] = g
        live = clean
        if st.n_down:
            up = st.up[started]
            live = up if live is None else live & up
        tracer = self.tracer
        if transmitting is None:
            ok = live
        else:
            half = transmitting if live is None else live & transmitting
            n_half = int(half.sum())
            if n_half:
                # Started transmitting mid-reception (zero-backoff ACKs).
                tracer.count("radio.halfduplex_loss", n_half)
            ok = ~transmitting if live is None else live & ~transmitting
        if ok is None:
            ok_rows = started
        else:
            if not ok.any():
                return
            ok_rows = started[ok]
        n_ok = int(ok_rows.size)
        tracer.count("radio.rx", n_ok)
        counts = self._rx_class_counts
        cls = c.cls
        try:
            counts[cls] += n_ok
        except KeyError:
            counts[cls] = n_ok
        frame = c.frame
        radios = self._row_radio
        if tracer.wants("phy.rx"):
            fid, src = frame.frame_id, frame.src
            for r in ok_rows.tolist():
                radio = radios[r]
                tracer.record("phy.rx", frame=fid, node=radio.node_id, src=src)
                if radio.deliver is not None:
                    radio.deliver(frame)
        else:
            for r in ok_rows.tolist():
                deliver = radios[r].deliver
                if deliver is not None:
                    deliver(frame)

    # ------------------------------------------------------------------
    # vectorized fan-out, SINR capture mode (pathloss channel)
    # ------------------------------------------------------------------
    def _cohort_start_capture(self, c: _Cohort) -> None:
        """Capture-mode cohort start: energy/busy as usual, then SINR state.

        Shares the disc handler's liveness filter, carrier-sense
        extension, promiscuous charge, and half-duplex accounting, but
        instead of the collision columns it advances the per-receiver,
        per-band running interference sums (``NodeState.interf``): add
        this frame's rx power at every started receiver, then raise the
        ``smax`` watermark of every other in-flight same-band cohort at
        the receivers the two share.  The sums only increase at starts,
        so each cohort's ``smax`` is exactly the max instantaneous
        same-band power over its airtime — the same scalars the scalar
        kernel's per-arrival bookkeeping computes, cell for cell.
        """
        st = self.state
        assert st is not None
        rows = c.rows
        if st.n_down:
            alive = st.up[rows]
            if alive.all():
                started = rows
            else:
                started = rows[alive]
                c.rx_mw = c.rx_mw[alive]  # type: ignore[index]
            c.started = started
            if started.size == 0:
                return
        else:
            started = rows
            c.started = started
        g = st.hot[started]
        now = self.sim.now  # == c.start
        start = c.start
        end = c.end
        bu = g[:, C_BUSY_UNTIL]
        np.maximum(bu, end, out=bu)
        rl = g[:, C_RX_LAST]
        if start >= rl.max():
            charged = end - start
            g[:, C_RX_LAST : C_RX_PREV + 1] = (end, start)
            g[:, C_RX_TIME : C_RX_COUNT + 1] += (charged, 1.0)
            st.class_col(st.rx_cls, c.cls)[started] += charged
        else:
            self._charge_overlapped(st, started, g, start, end, c.cls)
        txu = g[:, C_TX_UNTIL]
        if now < txu.max():
            halfdup = now < txu
            self.tracer.count("radio.halfduplex_loss", int(halfdup.sum()))
            c.corrupted_at_start = halfdup
        else:
            c.corrupted_at_start = None
        st.hot[started] = g
        band = c.band
        col = st.interf[:, band]  # type: ignore[index]
        s = col[started] + c.rx_mw
        col[started] = s
        c.smax = s
        for other in self._active_cohorts:
            if other.band != band:
                continue
            _, ia, ib = np.intersect1d(
                other.started, started, assume_unique=True, return_indices=True
            )
            if ia.size:
                other.smax[ia] = np.maximum(other.smax[ia], s[ib])
        self._active_cohorts.append(c)

    def _cohort_end_capture(self, c: _Cohort) -> None:
        """Capture-mode cohort end: retire interference, SINR-test, deliver.

        Mirrors the scalar ``Radio.arrival_end`` check order per
        receiver — half-duplex-at-start, liveness, transmitting-now
        (counts ``radio.halfduplex_loss``), then the SINR test
        ``rx >= thr * (noise + (smax - rx))`` (failures count
        ``radio.sinr_loss``) — with the identical elementwise float64
        arithmetic, so metrics stay bit-identical across kernels.
        """
        started = c.started
        if started is None or started.size == 0:
            return
        st = self.state
        assert st is not None
        self._active_cohorts.remove(c)
        col = st.interf[:, c.band]  # type: ignore[index]
        col[started] = col[started] - c.rx_mw
        cas = c.corrupted_at_start
        ok = None if cas is None else ~cas
        if st.n_down:
            up = st.up[started]
            if not up.all():
                ok = up if ok is None else ok & up
        tracer = self.tracer
        now = self.sim.now
        txu = st.hot[started, C_TX_UNTIL]
        if now < txu.max():
            transmitting = now < txu
            half = transmitting if ok is None else ok & transmitting
            n_half = int(half.sum())
            if n_half:
                # Started transmitting mid-reception (zero-backoff ACKs).
                tracer.count("radio.halfduplex_loss", n_half)
            ok = ~transmitting if ok is None else ok & ~transmitting
        if ok is None:
            cand_rows, rx, smax = started, c.rx_mw, c.smax
        else:
            if not ok.any():
                return
            cand_rows = started[ok]
            rx = c.rx_mw[ok]  # type: ignore[index]
            smax = c.smax[ok]
        good = rx >= self._thr * (self._noise_mw + (smax - rx))
        if good.all():
            ok_rows = cand_rows
        else:
            tracer.count("radio.sinr_loss", int((~good).sum()))
            if not good.any():
                return
            ok_rows = cand_rows[good]
        n_ok = int(ok_rows.size)
        tracer.count("radio.rx", n_ok)
        counts = self._rx_class_counts
        cls = c.cls
        try:
            counts[cls] += n_ok
        except KeyError:
            counts[cls] = n_ok
        frame = c.frame
        radios = self._row_radio
        if tracer.wants("phy.rx"):
            fid, src = frame.frame_id, frame.src
            for r in ok_rows.tolist():
                radio = radios[r]
                tracer.record("phy.rx", frame=fid, node=radio.node_id, src=src)
                if radio.deliver is not None:
                    radio.deliver(frame)
        else:
            for r in ok_rows.tolist():
                deliver = radios[r].deliver
                if deliver is not None:
                    deliver(frame)


class Radio:
    """One node's radio: reception state, carrier sense, energy."""

    __slots__ = (
        "node_id",
        "x",
        "y",
        "channel",
        "energy",
        "tracer",
        "sim",
        "tx_until",
        "busy_until",
        "_active",
        "deliver",
        "up",
        "_rx_class_counts",
        "_capture",
        "_interf",
    )

    def __init__(
        self,
        node_id: int,
        x: float,
        y: float,
        channel: Channel,
        energy: EnergyMeter,
    ) -> None:
        self.node_id = node_id
        self.x = x
        self.y = y
        self.channel = channel
        self.energy = energy
        self.tracer = channel.tracer
        self.sim = channel.sim
        #: end of our own current transmission (half-duplex bookkeeping)
        self.tx_until = 0.0
        #: carrier-sense horizon: medium considered busy until this time
        self.busy_until = 0.0
        self._active: list[_Arrival] = []
        #: callback(frame) installed by the MAC for clean receptions
        self.deliver: Optional[Callable[[Frame], None]] = None
        #: liveness flag, pushed by the owning node on fail/recover.
        #: A plain attribute on purpose: it is read per receiver per
        #: frame (the transmit fan-out and both arrival events), where a
        #: property + callback indirection is measurable.
        self.up = True
        #: the channel's shared per-class rx count dict (hot-path alias)
        self._rx_class_counts = channel._rx_class_counts
        #: SINR-capture mode flag and per-band running interference sums
        #: (scalar kernel; the vector kernel keeps these in NodeState)
        self._capture = channel._capture
        self._interf = [0.0] * channel._n_bands if channel._capture else None
        channel.register(self)

    # ------------------------------------------------------------------
    @property
    def transmitting(self) -> bool:
        return self.sim.now < self.tx_until

    def medium_busy(self) -> bool:
        """Carrier sense: energy on the channel or our own transmission."""
        return self.sim.now < self.busy_until or self.transmitting

    def start_tx(self, frame: Frame) -> float:
        """Transmit ``frame``; returns its air time."""
        if not self.up:
            raise RuntimeError(f"node {self.node_id} is down; cannot transmit")
        return self.channel.transmit(self, frame)

    # ------------------------------------------------------------------
    # reception path (driven by Channel-scheduled events)
    # ------------------------------------------------------------------
    def arrival_start(self, arrival: _Arrival) -> None:
        if not self.up:
            arrival.corrupted = True  # radio off: nothing heard, nothing spent
            return
        end = arrival.end
        if end > self.busy_until:
            self.busy_until = end
        self.energy.note_rx(arrival.start, end - arrival.start, arrival.cls)
        if self.transmitting:
            # Half duplex: we miss frames that arrive while we transmit.
            arrival.corrupted = True
            self.tracer.count("radio.halfduplex_loss")
        if self._capture:
            # SINR capture: no pairwise corruption — advance this band's
            # running power sum and raise the watermark of every same-band
            # arrival in flight (sums only grow at starts, so tracking the
            # max here is exact).  A half-duplex-lost frame still radiates.
            band = arrival.band
            interf = self._interf
            s = interf[band] + arrival.rx_mw
            interf[band] = s
            for other in self._active:
                if other.band == band and s > other.smax:
                    other.smax = s
            arrival.smax = s
            self._active.append(arrival)
            return
        active = self._active
        if active:
            # Overlap with another in-flight frame: everyone is corrupted.
            tracer = self.tracer
            for other in active:
                if not other.corrupted:
                    other.corrupted = True
                    tracer.count("radio.collision")
            if not arrival.corrupted:
                arrival.corrupted = True
                tracer.count("radio.collision")
        active.append(arrival)

    def arrival_end(self, arrival: _Arrival) -> None:
        try:
            self._active.remove(arrival)
        except ValueError:
            return  # arrival was never started (node was down)
        if self._capture:
            self._interf[arrival.band] -= arrival.rx_mw
        if arrival.corrupted or not self.up:
            return
        if self.transmitting:
            # Started transmitting mid-reception (should be rare given
            # carrier sense, but possible with zero-backoff ACKs).
            self.tracer.count("radio.halfduplex_loss")
            return
        if self._capture:
            ch = self.channel
            if arrival.rx_mw < ch._thr * (ch._noise_mw + (arrival.smax - arrival.rx_mw)):
                self.tracer.count("radio.sinr_loss")
                return
        tracer = self.tracer
        tracer.count("radio.rx")
        counts = self._rx_class_counts
        cls = arrival.cls
        try:
            counts[cls] += 1
        except KeyError:
            counts[cls] = 1
        if tracer.wants("phy.rx"):
            tracer.record(
                "phy.rx",
                frame=arrival.frame.frame_id,
                node=self.node_id,
                src=arrival.frame.src,
            )
        if self.deliver is not None:
            self.deliver(arrival.frame)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Radio {self.node_id} at ({self.x:.1f},{self.y:.1f})>"


class VectorRadio(Radio):
    """Radio whose mutable state lives in the channel's SoA columns.

    ``up`` / ``tx_until`` / ``busy_until`` become properties over
    ``NodeState`` row ``_row`` (the class attributes shadow the parent's
    slot descriptors), so the MAC and failure layers keep their exact
    Radio API while cohort fan-outs read the same cells via fancy
    indexing.  Getters convert to built-in ``bool``/``float`` — numpy
    scalars must never reach simulator timestamps or JSON artifacts.

    The row is allocated by the owning :class:`~repro.net.node.Node`
    (meter view and radio share it) before ``Radio.__init__`` runs, so
    the parent constructor's state writes already land in the arrays.
    """

    __slots__ = ("_st", "_row")

    def __init__(
        self,
        node_id: int,
        x: float,
        y: float,
        channel: Channel,
        energy,
        row: int,
    ) -> None:
        if channel.state is None:
            raise ValueError("VectorRadio requires a vector-kernel channel")
        self._st = channel.state
        self._row = row
        super().__init__(node_id, x, y, channel, energy)

    @property
    def up(self) -> bool:  # type: ignore[override]
        return bool(self._st.up[self._row])

    @up.setter
    def up(self, value: bool) -> None:
        # Routed through set_up so the channel's no-failures fast path
        # (skip liveness masks while n_down == 0) stays exact.
        self._st.set_up(self._row, bool(value))

    @property
    def tx_until(self) -> float:  # type: ignore[override]
        return float(self._st.hot[self._row, C_TX_UNTIL])

    @tx_until.setter
    def tx_until(self, value: float) -> None:
        self._st.hot[self._row, C_TX_UNTIL] = value

    @property
    def busy_until(self) -> float:  # type: ignore[override]
        return float(self._st.hot[self._row, C_BUSY_UNTIL])

    @busy_until.setter
    def busy_until(self, value: float) -> None:
        self._st.hot[self._row, C_BUSY_UNTIL] = value
