"""Wireless PHY: shared channel, disc propagation, collisions, energy.

Model (matching the ns-2 setup the paper used):

* **Disc propagation** — a transmission is heard by every *up* node within
  ``range_m`` (40 m default); nothing beyond.  Propagation delay is a small
  constant (distances are ~100 m, so ~0.3 us; we use 1 us).
* **Fixed transmit power** — no power control; "we measure energy as
  equivalent to hops" (paper §4.1) holds because every hop costs the same.
* **Half duplex** — a radio cannot receive while transmitting.
* **Collisions, no capture** — two frames overlapping in time at a receiver
  corrupt each other there (this includes hidden-terminal collisions, which
  is what degrades the opportunistic scheme's low-latency paths at high
  density).
* **Promiscuous energy** — every in-range radio pays receive energy for
  every frame, corrupted or not, exactly like a real listening radio.

The :class:`Channel` owns topology (positions, precomputed neighbor lists
via a uniform grid) and the :class:`Radio` instances; radios are driven by
the MAC layer above.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from ..sim import Simulator, Tracer
from .energy import EnergyMeter
from .packet import Frame

if TYPE_CHECKING:  # pragma: no cover
    from .node import Node

__all__ = ["RadioParams", "Channel", "Radio"]


@dataclass(frozen=True)
class RadioParams:
    """PHY constants (paper defaults: 40 m range, 1.6 Mbps)."""

    range_m: float = 40.0
    bitrate_bps: float = 1.6e6
    propagation_delay_s: float = 1e-6

    def __post_init__(self) -> None:
        if self.range_m <= 0 or self.bitrate_bps <= 0 or self.propagation_delay_s < 0:
            raise ValueError("invalid radio parameters")

    def air_time(self, size_bytes: int) -> float:
        """Seconds the channel is occupied by a frame of ``size_bytes``."""
        return size_bytes * 8.0 / self.bitrate_bps


class _Arrival:
    """One in-flight frame at one receiver."""

    __slots__ = ("frame", "cls", "start", "end", "corrupted")

    def __init__(self, frame: Frame, cls: str, start: float, end: float) -> None:
        self.frame = frame
        #: frame.msg_class, stashed once per fan-out (hot-path alias)
        self.cls = cls
        self.start = start
        self.end = end
        self.corrupted = False


def _fanout_start(arrivals: list) -> None:
    """Begin reception of one frame at every in-range receiver."""
    for receiver, arrival in arrivals:
        receiver.arrival_start(arrival)


def _fanout_end(arrivals: list) -> None:
    """Finish reception of one frame at every in-range receiver."""
    for receiver, arrival in arrivals:
        receiver.arrival_end(arrival)


class Channel:
    """The shared wireless medium: positions, neighborhoods, delivery."""

    def __init__(self, sim: Simulator, tracer: Tracer, params: RadioParams) -> None:
        self.sim = sim
        self.tracer = tracer
        self.params = params
        self.radios: dict[int, Radio] = {}
        self._neighbors: Optional[dict[int, list["Radio"]]] = None
        self._frame_bytes = tracer.registry.histogram(
            "radio.frame_bytes", buckets=(10, 36, 64, 128, 256, 512)
        )
        # Per-message-class tx/rx frame counts.  Cardinality is bounded by
        # MESSAGE_CLASSES (~9).  The hot path pays a plain dict increment
        # per frame; flush_class_counters() materializes the totals into
        # labeled registry counters at end of run (a labeled-counter inc
        # per frame is measurable at PHY fan-out rates).
        self._tx_class_counts: dict[str, int] = {}
        self._rx_class_counts: dict[str, int] = {}

    def flush_class_counters(self) -> None:
        """Publish per-class frame counts as labeled registry counters.

        Creates/updates ``radio.tx_class{cls=...}`` and
        ``radio.rx_class{cls=...}``.  Idempotent: each call tops the
        counters up to the accumulated totals, so calling it again after
        more traffic (or twice at end of run) never double-counts.
        """
        counter = self.tracer.registry.counter
        for name, counts in (
            ("radio.tx_class", self._tx_class_counts),
            ("radio.rx_class", self._rx_class_counts),
        ):
            for cls in sorted(counts):
                c = counter(name, cls=cls)
                n = counts[cls]
                if n > c.value:
                    c.inc(n - c.value)

    def register(self, radio: "Radio") -> None:
        if radio.node_id in self.radios:
            raise ValueError(f"duplicate node id {radio.node_id}")
        self.radios[radio.node_id] = radio
        self._neighbors = None  # invalidate cache

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def neighbors(self, node_id: int) -> list["Radio"]:
        """Radios within range of ``node_id`` (excluding itself)."""
        if self._neighbors is None:
            self._build_neighbor_cache()
        assert self._neighbors is not None
        return self._neighbors[node_id]

    def _build_neighbor_cache(self) -> None:
        """Grid-bucketed neighbor computation: O(N * degree)."""
        cell = self.params.range_m
        grid: dict[tuple[int, int], list[Radio]] = {}
        for radio in self.radios.values():
            key = (int(radio.x // cell), int(radio.y // cell))
            grid.setdefault(key, []).append(radio)
        range_sq = self.params.range_m ** 2
        result: dict[int, list[Radio]] = {}
        for radio in self.radios.values():
            cx, cy = int(radio.x // cell), int(radio.y // cell)
            near: list[Radio] = []
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    for other in grid.get((cx + dx, cy + dy), ()):
                        if other is radio:
                            continue
                        d2 = (radio.x - other.x) ** 2 + (radio.y - other.y) ** 2
                        if d2 <= range_sq:
                            near.append(other)
            result[radio.node_id] = near
        self._neighbors = result

    def distance(self, a: int, b: int) -> float:
        ra, rb = self.radios[a], self.radios[b]
        return math.hypot(ra.x - rb.x, ra.y - rb.y)

    # ------------------------------------------------------------------
    # transmission
    # ------------------------------------------------------------------
    def transmit(self, sender: "Radio", frame: Frame) -> float:
        """Put ``frame`` on the air from ``sender``; returns air time.

        Delivery (or corruption) at each in-range receiver is scheduled on
        the simulator; the caller (MAC) is responsible for its own
        end-of-transmission bookkeeping.

        All receivers hear the frame at the same two instants (start and
        end of reception), so the whole neighborhood is serviced by *two*
        scheduled events carrying one preallocated ``(receiver, arrival)``
        list, not two events per receiver.  Receivers are visited in
        neighbor order inside each fan-out, which is exactly the order the
        per-receiver events used to fire in (same timestamps, consecutive
        sequence numbers), so runs stay bit-identical.
        """
        params = self.params
        duration = params.air_time(frame.size)
        prop = params.propagation_delay_s
        sim = self.sim
        now = sim.now
        tracer = self.tracer
        tracer.count("radio.tx")
        tracer.count("radio.tx_bytes", frame.size)
        self._frame_bytes.observe(frame.size)
        cls = frame.msg_class
        counts = self._tx_class_counts
        try:
            counts[cls] += 1
        except KeyError:
            counts[cls] = 1
        if tracer.wants("phy.tx"):
            tracer.record(
                "phy.tx",
                frame=frame.frame_id,
                src=sender.node_id,
                dst=frame.dst,
                size=frame.size,
                kind=frame.kind,
                cls=cls,
            )
        sender.energy.note_tx(duration, cls)
        end_of_tx = now + duration
        if end_of_tx > sender.tx_until:
            sender.tx_until = end_of_tx
        start = now + prop
        end = start + duration
        arrivals = [
            (receiver, _Arrival(frame, cls, start, end))
            for receiver in self.neighbors(sender.node_id)
            if receiver.up
        ]
        if arrivals:
            sim.schedule_at(start, _fanout_start, arrivals)
            # NB: now + (prop + duration), not (now + prop) + duration — the
            # end event's timestamp must match the historical float exactly
            # (it differs from arrival.end by an ULP on some inputs, and
            # event timestamps feed tie-breaking and MAC timing).
            sim.schedule_at(now + (prop + duration), _fanout_end, arrivals)
        return duration


class Radio:
    """One node's radio: reception state, carrier sense, energy."""

    __slots__ = (
        "node_id",
        "x",
        "y",
        "channel",
        "energy",
        "tracer",
        "sim",
        "tx_until",
        "busy_until",
        "_active",
        "deliver",
        "up",
        "_rx_class_counts",
    )

    def __init__(
        self,
        node_id: int,
        x: float,
        y: float,
        channel: Channel,
        energy: EnergyMeter,
    ) -> None:
        self.node_id = node_id
        self.x = x
        self.y = y
        self.channel = channel
        self.energy = energy
        self.tracer = channel.tracer
        self.sim = channel.sim
        #: end of our own current transmission (half-duplex bookkeeping)
        self.tx_until = 0.0
        #: carrier-sense horizon: medium considered busy until this time
        self.busy_until = 0.0
        self._active: list[_Arrival] = []
        #: callback(frame) installed by the MAC for clean receptions
        self.deliver: Optional[Callable[[Frame], None]] = None
        #: liveness flag, pushed by the owning node on fail/recover.
        #: A plain attribute on purpose: it is read per receiver per
        #: frame (the transmit fan-out and both arrival events), where a
        #: property + callback indirection is measurable.
        self.up = True
        #: the channel's shared per-class rx count dict (hot-path alias)
        self._rx_class_counts = channel._rx_class_counts
        channel.register(self)

    # ------------------------------------------------------------------
    @property
    def transmitting(self) -> bool:
        return self.sim.now < self.tx_until

    def medium_busy(self) -> bool:
        """Carrier sense: energy on the channel or our own transmission."""
        return self.sim.now < self.busy_until or self.transmitting

    def start_tx(self, frame: Frame) -> float:
        """Transmit ``frame``; returns its air time."""
        if not self.up:
            raise RuntimeError(f"node {self.node_id} is down; cannot transmit")
        return self.channel.transmit(self, frame)

    # ------------------------------------------------------------------
    # reception path (driven by Channel-scheduled events)
    # ------------------------------------------------------------------
    def arrival_start(self, arrival: _Arrival) -> None:
        if not self.up:
            arrival.corrupted = True  # radio off: nothing heard, nothing spent
            return
        end = arrival.end
        if end > self.busy_until:
            self.busy_until = end
        self.energy.note_rx(arrival.start, end - arrival.start, arrival.cls)
        if self.transmitting:
            # Half duplex: we miss frames that arrive while we transmit.
            arrival.corrupted = True
            self.tracer.count("radio.halfduplex_loss")
        active = self._active
        if active:
            # Overlap with another in-flight frame: everyone is corrupted.
            tracer = self.tracer
            for other in active:
                if not other.corrupted:
                    other.corrupted = True
                    tracer.count("radio.collision")
            if not arrival.corrupted:
                arrival.corrupted = True
                tracer.count("radio.collision")
        active.append(arrival)

    def arrival_end(self, arrival: _Arrival) -> None:
        try:
            self._active.remove(arrival)
        except ValueError:
            return  # arrival was never started (node was down)
        if arrival.corrupted or not self.up:
            return
        if self.transmitting:
            # Started transmitting mid-reception (should be rare given
            # carrier sense, but possible with zero-backoff ACKs).
            self.tracer.count("radio.halfduplex_loss")
            return
        tracer = self.tracer
        tracer.count("radio.rx")
        counts = self._rx_class_counts
        cls = arrival.cls
        try:
            counts[cls] += 1
        except KeyError:
            counts[cls] = 1
        if tracer.wants("phy.rx"):
            tracer.record(
                "phy.rx",
                frame=arrival.frame.frame_id,
                node=self.node_id,
                src=arrival.frame.src,
            )
        if self.deliver is not None:
            self.deliver(arrival.frame)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Radio {self.node_id} at ({self.x:.1f},{self.y:.1f})>"
