"""Bounded memoization of generated sensor fields (world-build fast path).

Paired sweeps run both schemes of a cell with the *same* seed, so the
identical field — including the redraw-until-connected loop and the
unit-disc connectivity graph — used to be regenerated once per scheme
(and once more by any tree/baseline code rebuilding the same geometry).
This module caches :class:`~repro.net.topology.SensorField` objects in a
small per-process LRU keyed by everything that determines them:
``(seed, n, field_size, range_m, require_connected, max_attempts)``.

Correctness invariants:

* **RNG streams are untouched.**  Field generation draws only from the
  dedicated ``"topology"`` substream, which nothing else in a run reads.
  A cache hit skips that substream entirely; a miss recreates it from
  ``derive_seed(seed, "topology")`` — bit-identical to what
  ``RngRegistry(seed).stream("topology")`` would have produced.  Either
  way, every other substream (placement, MAC jitter, failures...) is
  unaffected, so cached and fresh runs produce identical
  :class:`~repro.experiments.metrics.RunMetrics`.
* **Cached fields are shared read-only.**  Nothing in the stack mutates
  ``SensorField.positions`` or the connectivity graph (tree builders copy
  into their own graphs), so handing the same object to several runs in
  one process is safe — and sharing the lazily built graph is itself a
  win for the tree/baseline paths.

The cache is per-process: parallel sweep workers each warm their own,
which still pays off because chunked scheduling keeps a cell's paired
runs close together.  ``REPRO_FIELD_CACHE=0`` disables caching globally;
any other integer overrides the default capacity.
"""

from __future__ import annotations

import os
import random
import threading
from collections import OrderedDict
from typing import Callable, Optional, Tuple

from ..sim.rng import derive_seed
from .topology import SensorField, generate_field

__all__ = [
    "DEFAULT_FIELD_CACHE_SIZE",
    "FieldCache",
    "default_field_cache",
    "cached_field",
    "field_cache_key",
]

#: default LRU capacity (a full 7-density x 10-trial figure sweep holds 70
#: distinct fields; per-process workers see far fewer at a time)
DEFAULT_FIELD_CACHE_SIZE = 32

#: name of the RNG substream consumed by field generation (must match
#: what build_world uses)
TOPOLOGY_STREAM = "topology"

_CacheKey = Tuple[int, int, float, float, bool, int]


def field_cache_key(
    n: int,
    seed: int,
    field_size: float,
    range_m: float,
    require_connected: bool = True,
    max_attempts: int = 200,
) -> _CacheKey:
    """The full determinant of a generated field."""
    return (int(seed), int(n), float(field_size), float(range_m), bool(require_connected), int(max_attempts))


class FieldCache:
    """A bounded LRU of generated :class:`SensorField` objects.

    Thread-safe (a single lock around the OrderedDict); the expensive
    part — generating a field on a miss — intentionally runs outside the
    lock, so two threads racing on the same key may both build it (the
    result is identical; one wins the insert).
    """

    def __init__(self, maxsize: int = DEFAULT_FIELD_CACHE_SIZE) -> None:
        if maxsize < 0:
            raise ValueError("cache maxsize must be >= 0")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[_CacheKey, SensorField]" = OrderedDict()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: _CacheKey) -> Optional[SensorField]:
        """Look up a field, counting the hit/miss and refreshing recency."""
        with self._lock:
            fld = self._entries.get(key)
            if fld is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return fld

    def put(self, key: _CacheKey, fld: SensorField) -> None:
        if self.maxsize == 0:
            return
        with self._lock:
            self._entries[key] = fld
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def get_or_build(
        self, key: _CacheKey, builder: Callable[[], SensorField]
    ) -> Tuple[SensorField, bool]:
        """Return ``(field, was_cache_hit)``, building and caching on miss."""
        if self.maxsize == 0:
            self.misses += 1
            return builder(), False
        fld = self.get(key)
        if fld is not None:
            return fld, True
        fld = builder()
        self.put(key, fld)
        return fld, False

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss statistics."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> dict:
        """Snapshot for benchmarks and manifests."""
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / total if total else 0.0,
            "size": len(self._entries),
            "maxsize": self.maxsize,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FieldCache {len(self._entries)}/{self.maxsize} hits={self.hits} misses={self.misses}>"


def _configured_size() -> int:
    raw = os.environ.get("REPRO_FIELD_CACHE")
    if raw is None:
        return DEFAULT_FIELD_CACHE_SIZE
    try:
        return max(0, int(raw))
    except ValueError:
        return DEFAULT_FIELD_CACHE_SIZE


_default_cache: Optional[FieldCache] = None


def default_field_cache() -> FieldCache:
    """The per-process cache used by :func:`cached_field` by default."""
    global _default_cache
    if _default_cache is None:
        _default_cache = FieldCache(_configured_size())
    return _default_cache


def cached_field(
    n: int,
    seed: int,
    field_size: float = 200.0,
    range_m: float = 40.0,
    require_connected: bool = True,
    max_attempts: int = 200,
    cache: Optional[FieldCache] = None,
) -> Tuple[SensorField, bool]:
    """Memoized :func:`~repro.net.topology.generate_field`.

    Takes the run *seed* instead of an RNG object: the topology substream
    is derived here exactly as ``RngRegistry(seed).stream("topology")``
    would, which is what makes a miss bit-identical to the uncached path.
    Returns ``(field, was_cache_hit)``.
    """
    if cache is None:
        cache = default_field_cache()
    key = field_cache_key(n, seed, field_size, range_m, require_connected, max_attempts)

    def build() -> SensorField:
        rng = random.Random(derive_seed(seed, TOPOLOGY_STREAM))
        return generate_field(
            n,
            rng,
            field_size=field_size,
            range_m=range_m,
            require_connected=require_connected,
            max_attempts=max_attempts,
        )

    return cache.get_or_build(key, build)
