"""Link-layer frames.

The network stack is payload-agnostic: diffusion messages (interests,
events, reinforcements, ...) are opaque payloads carried in a
:class:`Frame`.  Frame size — not Python object size — drives air time and
therefore energy and contention, exactly as in the ns-2 study (64-byte
events, 36-byte control messages).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Frame", "BROADCAST", "FrameKind"]

#: Link-layer broadcast address (interest floods, exploratory floods).
BROADCAST = -1

_frame_ids = itertools.count(1)


class FrameKind:
    """Frame type tags used by the MAC (plain constants, not an Enum, to
    keep the per-frame cost minimal on the hot path)."""

    DATA = "data"
    ACK = "ack"


@dataclass
class Frame:
    """One link-layer frame.

    Attributes
    ----------
    src:
        Transmitting node id.
    dst:
        Destination node id, or :data:`BROADCAST`.
    size:
        Frame size in bytes (drives air time).
    payload:
        Opaque upper-layer message (a diffusion message in practice).
    kind:
        :class:`FrameKind` tag; ACK frames never leave the MAC.
    msg_class:
        Message class for energy attribution ("interest", "data",
        "aggregate", "ack", ...); see
        :data:`repro.net.energy.MESSAGE_CLASSES`.  Derived from the
        payload's ``wire_class`` by the MAC.
    frame_id:
        Unique id, assigned automatically (used for tracing and for
        matching ACKs to transmissions).
    """

    src: int
    dst: int
    size: int
    payload: Any = None
    kind: str = FrameKind.DATA
    msg_class: str = "other"
    frame_id: int = field(default_factory=lambda: next(_frame_ids))

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"frame size must be positive, got {self.size}")

    @property
    def is_broadcast(self) -> bool:
        return self.dst == BROADCAST

    def ack_frame(self, ack_size: int) -> "Frame":
        """Build the ACK frame a receiver returns for this unicast frame."""
        if self.is_broadcast:
            raise ValueError("broadcast frames are not acknowledged")
        return Frame(
            src=self.dst,
            dst=self.src,
            size=ack_size,
            payload=self.frame_id,
            kind=FrameKind.ACK,
            msg_class="ack",
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dst = "BCAST" if self.is_broadcast else str(self.dst)
        return f"<Frame #{self.frame_id} {self.kind} {self.src}->{dst} {self.size}B>"


def reset_frame_ids() -> None:
    """Reset the global frame-id counter (test isolation helper)."""
    global _frame_ids
    _frame_ids = itertools.count(1)
