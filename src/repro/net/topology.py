"""Sensor-field generation and source/sink placement schemes.

Implements the paper's experimental geometry (§5.1):

* fields are ``field_size x field_size`` squares (200 m x 200 m) with
  ``n`` uniformly random nodes; seven densities, 50..350 nodes, give mean
  radio degrees of roughly 6..43 at 40 m range;
* **corner placement** (the paper's main scheme, aimed at high-level data
  aggregation): the 5 sources are random nodes inside an 80 m x 80 m square
  at the bottom-left corner, the sink a random node inside a
  36 m x 36 m square at the top-right corner;
* **random source placement** (§5.4 / fig 7): sources anywhere;
* **scattered sinks** (§5.4 / fig 8): first sink at the top-right corner,
  the rest uniformly scattered;
* **event-radius model** (Krishnamachari et al., used by ``repro.trees``):
  sources are the nodes within radius ``S`` of a random event point.

Fields can optionally be re-drawn until the connectivity graph is
connected; at the paper's lowest density (~6 neighbors) random fields are
occasionally partitioned, and the paper's metrics are only meaningful for
connected source/sink pairs.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

import networkx as nx
import numpy as np

__all__ = [
    "SensorField",
    "generate_field",
    "corner_source_nodes",
    "corner_sink_node",
    "random_source_nodes",
    "scattered_sink_nodes",
    "event_radius_sources",
    "expected_degree",
]


def expected_degree(n: int, field_size: float, range_m: float) -> float:
    """Mean number of neighbors for ``n`` uniform nodes (border-effect-free
    approximation: n * pi * r^2 / A).

    Sanity anchor from the paper: 50..350 nodes on 200 m with 40 m range
    give about 6..43 neighbors.
    """
    return n * math.pi * range_m**2 / field_size**2


@dataclass
class SensorField:
    """A generated sensor field: node positions plus geometry metadata.

    ``redraws`` is the number of *discarded* draws the
    redraw-until-connected loop went through before this field came out
    connected (0 = the first draw was already connected).  It is not an
    RNG seed — the generating seed lives in the experiment config — and
    is surfaced in run manifests so cached and fresh fields can be told
    apart and compared.
    """

    positions: list[tuple[float, float]]
    field_size: float
    range_m: float
    redraws: int = 0
    _graph: nx.Graph = field(default=None, repr=False, compare=False)  # type: ignore[assignment]
    #: cached (n, 2) position matrix for vectorized geometry queries
    _pos_arr: np.ndarray = field(default=None, repr=False, compare=False)  # type: ignore[assignment]
    #: per-radius graph cache for non-default ranges (channel reach
    #: reporting); the nominal ``range_m`` graph stays in ``_graph``
    _alt_graphs: dict = field(default=None, repr=False, compare=False)  # type: ignore[assignment]

    @property
    def n(self) -> int:
        return len(self.positions)

    @property
    def seed(self) -> int:
        """Deprecated alias for :attr:`redraws`.

        Historical misnomer: this was never the RNG seed, it was the
        redraw attempt index.  Kept read-only for compatibility.
        """
        return self.redraws

    def _build_graph(self, radius: float) -> nx.Graph:
        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        cell = radius
        grid: dict[tuple[int, int], list[int]] = {}
        for i, (x, y) in enumerate(self.positions):
            grid.setdefault((int(x // cell), int(y // cell)), []).append(i)
        r2 = radius**2
        for i, (x, y) in enumerate(self.positions):
            cx, cy = int(x // cell), int(y // cell)
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    for j in grid.get((cx + dx, cy + dy), ()):
                        if j <= i:
                            continue
                        ox, oy = self.positions[j]
                        if (x - ox) ** 2 + (y - oy) ** 2 <= r2:
                            g.add_edge(i, j, weight=1.0)
        return g

    def connectivity_graph(self, range_m: float | None = None) -> nx.Graph:
        """Unit-disc connectivity graph (cached).  Edge weight = 1 hop,
        matching the paper's fixed-power "energy == hops" convention.

        ``range_m`` overrides the field's nominal radius — used to report
        connectivity at a channel model's actual reach (which equals the
        nominal radius for disc, so the default path stays untouched).
        Alternate-radius graphs are cached per radius.
        """
        if range_m is None or range_m == self.range_m:
            if self._graph is None:
                self._graph = self._build_graph(self.range_m)
            return self._graph
        if range_m <= 0:
            g = nx.Graph()
            g.add_nodes_from(range(self.n))
            return g
        if self._alt_graphs is None:
            self._alt_graphs = {}
        g = self._alt_graphs.get(range_m)
        if g is None:
            g = self._alt_graphs[range_m] = self._build_graph(range_m)
        return g

    def is_connected(self) -> bool:
        g = self.connectivity_graph()
        return g.number_of_nodes() > 0 and nx.is_connected(g)

    def mean_degree(self, range_m: float | None = None) -> float:
        g = self.connectivity_graph(range_m)
        if g.number_of_nodes() == 0:
            return 0.0
        return 2.0 * g.number_of_edges() / g.number_of_nodes()

    def distance(self, a: int, b: int) -> float:
        (ax, ay), (bx, by) = self.positions[a], self.positions[b]
        return math.hypot(ax - bx, ay - by)

    def position_array(self) -> np.ndarray:
        """The positions as a cached ``(n, 2)`` float64 matrix.

        Do not mutate — positions are fixed once the field is drawn.
        """
        if self._pos_arr is None:
            self._pos_arr = np.asarray(self.positions, dtype=np.float64).reshape(-1, 2)
        return self._pos_arr

    def nodes_in_square(self, x0: float, y0: float, side: float) -> list[int]:
        """Node ids whose position lies inside [x0, x0+side] x [y0, y0+side].

        Vectorized over the cached position matrix; the result is in
        ascending node-id order, exactly like the list-scan it replaced
        (placement RNG draws depend on that order).
        """
        pos = self.position_array()
        x, y = pos[:, 0], pos[:, 1]
        inside = (x >= x0) & (x <= x0 + side) & (y >= y0) & (y <= y0 + side)
        return [int(i) for i in np.nonzero(inside)[0]]


def generate_field(
    n: int,
    rng: random.Random,
    field_size: float = 200.0,
    range_m: float = 40.0,
    require_connected: bool = True,
    max_attempts: int = 200,
) -> SensorField:
    """Generate a random field; optionally redraw until connected."""
    if n < 2:
        raise ValueError("a field needs at least two nodes")
    for attempt in range(max_attempts):
        positions = [
            (rng.uniform(0.0, field_size), rng.uniform(0.0, field_size)) for _ in range(n)
        ]
        fld = SensorField(positions, field_size, range_m, redraws=attempt)
        if not require_connected or fld.is_connected():
            return fld
    raise RuntimeError(
        f"could not generate a connected field of {n} nodes in {max_attempts} attempts"
    )


# ----------------------------------------------------------------------
# placement schemes
# ----------------------------------------------------------------------
def _pick(rng: random.Random, candidates: list[int], k: int, exclude: set[int]) -> list[int]:
    pool = [c for c in candidates if c not in exclude]
    if len(pool) < k:
        raise ValueError(f"need {k} nodes but only {len(pool)} candidates available")
    return rng.sample(pool, k)


def _nearest_to(
    fld: SensorField, point: tuple[float, float], k: int, exclude: set[int]
) -> list[int]:
    ranked = sorted(
        (i for i in range(fld.n) if i not in exclude),
        key=lambda i: (fld.positions[i][0] - point[0]) ** 2
        + (fld.positions[i][1] - point[1]) ** 2,
    )
    return ranked[:k]


def corner_source_nodes(
    fld: SensorField,
    n_sources: int,
    rng: random.Random,
    square_side: float = 80.0,
    exclude: set[int] | None = None,
) -> list[int]:
    """The paper's source scheme: random nodes in the bottom-left square.

    If the square holds fewer than ``n_sources`` nodes (possible at the
    lowest density), the nearest nodes to the square's center fill in —
    the workload must always have the requested source count.
    """
    exclude = exclude or set()
    inside = [i for i in fld.nodes_in_square(0.0, 0.0, square_side) if i not in exclude]
    if len(inside) >= n_sources:
        return rng.sample(inside, n_sources)
    extra = _nearest_to(
        fld, (square_side / 2, square_side / 2), n_sources - len(inside), exclude | set(inside)
    )
    return inside + extra


def corner_sink_node(
    fld: SensorField,
    rng: random.Random,
    square_side: float = 36.0,
    exclude: set[int] | None = None,
) -> int:
    """The paper's sink scheme: a random node in the top-right square."""
    exclude = exclude or set()
    x0 = fld.field_size - square_side
    inside = [i for i in fld.nodes_in_square(x0, x0, square_side) if i not in exclude]
    if inside:
        return rng.choice(inside)
    corner = (fld.field_size - square_side / 2, fld.field_size - square_side / 2)
    return _nearest_to(fld, corner, 1, exclude)[0]


def random_source_nodes(
    fld: SensorField, n_sources: int, rng: random.Random, exclude: set[int] | None = None
) -> list[int]:
    """Fig-7 scheme: sources anywhere in the field."""
    return _pick(rng, list(range(fld.n)), n_sources, exclude or set())


def scattered_sink_nodes(
    fld: SensorField, n_sinks: int, rng: random.Random, exclude: set[int] | None = None
) -> list[int]:
    """Fig-8 scheme: first sink at the top-right corner, rest scattered."""
    exclude = set(exclude or set())
    first = corner_sink_node(fld, rng, exclude=exclude)
    sinks = [first]
    exclude.add(first)
    if n_sinks > 1:
        sinks.extend(_pick(rng, list(range(fld.n)), n_sinks - 1, exclude))
    return sinks


def event_radius_sources(
    fld: SensorField,
    n_sources: int,
    radius: float,
    rng: random.Random,
    exclude: set[int] | None = None,
) -> list[int]:
    """Event-radius model (Krishnamachari et al.): the nodes closest to a
    random event location, all within ``radius`` when possible."""
    exclude = exclude or set()
    ex, ey = rng.uniform(0, fld.field_size), rng.uniform(0, fld.field_size)
    ranked = sorted(
        (i for i in range(fld.n) if i not in exclude),
        key=lambda i: (fld.positions[i][0] - ex) ** 2 + (fld.positions[i][1] - ey) ** 2,
    )
    chosen = [
        i
        for i in ranked
        if math.hypot(fld.positions[i][0] - ex, fld.positions[i][1] - ey) <= radius
    ][:n_sources]
    for i in ranked:
        if len(chosen) >= n_sources:
            break
        if i not in chosen:
            chosen.append(i)
    return chosen
