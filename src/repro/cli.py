"""Command-line driver: ``repro-wsn`` / ``python -m repro``.

Subcommands::

    repro-wsn run   --scheme greedy -n 150 --seed 1          # one experiment
    repro-wsn run   --profile --trace-out t.jsonl \\
                    --manifest m.json                        # ... observed
    repro-wsn fig   fig5 --profile fast --trials 2           # one paper figure
    repro-wsn trees --nodes 100 200 350 --trials 5           # GIT vs SPT table
    repro-wsn all   --profile fast                           # every figure
    repro-wsn bench --out BENCH_sweep.json                   # canonical perf run
    repro-wsn stats m.json                                   # inspect manifest
    repro-wsn stats t.jsonl                                  # inspect trace
    repro-wsn stats --list-categories                        # trace categories
    repro-wsn run --audit --trace-out t.jsonl                # audited run
    repro-wsn audit t.jsonl                                  # replay invariants
    repro-wsn audit m.json                                   # static invariants
    repro-wsn diff a.json b.json                             # compare artifacts
    repro-wsn run --timeline                                 # sampled probe series
    repro-wsn timeline tl.json                               # render a timeline
    repro-wsn timeline runs/runs/KEY.json                    # ... from a store entry
    repro-wsn timeline fig5.manifest.json --cell greedy@150  # ... one figure cell
    repro-wsn run --channel pathloss --bands 2               # pathloss/SINR PHY
    repro-wsn fig channel-density --profile fast             # disc vs pathloss
    repro-wsn fig fig5 --store runs/                         # resumable sweep
    repro-wsn store ls runs/                                 # list stored runs
    repro-wsn store ls runs/ --json                          # ... machine-readable
    repro-wsn store gc runs/                                 # prune stale entries
    repro-wsn store rm runs/ KEY [KEY...]                    # delete entries
    repro-wsn serve --store runs/ --port 8642                # results daemon
    repro-wsn client submit --figure fig5 --wait             # figure via daemon
    repro-wsn client status job-000001                       # poll a job
    repro-wsn client fetch job-000001                        # fetch results
    repro-wsn client metrics                                 # daemon /metrics
    repro-wsn client trace job-000001 --chrome-trace t.json  # span tree -> Perfetto
    repro-wsn top --port 8642                                # live ops dashboard
    repro-wsn loadtest --requests 500 --concurrency 100      # hammer a warm daemon

Figures print the same series the paper plots (see
:mod:`repro.experiments.report`).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .experiments import (
    FIGURES,
    PROFILES,
    ExperimentConfig,
    FailureModel,
    format_figure,
    format_tree_table,
    git_vs_spt_table,
    run_experiment,
)

__all__ = ["main", "build_parser"]


def _add_channel_args(parser: argparse.ArgumentParser) -> None:
    """The shared ``--channel`` flag group (run and fig verbs)."""
    from .net.channel import CHANNEL_MODELS, ChannelSpec

    defaults = ChannelSpec(model="pathloss")
    group = parser.add_argument_group(
        "channel", "PHY channel model (defaults shown are the pathloss spec's)"
    )
    group.add_argument(
        "--channel",
        choices=CHANNEL_MODELS,
        default="disc",
        help="channel model: the paper's 40 m disc (default) or "
        "log-distance pathloss with SINR capture",
    )
    group.add_argument(
        "--tx-power-dbm", type=float, default=None, metavar="DBM",
        help=f"transmit power (default {defaults.tx_power_dbm:g})",
    )
    group.add_argument(
        "--pathloss-exponent", type=float, default=None, metavar="N",
        help=f"log-distance exponent (default {defaults.pathloss_exponent:g})",
    )
    group.add_argument(
        "--reference-loss-db", type=float, default=None, metavar="DB",
        help=f"pathloss at 1 m (default {defaults.reference_loss_db:g})",
    )
    group.add_argument(
        "--noise-floor-dbm", type=float, default=None, metavar="DBM",
        help=f"noise power (default {defaults.noise_floor_dbm:g})",
    )
    group.add_argument(
        "--rx-sensitivity-dbm", type=float, default=None, metavar="DBM",
        help=f"weakest decodable rx power (default {defaults.rx_sensitivity_dbm:g})",
    )
    group.add_argument(
        "--capture-threshold-db", type=float, default=None, metavar="DB",
        help=f"SINR needed to decode (default {defaults.capture_threshold_db:g})",
    )
    group.add_argument(
        "--no-capture", action="store_true",
        help="disable SINR capture (disc-style all-or-nothing collisions)",
    )
    group.add_argument(
        "--max-range-m", type=float, default=None, metavar="M",
        help="hard reach cutoff in meters (default: link budget only)",
    )
    group.add_argument(
        "--bands", type=int, default=None, metavar="K",
        help="frequency bands; only same-band frames interfere (default 1)",
    )


def _channel_spec(args: argparse.Namespace):
    """Build the config's ChannelSpec from the ``--channel`` flag group.

    Returns None for the default disc channel (the config keeps its
    default block, so disc store keys are unchanged); raises ValueError
    when pathloss parameters are given without ``--channel pathloss``.
    """
    from .net.channel import ChannelSpec

    flags = {
        "tx_power_dbm": args.tx_power_dbm,
        "pathloss_exponent": args.pathloss_exponent,
        "reference_loss_db": args.reference_loss_db,
        "noise_floor_dbm": args.noise_floor_dbm,
        "rx_sensitivity_dbm": args.rx_sensitivity_dbm,
        "capture_threshold_db": args.capture_threshold_db,
        "max_range_m": args.max_range_m,
        "n_bands": args.bands,
    }
    given = {k: v for k, v in flags.items() if v is not None}
    if args.channel == "disc":
        if given or args.no_capture:
            extra = sorted(given) + (["no_capture"] if args.no_capture else [])
            raise ValueError(
                f"channel parameters {extra} need --channel pathloss "
                "(the disc channel has no tunables)"
            )
        return None
    if args.no_capture:
        given["capture"] = False
    return ChannelSpec(model="pathloss", **given)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-wsn",
        description="Greedy aggregation in WSNs (ICDCS 2002) — reproduction driver",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one experiment and print its metrics")
    sim_g = run_p.add_argument_group(
        "simulation", "what to run: scheme, workload, geometry, kernel"
    )
    sim_g.add_argument("--scheme", choices=("greedy", "opportunistic"), default="greedy")
    sim_g.add_argument("-n", "--nodes", type=int, default=150)
    sim_g.add_argument("--sources", type=int, default=5)
    sim_g.add_argument("--sinks", type=int, default=1)
    sim_g.add_argument("--seed", type=int, default=1)
    sim_g.add_argument("--duration", type=float, default=50.0)
    sim_g.add_argument("--warmup", type=float, default=17.0)
    sim_g.add_argument(
        "--field-size",
        type=float,
        default=200.0,
        metavar="M",
        help="side of the square deployment field in meters",
    )
    sim_g.add_argument(
        "--kernel",
        choices=("auto", "vector", "scalar"),
        default="auto",
        help="PHY kernel: auto (default; vectorized cohorts at >=1000 "
        "nodes, scalar reference below), or force one",
    )
    sim_g.add_argument(
        "--placement", choices=("corner", "random", "event-radius"), default="corner"
    )
    sim_g.add_argument(
        "--aggregation",
        choices=("perfect", "linear", "none", "timestamp", "outline"),
        default="perfect",
    )
    sim_g.add_argument("--failures", action="store_true", help="enable §5.3 node dynamics")
    sim_g.add_argument("--include-idle", action="store_true")
    sim_g.add_argument(
        "--store",
        metavar="PATH",
        help="consult/update a content-addressed run store at PATH",
    )
    obs_g = run_p.add_argument_group(
        "observability", "instruments attached to the run and their artifacts"
    )
    obs_g.add_argument(
        "--profile",
        action="store_true",
        help="profile the event loop (events/sec, heap depth, hot callbacks)",
    )
    obs_g.add_argument(
        "--trace-out",
        metavar="PATH",
        help="stream enabled trace categories to a JSONL file",
    )
    obs_g.add_argument(
        "--trace-categories",
        nargs="+",
        default=["*"],
        metavar="CAT",
        help="categories to trace (default: everything)",
    )
    obs_g.add_argument(
        "--manifest", metavar="PATH", help="write the run provenance manifest here"
    )
    obs_g.add_argument(
        "--detailed-metrics",
        action="store_true",
        help="enable per-node labelled metric series",
    )
    obs_g.add_argument(
        "--audit",
        action="store_true",
        help="run the online invariant auditor; exit 1 on any finding",
    )
    obs_g.add_argument(
        "--timeline",
        action="store_true",
        help="sample the standard probe timeline and print its sparkline summary",
    )
    obs_g.add_argument(
        "--timeline-interval",
        type=float,
        default=None,
        metavar="SEC",
        help="sim-seconds between timeline samples (default: duration/10)",
    )
    obs_g.add_argument(
        "--timeline-out",
        metavar="PATH",
        help="write the sampled timeline as JSON (implies --timeline)",
    )
    _add_channel_args(run_p)

    fig_p = sub.add_parser(
        "fig",
        help="reproduce one of figures 5-10, the large-field density study, "
        "or the disc-vs-pathloss channel study",
    )
    fig_p.add_argument("figure", choices=sorted(FIGURES))
    fig_p.add_argument("--profile", choices=sorted(PROFILES), default="fast")
    fig_p.add_argument("--trials", type=int, default=None)
    fig_p.add_argument("--workers", type=int, default=0)
    fig_p.add_argument("--save", metavar="PATH", help="write the result as JSON")
    fig_p.add_argument("--csv", metavar="PATH", help="export the series as CSV")
    fig_p.add_argument(
        "--store",
        metavar="PATH",
        help="resumable sweep: skip runs already in the store at PATH, "
        "persist each fresh run as it completes",
    )
    _add_channel_args(fig_p)

    inspect_p = sub.add_parser(
        "inspect", help="run one experiment and print its aggregation tree"
    )
    inspect_p.add_argument("--scheme", choices=("greedy", "opportunistic"), default="greedy")
    inspect_p.add_argument("-n", "--nodes", type=int, default=120)
    inspect_p.add_argument("--sources", type=int, default=5)
    inspect_p.add_argument("--seed", type=int, default=1)
    inspect_p.add_argument("--duration", type=float, default=50.0)

    trees_p = sub.add_parser("trees", help="GIT vs SPT abstract comparison table")
    trees_p.add_argument("--nodes", type=int, nargs="+", default=[100, 200, 350])
    trees_p.add_argument("--sources", type=int, default=5)
    trees_p.add_argument("--trials", type=int, default=10)
    trees_p.add_argument("--seed", type=int, default=7)

    all_p = sub.add_parser("all", help="reproduce every figure")
    all_p.add_argument("--profile", choices=sorted(PROFILES), default="fast")
    all_p.add_argument("--trials", type=int, default=None)
    all_p.add_argument("--workers", type=int, default=0)
    all_p.add_argument(
        "--store", metavar="PATH", help="resumable sweeps via the run store at PATH"
    )

    store_p = sub.add_parser(
        "store", help="inspect and maintain a content-addressed run store"
    )
    store_sub = store_p.add_subparsers(dest="store_command", required=True)
    store_ls = store_sub.add_parser("ls", help="list stored runs")
    store_ls.add_argument("path", help="store directory")
    store_ls.add_argument(
        "--json", action="store_true", help="machine-readable entry list on stdout"
    )
    store_gc = store_sub.add_parser(
        "gc", help="prune temp litter, corrupt entries, and stale-version entries"
    )
    store_gc.add_argument("path", help="store directory")
    store_gc.add_argument(
        "--keep-stale",
        action="store_true",
        help="keep entries written by other package/store versions",
    )
    store_rm = store_sub.add_parser("rm", help="delete entries by key")
    store_rm.add_argument("path", help="store directory")
    store_rm.add_argument("keys", nargs="+", metavar="KEY", help="entry keys (sha256)")

    bench_p = sub.add_parser(
        "bench", help="run the canonical sweep benchmark and write BENCH_sweep.json"
    )
    bench_p.add_argument(
        "--quick", action="store_true", help="CI-smoke workload (~10x cheaper)"
    )
    bench_p.add_argument(
        "--profile",
        metavar="NAME",
        default=None,
        help="named workload profile (canonical, quick, large, large-quick, "
        "pathloss, pathloss-quick); overrides --quick",
    )
    bench_p.add_argument(
        "--workers",
        type=int,
        default=0,
        help="also time the parallel executor and verify it matches serial",
    )
    bench_p.add_argument(
        "--out", metavar="PATH", default="BENCH_sweep.json", help="where to write the JSON"
    )
    bench_p.add_argument(
        "--timeline",
        action="store_true",
        help="run with the standard probe timeline attached (the probe-overhead gate)",
    )
    bench_p.add_argument(
        "--spans",
        action="store_true",
        help="record request-tracing spans around each run (the span-overhead gate)",
    )
    bench_p.add_argument(
        "--json",
        action="store_true",
        help="machine-readable benchmark payload on stdout (instead of the table)",
    )

    serve_p = sub.add_parser(
        "serve", help="run the async sweep/results daemon over a run store"
    )
    serve_p.add_argument(
        "--store", required=True, metavar="PATH", help="run-store directory to serve"
    )
    serve_p.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_p.add_argument(
        "--port", type=int, default=8642, help="listen port (0 picks an ephemeral port)"
    )
    serve_p.add_argument(
        "--workers", type=int, default=2, help="simulation worker processes"
    )
    serve_p.add_argument(
        "--port-file",
        metavar="PATH",
        help="write the bound port here once listening (for scripts using --port 0)",
    )
    serve_p.add_argument(
        "--log-json",
        action="store_true",
        help="emit structured JSON logs (one object per line, with correlation ids)",
    )
    serve_p.add_argument(
        "--no-spans",
        action="store_true",
        help="disable request-tracing span retention (tracing is on by default)",
    )
    serve_p.add_argument(
        "--span-capacity",
        type=int,
        default=None,
        metavar="N",
        help="span ring-buffer size (default 8192; bounds trace memory)",
    )

    client_p = sub.add_parser("client", help="talk to a running repro-wsn daemon")
    client_p.add_argument("--host", default="127.0.0.1", help="daemon address")
    client_p.add_argument("--port", type=int, default=8642, help="daemon port")
    client_sub = client_p.add_subparsers(dest="client_command", required=True)
    client_submit = client_sub.add_parser(
        "submit", help="submit a figure or a raw JSON spec; prints the job"
    )
    client_submit.add_argument(
        "--figure", choices=sorted(FIGURES), help="figure to compute via the daemon"
    )
    client_submit.add_argument(
        "--profile", choices=sorted(PROFILES), default="fast", help="fidelity profile"
    )
    client_submit.add_argument("--trials", type=int, default=None, help="fields per point")
    client_submit.add_argument(
        "--n-nodes", type=int, default=None, help="field size for source/sink sweeps"
    )
    client_submit.add_argument(
        "--xs", type=int, nargs="+", default=None, metavar="X", help="sweep values"
    )
    client_submit.add_argument(
        "--priority", type=int, default=None, help="queue priority (lower drains first)"
    )
    client_submit.add_argument(
        "--spec", metavar="FILE", help="raw JSON request body (overrides --figure)"
    )
    client_submit.add_argument(
        "--wait", action="store_true", help="block until done and print the results"
    )
    _add_channel_args(client_submit)
    client_status = client_sub.add_parser(
        "status", help="show one job (or all jobs) as JSON"
    )
    client_status.add_argument("job_id", nargs="?", help="job id (omit to list all)")
    client_fetch = client_sub.add_parser(
        "fetch", help="wait for a job and print its results as JSON"
    )
    client_fetch.add_argument("job_id", help="job id")
    client_fetch.add_argument("--out", metavar="PATH", help="also write the JSON here")
    client_sub.add_parser("metrics", help="print the daemon's /metrics payload")
    client_trace = client_sub.add_parser(
        "trace", help="fetch a job's span tree (optionally export to Chrome/Perfetto)"
    )
    client_trace.add_argument("job_id", help="job id")
    client_trace.add_argument(
        "--chrome-trace",
        metavar="PATH",
        help="also write the spans as a Chrome trace (open in Perfetto/about:tracing)",
    )
    client_trace.add_argument(
        "--timeline-key",
        metavar="KEY",
        help="merge this stored run's probe timeline into the Chrome trace",
    )
    client_spans = client_sub.add_parser(
        "spans", help="print recent daemon spans (newest first)"
    )
    client_spans.add_argument("--limit", type=int, default=50, help="max spans")
    client_spans.add_argument(
        "--name", default=None, help="filter by span name (or prefix ending in '.')"
    )
    client_spans.add_argument("--trace", default=None, help="filter by trace id")

    top_p = sub.add_parser(
        "top", help="live terminal dashboard over a running daemon's /metrics"
    )
    top_p.add_argument("--host", default="127.0.0.1", help="daemon address")
    top_p.add_argument("--port", type=int, default=8642, help="daemon port")
    top_p.add_argument(
        "--interval", type=float, default=2.0, help="refresh period (seconds)"
    )
    top_p.add_argument(
        "--iterations",
        type=int,
        default=0,
        metavar="N",
        help="render N frames then exit (0 = run until interrupted)",
    )
    top_p.add_argument(
        "--no-clear",
        action="store_true",
        help="append frames instead of redrawing in place (for logs/pipes)",
    )

    loadtest_p = sub.add_parser(
        "loadtest", help="replay concurrent figure submissions against a daemon"
    )
    loadtest_p.add_argument("--host", default="127.0.0.1", help="daemon address")
    loadtest_p.add_argument("--port", type=int, default=8642, help="daemon port")
    loadtest_p.add_argument(
        "--figure", choices=sorted(FIGURES), default="fig5", help="figure to replay"
    )
    loadtest_p.add_argument(
        "--profile", choices=sorted(PROFILES), default="fast", help="fidelity profile"
    )
    loadtest_p.add_argument(
        "--xs", type=int, nargs="+", default=None, metavar="X", help="sweep values"
    )
    loadtest_p.add_argument("--trials", type=int, default=None, help="fields per point")
    loadtest_p.add_argument(
        "--requests", type=int, default=500, help="total submissions to replay"
    )
    loadtest_p.add_argument(
        "--concurrency", type=int, default=100, help="maximum submissions in flight"
    )
    loadtest_p.add_argument(
        "--timeout", type=float, default=30.0, help="per-request timeout (seconds)"
    )

    stats_p = sub.add_parser(
        "stats", help="pretty-print a manifest.json or a JSONL trace file"
    )
    stats_p.add_argument(
        "file", nargs="?", help="path to a manifest or trace produced by this tool"
    )
    stats_p.add_argument(
        "--top", type=int, default=12, help="how many top counters/categories to show"
    )
    stats_p.add_argument(
        "--list-categories",
        action="store_true",
        help="list every known trace category and exit",
    )

    audit_p = sub.add_parser(
        "audit", help="verify run invariants on a trace, manifest, or store entry"
    )
    audit_p.add_argument(
        "file", help="JSONL trace (stream checks) or JSON artifact (static checks)"
    )
    audit_p.add_argument(
        "--json", action="store_true", help="machine-readable findings on stdout"
    )

    diff_p = sub.add_parser(
        "diff", help="compare two run/figure/timeline artifacts (manifests, store entries, results)"
    )
    diff_p.add_argument("a", help="baseline artifact")
    diff_p.add_argument("b", help="candidate artifact")
    diff_p.add_argument(
        "--json", action="store_true", help="machine-readable diff on stdout"
    )

    timeline_p = sub.add_parser(
        "timeline",
        help="render a probe timeline from a saved artifact, store entry, or figure cell",
    )
    timeline_p.add_argument(
        "target",
        help="timeline JSON, Chrome trace, JSONL trace, store entry, run manifest, "
        "or figure manifest/result (the latter need --cell)",
    )
    timeline_p.add_argument(
        "--cell",
        metavar="SCHEME@X",
        help="which figure cell to re-run (e.g. greedy@150; channel-density "
        "cells are scheme@channel@x, e.g. greedy@pathloss@150)",
    )
    timeline_p.add_argument(
        "--trial", type=int, default=0, help="trial index for figure-cell re-runs"
    )
    timeline_p.add_argument(
        "--profile",
        choices=sorted(PROFILES),
        default="fast",
        help="profile for figure-result re-runs (figure manifests embed theirs)",
    )
    timeline_p.add_argument(
        "--interval",
        type=float,
        default=None,
        metavar="SEC",
        help="sampling interval for live re-runs (default: duration/10)",
    )
    timeline_p.add_argument(
        "--probes", nargs="+", metavar="NAME", help="only render these probes"
    )
    timeline_p.add_argument(
        "--width", type=int, default=40, help="sparkline width in characters"
    )
    timeline_p.add_argument(
        "--json", action="store_true", help="machine-readable timeline on stdout"
    )
    timeline_p.add_argument(
        "--chrome-trace",
        metavar="OUT",
        help="also export the timeline as Chrome-trace counter tracks",
    )

    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    from .experiments.config import fast
    from .experiments.runner import run_observed
    from .obs import ObsOptions, format_profile

    profile = fast()
    try:
        channel = _channel_spec(args)
    except ValueError as exc:
        print(f"run: {exc}", file=sys.stderr)
        return 2
    extra = {"channel": channel} if channel is not None else {}
    cfg = ExperimentConfig(
        scheme=args.scheme,
        n_nodes=args.nodes,
        n_sources=args.sources,
        n_sinks=args.sinks,
        seed=args.seed,
        duration=args.duration,
        warmup=args.warmup,
        field_size=args.field_size,
        diffusion=profile.diffusion,
        source_placement=args.placement,
        aggregation=args.aggregation,
        failures=FailureModel(epoch=profile.failure_epoch) if args.failures else None,
        include_idle=args.include_idle,
        **extra,
    )
    obs = None
    wants_obs = (
        args.profile
        or args.trace_out
        or args.manifest
        or args.detailed_metrics
        or args.audit
        or args.timeline
        or args.timeline_out
    )
    if wants_obs:
        obs = ObsOptions(
            profile=args.profile,
            trace_path=args.trace_out,
            trace_categories=tuple(args.trace_categories),
            manifest_path=args.manifest,
            detailed_metrics=args.detailed_metrics,
            audit=args.audit,
            timeline=args.timeline,
            timeline_interval=args.timeline_interval,
            timeline_path=args.timeline_out,
        )
    if args.store and obs is None:
        from .experiments.store import RunStore

        store = RunStore(args.store)
        result = run_experiment(cfg, store=store, kernel=args.kernel)
        observed = None
        if store.stats.hits:
            print(f"run store: hit ({args.store})")
    else:
        observed = run_observed(cfg, obs, kernel=args.kernel)
        result = observed.metrics
        if args.store:
            # An observed run is always executed fresh (the caller asked
            # for artifacts); its result still lands in the store so later
            # sweeps can reuse it.
            from .experiments.store import RunStore

            store = RunStore(args.store)
            store.put(cfg, result)
            if observed.timeline is not None:
                store.put_timeline(cfg, observed.timeline)
            print(f"run store: persisted ({args.store})")
    print(f"scheme                 {result.scheme}")
    print(f"channel                {cfg.channel.model}")
    print(f"nodes                  {result.n_nodes} (mean degree {result.mean_degree:.1f})")
    print(f"avg dissipated energy  {result.avg_dissipated_energy:.6f} J/node/event")
    print(f"avg delay              {result.avg_delay:.4f} s")
    print(f"delivery ratio         {result.delivery_ratio:.3f}")
    print(f"distinct delivered     {result.distinct_delivered} / {result.events_sent}")
    if result.time_to_first_death is not None:
        print(f"first node death       {result.time_to_first_death:.3f} s")
    if result.time_to_half_delivery is not None:
        print(f"half delivery at       {result.time_to_half_delivery:.3f} s")
    if observed is not None:
        if observed.profile is not None:
            print()
            print(format_profile(observed.profile))
        if observed.timeline is not None:
            from .obs import format_timeline

            print()
            print(format_timeline(observed.timeline))
        if observed.trace_path is not None:
            print(f"\ntrace written: {observed.trace_path}")
        if observed.timeline_path is not None:
            print(f"timeline written: {observed.timeline_path}")
        if observed.manifest_path is not None:
            print(f"manifest written: {observed.manifest_path}")
        if observed.audit is not None:
            from .obs.audit import AuditFinding, format_findings

            findings = [
                AuditFinding(**{**f, "context": f.get("context", {})})
                for f in observed.audit["findings"]
            ]
            print()
            print(format_findings(findings))
            if not observed.audit["ok"]:
                return 1
    return 0


def _sweep_progress(done: int, total: int) -> None:
    """Coarse progress line for long parallel sweeps (stderr, no spam)."""
    step = max(1, total // 10)
    if done % step == 0 or done == total:
        print(f"sweep: {done}/{total} runs", file=sys.stderr)


def _store_block(store, path) -> dict:
    """The manifest/reporting summary of one sweep's store accounting."""
    return {"path": str(path), **store.stats.as_dict()}


def _cmd_fig(args: argparse.Namespace) -> int:
    import time

    from .experiments import format_channel_figure

    profile = PROFILES[args.profile]()
    progress = _sweep_progress if args.workers and args.workers > 1 else None
    try:
        channel = _channel_spec(args)
    except ValueError as exc:
        print(f"fig: {exc}", file=sys.stderr)
        return 2
    store = None
    if args.store:
        from .experiments.store import RunStore

        store = RunStore(args.store)
    t0 = time.perf_counter()
    kwargs = {"channel": channel} if channel is not None else {}
    result = FIGURES[args.figure](
        profile, trials=args.trials, workers=args.workers, progress=progress,
        store=store, **kwargs,
    )
    wall = time.perf_counter() - t0
    formatter = (
        format_channel_figure if args.figure == "channel-density" else format_figure
    )
    print(formatter(result))
    if store is not None:
        s = store.stats
        print(
            f"run store: {s.hits} hits, {s.misses} misses, "
            f"{s.persisted} persisted ({args.store})"
        )
    if args.save:
        from .experiments.persistence import (
            build_figure_manifest,
            manifest_path_for,
            save_figure_json,
            save_manifest,
        )

        print(f"saved: {save_figure_json(result, args.save)}")
        manifest = build_figure_manifest(
            result,
            profile,
            wall_time_s=wall,
            trials=args.trials,
            workers=args.workers,
            result_path=args.save,
            store=_store_block(store, args.store) if store is not None else None,
        )
        print(f"manifest: {save_manifest(manifest, manifest_path_for(args.save))}")
    if args.csv:
        from .experiments.persistence import export_figure_csv

        print(f"exported: {export_figure_csv(result, args.csv)}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from .obs import format_manifest, load_manifest, trace_summary

    if args.list_categories:
        from .obs import TRACE_CATEGORIES

        width = max(len(name) for name in TRACE_CATEGORIES)
        for name, description in sorted(TRACE_CATEGORIES.items()):
            print(f"{name:<{width}}  {description}")
        return 0
    if not args.file:
        print("stats: a manifest/trace path is required (or --list-categories)", file=sys.stderr)
        return 2
    path = Path(args.file)
    if not path.exists():
        print(f"no such file: {path}", file=sys.stderr)
        return 1
    try:
        data = json.loads(path.read_text())
        is_manifest = isinstance(data, dict) and "manifest_version" in data
    except json.JSONDecodeError:
        is_manifest = False  # multi-line JSONL traces land here
    if is_manifest:
        print(format_manifest(load_manifest(path), top_counters=args.top))
        return 0
    try:
        summary = trace_summary(path)
    except json.JSONDecodeError:
        print(f"not a manifest or JSONL trace: {path}", file=sys.stderr)
        return 1
    t_min, t_max = summary["time_span"]
    span = f"{t_min:.3f} .. {t_max:.3f} s" if t_min is not None else "empty"
    print(f"trace {summary['path']} (v{summary['trace_version']})")
    print(f"records          {summary['records']}")
    print(f"gauge snapshots  {summary['gauge_snapshots']}")
    print(f"time span        {span}")
    print(f"categories ({len(summary['categories'])}):")
    for cat, n in list(summary["categories"].items())[: args.top]:
        print(f"  {cat:<32} {n}")
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from .obs.audit import (
        audit_figure_cells,
        audit_static,
        audit_trace,
        format_findings,
    )

    path = Path(args.file)
    if not path.exists():
        print(f"no such file: {path}", file=sys.stderr)
        return 2
    try:
        data = json.loads(path.read_text())
        is_artifact = isinstance(data, dict)
    except json.JSONDecodeError:
        is_artifact = False  # JSONL traces land here
    if is_artifact:
        if "cells" in data:  # figure manifest or saved figure result
            findings = audit_figure_cells(data["cells"])
            mode = "static (figure cells)"
        elif "metrics" in data:  # run manifest or store entry
            findings = audit_static(data["metrics"])
            mode = "static (run metrics)"
        else:
            print(f"not an auditable artifact: {path}", file=sys.stderr)
            return 2
    else:
        try:
            findings = audit_trace(path)
        except (json.JSONDecodeError, ValueError) as exc:
            print(f"not a manifest, store entry, or JSONL trace: {exc}", file=sys.stderr)
            return 2
        mode = "stream (trace replay)"
    if args.json:
        print(
            json.dumps(
                {
                    "file": str(path),
                    "mode": mode,
                    "ok": not any(f.severity == "error" for f in findings),
                    "findings": [f.as_dict() for f in findings],
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(f"{path} — {mode}")
        print(format_findings(findings))
    return 1 if any(f.severity == "error" for f in findings) else 0


def _cmd_diff(args: argparse.Namespace) -> int:
    import json

    from .obs.diff import diff_artifacts, format_diff

    try:
        diff = diff_artifacts(args.a, args.b)
    except (ValueError, OSError) as exc:
        print(f"diff failed: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(diff, indent=2, sort_keys=True))
    else:
        print(format_diff(diff))
    return 0 if diff["equal"] else 1


def _timeline_from_live_run(cfg, interval) -> "object":
    """Re-run one config with the standard probes attached."""
    from .experiments.runner import run_observed
    from .obs import ObsOptions

    observed = run_observed(
        cfg, ObsOptions(timeline=True, timeline_interval=interval)
    )
    return observed.timeline


def _load_timeline_target(args: argparse.Namespace):
    """Resolve the ``timeline`` verb's target to ``(Timeline, source)``.

    Accepts, in classification order: a saved timeline JSON (standalone
    or store-persisted), a Chrome trace, a store entry or run manifest
    (stored timeline if present, else a live re-run from the embedded
    config), a figure manifest/result (live re-run of one ``--cell``),
    or a JSONL trace with gauge snapshots.
    """
    import json
    from pathlib import Path

    from .experiments import config_from_dict, figure_cell_config
    from .obs import Timeline, chrome_trace_to_timeline, timeline_from_trace_jsonl

    path = Path(args.target)
    if not path.exists():
        raise FileNotFoundError(f"no such file: {path}")
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError:
        data = None
    if data is None:
        return timeline_from_trace_jsonl(path), "trace gauge snapshots"
    if not isinstance(data, dict):
        raise ValueError(f"{path}: not a JSON object")
    if "timeline_version" in data:
        return Timeline.from_dict(data), "timeline artifact"
    if "traceEvents" in data:
        return chrome_trace_to_timeline(path), "chrome trace"
    if "store_version" in data and "identity" in data:
        # store entry: prefer the persisted sibling timeline
        root = path.parent.parent
        key = data.get("key", path.stem)
        sibling = root / "timelines" / f"{key}.json"
        if sibling.exists():
            return (
                Timeline.from_dict(json.loads(sibling.read_text())),
                f"store timeline ({sibling})",
            )
        cfg = config_from_dict(data["identity"]["config"])
        return _timeline_from_live_run(cfg, args.interval), "live re-run (store entry)"
    if data.get("manifest_version") is not None and data.get("kind") == "run":
        tl_block = data.get("timeline") or {}
        tl_path = tl_block.get("path")
        if tl_path and Path(tl_path).exists():
            return (
                Timeline.from_dict(json.loads(Path(tl_path).read_text())),
                f"run manifest -> {tl_path}",
            )
        cfg = config_from_dict(data["config"])
        return _timeline_from_live_run(cfg, args.interval), "live re-run (run manifest)"
    if "cells" in data and "figure_id" in data:
        # figure manifest or saved figure result: re-run one cell
        if not args.cell:
            raise ValueError(
                "figure artifacts need --cell SCHEME@X (e.g. --cell greedy@150)"
            )
        # rpartition: channel-density cells are labeled scheme@channel@x
        # (e.g. greedy@pathloss@150) — x is always the last @-field
        scheme, _, x_str = args.cell.rpartition("@")
        if not scheme:
            raise ValueError(f"--cell must look like SCHEME@X, got {args.cell!r}")
        profile_name = (data.get("profile") or {}).get("name", args.profile)
        profile = PROFILES[profile_name]()
        cfg = figure_cell_config(
            data["figure_id"], profile, scheme, float(x_str), trial=args.trial
        )
        return (
            _timeline_from_live_run(cfg, args.interval),
            f"live re-run ({data['figure_id']} {args.cell} trial {args.trial}, "
            f"profile {profile_name})",
        )
    raise ValueError(f"{path}: no timeline in this artifact shape")


def _cmd_timeline(args: argparse.Namespace) -> int:
    import json

    from .obs import format_timeline, timeline_to_chrome_trace

    try:
        timeline, source = _load_timeline_target(args)
    except (FileNotFoundError, KeyError, ValueError) as exc:
        print(f"timeline: {exc}", file=sys.stderr)
        return 2
    if args.chrome_trace:
        out = timeline_to_chrome_trace(timeline, args.chrome_trace)
        print(f"chrome trace written: {out}", file=sys.stderr)
    if args.json:
        print(json.dumps(timeline.as_dict(), sort_keys=True))
    else:
        print(f"source: {source}")
        print(format_timeline(timeline, probes=args.probes, width=args.width))
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from .experiments.config import fast
    from .experiments.inspect import active_tree, compare_with_ideal, tree_stats
    from .experiments.runner import build_world

    profile = fast()
    cfg = ExperimentConfig(
        scheme=args.scheme,
        n_nodes=args.nodes,
        n_sources=args.sources,
        seed=args.seed,
        duration=args.duration,
        warmup=min(profile.warmup, args.duration / 2),
        diffusion=profile.diffusion,
    )
    world = build_world(cfg)
    world.sim.run(until=cfg.duration)
    tree = active_tree(world)
    stats = tree_stats(tree, world.sources, world.sinks[0])
    cmp = compare_with_ideal(world)
    print(f"scheme {args.scheme}, {args.nodes} nodes, sources {sorted(world.sources)}, "
          f"sink {world.sinks[0]}")
    print(f"live tree: {stats.n_edges} edges, {stats.n_junctions} junction(s), "
          f"depth {stats.depth}, stranded sources {list(stats.stranded_sources) or 'none'}")
    print(
        "centralized references: "
        f"SPT {cmp['spt_edges']:.0f} edges, GIT {cmp['git_edges']:.0f}, "
        f"Steiner(KMB) {cmp['steiner_edges']:.0f}"
    )
    print("\nedges (node -> preferred downstream):")
    for u, v in sorted(tree.edges()):
        role = "source" if u in world.sources else "relay "
        print(f"  {role} {u:4d} -> {v}")
    return 0


def _cmd_trees(args: argparse.Namespace) -> int:
    rows = git_vs_spt_table(
        n_nodes=args.nodes, n_sources=args.sources, trials=args.trials, seed=args.seed
    )
    print(format_tree_table(rows))
    return 0


def _cmd_all(args: argparse.Namespace) -> int:
    profile = PROFILES[args.profile]()
    progress = _sweep_progress if args.workers and args.workers > 1 else None
    store = None
    if args.store:
        from .experiments.store import RunStore

        store = RunStore(args.store)
    for name in sorted(FIGURES):
        if name in ("large-density", "channel-density"):
            # Beyond-paper studies (scale, channel axis) — run them
            # explicitly via `repro fig <name>`.
            continue
        result = FIGURES[name](
            profile, trials=args.trials, workers=args.workers, progress=progress,
            store=store,
        )
        print(format_figure(result))
        print()
    print(format_tree_table(git_vs_spt_table()))
    if store is not None:
        s = store.stats
        print(
            f"\nrun store: {s.hits} hits, {s.misses} misses, "
            f"{s.persisted} persisted ({args.store})"
        )
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    from .experiments.store import RunStore

    store = RunStore(args.path)
    if args.store_command == "ls":
        rows = store.ls()
        if args.json:
            import json

            print(json.dumps({"path": str(store.root), "entries": rows}, sort_keys=True))
            return 0
        if not rows:
            print(f"empty store: {args.path}")
            return 0
        print(f"{'key':<16} {'scheme':<14} {'nodes':>5} {'seed':>10} {'ratio':>6}  created")
        for row in rows:
            ratio = row.get("delivery_ratio")
            ratio_s = f"{ratio:.3f}" if isinstance(ratio, (int, float)) else "?"
            print(
                f"{row['key'][:16]:<16} {str(row.get('scheme')):<14} "
                f"{str(row.get('n_nodes')):>5} {str(row.get('seed')):>10} "
                f"{ratio_s:>6}  {row.get('created_at')}"
            )
        print(f"{len(rows)} entries")
        return 0
    if args.store_command == "gc":
        stats = store.gc(prune_stale_versions=not args.keep_stale)
        print(
            f"gc: kept {stats['kept']}, removed {stats['stale_removed']} stale, "
            f"{stats['corrupt_removed']} corrupt, {stats['tmp_removed']} temp files"
        )
        return 0
    removed = store.rm(args.keys)
    print(f"removed {removed} of {len(args.keys)} entries")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .experiments.bench import format_bench, run_bench, save_bench

    payload = run_bench(
        quick=args.quick,
        workers=args.workers,
        timeline=args.timeline,
        profile=args.profile,
        spans=args.spans,
    )
    path = save_bench(payload, args.out)
    if args.json:
        import json

        print(json.dumps(payload, sort_keys=True))
    else:
        print(format_bench(payload))
        print(f"\nwritten: {path}")
    par = payload.get("parallel")
    if par and not par["identical"]:
        print("ERROR: parallel results diverged from serial", file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal
    from pathlib import Path

    from .service import build_service

    span_kwargs = {}
    if args.span_capacity is not None:
        span_kwargs["span_capacity"] = args.span_capacity
    daemon = build_service(
        args.store,
        host=args.host,
        port=args.port,
        run_workers=args.workers,
        spans=not args.no_spans,
        log_json=args.log_json,
        **span_kwargs,
    )

    async def _serve() -> None:
        await daemon.start()
        print(
            f"serving on http://{daemon.host}:{daemon.port} "
            f"(store: {args.store}, workers: {args.workers})",
            flush=True,
        )
        if args.port_file:
            Path(args.port_file).write_text(str(daemon.port))
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, stop.set)
        await stop.wait()
        await daemon.stop()
        print("shutdown complete", flush=True)

    asyncio.run(_serve())
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    import dataclasses
    import json
    from pathlib import Path

    from .service.client import ServiceClient, ServiceError

    client = ServiceClient(host=args.host, port=args.port)
    try:
        if args.client_command == "submit":
            if args.spec:
                spec = json.loads(Path(args.spec).read_text())
            elif args.figure:
                spec = {
                    "kind": "figure",
                    "figure": args.figure,
                    "profile": args.profile,
                }
                for name, value in (
                    ("trials", args.trials),
                    ("n_nodes", args.n_nodes),
                    ("xs", args.xs),
                    ("priority", args.priority),
                ):
                    if value is not None:
                        spec[name] = value
                channel = _channel_spec(args)
                if channel is not None:
                    spec["channel"] = dataclasses.asdict(channel)
            else:
                print("client submit: need --figure or --spec", file=sys.stderr)
                return 2
            submitted = client.submit(spec)
            if not args.wait:
                print(json.dumps(submitted, indent=2, sort_keys=True))
                return 0
            job_id = submitted["job"]["id"]
            status = client.wait(job_id)
            if status["status"] != "done":
                print(json.dumps(status, indent=2, sort_keys=True))
                print(f"client: job {job_id} failed: {status['error']}", file=sys.stderr)
                return 1
            print(json.dumps(client.result(job_id), indent=2, sort_keys=True))
            return 0
        if args.client_command == "status":
            payload = client.job(args.job_id) if args.job_id else {"jobs": client.jobs()}
            print(json.dumps(payload, indent=2, sort_keys=True))
            return 0
        if args.client_command == "fetch":
            result = client.fetch(args.job_id)
            text = json.dumps(result, indent=2, sort_keys=True)
            if args.out:
                Path(args.out).write_text(text)
                print(f"written: {args.out}")
            else:
                print(text)
            return 0
        if args.client_command == "trace":
            payload = client.trace(args.job_id)
            if args.chrome_trace:
                from .obs.export import spans_to_chrome_trace

                timeline = None
                if args.timeline_key:
                    timeline = client.run_timeline(args.timeline_key)
                out = spans_to_chrome_trace(
                    payload["spans"], args.chrome_trace, timeline=timeline
                )
                print(json.dumps(payload, indent=2, sort_keys=True))
                print(f"chrome trace written: {out}")
            else:
                print(json.dumps(payload, indent=2, sort_keys=True))
            return 0
        if args.client_command == "spans":
            payload = client.recent_spans(
                limit=args.limit, name=args.name, trace=args.trace
            )
            print(json.dumps(payload, indent=2, sort_keys=True))
            return 0
        print(json.dumps(client.metrics(), indent=2, sort_keys=True))
        return 0
    except ValueError as exc:
        print(f"client: {exc}", file=sys.stderr)
        return 2
    except ServiceError as exc:
        print(f"client: {exc}", file=sys.stderr)
        return 1
    except (ConnectionError, TimeoutError, OSError) as exc:
        print(
            f"client: cannot reach daemon at {args.host}:{args.port}: {exc}",
            file=sys.stderr,
        )
        return 1


def _cmd_top(args: argparse.Namespace) -> int:
    from .service.top import run_top

    return run_top(
        host=args.host,
        port=args.port,
        interval=args.interval,
        iterations=args.iterations,
        clear=not args.no_clear,
    )


def _cmd_loadtest(args: argparse.Namespace) -> int:
    import json

    from .service.loadtest import run_load_test

    spec = {"kind": "figure", "figure": args.figure, "profile": args.profile}
    if args.xs is not None:
        spec["xs"] = args.xs
    if args.trials is not None:
        spec["trials"] = args.trials
    payload = run_load_test(
        args.host,
        args.port,
        spec=spec,
        requests=args.requests,
        concurrency=args.concurrency,
        timeout=args.timeout,
    )
    print(json.dumps(payload, indent=2, sort_keys=True))
    if payload["errors"]:
        print(f"loadtest: {payload['errors']} requests failed", file=sys.stderr)
        return 1
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "fig": _cmd_fig,
    "trees": _cmd_trees,
    "all": _cmd_all,
    "bench": _cmd_bench,
    "inspect": _cmd_inspect,
    "stats": _cmd_stats,
    "store": _cmd_store,
    "audit": _cmd_audit,
    "diff": _cmd_diff,
    "timeline": _cmd_timeline,
    "serve": _cmd_serve,
    "client": _cmd_client,
    "top": _cmd_top,
    "loadtest": _cmd_loadtest,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
