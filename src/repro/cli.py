"""Command-line driver: ``repro-wsn`` / ``python -m repro``.

Subcommands::

    repro-wsn run   --scheme greedy -n 150 --seed 1          # one experiment
    repro-wsn fig   fig5 --profile fast --trials 2           # one paper figure
    repro-wsn trees --nodes 100 200 350 --trials 5           # GIT vs SPT table
    repro-wsn all   --profile fast                           # every figure

Figures print the same series the paper plots (see
:mod:`repro.experiments.report`).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .experiments import (
    FIGURES,
    PROFILES,
    ExperimentConfig,
    FailureModel,
    format_figure,
    format_tree_table,
    git_vs_spt_table,
    run_experiment,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-wsn",
        description="Greedy aggregation in WSNs (ICDCS 2002) — reproduction driver",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one experiment and print its metrics")
    run_p.add_argument("--scheme", choices=("greedy", "opportunistic"), default="greedy")
    run_p.add_argument("-n", "--nodes", type=int, default=150)
    run_p.add_argument("--sources", type=int, default=5)
    run_p.add_argument("--sinks", type=int, default=1)
    run_p.add_argument("--seed", type=int, default=1)
    run_p.add_argument("--duration", type=float, default=50.0)
    run_p.add_argument("--warmup", type=float, default=17.0)
    run_p.add_argument(
        "--placement", choices=("corner", "random", "event-radius"), default="corner"
    )
    run_p.add_argument(
        "--aggregation",
        choices=("perfect", "linear", "none", "timestamp", "outline"),
        default="perfect",
    )
    run_p.add_argument("--failures", action="store_true", help="enable §5.3 node dynamics")
    run_p.add_argument("--include-idle", action="store_true")

    fig_p = sub.add_parser("fig", help="reproduce one of figures 5-10")
    fig_p.add_argument("figure", choices=sorted(FIGURES))
    fig_p.add_argument("--profile", choices=sorted(PROFILES), default="fast")
    fig_p.add_argument("--trials", type=int, default=None)
    fig_p.add_argument("--workers", type=int, default=0)
    fig_p.add_argument("--save", metavar="PATH", help="write the result as JSON")
    fig_p.add_argument("--csv", metavar="PATH", help="export the series as CSV")

    inspect_p = sub.add_parser(
        "inspect", help="run one experiment and print its aggregation tree"
    )
    inspect_p.add_argument("--scheme", choices=("greedy", "opportunistic"), default="greedy")
    inspect_p.add_argument("-n", "--nodes", type=int, default=120)
    inspect_p.add_argument("--sources", type=int, default=5)
    inspect_p.add_argument("--seed", type=int, default=1)
    inspect_p.add_argument("--duration", type=float, default=50.0)

    trees_p = sub.add_parser("trees", help="GIT vs SPT abstract comparison table")
    trees_p.add_argument("--nodes", type=int, nargs="+", default=[100, 200, 350])
    trees_p.add_argument("--sources", type=int, default=5)
    trees_p.add_argument("--trials", type=int, default=10)
    trees_p.add_argument("--seed", type=int, default=7)

    all_p = sub.add_parser("all", help="reproduce every figure")
    all_p.add_argument("--profile", choices=sorted(PROFILES), default="fast")
    all_p.add_argument("--trials", type=int, default=None)
    all_p.add_argument("--workers", type=int, default=0)

    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    from .experiments.config import fast

    profile = fast()
    cfg = ExperimentConfig(
        scheme=args.scheme,
        n_nodes=args.nodes,
        n_sources=args.sources,
        n_sinks=args.sinks,
        seed=args.seed,
        duration=args.duration,
        warmup=args.warmup,
        diffusion=profile.diffusion,
        source_placement=args.placement,
        aggregation=args.aggregation,
        failures=FailureModel(epoch=profile.failure_epoch) if args.failures else None,
        include_idle=args.include_idle,
    )
    result = run_experiment(cfg)
    print(f"scheme                 {result.scheme}")
    print(f"nodes                  {result.n_nodes} (mean degree {result.mean_degree:.1f})")
    print(f"avg dissipated energy  {result.avg_dissipated_energy:.6f} J/node/event")
    print(f"avg delay              {result.avg_delay:.4f} s")
    print(f"delivery ratio         {result.delivery_ratio:.3f}")
    print(f"distinct delivered     {result.distinct_delivered} / {result.events_sent}")
    return 0


def _cmd_fig(args: argparse.Namespace) -> int:
    profile = PROFILES[args.profile]()
    result = FIGURES[args.figure](profile, trials=args.trials, workers=args.workers)
    print(format_figure(result))
    if args.save:
        from .experiments.persistence import save_figure_json

        print(f"saved: {save_figure_json(result, args.save)}")
    if args.csv:
        from .experiments.persistence import export_figure_csv

        print(f"exported: {export_figure_csv(result, args.csv)}")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from .experiments.config import fast
    from .experiments.inspect import active_tree, compare_with_ideal, tree_stats
    from .experiments.runner import build_world

    profile = fast()
    cfg = ExperimentConfig(
        scheme=args.scheme,
        n_nodes=args.nodes,
        n_sources=args.sources,
        seed=args.seed,
        duration=args.duration,
        warmup=min(profile.warmup, args.duration / 2),
        diffusion=profile.diffusion,
    )
    world = build_world(cfg)
    world.sim.run(until=cfg.duration)
    tree = active_tree(world)
    stats = tree_stats(tree, world.sources, world.sinks[0])
    cmp = compare_with_ideal(world)
    print(f"scheme {args.scheme}, {args.nodes} nodes, sources {sorted(world.sources)}, "
          f"sink {world.sinks[0]}")
    print(f"live tree: {stats.n_edges} edges, {stats.n_junctions} junction(s), "
          f"depth {stats.depth}, stranded sources {list(stats.stranded_sources) or 'none'}")
    print(
        "centralized references: "
        f"SPT {cmp['spt_edges']:.0f} edges, GIT {cmp['git_edges']:.0f}, "
        f"Steiner(KMB) {cmp['steiner_edges']:.0f}"
    )
    print("\nedges (node -> preferred downstream):")
    for u, v in sorted(tree.edges()):
        role = "source" if u in world.sources else "relay "
        print(f"  {role} {u:4d} -> {v}")
    return 0


def _cmd_trees(args: argparse.Namespace) -> int:
    rows = git_vs_spt_table(
        n_nodes=args.nodes, n_sources=args.sources, trials=args.trials, seed=args.seed
    )
    print(format_tree_table(rows))
    return 0


def _cmd_all(args: argparse.Namespace) -> int:
    profile = PROFILES[args.profile]()
    for name in sorted(FIGURES):
        result = FIGURES[name](profile, trials=args.trials, workers=args.workers)
        print(format_figure(result))
        print()
    print(format_tree_table(git_vs_spt_table()))
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "fig": _cmd_fig,
    "trees": _cmd_trees,
    "all": _cmd_all,
    "inspect": _cmd_inspect,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
