"""Evaluation harness: configs, metrics, the runner, sweeps, figures,
persistence, and the resumable run store.

Reproduces §5 of the paper: the three metrics, the density/source/sink
sweeps, the failure study, and the aggregation-function sensitivity —
plus the GIT-vs-SPT abstract comparison from related work.  Results
persist two ways: whole-figure JSON checkpoints
(:mod:`~repro.experiments.persistence`) and the per-run
content-addressed store (:mod:`~repro.experiments.store`) that makes
interrupted sweeps resumable.
"""

from .config import (
    DENSITY_SWEEP,
    PROFILES,
    SCHEMES,
    SINK_SWEEP,
    SOURCE_SWEEP,
    ExperimentConfig,
    FailureModel,
    Profile,
    config_from_dict,
    fast,
    paper,
    smoke,
)
from .figures import (
    FIGURES,
    FigureResult,
    figure_cell_config,
    figure_channel_density,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    git_vs_spt_table,
)
from .inspect import (
    TreeStats,
    active_tree,
    compare_with_ideal,
    delivery_timeline,
    tree_stats,
)
from .metrics import MetricsCollector, RunMetrics
from .persistence import (
    build_figure_manifest,
    build_run_manifest,
    export_figure_csv,
    load_figure_json,
    load_manifest,
    manifest_path_for,
    save_figure_json,
    save_manifest,
)
from .report import (
    format_channel_figure,
    format_figure,
    format_table,
    format_tree_table,
)
from .store import RunStore, StoreStats, canonical_json, open_store, run_key
from .runner import (
    FailureDriver,
    ObservedRun,
    World,
    build_world,
    run_experiment,
    run_observed,
)
from .bench import bench_configs, format_bench, run_bench, save_bench
from .sweeps import (
    CellSummary,
    RunFailure,
    SweepError,
    cell_seed,
    paired_sweep,
    run_configs,
)

__all__ = [
    "ExperimentConfig",
    "FailureModel",
    "Profile",
    "config_from_dict",
    "paper",
    "fast",
    "smoke",
    "PROFILES",
    "SCHEMES",
    "DENSITY_SWEEP",
    "SOURCE_SWEEP",
    "SINK_SWEEP",
    "MetricsCollector",
    "RunMetrics",
    "run_experiment",
    "run_observed",
    "ObservedRun",
    "build_world",
    "World",
    "FailureDriver",
    "CellSummary",
    "RunFailure",
    "SweepError",
    "paired_sweep",
    "run_configs",
    "cell_seed",
    "bench_configs",
    "run_bench",
    "save_bench",
    "format_bench",
    "FigureResult",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "git_vs_spt_table",
    "figure_cell_config",
    "figure_channel_density",
    "FIGURES",
    "format_figure",
    "format_channel_figure",
    "format_table",
    "format_tree_table",
    "TreeStats",
    "active_tree",
    "tree_stats",
    "compare_with_ideal",
    "delivery_timeline",
    "save_figure_json",
    "load_figure_json",
    "export_figure_csv",
    "save_manifest",
    "load_manifest",
    "build_run_manifest",
    "build_figure_manifest",
    "manifest_path_for",
    "RunStore",
    "StoreStats",
    "open_store",
    "run_key",
    "canonical_json",
]
