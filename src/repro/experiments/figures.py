"""One harness function per evaluation figure (figs 5-10 + the GIT/SPT
related-work table).  Each returns a :class:`FigureResult` whose rows are
the same series the paper plots: for every sweep value and scheme, the
three panel metrics — (a) average dissipated energy, (b) average delay,
(c) distinct-event delivery ratio.

See DESIGN.md §5 for the experiment index and EXPERIMENTS.md for measured
numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence

from ..diffusion.agent import DiffusionParams
from ..net.channel import ChannelSpec
from ..trees.models import savings_study
from .config import (
    DENSITY_SWEEP,
    SINK_SWEEP,
    SOURCE_SWEEP,
    ExperimentConfig,
    FailureModel,
    Profile,
)
from .sweeps import (
    COMPARISON_SCHEMES,
    CellSummary,
    StoreArg,
    cell_seed,
    paired_plan,
    run_configs,
    summarize_paired,
)

__all__ = [
    "FigureResult",
    "FigurePlan",
    "figure_plan",
    "figure_from_results",
    "run_figure_plan",
    "figure_cell_config",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure_large_density",
    "figure_channel_density",
    "LARGE_DENSITY_SWEEP",
    "git_vs_spt_table",
    "FIGURES",
]

#: the beyond-paper density sweep (large-field study; see WORKLOADS["large"])
LARGE_DENSITY_SWEEP = (2000, 3500, 5000)


@dataclass(frozen=True)
class FigureResult:
    """All cells of one figure, plus presentation metadata."""

    figure_id: str
    title: str
    x_label: str
    cells: tuple[CellSummary, ...]

    def xs(self) -> list[float]:
        return sorted({c.x for c in self.cells})

    def series(self, scheme: str) -> list[CellSummary]:
        return sorted((c for c in self.cells if c.scheme == scheme), key=lambda c: c.x)

    def cell(self, scheme: str, x: float) -> CellSummary:
        for c in self.cells:
            if c.scheme == scheme and c.x == x:
                return c
        raise KeyError((scheme, x))

    def energy_savings(self, x: float) -> float:
        """Fractional energy savings of greedy over opportunistic at x."""
        opp = self.cell("opportunistic", x)
        greedy = self.cell("greedy", x)
        if opp.energy == 0:
            return 0.0
        return 1.0 - greedy.energy / opp.energy

    def max_energy_savings(self) -> float:
        return max(self.energy_savings(x) for x in self.xs())


@dataclass(frozen=True)
class FigurePlan:
    """The deterministic run plan of one figure, before execution.

    Splitting plan construction (:func:`figure_plan`) from execution
    (:func:`run_figure_plan`) lets any executor — the in-process sweep
    machinery or the :mod:`repro.service` job queue — run the exact same
    configs and reassemble a bit-identical :class:`FigureResult` via
    :func:`figure_from_results`.
    """

    figure_id: str
    title: str
    x_label: str
    #: ordered ``(cell label, sweep value, config)`` triples
    plan: tuple[tuple[str, object, ExperimentConfig], ...]

    def configs(self) -> list[ExperimentConfig]:
        return [cfg for _label, _x, cfg in self.plan]


def _base(profile: Profile, **overrides) -> ExperimentConfig:
    cfg = ExperimentConfig(
        scheme="greedy",
        n_nodes=50,
        seed=0,
        duration=profile.duration,
        warmup=profile.warmup,
        diffusion=profile.diffusion,
    )
    return replace(cfg, **overrides) if overrides else cfg


#: per-figure (title template, x_label, default sweep, sweep field, base
#: builder).  ``{n}`` in a title is the fixed node count of the
#: source/sink sweeps; base builders take ``(profile, n_nodes)``.
_FIG_DEFS: dict = {
    "fig5": (
        "Greedy vs opportunistic aggregation across density",
        "nodes", DENSITY_SWEEP, "n_nodes",
        lambda profile, n: _base(profile),
    ),
    "fig6": (
        "Impact of node failures (20% down, rotating epochs)",
        "nodes", DENSITY_SWEEP, "n_nodes",
        lambda profile, n: _base(
            profile, failures=FailureModel(fraction=0.2, epoch=profile.failure_epoch)
        ),
    ),
    "fig7": (
        "Impact of random source placement",
        "nodes", DENSITY_SWEEP, "n_nodes",
        lambda profile, n: _base(profile, source_placement="random"),
    ),
    "fig8": (
        "Impact of the number of sinks ({n} nodes)",
        "sinks", SINK_SWEEP, "n_sinks",
        lambda profile, n: _base(profile, n_nodes=n),
    ),
    "fig9": (
        "Impact of the number of sources ({n} nodes)",
        "sources", SOURCE_SWEEP, "n_sources",
        lambda profile, n: _base(profile, n_nodes=n),
    ),
    "fig10": (
        "Impact of linear aggregation ({n} nodes)",
        "sources", SOURCE_SWEEP, "n_sources",
        lambda profile, n: _base(profile, n_nodes=n, aggregation="linear"),
    ),
    "large-density": (
        "Density vs delivered data at scale (800 m field)",
        "nodes", LARGE_DENSITY_SWEEP, "n_nodes",
        lambda profile, n: _large_base(profile),
    ),
}


def _spec(
    figure_id: str,
    profile: Profile,
    channel: Optional[ChannelSpec] = None,
    n_nodes: int = 350,
    xs: Optional[Sequence] = None,
):
    """Resolve one figure's ``(title, x_label, xs, labels, make_config)``."""
    if figure_id == "channel-density":
        spec = CHANNEL_STUDY_SPEC if channel is None else channel
        if spec.model != "pathloss":
            raise ValueError("the channel-density study needs a pathloss spec")
        base = _base(profile)
        labels = tuple(
            f"{scheme}@{chan}"
            for chan in ("disc", "pathloss")
            for scheme in COMPARISON_SCHEMES
        )

        def make_channel_config(label: str, x, seed: int) -> ExperimentConfig:
            scheme, _, chan = label.partition("@")
            ch = ChannelSpec() if chan == "disc" else spec
            return replace(base, scheme=scheme, seed=seed, n_nodes=x, channel=ch)

        return (
            "Density sweep under disc vs pathloss/SINR channels",
            "nodes",
            DENSITY_SWEEP if xs is None else xs,
            labels,
            make_channel_config,
        )
    if figure_id not in _FIG_DEFS:
        raise KeyError(f"unknown figure {figure_id!r} (have {sorted(FIGURES)})")
    title, x_label, default_xs, sweep_field, base_fn = _FIG_DEFS[figure_id]
    base = base_fn(profile, n_nodes)
    if channel is not None:
        base = replace(base, channel=channel)

    def make_config(scheme: str, x, seed: int) -> ExperimentConfig:
        return replace(base, scheme=scheme, seed=seed, **{sweep_field: x})

    return (
        title.format(n=n_nodes),
        x_label,
        default_xs if xs is None else xs,
        COMPARISON_SCHEMES,
        make_config,
    )


def figure_plan(
    figure_id: str,
    profile: Profile,
    trials: Optional[int] = None,
    channel: Optional[ChannelSpec] = None,
    n_nodes: int = 350,
    xs: Optional[Sequence] = None,
) -> FigurePlan:
    """Build one figure's deterministic :class:`FigurePlan`.

    The plan enumerates exactly the ``(cell label, x, config)`` triples
    the in-process harness would run — same bases, same paired seeds —
    so executing its configs elsewhere and reassembling with
    :func:`figure_from_results` reproduces the figure bit for bit.
    ``n_nodes`` fixes the field of the source/sink sweeps (figs 8-10);
    ``xs`` overrides the default sweep values.
    """
    title, x_label, xs, labels, make_config = _spec(
        figure_id, profile, channel=channel, n_nodes=n_nodes, xs=xs
    )
    plan = paired_plan(profile, xs, make_config, trials=trials, schemes=labels)
    return FigurePlan(figure_id, title, x_label, tuple(plan))


def figure_from_results(fplan: FigurePlan, results: Sequence) -> FigureResult:
    """Assemble a :class:`FigureResult` from a plan's run outcomes.

    ``results`` is the order-preserving outcome list for
    ``fplan.plan`` (``RunMetrics``, or ``RunFailure`` placeholders for
    runs that failed — those cells summarize their survivors).
    """
    cells = summarize_paired(fplan.plan, results)
    return FigureResult(fplan.figure_id, fplan.title, fplan.x_label, tuple(cells))


def run_figure_plan(
    fplan: FigurePlan,
    workers: int = 0,
    progress=None,
    store: StoreArg = None,
) -> FigureResult:
    """Execute a :class:`FigurePlan` in process (the classic path)."""
    results = run_configs(
        fplan.configs(), workers=workers, progress=progress, store=store
    )
    return figure_from_results(fplan, results)


def _run(
    figure_id: str,
    profile: Profile,
    xs: Sequence,
    trials: Optional[int],
    workers: int,
    progress=None,
    store: StoreArg = None,
    channel: Optional[ChannelSpec] = None,
    n_nodes: int = 350,
) -> FigureResult:
    fplan = figure_plan(
        figure_id, profile, trials=trials, channel=channel, n_nodes=n_nodes, xs=xs
    )
    return run_figure_plan(fplan, workers=workers, progress=progress, store=store)


def figure5(
    profile: Profile,
    densities: Sequence[int] = DENSITY_SWEEP,
    trials: Optional[int] = None,
    workers: int = 0,
    progress=None,
    store: StoreArg = None,
    channel: Optional[ChannelSpec] = None,
) -> FigureResult:
    """Fig 5: greedy vs opportunistic across network density (the headline
    comparison: 5 corner sources, 1 corner sink, perfect aggregation)."""
    return _run(
        "fig5", profile, densities, trials, workers, progress, store, channel=channel
    )


def figure6(
    profile: Profile,
    densities: Sequence[int] = DENSITY_SWEEP,
    trials: Optional[int] = None,
    workers: int = 0,
    progress=None,
    store: StoreArg = None,
    channel: Optional[ChannelSpec] = None,
) -> FigureResult:
    """Fig 6: same sweep under rotating 20% node failures (§5.3)."""
    return _run(
        "fig6", profile, densities, trials, workers, progress, store, channel=channel
    )


def figure7(
    profile: Profile,
    densities: Sequence[int] = DENSITY_SWEEP,
    trials: Optional[int] = None,
    workers: int = 0,
    progress=None,
    store: StoreArg = None,
    channel: Optional[ChannelSpec] = None,
) -> FigureResult:
    """Fig 7: random source placement (§5.4: savings shrink to ~30%)."""
    return _run(
        "fig7", profile, densities, trials, workers, progress, store, channel=channel
    )


def figure8(
    profile: Profile,
    sink_counts: Sequence[int] = SINK_SWEEP,
    n_nodes: int = 350,
    trials: Optional[int] = None,
    workers: int = 0,
    progress=None,
    store: StoreArg = None,
    channel: Optional[ChannelSpec] = None,
) -> FigureResult:
    """Fig 8: 1-5 sinks on the 350-node field (first at the corner, rest
    scattered)."""
    return _run(
        "fig8", profile, sink_counts, trials, workers, progress, store,
        channel=channel, n_nodes=n_nodes,
    )


def figure9(
    profile: Profile,
    source_counts: Sequence[int] = SOURCE_SWEEP,
    n_nodes: int = 350,
    trials: Optional[int] = None,
    workers: int = 0,
    progress=None,
    store: StoreArg = None,
    channel: Optional[ChannelSpec] = None,
) -> FigureResult:
    """Fig 9: 2-14 corner sources on the 350-node field."""
    return _run(
        "fig9", profile, source_counts, trials, workers, progress, store,
        channel=channel, n_nodes=n_nodes,
    )


def figure10(
    profile: Profile,
    source_counts: Sequence[int] = SOURCE_SWEEP,
    n_nodes: int = 350,
    trials: Optional[int] = None,
    workers: int = 0,
    progress=None,
    store: StoreArg = None,
    channel: Optional[ChannelSpec] = None,
) -> FigureResult:
    """Fig 10: fig 9's sweep under *linear* aggregation (header savings
    only) — the inefficient-aggregation sensitivity study."""
    return _run(
        "fig10", profile, source_counts, trials, workers, progress, store,
        channel=channel, n_nodes=n_nodes,
    )


def _large_base(profile: Profile) -> ExperimentConfig:
    """Base config of the large-field study.

    Geometry and run length come from the ``large`` bench workload
    (:data:`repro.experiments.bench.WORKLOADS`) rather than the figure
    profile — thousands of nodes at the paper's 30-second durations would
    take hours, and keeping the figure on the bench workload makes its
    cells directly comparable to committed ``BENCH_sweep.json`` entries.
    The profile still supplies the trial count.
    """
    from .bench import WORKLOADS

    w = WORKLOADS["large"]
    return _base(
        profile,
        n_nodes=w["densities"][0],
        duration=w["duration"],
        warmup=w["warmup"],
        field_size=w["field_size"],
        diffusion=DiffusionParams(exploratory_interval=w["exploratory_interval"]),
    )


def figure_large_density(
    profile: Profile,
    densities: Sequence[int] = LARGE_DENSITY_SWEEP,
    trials: Optional[int] = None,
    workers: int = 0,
    progress=None,
    store: StoreArg = None,
    channel: Optional[ChannelSpec] = None,
) -> FigureResult:
    """Beyond-paper scale study: density vs delivered data on an 800 m
    field (2 000–5 000 nodes, mean radio degree ~16..39).

    Extends the paper's fig-5 question — does aggregation keep paying as
    the network densifies? — past the 350-node band the paper measured,
    into the regime the vectorized PHY kernel makes tractable.
    """
    return _run(
        "large-density", profile, densities, trials, workers, progress, store,
        channel=channel,
    )


#: the pathloss spec the channel-density figure compares against disc
#: (defaults: same nominal ~40 m reach, SINR capture on, one band)
CHANNEL_STUDY_SPEC = ChannelSpec(model="pathloss")


def figure_channel_density(
    profile: Profile,
    densities: Sequence[int] = DENSITY_SWEEP,
    trials: Optional[int] = None,
    workers: int = 0,
    progress=None,
    store: StoreArg = None,
    channel: Optional[ChannelSpec] = None,
) -> FigureResult:
    """Channel-axis study: fig 5's density sweep on disc vs pathloss.

    Re-runs the headline density comparison under both channel models
    with *paired seeds across channels*: :func:`cell_seed` ignores the
    scheme label and geometry is always drawn on the nominal disc range,
    so for a given (density, trial) all four series — both schemes on
    both channels — share the exact same field, sources, and sink.  The
    observed deltas are therefore pure channel effects (SINR capture
    resolving overlaps vs disc corruption), not field resampling noise.

    Cell labels are ``<scheme>@<channel>`` (e.g. ``greedy@pathloss``).
    ``channel`` overrides the pathloss side's spec
    (:data:`CHANNEL_STUDY_SPEC` by default; must be a pathloss spec).
    """
    return _run(
        "channel-density", profile, densities, trials, workers, progress, store,
        channel=channel,
    )


def figure_cell_config(
    figure_id: str,
    profile: Profile,
    scheme: str,
    x,
    trial: int = 0,
) -> ExperimentConfig:
    """Rebuild the exact config of one ``(scheme, x, trial)`` figure cell.

    Mirrors how each ``figureN`` harness derives its base config and how
    :func:`~repro.experiments.sweeps.paired_sweep` seeds each trial, so
    ``repro timeline <figure-manifest> --cell greedy@150`` can re-run one
    cell bit-identically.  Figure manifests persist cell ``x`` as a
    float; integral values are coerced back to int before seeding because
    ``cell_seed`` hashes the *formatted* x (``"cell:150:0"`` and
    ``"cell:150.0:0"`` are different streams).

    For the channel-density figure, ``scheme`` is a ``<scheme>@<channel>``
    cell label (e.g. ``greedy@pathloss``); the pathloss side rebuilds with
    :data:`CHANNEL_STUDY_SPEC` (custom specs passed to
    :func:`figure_channel_density` do not round-trip through a label).
    """
    if figure_id not in FIGURES:
        raise KeyError(f"unknown figure {figure_id!r} (have {sorted(FIGURES)})")
    if isinstance(x, float) and x.is_integer():
        x = int(x)
    if figure_id == "channel-density":
        _, _, chan = scheme.partition("@")
        if chan not in ("disc", "pathloss"):
            raise ValueError(
                f"channel-density cells are labeled <scheme>@<channel>, got {chan!r}"
            )
    _title, _x_label, _xs, _labels, make_config = _spec(figure_id, profile)
    return make_config(scheme, x, cell_seed(0, x, trial))


def git_vs_spt_table(
    n_nodes: Sequence[int] = (100, 200, 350),
    n_sources: int = 5,
    trials: int = 10,
    seed: int = 7,
) -> list[dict]:
    """Related-work table (§1/§5.4): GIT-over-SPT transmission savings
    under the abstract event-radius / random-sources models versus the
    paper's corner placement."""
    rows = []
    for placement in ("event-radius", "random-sources", "corner"):
        for n in n_nodes:
            rows.append(savings_study(placement, n, n_sources, trials, seed))
    return rows


FIGURES = {
    "fig5": figure5,
    "fig6": figure6,
    "fig7": figure7,
    "fig8": figure8,
    "fig9": figure9,
    "fig10": figure10,
    "large-density": figure_large_density,
    "channel-density": figure_channel_density,
}
