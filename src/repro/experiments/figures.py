"""One harness function per evaluation figure (figs 5-10 + the GIT/SPT
related-work table).  Each returns a :class:`FigureResult` whose rows are
the same series the paper plots: for every sweep value and scheme, the
three panel metrics — (a) average dissipated energy, (b) average delay,
(c) distinct-event delivery ratio.

See DESIGN.md §5 for the experiment index and EXPERIMENTS.md for measured
numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence

from ..diffusion.agent import DiffusionParams
from ..net.channel import ChannelSpec
from ..trees.models import savings_study
from .config import (
    DENSITY_SWEEP,
    SINK_SWEEP,
    SOURCE_SWEEP,
    ExperimentConfig,
    FailureModel,
    Profile,
)
from .sweeps import COMPARISON_SCHEMES, CellSummary, StoreArg, cell_seed, paired_sweep

__all__ = [
    "FigureResult",
    "figure_cell_config",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure_large_density",
    "figure_channel_density",
    "LARGE_DENSITY_SWEEP",
    "git_vs_spt_table",
    "FIGURES",
]

#: the beyond-paper density sweep (large-field study; see WORKLOADS["large"])
LARGE_DENSITY_SWEEP = (2000, 3500, 5000)


@dataclass(frozen=True)
class FigureResult:
    """All cells of one figure, plus presentation metadata."""

    figure_id: str
    title: str
    x_label: str
    cells: tuple[CellSummary, ...]

    def xs(self) -> list[float]:
        return sorted({c.x for c in self.cells})

    def series(self, scheme: str) -> list[CellSummary]:
        return sorted((c for c in self.cells if c.scheme == scheme), key=lambda c: c.x)

    def cell(self, scheme: str, x: float) -> CellSummary:
        for c in self.cells:
            if c.scheme == scheme and c.x == x:
                return c
        raise KeyError((scheme, x))

    def energy_savings(self, x: float) -> float:
        """Fractional energy savings of greedy over opportunistic at x."""
        opp = self.cell("opportunistic", x)
        greedy = self.cell("greedy", x)
        if opp.energy == 0:
            return 0.0
        return 1.0 - greedy.energy / opp.energy

    def max_energy_savings(self) -> float:
        return max(self.energy_savings(x) for x in self.xs())


def _run(
    figure_id: str,
    title: str,
    x_label: str,
    profile: Profile,
    xs: Sequence,
    base: ExperimentConfig,
    sweep_field: str,
    trials: Optional[int],
    workers: int,
    progress=None,
    store: StoreArg = None,
    channel: Optional[ChannelSpec] = None,
) -> FigureResult:
    if channel is not None:
        base = replace(base, channel=channel)

    def make_config(scheme: str, x, seed: int) -> ExperimentConfig:
        return replace(base, scheme=scheme, seed=seed, **{sweep_field: x})

    cells = paired_sweep(
        profile, xs, make_config, trials=trials, workers=workers, progress=progress,
        store=store,
    )
    return FigureResult(figure_id, title, x_label, tuple(cells))


def _base(profile: Profile, **overrides) -> ExperimentConfig:
    cfg = ExperimentConfig(
        scheme="greedy",
        n_nodes=50,
        seed=0,
        duration=profile.duration,
        warmup=profile.warmup,
        diffusion=profile.diffusion,
    )
    return replace(cfg, **overrides) if overrides else cfg


def figure5(
    profile: Profile,
    densities: Sequence[int] = DENSITY_SWEEP,
    trials: Optional[int] = None,
    workers: int = 0,
    progress=None,
    store: StoreArg = None,
    channel: Optional[ChannelSpec] = None,
) -> FigureResult:
    """Fig 5: greedy vs opportunistic across network density (the headline
    comparison: 5 corner sources, 1 corner sink, perfect aggregation)."""
    return _run(
        "fig5",
        "Greedy vs opportunistic aggregation across density",
        "nodes",
        profile,
        densities,
        _base(profile),
        "n_nodes",
        trials,
        workers,
        progress,
        store,
        channel=channel,
    )


def figure6(
    profile: Profile,
    densities: Sequence[int] = DENSITY_SWEEP,
    trials: Optional[int] = None,
    workers: int = 0,
    progress=None,
    store: StoreArg = None,
    channel: Optional[ChannelSpec] = None,
) -> FigureResult:
    """Fig 6: same sweep under rotating 20% node failures (§5.3)."""
    base = _base(profile, failures=FailureModel(fraction=0.2, epoch=profile.failure_epoch))
    return _run(
        "fig6",
        "Impact of node failures (20% down, rotating epochs)",
        "nodes",
        profile,
        densities,
        base,
        "n_nodes",
        trials,
        workers,
        progress,
        store,
        channel=channel,
    )


def figure7(
    profile: Profile,
    densities: Sequence[int] = DENSITY_SWEEP,
    trials: Optional[int] = None,
    workers: int = 0,
    progress=None,
    store: StoreArg = None,
    channel: Optional[ChannelSpec] = None,
) -> FigureResult:
    """Fig 7: random source placement (§5.4: savings shrink to ~30%)."""
    base = _base(profile, source_placement="random")
    return _run(
        "fig7",
        "Impact of random source placement",
        "nodes",
        profile,
        densities,
        base,
        "n_nodes",
        trials,
        workers,
        progress,
        store,
        channel=channel,
    )


def figure8(
    profile: Profile,
    sink_counts: Sequence[int] = SINK_SWEEP,
    n_nodes: int = 350,
    trials: Optional[int] = None,
    workers: int = 0,
    progress=None,
    store: StoreArg = None,
    channel: Optional[ChannelSpec] = None,
) -> FigureResult:
    """Fig 8: 1-5 sinks on the 350-node field (first at the corner, rest
    scattered)."""
    base = _base(profile, n_nodes=n_nodes)
    return _run(
        "fig8",
        f"Impact of the number of sinks ({n_nodes} nodes)",
        "sinks",
        profile,
        sink_counts,
        base,
        "n_sinks",
        trials,
        workers,
        progress,
        store,
        channel=channel,
    )


def figure9(
    profile: Profile,
    source_counts: Sequence[int] = SOURCE_SWEEP,
    n_nodes: int = 350,
    trials: Optional[int] = None,
    workers: int = 0,
    progress=None,
    store: StoreArg = None,
    channel: Optional[ChannelSpec] = None,
) -> FigureResult:
    """Fig 9: 2-14 corner sources on the 350-node field."""
    base = _base(profile, n_nodes=n_nodes)
    return _run(
        "fig9",
        f"Impact of the number of sources ({n_nodes} nodes)",
        "sources",
        profile,
        source_counts,
        base,
        "n_sources",
        trials,
        workers,
        progress,
        store,
        channel=channel,
    )


def figure10(
    profile: Profile,
    source_counts: Sequence[int] = SOURCE_SWEEP,
    n_nodes: int = 350,
    trials: Optional[int] = None,
    workers: int = 0,
    progress=None,
    store: StoreArg = None,
    channel: Optional[ChannelSpec] = None,
) -> FigureResult:
    """Fig 10: fig 9's sweep under *linear* aggregation (header savings
    only) — the inefficient-aggregation sensitivity study."""
    base = _base(profile, n_nodes=n_nodes, aggregation="linear")
    return _run(
        "fig10",
        f"Impact of linear aggregation ({n_nodes} nodes)",
        "sources",
        profile,
        source_counts,
        base,
        "n_sources",
        trials,
        workers,
        progress,
        store,
        channel=channel,
    )


def _large_base(profile: Profile) -> ExperimentConfig:
    """Base config of the large-field study.

    Geometry and run length come from the ``large`` bench workload
    (:data:`repro.experiments.bench.WORKLOADS`) rather than the figure
    profile — thousands of nodes at the paper's 30-second durations would
    take hours, and keeping the figure on the bench workload makes its
    cells directly comparable to committed ``BENCH_sweep.json`` entries.
    The profile still supplies the trial count.
    """
    from .bench import WORKLOADS

    w = WORKLOADS["large"]
    return _base(
        profile,
        n_nodes=w["densities"][0],
        duration=w["duration"],
        warmup=w["warmup"],
        field_size=w["field_size"],
        diffusion=DiffusionParams(exploratory_interval=w["exploratory_interval"]),
    )


def figure_large_density(
    profile: Profile,
    densities: Sequence[int] = LARGE_DENSITY_SWEEP,
    trials: Optional[int] = None,
    workers: int = 0,
    progress=None,
    store: StoreArg = None,
    channel: Optional[ChannelSpec] = None,
) -> FigureResult:
    """Beyond-paper scale study: density vs delivered data on an 800 m
    field (2 000–5 000 nodes, mean radio degree ~16..39).

    Extends the paper's fig-5 question — does aggregation keep paying as
    the network densifies? — past the 350-node band the paper measured,
    into the regime the vectorized PHY kernel makes tractable.
    """
    return _run(
        "large-density",
        "Density vs delivered data at scale (800 m field)",
        "nodes",
        profile,
        densities,
        _large_base(profile),
        "n_nodes",
        trials,
        workers,
        progress,
        store,
        channel=channel,
    )


#: the pathloss spec the channel-density figure compares against disc
#: (defaults: same nominal ~40 m reach, SINR capture on, one band)
CHANNEL_STUDY_SPEC = ChannelSpec(model="pathloss")


def figure_channel_density(
    profile: Profile,
    densities: Sequence[int] = DENSITY_SWEEP,
    trials: Optional[int] = None,
    workers: int = 0,
    progress=None,
    store: StoreArg = None,
    channel: Optional[ChannelSpec] = None,
) -> FigureResult:
    """Channel-axis study: fig 5's density sweep on disc vs pathloss.

    Re-runs the headline density comparison under both channel models
    with *paired seeds across channels*: :func:`cell_seed` ignores the
    scheme label and geometry is always drawn on the nominal disc range,
    so for a given (density, trial) all four series — both schemes on
    both channels — share the exact same field, sources, and sink.  The
    observed deltas are therefore pure channel effects (SINR capture
    resolving overlaps vs disc corruption), not field resampling noise.

    Cell labels are ``<scheme>@<channel>`` (e.g. ``greedy@pathloss``).
    ``channel`` overrides the pathloss side's spec
    (:data:`CHANNEL_STUDY_SPEC` by default; must be a pathloss spec).
    """
    spec = CHANNEL_STUDY_SPEC if channel is None else channel
    if spec.model != "pathloss":
        raise ValueError("the channel-density study needs a pathloss spec")
    base = _base(profile)
    labels = tuple(
        f"{scheme}@{chan}"
        for chan in ("disc", "pathloss")
        for scheme in COMPARISON_SCHEMES
    )

    def make_config(label: str, x, seed: int) -> ExperimentConfig:
        scheme, _, chan = label.partition("@")
        ch = ChannelSpec() if chan == "disc" else spec
        return replace(base, scheme=scheme, seed=seed, n_nodes=x, channel=ch)

    cells = paired_sweep(
        profile, densities, make_config, trials=trials, workers=workers,
        schemes=labels, progress=progress, store=store,
    )
    return FigureResult(
        "channel-density",
        "Density sweep under disc vs pathloss/SINR channels",
        "nodes",
        tuple(cells),
    )


def figure_cell_config(
    figure_id: str,
    profile: Profile,
    scheme: str,
    x,
    trial: int = 0,
) -> ExperimentConfig:
    """Rebuild the exact config of one ``(scheme, x, trial)`` figure cell.

    Mirrors how each ``figureN`` harness derives its base config and how
    :func:`~repro.experiments.sweeps.paired_sweep` seeds each trial, so
    ``repro timeline <figure-manifest> --cell greedy@150`` can re-run one
    cell bit-identically.  Figure manifests persist cell ``x`` as a
    float; integral values are coerced back to int before seeding because
    ``cell_seed`` hashes the *formatted* x (``"cell:150:0"`` and
    ``"cell:150.0:0"`` are different streams).

    For the channel-density figure, ``scheme`` is a ``<scheme>@<channel>``
    cell label (e.g. ``greedy@pathloss``); the pathloss side rebuilds with
    :data:`CHANNEL_STUDY_SPEC` (custom specs passed to
    :func:`figure_channel_density` do not round-trip through a label).
    """
    if figure_id not in FIGURES:
        raise KeyError(f"unknown figure {figure_id!r} (have {sorted(FIGURES)})")
    if isinstance(x, float) and x.is_integer():
        x = int(x)
    channel: Optional[ChannelSpec] = None
    if figure_id == "channel-density":
        scheme, _, chan = scheme.partition("@")
        if chan not in ("disc", "pathloss"):
            raise ValueError(
                f"channel-density cells are labeled <scheme>@<channel>, got {chan!r}"
            )
        channel = ChannelSpec() if chan == "disc" else CHANNEL_STUDY_SPEC
    bases = {
        "fig5": (lambda: _base(profile), "n_nodes"),
        "fig6": (
            lambda: _base(
                profile, failures=FailureModel(fraction=0.2, epoch=profile.failure_epoch)
            ),
            "n_nodes",
        ),
        "fig7": (lambda: _base(profile, source_placement="random"), "n_nodes"),
        "fig8": (lambda: _base(profile, n_nodes=350), "n_sinks"),
        "fig9": (lambda: _base(profile, n_nodes=350), "n_sources"),
        "fig10": (lambda: _base(profile, n_nodes=350, aggregation="linear"), "n_sources"),
        "large-density": (lambda: _large_base(profile), "n_nodes"),
        "channel-density": (lambda: _base(profile), "n_nodes"),
    }
    base_fn, sweep_field = bases[figure_id]
    seed = cell_seed(0, x, trial)
    cfg = replace(base_fn(), scheme=scheme, seed=seed, **{sweep_field: x})
    return replace(cfg, channel=channel) if channel is not None else cfg


def git_vs_spt_table(
    n_nodes: Sequence[int] = (100, 200, 350),
    n_sources: int = 5,
    trials: int = 10,
    seed: int = 7,
) -> list[dict]:
    """Related-work table (§1/§5.4): GIT-over-SPT transmission savings
    under the abstract event-radius / random-sources models versus the
    paper's corner placement."""
    rows = []
    for placement in ("event-radius", "random-sources", "corner"):
        for n in n_nodes:
            rows.append(savings_study(placement, n, n_sources, trials, seed))
    return rows


FIGURES = {
    "fig5": figure5,
    "fig6": figure6,
    "fig7": figure7,
    "fig8": figure8,
    "fig9": figure9,
    "fig10": figure10,
    "large-density": figure_large_density,
    "channel-density": figure_channel_density,
}
