"""Resumable, content-addressed run store.

A long sweep is a grid of expensive, fully deterministic simulations
(densities x schemes x seeds).  Figure-level JSON checkpoints
(:mod:`repro.experiments.persistence`) only help once *every* run of a
figure finished; a crash, Ctrl-C, or :class:`~repro.experiments.sweeps.RunFailure`
partway through discards hours of completed work.  The store closes that
gap at run granularity:

* every completed :class:`~repro.experiments.metrics.RunMetrics` is
  written to ``<root>/runs/<key>.json``, where ``key`` is a canonical
  **content hash** of everything that determines the run — the full
  :class:`~repro.experiments.config.ExperimentConfig` (scheme, field and
  workload parameters, seed, failure model), the wire-format constants
  snapshot, and the package code version (the same identity block the
  provenance manifests record);
* writes are **atomic** (unique temp file in the same directory +
  ``os.replace``), so a killed process can never leave a half-written
  entry that a resume would trust;
* :func:`~repro.experiments.sweeps.run_configs` consults the store
  before dispatching to the pool, skips hits, and persists each miss as
  soon as its future resolves — re-running a crashed 200-run sweep
  executes only the unfinished tail and is bit-identical to an
  uninterrupted run (cached metrics round-trip exactly: JSON preserves
  int/float kinds and ``repr``-exact float values).

Invalidation is by construction: any change to a config field or to the
package version changes the key, so stale entries are never *read* —
they merely occupy disk until ``repro-wsn store gc`` prunes them.

The ``<root>/index.json`` file is a human-oriented cache of the entry
summaries (what ``store ls`` prints).  It is rewritten on every put/rm
but the payload files are authoritative: lookups never trust the index,
and :meth:`RunStore.reindex` (or ``store gc``) rebuilds it from the
directory scan.  Index updates are serialized across processes by an
advisory ``index.lock`` file (``fcntl.flock``): each writer re-reads and
merges under the lock, so N concurrent sweep workers plus a ``store gc``
cannot lose each other's entries.

Hit/miss/persist/skip counts are recorded as counters in an
:class:`~repro.obs.registry.MetricsRegistry` owned by (or passed to) the
store, and surface in figure manifests via :meth:`RunStore.stats`.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Optional, Union

try:  # POSIX advisory locks; absent on some platforms (index stays lossy there)
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

from ..obs.registry import MetricsRegistry
from .config import ExperimentConfig
from .metrics import RunMetrics

__all__ = [
    "STORE_VERSION",
    "canonical_json",
    "config_payload",
    "run_key",
    "RunStore",
    "StoreStats",
    "open_store",
]

#: bump to invalidate every existing store entry (schema change)
#: v2: RunMetrics gained energy_by_class (per-message-class energy breakdown)
#: v3: RunMetrics gained lifetime scalars (time_to_first_death,
#:     time_to_half_delivery); timelines persist beside entries
#: v4: ExperimentConfig gained the channel block (pluggable PHY models)
STORE_VERSION = 4

#: gc only collects ``*.tmp`` litter older than this — a younger temp
#: file may belong to a live writer between ``mkstemp`` and ``os.replace``
TMP_LITTER_MIN_AGE_S = 60.0


def canonical_json(obj: Any) -> str:
    """Render ``obj`` as canonical JSON: sorted keys, minimal separators.

    Two dicts that differ only in key insertion order render identically,
    which is what makes the content hash insensitive to how the payload
    was assembled.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), allow_nan=False)


def _constants_snapshot() -> dict[str, Any]:
    from .. import constants

    return {name: getattr(constants, name) for name in constants.__all__}


def _code_version() -> str:
    import repro

    return getattr(repro, "__version__", "unknown")


def config_payload(cfg: ExperimentConfig) -> dict[str, Any]:
    """The full identity of one run, as a JSON-friendly dict.

    Everything that can change the run's result is in here; nothing else
    is (host, wall time, and observability options do not affect
    :class:`RunMetrics` and are deliberately excluded).
    """
    return {
        "store_version": STORE_VERSION,
        "code_version": _code_version(),
        "constants": _constants_snapshot(),
        "config": dataclasses.asdict(cfg),
    }


def run_key(cfg: ExperimentConfig) -> str:
    """Canonical content hash (hex sha256) identifying one run."""
    return hashlib.sha256(canonical_json(config_payload(cfg)).encode("utf-8")).hexdigest()


@dataclass
class StoreStats:
    """Lookup/persist accounting for one store handle (not persisted)."""

    hits: int = 0
    misses: int = 0
    persisted: int = 0
    #: completed-but-not-persisted outcomes (``RunFailure`` placeholders)
    skipped: int = 0

    def as_dict(self) -> dict[str, int]:
        return dataclasses.asdict(self)


class RunStore:
    """Directory of content-addressed run results.

    Layout::

        <root>/runs/<sha256>.json        one entry per completed run (atomic)
        <root>/timelines/<sha256>.json   optional probe timeline per run
        <root>/index.json                cached entry summaries (rebuildable)

    A store can be shared by concurrent sweeps: entries are immutable
    functions of their key, temp files are uniquely named, and
    ``os.replace`` makes the final rename atomic, so the worst race is
    two processes writing the same bytes twice.
    """

    def __init__(
        self, root: Union[str, Path], registry: Optional[MetricsRegistry] = None
    ) -> None:
        self.root = Path(root)
        self.runs_dir = self.root / "runs"
        self.timelines_dir = self.root / "timelines"
        self.index_path = self.root / "index.json"
        self.index_lock_path = self.root / "index.lock"
        self.runs_dir.mkdir(parents=True, exist_ok=True)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.stats = StoreStats()

    # ------------------------------------------------------------------
    # lookup / persist
    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        return self.runs_dir / f"{key}.json"

    def contains(self, cfg: ExperimentConfig) -> bool:
        return self.path_for(run_key(cfg)).exists()

    def get(self, cfg: ExperimentConfig) -> Optional[RunMetrics]:
        """Return the stored metrics for ``cfg``, or None on a miss.

        A corrupt or unreadable entry counts as a miss (the next put
        overwrites it); only the payload file is consulted, never the
        index.
        """
        key = run_key(cfg)
        entry = self._read_entry(self.path_for(key))
        if entry is None:
            self.stats.misses += 1
            self.registry.counter("store.miss").inc()
            return None
        self.stats.hits += 1
        self.registry.counter("store.hit").inc()
        return _metrics_from_dict(entry["metrics"])

    def put(self, cfg: ExperimentConfig, metrics: RunMetrics) -> Path:
        """Persist one completed run atomically; returns the entry path."""
        key = run_key(cfg)
        entry = {
            "store_version": STORE_VERSION,
            "key": key,
            "created_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "identity": config_payload(cfg),
            "metrics": dataclasses.asdict(metrics),
        }
        path = self.path_for(key)
        self._atomic_write(path, json.dumps(entry, indent=2, sort_keys=True))
        self.stats.persisted += 1
        self.registry.counter("store.persist").inc()
        self._index_add(key, entry)
        return path

    def note_skipped(self) -> None:
        """Record an outcome that completed without metrics (a failure)."""
        self.stats.skipped += 1
        self.registry.counter("store.skip").inc()

    # ------------------------------------------------------------------
    # timelines (sampled probe series, persisted beside the run entry)
    # ------------------------------------------------------------------
    def timeline_path_for(self, key_or_cfg: Union[str, ExperimentConfig]) -> Path:
        key = key_or_cfg if isinstance(key_or_cfg, str) else run_key(key_or_cfg)
        return self.timelines_dir / f"{key}.json"

    def put_timeline(
        self, key_or_cfg: Union[str, ExperimentConfig], timeline
    ) -> Path:
        """Persist one run's probe timeline atomically.

        ``timeline`` is a :class:`~repro.obs.timeline.Timeline` or its
        ``as_dict()`` image.  The file is the timeline dict itself (so
        ``repro timeline``/``repro diff`` load it directly) annotated
        with the store version and key.
        """
        key = key_or_cfg if isinstance(key_or_cfg, str) else run_key(key_or_cfg)
        data = timeline.as_dict() if hasattr(timeline, "as_dict") else dict(timeline)
        data = {**data, "store_version": STORE_VERSION, "key": key}
        self.timelines_dir.mkdir(parents=True, exist_ok=True)
        path = self.timeline_path_for(key)
        self._atomic_write(path, json.dumps(data, sort_keys=True))
        self.registry.counter("store.timeline_persist").inc()
        return path

    def get_timeline(
        self, key_or_cfg: Union[str, ExperimentConfig]
    ) -> Optional[dict[str, Any]]:
        """The stored timeline dict for a run, or None (corrupt = miss)."""
        path = self.timeline_path_for(key_or_cfg)
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(data, dict) or data.get("store_version") != STORE_VERSION:
            return None
        return data

    # ------------------------------------------------------------------
    # maintenance: ls / gc / rm
    # ------------------------------------------------------------------
    def ls(self) -> list[dict[str, Any]]:
        """Entry summaries from a directory scan (authoritative)."""
        rows = []
        for path in sorted(self.runs_dir.glob("*.json")):
            entry = self._read_entry(path)
            if entry is not None:
                rows.append(self._summary(entry))
        return rows

    def rm(self, keys: Iterable[str]) -> int:
        """Delete entries by key or unambiguous key prefix.

        ``ls`` (and the CLI table) shows truncated keys, so prefixes are
        accepted; a prefix matching several entries deletes nothing for
        that argument.  Returns how many entries were deleted.
        """
        removed = 0
        for key in keys:
            path = self.path_for(key)
            if not path.exists():
                matches = list(self.runs_dir.glob(f"{key}*.json"))
                if len(matches) != 1:
                    continue
                path = matches[0]
            path.unlink()
            sibling = self.timelines_dir / path.name
            if sibling.exists():
                sibling.unlink()
            removed += 1
        with self._index_lock():
            self._write_index(self.ls())
        return removed

    def gc(self, prune_stale_versions: bool = True) -> dict[str, int]:
        """Collect garbage and rebuild the index.

        Removes temp-file litter from killed writers, corrupt entries,
        and (by default) entries written by a different package or store
        version — those keys can never be looked up again, so they are
        unreachable by construction.  Timelines are garbage too when
        corrupt, stale, or orphaned (their run entry is gone).
        """
        with self._index_lock():
            return self._gc_locked(prune_stale_versions)

    def _gc_locked(self, prune_stale_versions: bool) -> dict[str, int]:
        stats = {
            "tmp_removed": 0,
            "corrupt_removed": 0,
            "stale_removed": 0,
            "kept": 0,
            "timelines_removed": 0,
            "timelines_kept": 0,
        }
        stats["tmp_removed"] += self._sweep_tmp_litter(self.runs_dir)
        current = (STORE_VERSION, _code_version())
        rows = []
        kept_keys: set[str] = set()
        for path in sorted(self.runs_dir.glob("*.json")):
            entry = self._read_entry(path)
            if entry is None:
                path.unlink()
                stats["corrupt_removed"] += 1
                continue
            written_by = (
                entry.get("store_version"),
                entry.get("identity", {}).get("code_version"),
            )
            if prune_stale_versions and written_by != current:
                path.unlink()
                stats["stale_removed"] += 1
                continue
            rows.append(self._summary(entry))
            kept_keys.add(entry.get("key", path.stem))
            stats["kept"] += 1
        if self.timelines_dir.exists():
            stats["tmp_removed"] += self._sweep_tmp_litter(self.timelines_dir)
            for path in sorted(self.timelines_dir.glob("*.json")):
                if path.stem in kept_keys and self.get_timeline(path.stem) is not None:
                    stats["timelines_kept"] += 1
                else:
                    path.unlink()
                    stats["timelines_removed"] += 1
        self._write_index(rows)
        return stats

    def reindex(self) -> int:
        """Rebuild ``index.json`` from the payload files; returns entry count."""
        with self._index_lock():
            rows = self.ls()
            self._write_index(rows)
        return len(rows)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    @staticmethod
    def _summary(entry: dict[str, Any]) -> dict[str, Any]:
        cfg = entry.get("identity", {}).get("config", {})
        metrics = entry.get("metrics", {})
        return {
            "key": entry.get("key"),
            "scheme": cfg.get("scheme"),
            "n_nodes": cfg.get("n_nodes"),
            "seed": cfg.get("seed"),
            "created_at": entry.get("created_at"),
            "code_version": entry.get("identity", {}).get("code_version"),
            "delivery_ratio": metrics.get("delivery_ratio"),
        }

    @staticmethod
    def _read_entry(path: Path) -> Optional[dict[str, Any]]:
        try:
            entry = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(entry, dict) or entry.get("store_version") != STORE_VERSION:
            return None
        if "metrics" not in entry:
            return None
        return entry

    @staticmethod
    def _sweep_tmp_litter(directory: Path) -> int:
        """Unlink abandoned ``*.tmp`` files; returns how many went.

        Only files older than :data:`TMP_LITTER_MIN_AGE_S` are litter —
        a fresh one may be a live writer's in-flight payload whose
        ``os.replace`` has not happened yet; deleting it would turn the
        writer's atomic put into a crash.  Vanishing files (another gc,
        or the writer's own rename) are skipped, not errors.
        """
        removed = 0
        cutoff = time.time() - TMP_LITTER_MIN_AGE_S
        for tmp in directory.glob("*.tmp*"):
            try:
                if tmp.stat().st_mtime > cutoff:
                    continue
                tmp.unlink()
            except OSError:
                continue
            removed += 1
        return removed

    @staticmethod
    def _atomic_write(path: Path, text: str) -> None:
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.stem + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(text)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    @contextlib.contextmanager
    def _index_lock(self):
        """Exclusive cross-process lock over ``index.json`` updates.

        Advisory ``flock`` on a sidecar lock file (never on ``index.json``
        itself — that file is atomically *replaced*, which would orphan
        any lock held on the old inode).  On platforms without ``fcntl``
        the lock degrades to a no-op: the index is only a cache, so the
        worst case there is a momentarily incomplete ``store ls``.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        with open(self.index_lock_path, "a") as fh:
            if fcntl is not None:
                fcntl.flock(fh, fcntl.LOCK_EX)
            try:
                yield
            finally:
                if fcntl is not None:
                    fcntl.flock(fh, fcntl.LOCK_UN)

    def _index_add(self, key: str, entry: dict[str, Any]) -> None:
        # Read-merge-write under the cross-process lock: concurrent
        # writers serialize here, and each re-reads the latest index
        # inside its critical section, so no writer can clobber another
        # writer's freshly added entries.
        with self._index_lock():
            index = self._read_index()
            index[key] = self._summary(entry)
            self._write_index(list(index.values()))

    def _read_index(self) -> dict[str, dict[str, Any]]:
        try:
            rows = json.loads(self.index_path.read_text()).get("entries", [])
        except (OSError, json.JSONDecodeError):
            return {}
        return {row["key"]: row for row in rows if isinstance(row, dict) and "key" in row}

    def _write_index(self, rows: list[dict[str, Any]]) -> None:
        payload = {"store_version": STORE_VERSION, "entries": rows}
        self._atomic_write(self.index_path, json.dumps(payload, indent=2, sort_keys=True))


def _metrics_from_dict(data: dict[str, Any]) -> RunMetrics:
    return RunMetrics(
        scheme=data["scheme"],
        n_nodes=int(data["n_nodes"]),
        seed=int(data["seed"]),
        avg_dissipated_energy=float(data["avg_dissipated_energy"]),
        avg_delay=float(data["avg_delay"]),
        delivery_ratio=float(data["delivery_ratio"]),
        total_energy_j=float(data["total_energy_j"]),
        distinct_delivered=int(data["distinct_delivered"]),
        events_sent=int(data["events_sent"]),
        mean_degree=float(data["mean_degree"]),
        counters=dict(data.get("counters", {})),
        energy_by_class=dict(data.get("energy_by_class", {})),
        time_to_first_death=_opt_float(data.get("time_to_first_death")),
        time_to_half_delivery=_opt_float(data.get("time_to_half_delivery")),
    )


def _opt_float(value: Any) -> Optional[float]:
    return None if value is None else float(value)


def open_store(
    store: Union["RunStore", str, Path, None],
) -> Optional["RunStore"]:
    """Coerce a ``store=`` argument (path or handle) to a RunStore."""
    if store is None or isinstance(store, RunStore):
        return store
    return RunStore(store)
