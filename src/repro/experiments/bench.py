"""The canonical sweep benchmark: ``repro bench`` and ``BENCH_sweep.json``.

This is the repo's perf trajectory.  Every PR that touches the sweep
pipeline re-runs the *same* deterministic workload — a miniature density
study (densities x schemes x paired trials, short runs) — and commits the
resulting ``BENCH_sweep.json`` so wall-time, event throughput, scheduler
churn, and field-cache effectiveness accumulate per PR and regressions
show up as diffs.

The workloads are fixed on purpose: comparability beats coverage here.
Each :data:`WORKLOADS` profile exercises every layer the sweeps pay for —
world building (with the field cache), the event kernel, the PHY
fan-out, the MAC, the diffusion schemes — while staying bounded:
``canonical`` (the headline) and its CI-smoke variant ``quick`` cover
the paper's density band; ``large`` and ``large-quick`` run thousands of
nodes on an 800 m field, the regime the vectorized PHY kernel targets.

When ``workers`` is given, the same configs also run through the
hardened parallel executor and the results are checked for exact
equality against the serial pass (``parallel.identical`` in the JSON) —
the determinism contract, asserted on every benchmark run.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict
from pathlib import Path
from typing import Optional, Union

from ..diffusion.agent import DiffusionParams
from ..net.channel import ChannelSpec
from ..net.fieldcache import default_field_cache
from .config import ExperimentConfig
from .runner import run_observed
from .sweeps import cell_seed, run_configs

__all__ = [
    "BENCH_VERSION",
    "WORKLOADS",
    "CANONICAL_WORKLOAD",
    "QUICK_WORKLOAD",
    "bench_configs",
    "run_bench",
    "save_bench",
    "format_bench",
]

BENCH_VERSION = 1

#: named bench workloads (do not change casually: each profile is a
#: comparison axis across PRs; bump BENCH_VERSION if one must move).
#:
#: * ``canonical`` — the headline: the paper's density band, both
#:   schemes, paired trials.
#: * ``quick`` — CI-smoke variant of canonical (~10x cheaper).
#: * ``large`` — the scale profile: 2 000–5 000 nodes on an 800 m field
#:   (mean radio degree ~16..39), single scheme/trial, short runs.  This
#:   is the regime the vectorized PHY kernel exists for; it also feeds
#:   the large-field density figure.
#: * ``large-quick`` — CI-smoke variant of large (one 2 000-node run).
#: * ``pathloss`` — canonical geometry under the pathloss/SINR channel
#:   (default :class:`~repro.net.channel.ChannelSpec` pathloss block):
#:   the capture bookkeeping's perf axis.
#: * ``pathloss-quick`` — CI-smoke variant of pathloss.
WORKLOADS: dict[str, dict] = {
    "canonical": {
        "densities": (50, 150, 250),
        "schemes": ("opportunistic", "greedy"),
        "trials": 2,
        "duration": 30.0,
        "warmup": 12.0,
        "exploratory_interval": 10.0,
    },
    "quick": {
        "densities": (50, 100),
        "schemes": ("opportunistic", "greedy"),
        "trials": 1,
        "duration": 15.0,
        "warmup": 6.0,
        "exploratory_interval": 6.0,
    },
    "large": {
        "densities": (2000, 3500, 5000),
        "schemes": ("greedy",),
        "trials": 1,
        "duration": 10.0,
        "warmup": 4.0,
        "exploratory_interval": 6.0,
        "field_size": 800.0,
    },
    "large-quick": {
        "densities": (2000,),
        "schemes": ("greedy",),
        "trials": 1,
        "duration": 6.0,
        "warmup": 3.0,
        "exploratory_interval": 6.0,
        "field_size": 800.0,
    },
    "pathloss": {
        "densities": (50, 150, 250),
        "schemes": ("opportunistic", "greedy"),
        "trials": 2,
        "duration": 30.0,
        "warmup": 12.0,
        "exploratory_interval": 10.0,
        "channel": "pathloss",
    },
    "pathloss-quick": {
        "densities": (50, 100),
        "schemes": ("opportunistic", "greedy"),
        "trials": 1,
        "duration": 15.0,
        "warmup": 6.0,
        "exploratory_interval": 6.0,
        "channel": "pathloss",
    },
}

#: legacy aliases (pre-profile API)
CANONICAL_WORKLOAD = WORKLOADS["canonical"]
QUICK_WORKLOAD = WORKLOADS["quick"]


def _resolve_profile(quick: bool, profile: Optional[str]) -> str:
    if profile is None:
        return "quick" if quick else "canonical"
    if profile not in WORKLOADS:
        raise ValueError(
            f"unknown bench profile {profile!r} (have {sorted(WORKLOADS)})"
        )
    return profile


def bench_configs(
    quick: bool = False, profile: Optional[str] = None
) -> list[ExperimentConfig]:
    """The deterministic config list for one bench workload (paired seeds).

    ``profile`` names a :data:`WORKLOADS` entry; the legacy ``quick``
    flag (profile ``"quick"`` vs ``"canonical"``) is honoured when no
    profile is given.
    """
    w = WORKLOADS[_resolve_profile(quick, profile)]
    diffusion = DiffusionParams(exploratory_interval=w["exploratory_interval"])
    field_size = w.get("field_size", 200.0)
    # Only non-disc workloads set the channel kwarg: disc configs must
    # keep the default block so their store keys match pre-channel runs.
    extra: dict = {}
    if w.get("channel") == "pathloss":
        extra["channel"] = ChannelSpec(model="pathloss")
    configs = []
    for n in w["densities"]:
        for trial in range(w["trials"]):
            seed = cell_seed(0, n, trial)
            for scheme in w["schemes"]:
                configs.append(
                    ExperimentConfig(
                        scheme=scheme,
                        n_nodes=n,
                        seed=seed,
                        duration=w["duration"],
                        warmup=w["warmup"],
                        field_size=field_size,
                        diffusion=diffusion,
                        **extra,
                    )
                )
    return configs


def run_bench(
    quick: bool = False,
    workers: int = 0,
    timeline: bool = False,
    profile: Optional[str] = None,
    spans: bool = False,
) -> dict:
    """Run one bench workload and assemble the perf payload.

    The serial pass is the timed headline (it is what the cache and the
    kernel fast paths speed up); the optional parallel pass measures the
    executor and proves parallel == serial bit-for-bit.  ``timeline``
    runs the same workload with the standard probe timeline attached —
    the probe-overhead gate.  ``spans`` wraps every run in
    request-tracing spans the way the service daemon does (one ``run``
    span + one ``worker.execute`` child per config, recorded into a
    bounded :class:`~repro.obs.spans.SpanStore`) — the span-overhead
    gate.  ``tools/check_bench.py`` compares entries only against
    baselines with the same ``(profile, timeline, spans)`` triple.
    """
    from ..obs import ObsOptions
    from ..obs.manifest import _environment
    from ..obs.spans import SpanStore

    profile = _resolve_profile(quick, profile)
    cache = default_field_cache()
    cache.clear()
    configs = bench_configs(profile=profile)
    obs = ObsOptions(timeline=True) if timeline else None
    span_store = SpanStore() if spans else None

    def _observe(cfg):
        if span_store is None:
            return run_observed(cfg, obs)
        run_span = span_store.start(
            "run", scheme=cfg.scheme, n_nodes=cfg.n_nodes, seed=cfg.seed
        )
        exec_span = span_store.start("worker.execute", parent=run_span)
        out = run_observed(cfg, obs)
        exec_span.end()
        run_span.end()
        return out

    per_run = []
    t0 = time.perf_counter()
    observed = [_observe(cfg) for cfg in configs]
    wall = time.perf_counter() - t0

    total_events = sum(o.events_processed for o in observed)
    total_cancelled = sum(o.cancelled_skipped for o in observed)
    for cfg, o in zip(configs, observed):
        per_run.append(
            {
                "scheme": cfg.scheme,
                "n_nodes": cfg.n_nodes,
                "seed": cfg.seed,
                "wall_time_s": round(o.wall_time_s, 4),
                "events_processed": o.events_processed,
                "cancelled_skipped": o.cancelled_skipped,
                "field_cache_hit": o.field_cache_hit,
                "avg_dissipated_energy": o.metrics.avg_dissipated_energy,
                "delivery_ratio": o.metrics.delivery_ratio,
            }
        )

    w = WORKLOADS[profile]
    payload: dict = {
        "bench_version": BENCH_VERSION,
        "kind": "bench",
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "profile": profile,
        "quick": profile == "quick",  # legacy flag, kept for old tooling
        "timeline": timeline,
        "spans": spans,
        "workload": {k: list(v) if isinstance(v, tuple) else v for k, v in w.items()},
        "n_runs": len(configs),
        "wall_time_s": round(wall, 3),
        "runs_per_sec": round(len(configs) / wall, 4) if wall > 0 else 0.0,
        "events_processed": total_events,
        "events_per_sec": round(total_events / wall, 1) if wall > 0 else 0.0,
        "cancelled_skipped": total_cancelled,
        "cancelled_churn": round(total_cancelled / total_events, 6) if total_events else 0.0,
        "field_cache": cache.stats(),
        "environment": _environment(),
    }
    if timeline:
        payload["timeline_samples"] = sum(
            o.timeline.n_samples for o in observed if o.timeline is not None
        )
    if span_store is not None:
        payload["span_stats"] = span_store.stats()

    if workers and workers > 1:
        t1 = time.perf_counter()
        parallel_results = run_configs(configs, workers=workers)
        parallel_wall = time.perf_counter() - t1
        identical = [o.metrics for o in observed] == parallel_results
        payload["parallel"] = {
            "workers": workers,
            "wall_time_s": round(parallel_wall, 3),
            "speedup_vs_serial": round(wall / parallel_wall, 3) if parallel_wall > 0 else 0.0,
            "identical": identical,
        }

    payload["per_run"] = per_run
    return payload


def save_bench(payload: dict, path: Union[str, Path]) -> Path:
    """Append one bench result to the trajectory file at ``path``.

    The file accumulates a ``bench-trajectory``: one entry per benchmark
    run, so throughput history is a committed artifact and regressions
    show up as diffs (``tools/check_bench.py`` gates on the last entry).
    A legacy single-payload file is converted in place, keeping the old
    result as the trajectory's first entry.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    entries: list[dict] = []
    if path.exists():
        try:
            existing = json.loads(path.read_text())
        except json.JSONDecodeError:
            existing = None
        if isinstance(existing, dict):
            if existing.get("kind") == "bench-trajectory":
                entries = list(existing.get("entries", []))
            elif existing.get("kind") == "bench":  # legacy single payload
                entries = [existing]
    entries.append(payload)
    wrapped = {
        "kind": "bench-trajectory",
        "bench_version": BENCH_VERSION,
        "entries": entries,
    }
    path.write_text(json.dumps(wrapped, indent=2, sort_keys=True) + "\n")
    return path


def format_bench(payload: dict) -> str:
    """Human-readable bench summary (the CLI's output)."""
    cache = payload["field_cache"]
    tl = ", timelines on" if payload.get("timeline") else ""
    tl += ", spans on" if payload.get("spans") else ""
    profile = payload.get("profile") or ("quick" if payload.get("quick") else "canonical")
    lines = [
        f"repro bench ({profile} workload{tl}, "
        f"{payload['n_runs']} runs)",
        f"wall time        {payload['wall_time_s']:.3f} s "
        f"({payload['runs_per_sec']:.2f} runs/s)",
        f"events           {payload['events_processed']:,} "
        f"({payload['events_per_sec']:,.0f} events/s)",
        f"cancelled churn  {payload['cancelled_skipped']:,} "
        f"({100 * payload['cancelled_churn']:.2f}% of events)",
        f"field cache      {cache['hits']} hits / {cache['misses']} misses "
        f"(hit rate {100 * cache['hit_rate']:.0f}%)",
    ]
    par = payload.get("parallel")
    if par:
        status = "identical to serial" if par["identical"] else "MISMATCH vs serial!"
        lines.append(
            f"parallel         {par['wall_time_s']:.3f} s with {par['workers']} workers "
            f"({par['speedup_vs_serial']:.2f}x, {status})"
        )
    return "\n".join(lines)
