"""Build and execute one packet-level experiment.

Wires the whole stack together — field generation, channel, nodes,
diffusion agents, workload placement, failure driver, warmup energy
snapshot — runs the simulator, and reduces the run to
:class:`~repro.experiments.metrics.RunMetrics`.

Workload selection: the paper picks *specific nodes* as sources ("five
sources are randomly selected from nodes in a 80 m x 80 m square...").
We keep diffusion's attribute matching honest by giving exactly those
nodes a ``target=True`` attribute and having the interest predicate
require it — the interest still floods and matches data-centrically, but
the matched set is the paper's workload.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence

from ..aggregation.functions import by_name
from ..core.greedy import GreedyAgent, GreedyEventTruncationAgent
from ..diffusion.agent import DiffusionAgent
from ..diffusion.attributes import AttributeSet, InterestSpec, Op, Predicate
from ..diffusion.baselines import FloodingAgent, OmniscientAgent
from ..diffusion.opportunistic import OpportunisticAgent
from ..trees.git import greedy_incremental_tree
from ..net.channel import model_from_spec
from ..net.fieldcache import FieldCache, cached_field
from ..net.node import Node
from ..net.radio import Channel, RadioParams
from ..net.topology import (
    SensorField,
    corner_sink_node,
    corner_source_nodes,
    event_radius_sources,
    random_source_nodes,
    scattered_sink_nodes,
)
from ..obs import (
    MetricsRegistry,
    ObsOptions,
    ProfileReport,
    Profiler,
    Timeline,
    TraceWriter,
    build_run_manifest,
    install_standard_probes,
    publish_sim_gauges,
    save_manifest,
    save_timeline,
)
from ..sim import RngRegistry, Simulator, Tracer
from .config import ExperimentConfig, FailureModel
from .metrics import MetricsCollector, RunMetrics

__all__ = [
    "run_experiment",
    "run_observed",
    "ObservedRun",
    "build_world",
    "resolve_kernel",
    "VECTOR_KERNEL_MIN_NODES",
    "World",
    "FailureDriver",
    "TRACKING_SPEC",
]

#: the tracking interest: task type plus the target flag (see module doc)
TRACKING_SPEC = InterestSpec.of(
    Predicate("task", Op.IS, "tracking"),
    Predicate("target", Op.IS, True),
)

_AGENTS = {
    "greedy": GreedyAgent,
    "opportunistic": OpportunisticAgent,
    "greedy-events": GreedyEventTruncationAgent,
    "flooding": FloodingAgent,
    "omniscient": OmniscientAgent,
}


def _install_omniscient_trees(world: "World") -> None:
    """Compute the GIT per interest and install static parent pointers."""
    graph = world.field.connectivity_graph()
    import networkx as nx

    for sink in world.sinks:
        tree = greedy_incremental_tree(graph, sink, world.sources, order="nearest")
        parents = nx.bfs_predecessors(tree, sink)  # child -> parent toward sink
        parent_of = dict(parents)
        for node_id in tree.nodes:
            agent = world.agents[node_id]
            assert isinstance(agent, OmniscientAgent)
            agent.install_tree(sink, parent_of.get(node_id))
        for source in world.sources:
            agent = world.agents[source]
            assert isinstance(agent, OmniscientAgent)
            agent.activate_source(sink)


class FailureDriver:
    """§5.3 node dynamics: rotate a fresh failed set every epoch."""

    def __init__(
        self,
        sim: Simulator,
        nodes: Sequence[Node],
        model: FailureModel,
        rng: random.Random,
        exempt: frozenset[int],
    ) -> None:
        self.sim = sim
        self.nodes = nodes
        self.model = model
        self.rng = rng
        self.exempt = exempt
        self._down: list[Node] = []
        sim.schedule(0.0, self._tick)

    def _tick(self) -> None:
        for node in self._down:
            node.recover()
        eligible = [n for n in self.nodes if n.node_id not in self.exempt]
        k = int(round(self.model.fraction * len(self.nodes)))
        k = min(k, len(eligible))
        self._down = self.rng.sample(eligible, k)
        for node in self._down:
            node.fail()
        self.sim.schedule(self.model.epoch, self._tick)


@dataclass
class World:
    """A fully wired simulation, ready to run (exposed for tests/examples)."""

    config: ExperimentConfig
    sim: Simulator
    tracer: Tracer
    field: SensorField
    nodes: list[Node]
    agents: list[DiffusionAgent]
    sources: list[int]
    sinks: list[int]
    metrics: MetricsCollector
    failure_driver: Optional[FailureDriver]
    #: whether the field came out of the per-process field cache
    field_cache_hit: bool = False


def _place_sources(
    cfg: ExperimentConfig, field: SensorField, rng: random.Random, sinks: set[int]
) -> list[int]:
    if cfg.source_placement == "corner":
        return corner_source_nodes(field, cfg.n_sources, rng, exclude=sinks)
    if cfg.source_placement == "random":
        return random_source_nodes(field, cfg.n_sources, rng, exclude=sinks)
    return event_radius_sources(field, cfg.n_sources, radius=cfg.range_m, rng=rng, exclude=sinks)


#: ``kernel="auto"`` switches to the vectorized PHY at this node count.
#: Below it, numpy per-call overhead on small fan-outs makes the scalar
#: path faster; above it, batched cohorts win (see DESIGN.md §13).
VECTOR_KERNEL_MIN_NODES = 1000


def resolve_kernel(kernel: str, n_nodes: int) -> str:
    """Resolve ``"auto"`` to a concrete PHY kernel for a network size."""
    if kernel == "auto":
        return "vector" if n_nodes >= VECTOR_KERNEL_MIN_NODES else "scalar"
    return kernel


def build_world(
    cfg: ExperimentConfig,
    obs: Optional[ObsOptions] = None,
    field_cache: Optional[FieldCache] = None,
    kernel: str = "auto",
) -> World:
    """Construct the full simulation for one config (without running it).

    The sensor field is memoized per process (see
    :mod:`repro.net.fieldcache`): paired sweeps rebuild the same
    ``(seed, n, field_size, range_m)`` geometry once per scheme, and the
    cache removes that duplicate work without touching any RNG stream.
    Pass ``field_cache=FieldCache(maxsize=0)`` to force a fresh build.

    ``kernel`` selects the PHY fan-out implementation: ``"vector"``
    batches each broadcast over numpy SoA state; ``"scalar"`` is the
    per-object reference path; ``"auto"`` (the default everywhere)
    picks vector at ``>= VECTOR_KERNEL_MIN_NODES`` nodes and scalar
    below, where small fan-outs make per-call numpy overhead a net
    loss.  RunMetrics and timelines are bit-identical between the two.
    """
    sim = Simulator()
    if obs is not None:
        tracer = Tracer(
            lambda: sim.now,
            registry=MetricsRegistry(detailed=obs.detailed_metrics),
            max_records=obs.effective_max_records(),
        )
    else:
        tracer = Tracer(lambda: sim.now)
    rngs = RngRegistry(cfg.seed)
    field, cache_hit = cached_field(
        cfg.n_nodes,
        cfg.seed,
        field_size=cfg.field_size,
        range_m=cfg.range_m,
        cache=field_cache,
    )
    # The channel model is built from the config's channel block; field
    # geometry above is always drawn on the nominal disc range_m, so disc
    # and pathloss runs of one seed share the exact same field/workload.
    channel = Channel(
        sim,
        tracer,
        RadioParams(range_m=cfg.range_m),
        kernel=resolve_kernel(kernel, cfg.n_nodes),
        model=model_from_spec(cfg.channel, cfg.range_m),
    )
    nodes = [
        Node(i, x, y, sim, channel, tracer, rngs)
        for i, (x, y) in enumerate(field.positions)
    ]

    placement_rng = rngs.stream("placement")
    if cfg.n_sinks == 1:
        sinks = [corner_sink_node(field, placement_rng)]
    else:
        sinks = scattered_sink_nodes(field, cfg.n_sinks, placement_rng)
    sources = _place_sources(cfg, field, placement_rng, set(sinks))

    metrics = MetricsCollector(cfg.warmup)
    aggfn = by_name(cfg.aggregation)
    agent_cls = _AGENTS[cfg.scheme]
    agents = [agent_cls(node, cfg.diffusion, aggfn, metrics) for node in nodes]

    for src in sources:
        node = nodes[src]
        agents[src].attributes = AttributeSet(
            {"task": "tracking", "x": node.x, "y": node.y, "target": True}
        )
    for sink in sinks:
        agents[sink].attach_sink(interest_id=sink, spec=TRACKING_SPEC)

    driver = None
    if cfg.failures is not None:
        driver = FailureDriver(
            sim, nodes, cfg.failures, rngs.stream("failures"), exempt=frozenset(sinks)
        )

    world = World(
        cfg, sim, tracer, field, nodes, agents, sources, sinks, metrics, driver,
        field_cache_hit=cache_hit,
    )
    if cfg.scheme == "omniscient":
        _install_omniscient_trees(world)
    return world


@dataclass
class ObservedRun:
    """One run's metrics plus the observability artifacts it produced."""

    metrics: RunMetrics
    wall_time_s: float
    profile: Optional[ProfileReport] = None
    manifest: Optional[dict] = None
    manifest_path: Optional[Path] = None
    trace_path: Optional[Path] = None
    #: simulator totals for throughput accounting (repro bench)
    events_processed: int = 0
    cancelled_skipped: int = 0
    #: whether the sensor field came from the per-process cache
    field_cache_hit: bool = False
    #: :meth:`~repro.obs.audit.Auditor.report` dict when run with
    #: ``obs.audit=True`` (None otherwise)
    audit: Optional[dict] = None
    #: the sampled probe :class:`~repro.obs.timeline.Timeline` when run
    #: with ``obs.timeline``/``obs.timeline_path`` (None otherwise)
    timeline: Optional[Timeline] = None
    #: where the timeline JSON artifact was written (``obs.timeline_path``)
    timeline_path: Optional[Path] = None


def run_experiment(
    cfg: ExperimentConfig,
    obs: Optional[ObsOptions] = None,
    field_cache: Optional[FieldCache] = None,
    store=None,
    kernel: str = "auto",
) -> RunMetrics:
    """Run one experiment end to end and reduce it to metrics.

    ``store`` (a :class:`~repro.experiments.store.RunStore` or a
    directory path) short-circuits the run when the config's content
    hash is already stored, and persists a fresh result otherwise —
    the single-run counterpart of ``run_configs(..., store=...)``.
    When the run sampled a timeline (``obs.timeline``), the timeline is
    persisted beside the run entry (``<store>/timelines/<key>.json``);
    a store hit returns the cached metrics without re-sampling one.
    """
    if store is not None:
        from .store import open_store

        store = open_store(store)
        cached = store.get(cfg)
        if cached is not None:
            return cached
    observed = run_observed(cfg, obs, field_cache=field_cache, kernel=kernel)
    if store is not None:
        store.put(cfg, observed.metrics)
        if observed.timeline is not None:
            store.put_timeline(cfg, observed.timeline)
    return observed.metrics


def run_observed(
    cfg: ExperimentConfig,
    obs: Optional[ObsOptions] = None,
    field_cache: Optional[FieldCache] = None,
    kernel: str = "auto",
) -> ObservedRun:
    """Run one experiment with optional profiling/tracing/provenance.

    With ``obs=None`` this is exactly :func:`run_experiment`; otherwise
    the requested instruments are attached before the run and their
    artifacts (profile report, JSONL trace, ``manifest.json``) are
    collected afterwards.
    """
    world = build_world(cfg, obs, field_cache=field_cache, kernel=kernel)
    sim, tracer = world.sim, world.tracer

    profiler: Optional[Profiler] = None
    writer: Optional[TraceWriter] = None
    auditor = None
    timeline: Optional[Timeline] = None
    if obs is not None:
        if obs.audit:
            from ..obs.audit import Auditor

            d = cfg.diffusion
            auditor = Auditor(
                data_timeout=max(d.gradient_timeout, 2.2 * d.exploratory_interval)
            )
            auditor.attach(tracer)
        if obs.trace_path is not None:
            writer = TraceWriter(obs.trace_path, registry=tracer.registry)
            writer.attach(tracer, *obs.trace_categories)
            interval = obs.snapshot_interval or cfg.duration / 10.0

            def snap() -> None:
                publish_sim_gauges(tracer.registry, world.sim)
                assert writer is not None
                writer.write_snapshot(sim.now)
                # Close out the final partial interval with a snapshot at
                # exactly cfg.duration, and never schedule past the horizon
                # (events at t == duration still fire under run(until=...)).
                nxt = sim.now + interval
                if nxt < cfg.duration:
                    sim.schedule(interval, snap)
                elif sim.now < cfg.duration:
                    sim.schedule(cfg.duration - sim.now, snap)

            sim.schedule(min(interval, cfg.duration), snap)
        if obs.timeline_enabled():
            timeline = Timeline(obs.effective_timeline_interval(cfg.duration))
            install_standard_probes(
                timeline,
                sim=sim,
                nodes=world.nodes,
                agents=world.agents,
                collector=world.metrics,
                tracer=tracer,
            )
            # publish_sim_gauges before each sample: timeline-only runs
            # get the same sim health gauges the trace snapshots publish
            timeline.attach(
                sim,
                cfg.duration,
                before_sample=lambda: publish_sim_gauges(tracer.registry, sim),
            )
        if obs.profile:
            profiler = Profiler(obs.profile_sample_interval).attach(sim)

    snapshots: list[tuple[float, float]] = []
    class_snapshots: list[dict[str, tuple[float, float]]] = []

    def take_snapshot() -> None:
        snapshots.extend((n.energy.tx_time, n.energy.rx_time) for n in world.nodes)
        class_snapshots.extend(n.energy.class_times() for n in world.nodes)

    sim.schedule(cfg.warmup, take_snapshot)
    t0 = time.perf_counter()
    try:
        sim.run(until=cfg.duration)
    finally:
        if profiler is not None:
            profiler.detach()
        if timeline is not None:
            # guaranteed closing sample at the horizon (sim.now == duration)
            timeline.finalize(sim.now)
        if writer is not None:
            writer.close()
    wall_time = time.perf_counter() - t0

    if len(snapshots) != len(world.nodes):
        # The warmup snapshot never fired (or fired partially): energy
        # accounting would silently report 0.0.  Config validation rejects
        # warmup >= duration, so reaching this means the scheduler was
        # stopped early or misused — fail loudly instead of reporting
        # zero-energy runs.
        raise RuntimeError(
            f"warmup energy snapshot incomplete ({len(snapshots)} of "
            f"{len(world.nodes)} nodes) — warmup={cfg.warmup} duration={cfg.duration}"
        )

    window = cfg.duration - cfg.warmup
    total_energy = 0.0
    for node, (tx0, rx0) in zip(world.nodes, snapshots):
        meter = node.energy
        dtx = meter.tx_time - tx0
        drx = meter.rx_time - rx0
        energy = meter.params.tx_power_w * dtx + meter.params.rx_power_w * drx
        if cfg.include_idle:
            energy += meter.params.idle_power_w * max(0.0, window - dtx - drx)
        total_energy += energy

    # Per-class breakdown over the same post-warmup window.  Kept as a
    # second pass so the total_energy loop above — whose float summation
    # order the reproducibility contract freezes — stays untouched; the
    # class sums match it within 1e-9 (the auditor checks this).
    energy_by_class: dict[str, float] = {}
    for node, (tx0, rx0), cls0 in zip(world.nodes, snapshots, class_snapshots):
        meter = node.energy
        txp, rxp = meter.params.tx_power_w, meter.params.rx_power_w
        for cls, (txt, rxt) in meter.class_times().items():
            tx0c, rx0c = cls0.get(cls, (0.0, 0.0))
            delta = txp * (txt - tx0c) + rxp * (rxt - rx0c)
            if delta:
                energy_by_class[cls] = energy_by_class.get(cls, 0.0) + delta
        if cfg.include_idle:
            dtx = meter.tx_time - tx0
            drx = meter.rx_time - rx0
            idle = meter.params.idle_power_w * max(0.0, window - dtx - drx)
            energy_by_class["idle"] = energy_by_class.get("idle", 0.0) + idle
    energy_by_class = {cls: energy_by_class[cls] for cls in sorted(energy_by_class)}

    # Publish the channel's per-class frame counts as labeled registry
    # counters so they appear in the counters snapshot below.
    if world.nodes:
        world.nodes[0].radio.channel.flush_class_counters()

    metrics = world.metrics
    distinct = metrics.total_distinct_delivered()
    sent = sum(metrics.sent.values())
    if distinct > 0:
        avg_energy = total_energy / cfg.n_nodes / distinct
        avg_delay = metrics.average_delay() or 0.0
    else:
        # Degenerate run (nothing delivered): report per-node energy over
        # the window and the full window as "delay" so failures are loud.
        avg_energy = total_energy / cfg.n_nodes
        avg_delay = window

    # Lifetime scalars are computed from event-level state (never from
    # sampled timelines), so they are bit-identical whether or not a
    # timeline was attached, and across serial/parallel sweeps.
    first_deaths = [
        n.first_down_at for n in world.nodes if n.first_down_at is not None
    ]
    run_metrics = RunMetrics(
        scheme=cfg.scheme,
        n_nodes=cfg.n_nodes,
        seed=cfg.seed,
        avg_dissipated_energy=avg_energy,
        avg_delay=avg_delay,
        delivery_ratio=min(1.0, metrics.delivery_ratio()),
        total_energy_j=total_energy,
        distinct_delivered=distinct,
        events_sent=sent,
        mean_degree=world.field.mean_degree(
            range_m=world.nodes[0].radio.channel.model.reach_m
        ),
        counters=dict(tracer.counters),
        energy_by_class=energy_by_class,
        time_to_first_death=min(first_deaths) if first_deaths else None,
        time_to_half_delivery=metrics.time_to_half_delivery(),
    )

    audit_report: Optional[dict] = None
    if auditor is not None:
        auditor.finalize(world.nodes)
        audit_report = auditor.report()

    observed = ObservedRun(
        metrics=run_metrics,
        wall_time_s=wall_time,
        profile=profiler.report() if profiler is not None else None,
        trace_path=Path(obs.trace_path) if obs is not None and obs.trace_path else None,
        events_processed=sim.events_processed,
        cancelled_skipped=sim.cancelled_skipped,
        field_cache_hit=world.field_cache_hit,
        audit=audit_report,
        timeline=timeline,
    )
    if timeline is not None and obs is not None and obs.timeline_path is not None:
        observed.timeline_path = save_timeline(timeline, obs.timeline_path)
    if obs is not None and obs.manifest_path is not None:
        observed.manifest = build_run_manifest(
            cfg,
            run_metrics,
            wall_time_s=wall_time,
            sim=sim,
            registry=tracer.registry,
            profile_report=observed.profile,
            trace_path=observed.trace_path,
            field_info={
                "redraws": world.field.redraws,
                "cache_hit": world.field_cache_hit,
            },
            audit=audit_report,
            timeline=(
                timeline.accounting(observed.timeline_path)
                if timeline is not None
                else None
            ),
        )
        observed.manifest_path = save_manifest(observed.manifest, obs.manifest_path)
    return observed
