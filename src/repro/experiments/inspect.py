"""Inspection tools: extract and analyze the live aggregation tree.

The protocol is fully distributed — no node knows the tree — but the
simulation can read every node's gradient table and reconstruct the
structure the local rules built.  This is how the examples visualize
trees and how tests verify that the distributed greedy scheme actually
converges to (near-)GIT structures.

* :func:`active_tree` — the directed graph of live data gradients for
  one interest (edge = node -> its preferred downstream neighbor).
* :func:`tree_stats` — edges, junctions, depth, and stranded sources.
* :func:`compare_with_ideal` — the distributed tree's edge count against
  the centralized SPT / GIT / KMB references on the same field.
* :func:`delivery_timeline` — delivered-events-per-interval series (used
  by the failure study to see outages and repairs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import networkx as nx

from ..trees.git import greedy_incremental_tree
from ..trees.spt import shortest_path_tree, tree_cost
from ..trees.steiner import steiner_tree_kmb
from .metrics import MetricsCollector
from .runner import World

__all__ = ["TreeStats", "active_tree", "tree_stats", "compare_with_ideal", "delivery_timeline"]


def active_tree(
    world: World, interest_id: Optional[int] = None, prune: bool = True
) -> nx.DiGraph:
    """The live data-gradient graph for ``interest_id`` (default: the
    first sink's interest).  Each node has at most one outgoing edge (the
    single-preferred-neighbor invariant), so the result is a functional
    graph that — absent transient loops — is a forest rooted at the sink.

    With ``prune`` (default) only the paths actually carrying traffic are
    kept: the chains followed from the workload's sources.  Unpruned, the
    graph also shows residual gradients on abandoned branches whose data
    strength has not yet decayed.
    """
    if interest_id is None:
        if not world.sinks:
            raise ValueError("world has no sinks")
        interest_id = world.sinks[0]
    now = world.sim.now
    tree = nx.DiGraph()
    for agent in world.agents:
        table = agent.gradients.get(interest_id)
        if table is None:
            continue
        for parent in table.data_neighbors(now):
            tree.add_edge(agent.node.node_id, parent)
    if not prune:
        return tree
    pruned = nx.DiGraph()
    for source in world.sources:
        node = source
        seen = set()
        while node in tree and node not in seen:
            seen.add(node)
            successors = list(tree.successors(node))
            if not successors:
                break
            pruned.add_edge(node, successors[0])
            node = successors[0]
    return pruned


@dataclass(frozen=True)
class TreeStats:
    """Shape summary of one distributed aggregation tree."""

    n_edges: int
    n_nodes: int
    #: nodes where >= 2 branches meet (potential aggregation points)
    n_junctions: int
    #: longest source -> sink hop distance (0 when nothing is connected)
    depth: int
    #: sources with no live path to the sink
    stranded_sources: tuple[int, ...]


def tree_stats(tree: nx.DiGraph, sources: Sequence[int], sink: int) -> TreeStats:
    """Summarize a data-gradient graph relative to its workload."""
    junctions = sum(1 for n in tree.nodes if tree.in_degree(n) >= 2)
    depth = 0
    stranded = []
    for source in sources:
        if source in tree and nx.has_path(tree, source, sink):
            depth = max(depth, nx.shortest_path_length(tree, source, sink))
        else:
            stranded.append(source)
    return TreeStats(
        n_edges=tree.number_of_edges(),
        n_nodes=tree.number_of_nodes(),
        n_junctions=junctions,
        depth=depth,
        stranded_sources=tuple(sorted(stranded)),
    )


def compare_with_ideal(world: World, interest_id: Optional[int] = None) -> dict[str, float]:
    """Distributed tree size vs centralized references on the same field.

    Returns edge counts for the live tree, the SPT union, the
    nearest-first GIT, and the KMB Steiner approximation, computed for
    the given interest's sink over the world's sources.
    """
    sink = world.sinks[0] if interest_id is None else interest_id
    graph = world.field.connectivity_graph()
    live = active_tree(world, interest_id)
    return {
        "distributed_edges": float(live.number_of_edges()),
        "spt_edges": tree_cost(shortest_path_tree(graph, sink, world.sources)),
        "git_edges": tree_cost(
            greedy_incremental_tree(graph, sink, world.sources, order="nearest")
        ),
        "steiner_edges": tree_cost(steiner_tree_kmb(graph, [sink, *world.sources])),
    }


def delivery_timeline(
    metrics: MetricsCollector, bucket: float, until: float
) -> list[tuple[float, int]]:
    """Delivered distinct events per ``bucket`` seconds of simulated time.

    Useful to see failure outages and exploratory-round repairs as dips
    and recoveries (fig 6's mechanism, viewed over time).
    """
    if bucket <= 0:
        raise ValueError("bucket must be positive")
    n_buckets = int(until / bucket) + 1
    counts = [0] * n_buckets
    for t in metrics.delivery_times:
        idx = int(t / bucket)
        if 0 <= idx < n_buckets:
            counts[idx] += 1
    return [(i * bucket, c) for i, c in enumerate(counts)]
