"""The paper's three metrics (§5.1).

* **Average dissipated energy** — total dissipated energy per node divided
  by the number of distinct events received by sinks ("the average work
  done by a node in delivering useful information").
* **Average delay** — mean one-way latency between an event's generation
  at its source and its (first) reception at each sink.
* **Distinct-event delivery ratio** — distinct events received over
  events originally sent, averaged over sinks.

The collector implements the :class:`~repro.diffusion.agent.DeliverySink`
protocol; agents feed it generation and delivery callbacks.  Events
generated during warmup are excluded from every metric, and the runner
snapshots energy meters at the warmup boundary so energy is measured over
the same window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..diffusion.messages import DataItem

__all__ = ["MetricsCollector", "RunMetrics"]


class MetricsCollector:
    """Accumulates per-run deliveries and delays."""

    def __init__(self, warmup_end: float) -> None:
        self.warmup_end = warmup_end
        #: events generated after warmup, per interest
        self.sent: dict[int, int] = {}
        #: distinct post-warmup events delivered, per (interest, sink)
        self.delivered: dict[tuple[int, int], set[tuple[int, int]]] = {}
        #: one-way delays of all counted deliveries
        self.delays: list[float] = []
        #: arrival times of all counted deliveries (for timelines)
        self.delivery_times: list[float] = []

    # ------------------------------------------------------------------
    # DeliverySink protocol
    # ------------------------------------------------------------------
    def on_generated(self, interest_id: int, item: DataItem) -> None:
        if item.gen_time < self.warmup_end:
            return
        self.sent[interest_id] = self.sent.get(interest_id, 0) + 1

    def on_delivered(
        self, interest_id: int, sink_id: int, item: DataItem, time: float
    ) -> None:
        if item.gen_time < self.warmup_end:
            return
        bucket = self.delivered.setdefault((interest_id, sink_id), set())
        if item.key in bucket:
            return
        bucket.add(item.key)
        self.delays.append(time - item.gen_time)
        self.delivery_times.append(time)

    # ------------------------------------------------------------------
    # readout
    # ------------------------------------------------------------------
    def total_distinct_delivered(self) -> int:
        return sum(len(b) for b in self.delivered.values())

    def delivery_ratio(self) -> float:
        """Mean over interests of distinct-received / sent."""
        ratios = []
        for interest_id, sent in self.sent.items():
            if sent == 0:
                continue
            got = sum(
                len(b) for (iid, _sink), b in self.delivered.items() if iid == interest_id
            )
            ratios.append(got / sent)
        if not ratios:
            return 0.0
        return sum(ratios) / len(ratios)

    def average_delay(self) -> Optional[float]:
        if not self.delays:
            return None
        return sum(self.delays) / len(self.delays)

    def time_to_half_delivery(self) -> Optional[float]:
        """Sim time by which half of all counted deliveries had arrived.

        ``delivery_times`` is append-ordered (arrival order), so this is
        the ceil(n/2)-th arrival — an event-exact quantile, independent of
        any sampling cadence, hence bit-identical across serial/parallel
        sweeps and observability settings.
        """
        times = self.delivery_times
        if not times:
            return None
        return times[(len(times) + 1) // 2 - 1]


@dataclass(frozen=True)
class RunMetrics:
    """Final metrics of one run (plus diagnostics)."""

    scheme: str
    n_nodes: int
    seed: int
    #: J / node / received distinct event (the fig (a) panels)
    avg_dissipated_energy: float
    #: seconds / received distinct event (the fig (b) panels)
    avg_delay: float
    #: distinct received / sent (the fig (c) panels)
    delivery_ratio: float
    #: raw inputs, for aggregation and debugging
    total_energy_j: float
    distinct_delivered: int
    events_sent: int
    mean_degree: float
    counters: dict = field(default_factory=dict)
    #: post-warmup communication energy by message class (J); sums to
    #: total_energy_j within 1e-9 (the "idle" bucket is included when the
    #: run charged idle listening)
    energy_by_class: dict = field(default_factory=dict)
    #: sim time of the first node death (failure-driver epoch), or None if
    #: every node stayed up; event-exact, not sampled
    time_to_first_death: Optional[float] = None
    #: sim time of the ceil(n/2)-th counted delivery, or None if nothing
    #: was delivered; event-exact, not sampled
    time_to_half_delivery: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.delivery_ratio <= 1.0 + 1e-9:
            raise ValueError(f"delivery ratio out of range: {self.delivery_ratio}")
        if self.avg_dissipated_energy < 0 or self.total_energy_j < 0:
            raise ValueError("negative energy")
        for name in ("time_to_first_death", "time_to_half_delivery"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(f"negative {name}: {value}")
