"""Parameter sweeps: run cells of (scheme x sweep-value x trials).

Comparisons are **paired**: for a given (sweep value, trial index) both
schemes run with the same seed, hence the same field, the same source and
sink draws, and the same failure schedule — the paper's "our results are
averaged over ten different generated fields" with variance reduced by
pairing.

Cells can run serially (deterministic order, easiest to debug) or across
processes (``workers > 1``); results are identical either way because
each run is fully determined by its config.
"""

from __future__ import annotations

import statistics
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from ..sim.rng import derive_seed
from .config import ExperimentConfig, Profile
from .metrics import RunMetrics
from .runner import run_experiment

#: the two schemes the paper's figures compare (ablation variants are
#: swept explicitly by the ablation benchmarks)
COMPARISON_SCHEMES = ("opportunistic", "greedy")

__all__ = ["CellSummary", "summarize_cell", "run_configs", "paired_sweep", "cell_seed"]


def cell_seed(base_seed: int, x: object, trial: int) -> int:
    """Stable per-(sweep value, trial) seed, shared by both schemes."""
    return derive_seed(base_seed, f"cell:{x}:{trial}") % (2**31)


@dataclass(frozen=True)
class CellSummary:
    """Mean metrics of one (scheme, sweep value) cell."""

    scheme: str
    x: float
    energy: float
    energy_stdev: float
    delay: float
    ratio: float
    n_runs: int
    distinct_delivered: float

    @staticmethod
    def from_runs(scheme: str, x: float, runs: Sequence[RunMetrics]) -> "CellSummary":
        if not runs:
            raise ValueError("cannot summarize an empty cell")
        energies = [r.avg_dissipated_energy for r in runs]
        return CellSummary(
            scheme=scheme,
            x=x,
            energy=statistics.fmean(energies),
            energy_stdev=statistics.stdev(energies) if len(energies) > 1 else 0.0,
            delay=statistics.fmean(r.avg_delay for r in runs),
            ratio=statistics.fmean(r.delivery_ratio for r in runs),
            n_runs=len(runs),
            distinct_delivered=statistics.fmean(r.distinct_delivered for r in runs),
        )


def summarize_cell(scheme: str, x: float, runs: Sequence[RunMetrics]) -> CellSummary:
    return CellSummary.from_runs(scheme, x, runs)


def run_configs(configs: Sequence[ExperimentConfig], workers: int = 0) -> list[RunMetrics]:
    """Run many experiments, optionally in parallel processes."""
    if workers and workers > 1:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(run_experiment, configs))
    return [run_experiment(cfg) for cfg in configs]


def paired_sweep(
    profile: Profile,
    xs: Iterable,
    make_config: Callable[[str, object, int], ExperimentConfig],
    trials: int | None = None,
    workers: int = 0,
    schemes: Sequence[str] = COMPARISON_SCHEMES,
) -> list[CellSummary]:
    """Run both schemes over all sweep values with paired seeds.

    ``make_config(scheme, x, seed)`` builds the run config for one cell
    member; the sweep enumerates every (scheme, x, trial) combination.
    """
    trials = profile.trials if trials is None else trials
    if trials < 1:
        raise ValueError("need at least one trial")
    plan: list[tuple[str, object, ExperimentConfig]] = []
    for x in xs:
        for trial in range(trials):
            seed = cell_seed(0, x, trial)
            for scheme in schemes:
                plan.append((scheme, x, make_config(scheme, x, seed)))
    results = run_configs([cfg for _s, _x, cfg in plan], workers=workers)

    grouped: dict[tuple[str, object], list[RunMetrics]] = {}
    for (scheme, x, _cfg), run in zip(plan, results):
        grouped.setdefault((scheme, x), []).append(run)
    return [
        CellSummary.from_runs(scheme, float(x), runs)  # type: ignore[arg-type]
        for (scheme, x), runs in sorted(grouped.items(), key=lambda kv: (kv[0][1], kv[0][0]))
    ]
