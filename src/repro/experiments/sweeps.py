"""Parameter sweeps: run cells of (scheme x sweep-value x trials).

Comparisons are **paired**: for a given (sweep value, trial index) both
schemes run with the same seed, hence the same field, the same source and
sink draws, and the same failure schedule — the paper's "our results are
averaged over ten different generated fields" with variance reduced by
pairing.

Cells can run serially (deterministic order, easiest to debug) or across
processes (``workers > 1``); results are identical either way because
each run is fully determined by its config.  The parallel executor is
hardened for long sweeps:

* runs are dispatched in contiguous, order-preserving chunks (one IPC
  round-trip per chunk, and a worker's field cache sees a cell's paired
  runs back to back);
* a config that raises does not kill the sweep — it becomes a
  :class:`RunFailure` placeholder at its position, and the sweep raises
  one :class:`SweepError` summary at the end (or hands the placeholders
  back with ``return_failures=True``);
* a hard-crashed worker (e.g. OOM-killed) only takes down the chunks it
  owned — they also become placeholders;
* ``max_tasks_per_child`` recycles worker processes (Python 3.11+) and
  ``progress`` reports completion without touching results.

Sweeps are also **resumable**: with ``store=`` pointing at a
:class:`~repro.experiments.store.RunStore`, completed runs are looked up
by content hash before dispatch and every fresh result is persisted the
moment its future resolves, so re-running an interrupted sweep executes
only the missing tail (see :mod:`repro.experiments.store`).
"""

from __future__ import annotations

import statistics
import sys
import traceback as _traceback
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Optional, Sequence, Union

from ..sim.rng import derive_seed
from .config import ExperimentConfig, Profile
from .metrics import RunMetrics
from .runner import run_experiment
from .store import RunStore, open_store

#: a ``store=`` argument: an open handle, a directory path, or disabled
StoreArg = Union[RunStore, str, Path, None]

#: the two schemes the paper's figures compare (ablation variants are
#: swept explicitly by the ablation benchmarks)
COMPARISON_SCHEMES = ("opportunistic", "greedy")

__all__ = [
    "CellSummary",
    "RunFailure",
    "SweepError",
    "summarize_cell",
    "run_configs",
    "paired_sweep",
    "paired_plan",
    "summarize_paired",
    "cell_seed",
]


def cell_seed(base_seed: int, x: object, trial: int) -> int:
    """Stable per-(sweep value, trial) seed, shared by both schemes."""
    return derive_seed(base_seed, f"cell:{x}:{trial}") % (2**31)


@dataclass(frozen=True)
class CellSummary:
    """Mean metrics of one (scheme, sweep value) cell."""

    scheme: str
    x: float
    energy: float
    energy_stdev: float
    delay: float
    ratio: float
    n_runs: int
    distinct_delivered: float

    @staticmethod
    def from_runs(scheme: str, x: float, runs: Sequence[RunMetrics]) -> "CellSummary":
        if not runs:
            raise ValueError("cannot summarize an empty cell")
        energies = [r.avg_dissipated_energy for r in runs]
        return CellSummary(
            scheme=scheme,
            x=x,
            energy=statistics.fmean(energies),
            energy_stdev=statistics.stdev(energies) if len(energies) > 1 else 0.0,
            delay=statistics.fmean(r.avg_delay for r in runs),
            ratio=statistics.fmean(r.delivery_ratio for r in runs),
            n_runs=len(runs),
            distinct_delivered=statistics.fmean(r.distinct_delivered for r in runs),
        )


def summarize_cell(scheme: str, x: float, runs: Sequence[RunMetrics]) -> CellSummary:
    return CellSummary.from_runs(scheme, x, runs)


@dataclass(frozen=True)
class RunFailure:
    """Placeholder for one run that raised instead of producing metrics."""

    index: int
    config: ExperimentConfig
    error: str
    traceback: str = ""

    def __str__(self) -> str:
        return f"run[{self.index}] {self.config.scheme}/n={self.config.n_nodes}: {self.error}"


class SweepError(RuntimeError):
    """Some runs of a sweep failed; the rest completed.

    Carries the full order-preserving result list (``RunMetrics`` for
    completed runs, :class:`RunFailure` placeholders for failed ones) so
    a caller can salvage the survivors.
    """

    def __init__(self, failures: Sequence[RunFailure], results: Sequence) -> None:
        self.failures = list(failures)
        self.results = list(results)
        shown = "; ".join(str(f) for f in self.failures[:5])
        more = f" (+{len(self.failures) - 5} more)" if len(self.failures) > 5 else ""
        super().__init__(
            f"{len(self.failures)} of {len(self.results)} sweep runs failed: {shown}{more}"
        )


def _safe_run(index: int, cfg: ExperimentConfig) -> Union[RunMetrics, RunFailure]:
    """Run one experiment, converting any exception into a placeholder."""
    try:
        return run_experiment(cfg)
    except BaseException as exc:  # noqa: BLE001 - isolate *any* run failure
        if isinstance(exc, (KeyboardInterrupt, SystemExit)):
            raise
        return RunFailure(index, cfg, f"{type(exc).__name__}: {exc}", _traceback.format_exc())


def _run_chunk(chunk: Sequence[tuple[int, ExperimentConfig]]) -> list:
    """Worker entry point: run a contiguous slice of the sweep plan."""
    return [(index, _safe_run(index, cfg)) for index, cfg in chunk]


def _default_chunksize(n_configs: int, workers: int) -> int:
    # ~4 chunks per worker balances IPC overhead against stragglers while
    # keeping a cell's paired runs adjacent in one worker's field cache.
    return max(1, -(-n_configs // (workers * 4)))


def _run_parallel(
    indexed: Sequence[tuple[int, ExperimentConfig]],
    workers: int,
    chunksize: Optional[int],
    max_tasks_per_child: Optional[int],
    progress: Optional[Callable[[int, int], None]],
    on_result: Optional[Callable[[int, object], None]] = None,
) -> dict[int, object]:
    """Run ``(index, config)`` pairs across workers.

    Returns ``{index: outcome}``; indices are whatever the caller chose
    (positions in the full sweep plan, so :class:`RunFailure.index` stays
    meaningful even when a store pre-filtered the plan).  ``on_result``
    fires in the parent as each chunk resolves — this is the persistence
    hook, so a kill between chunks loses at most the in-flight chunks.
    """
    total = len(indexed)
    chunksize = chunksize or _default_chunksize(total, workers)
    chunks = [indexed[i : i + chunksize] for i in range(0, total, chunksize)]

    pool_kwargs: dict = {"max_workers": workers}
    if max_tasks_per_child is not None:
        if sys.version_info >= (3, 11):
            # max_tasks_per_child requires a non-fork start method.
            import multiprocessing

            pool_kwargs["max_tasks_per_child"] = max_tasks_per_child
            pool_kwargs["mp_context"] = multiprocessing.get_context("spawn")
        else:
            warnings.warn(
                "max_tasks_per_child needs Python >= 3.11; ignoring",
                RuntimeWarning,
                stacklevel=3,
            )

    results: dict[int, object] = {}
    done = 0
    with ProcessPoolExecutor(**pool_kwargs) as pool:
        future_chunks = {pool.submit(_run_chunk, chunk): chunk for chunk in chunks}
        pending = set(future_chunks)
        while pending:
            finished, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in finished:
                chunk = future_chunks[future]
                try:
                    pairs = future.result()
                except BrokenProcessPool as exc:
                    # The worker owning this chunk died hard (signal/OOM);
                    # every run it held becomes a placeholder.  Remaining
                    # futures on the broken pool will surface here too.
                    pairs = [
                        (index, RunFailure(index, cfg, f"worker process died: {exc}"))
                        for index, cfg in chunk
                    ]
                except BaseException as exc:  # pragma: no cover - defensive
                    pairs = [
                        (index, RunFailure(index, cfg, f"{type(exc).__name__}: {exc}"))
                        for index, cfg in chunk
                    ]
                for index, outcome in pairs:
                    results[index] = outcome
                    if on_result is not None:
                        on_result(index, outcome)
                done += len(pairs)
                if progress is not None:
                    progress(done, total)
    return results


def run_configs(
    configs: Sequence[ExperimentConfig],
    workers: int = 0,
    *,
    chunksize: Optional[int] = None,
    max_tasks_per_child: Optional[int] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    return_failures: bool = False,
    store: StoreArg = None,
) -> list:
    """Run many experiments, optionally in parallel processes.

    Results come back in config order regardless of worker scheduling.
    Every config runs to completion even when some fail: failures become
    :class:`RunFailure` placeholders at their positions.  By default a
    single :class:`SweepError` summarizing all failures is raised *after*
    the sweep finishes; with ``return_failures=True`` the mixed list is
    returned instead.

    ``store`` (a :class:`~repro.experiments.store.RunStore` or a
    directory path) makes the sweep resumable: configs whose content hash
    is already stored are *not* re-run (their cached metrics fill their
    positions), and every fresh result is persisted as soon as it
    resolves, so an interrupted sweep re-run against the same store only
    executes the missing tail.  Hits count toward ``progress`` up front.

    ``progress(done, total)`` is invoked as runs complete (per run when
    serial, per chunk when parallel).  ``max_tasks_per_child`` recycles
    worker processes after that many chunks (Python 3.11+).
    """
    configs = list(configs)
    total = len(configs)
    store = open_store(store)
    results: list = [None] * total
    plan: list[tuple[int, ExperimentConfig]]
    if store is not None:
        plan = []
        for i, cfg in enumerate(configs):
            cached = store.get(cfg)
            if cached is not None:
                results[i] = cached
            else:
                plan.append((i, cfg))
        n_hits = total - len(plan)
        if progress is not None and n_hits:
            progress(n_hits, total)
    else:
        plan = list(enumerate(configs))
        n_hits = 0

    def on_result(index: int, outcome: object) -> None:
        if store is None:
            return
        if isinstance(outcome, RunMetrics):
            store.put(configs[index], outcome)
        else:
            store.note_skipped()

    sub_progress = None
    if progress is not None:
        sub_progress = lambda done, _sub_total: progress(n_hits + done, total)  # noqa: E731

    if workers and workers > 1 and len(plan) > 1:
        outcomes = _run_parallel(
            plan, workers, chunksize, max_tasks_per_child, sub_progress, on_result
        )
        for index, outcome in outcomes.items():
            results[index] = outcome
    else:
        for done, (index, cfg) in enumerate(plan, start=1):
            outcome = _safe_run(index, cfg)
            results[index] = outcome
            on_result(index, outcome)
            if sub_progress is not None:
                sub_progress(done, len(plan))
    failures = [r for r in results if isinstance(r, RunFailure)]
    if failures and not return_failures:
        raise SweepError(failures, results)
    return results


def paired_plan(
    profile: Profile,
    xs: Iterable,
    make_config: Callable[[str, object, int], ExperimentConfig],
    trials: int | None = None,
    schemes: Sequence[str] = COMPARISON_SCHEMES,
) -> list[tuple[str, object, ExperimentConfig]]:
    """Enumerate a paired sweep's ``(scheme, x, config)`` plan.

    This is the deterministic first half of :func:`paired_sweep` — the
    exact run list with paired per-(x, trial) seeds — split out so other
    executors (the :mod:`repro.service` daemon's job queue) can run the
    same configs and produce bit-identical figures.
    """
    trials = profile.trials if trials is None else trials
    if trials < 1:
        raise ValueError("need at least one trial")
    plan: list[tuple[str, object, ExperimentConfig]] = []
    for x in xs:
        for trial in range(trials):
            seed = cell_seed(0, x, trial)
            for scheme in schemes:
                plan.append((scheme, x, make_config(scheme, x, seed)))
    return plan


def summarize_paired(
    plan: Sequence[tuple[str, object, ExperimentConfig]],
    results: Sequence,
) -> list[CellSummary]:
    """Group a plan's run outcomes into sorted per-cell summaries.

    The second half of :func:`paired_sweep`: ``results`` is the
    order-preserving outcome list for ``plan`` (:class:`RunFailure`
    placeholders are dropped; cells with no survivors disappear).
    """
    grouped: dict[tuple[str, object], list[RunMetrics]] = {}
    for (scheme, x, _cfg), run in zip(plan, results):
        if isinstance(run, RunFailure):
            continue
        grouped.setdefault((scheme, x), []).append(run)
    return [
        CellSummary.from_runs(scheme, float(x), runs)  # type: ignore[arg-type]
        for (scheme, x), runs in sorted(grouped.items(), key=lambda kv: (kv[0][1], kv[0][0]))
    ]


def paired_sweep(
    profile: Profile,
    xs: Iterable,
    make_config: Callable[[str, object, int], ExperimentConfig],
    trials: int | None = None,
    workers: int = 0,
    schemes: Sequence[str] = COMPARISON_SCHEMES,
    progress: Optional[Callable[[int, int], None]] = None,
    on_error: str = "raise",
    store: StoreArg = None,
) -> list[CellSummary]:
    """Run both schemes over all sweep values with paired seeds.

    ``make_config(scheme, x, seed)`` builds the run config for one cell
    member; the sweep enumerates every (scheme, x, trial) combination
    (see :func:`paired_plan`).

    ``on_error`` controls what happens when individual runs fail:
    ``"raise"`` finishes the sweep and raises a :class:`SweepError`
    summary carrying every completed result and failure placeholder;
    ``"skip"`` summarizes the surviving runs of each cell (cells with no
    survivors are dropped).

    ``store`` makes the sweep resumable (see :func:`run_configs`): after
    a partial failure, re-running the same sweep against the same store
    executes only the runs that did not complete.
    """
    if on_error not in ("raise", "skip"):
        raise ValueError(f"on_error must be 'raise' or 'skip', got {on_error!r}")
    plan = paired_plan(profile, xs, make_config, trials=trials, schemes=schemes)
    results = run_configs(
        [cfg for _s, _x, cfg in plan],
        workers=workers,
        progress=progress,
        return_failures=(on_error == "skip"),
        store=store,
    )
    return summarize_paired(plan, results)
