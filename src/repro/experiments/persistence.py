"""Result persistence: save and reload figure results as JSON/CSV,
plus run/figure provenance manifests.

Two complementary mechanisms persist sweep work:

* **Figure checkpoints** (this module): a finished
  :class:`~repro.experiments.figures.FigureResult` round-trips through
  JSON for later reporting or cross-profile comparison (EXPERIMENTS.md's
  tables are generated this way); CSV is a convenience export with one
  row per (scheme, sweep value).
* **The run store** (:mod:`repro.experiments.store`, re-exported here):
  per-run, content-addressed persistence that makes long sweeps
  crash-safe and incremental — each completed
  :class:`~repro.experiments.metrics.RunMetrics` is written atomically
  under its config's content hash, and ``run_configs(..., store=...)``
  skips runs already stored.

Provenance: every saved artifact can carry a ``manifest.json`` tying it
to the exact config/seed/version/host that produced it — the builders
and (re)loaders live in :mod:`repro.obs.manifest` and are re-exported
here so persistence stays the one-stop module for disk formats.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Union

from ..obs.manifest import (
    build_figure_manifest,
    build_run_manifest,
    load_manifest,
    save_manifest,
)
from .figures import FigureResult
from .store import RunStore, StoreStats, open_store, run_key
from .sweeps import CellSummary

__all__ = [
    "figure_payload",
    "figure_from_payload",
    "save_figure_json",
    "load_figure_json",
    "export_figure_csv",
    "save_manifest",
    "load_manifest",
    "build_run_manifest",
    "build_figure_manifest",
    "manifest_path_for",
    "RunStore",
    "StoreStats",
    "open_store",
    "run_key",
]


def manifest_path_for(result_path: Union[str, Path]) -> Path:
    """Conventional manifest location next to a saved result file."""
    p = Path(result_path)
    return p.with_name(p.stem + ".manifest.json")

_FORMAT_VERSION = 1


def figure_payload(result: FigureResult) -> dict:
    """The JSON-friendly dict of one figure result (lossless).

    Shared by :func:`save_figure_json` and the :mod:`repro.service`
    results API, so a figure fetched over HTTP is byte-identical to one
    saved locally.
    """
    return {
        "format_version": _FORMAT_VERSION,
        "figure_id": result.figure_id,
        "title": result.title,
        "x_label": result.x_label,
        "cells": [
            {
                "scheme": c.scheme,
                "x": c.x,
                "energy": c.energy,
                "energy_stdev": c.energy_stdev,
                "delay": c.delay,
                "ratio": c.ratio,
                "n_runs": c.n_runs,
                "distinct_delivered": c.distinct_delivered,
            }
            for c in result.cells
        ],
    }


def save_figure_json(result: FigureResult, path: Union[str, Path]) -> Path:
    """Serialize a figure result (lossless round trip)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(figure_payload(result), indent=2, sort_keys=True))
    return path


def load_figure_json(path: Union[str, Path]) -> FigureResult:
    """Reload a figure result saved by :func:`save_figure_json`."""
    return figure_from_payload(json.loads(Path(path).read_text()))


def figure_from_payload(payload: dict) -> FigureResult:
    """Rebuild a :class:`FigureResult` from its :func:`figure_payload` dict."""
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported figure file version: {version!r}")
    cells = tuple(
        CellSummary(
            scheme=c["scheme"],
            x=float(c["x"]),
            energy=float(c["energy"]),
            energy_stdev=float(c["energy_stdev"]),
            delay=float(c["delay"]),
            ratio=float(c["ratio"]),
            n_runs=int(c["n_runs"]),
            distinct_delivered=float(c["distinct_delivered"]),
        )
        for c in payload["cells"]
    )
    return FigureResult(
        figure_id=payload["figure_id"],
        title=payload["title"],
        x_label=payload["x_label"],
        cells=cells,
    )


def export_figure_csv(result: FigureResult, path: Union[str, Path]) -> Path:
    """Write one CSV row per cell (for spreadsheets / plotting tools)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            [
                "figure_id",
                result.x_label,
                "scheme",
                "energy",
                "energy_stdev",
                "delay",
                "ratio",
                "n_runs",
                "distinct_delivered",
            ]
        )
        for c in sorted(result.cells, key=lambda c: (c.x, c.scheme)):
            writer.writerow(
                [
                    result.figure_id,
                    c.x,
                    c.scheme,
                    c.energy,
                    c.energy_stdev,
                    c.delay,
                    c.ratio,
                    c.n_runs,
                    c.distinct_delivered,
                ]
            )
    return path
