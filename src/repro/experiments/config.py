"""Experiment configuration: workloads, profiles, schemes.

One :class:`ExperimentConfig` fully determines one packet-level run
(scheme, field, workload, seed).  :class:`Profile` bundles the knobs that
trade fidelity for wall-clock time:

* ``paper()`` — the §5.1 constants verbatim (exploratory every 50 s, ten
  fields per density, long runs).  Hours of CPU; use for final numbers.
* ``fast()`` — the CI/benchmark profile: identical protocol constants
  except a proportionally shortened exploratory interval and run length,
  and fewer fields per point.  The qualitative shapes (who wins, where
  the crossover density falls) are stable across profiles; EXPERIMENTS.md
  records which profile produced each table.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..diffusion.agent import DiffusionParams
from ..net.channel import ChannelSpec

__all__ = [
    "FailureModel",
    "Profile",
    "ExperimentConfig",
    "config_from_dict",
    "paper",
    "fast",
    "smoke",
    "PROFILES",
    "SCHEMES",
    "DENSITY_SWEEP",
    "SOURCE_SWEEP",
    "SINK_SWEEP",
]

#: the paper's seven sensor-field sizes (50..350 nodes on 200 m x 200 m)
DENSITY_SWEEP = (50, 100, 150, 200, 250, 300, 350)
#: fig 9/10's source-count sweep on the 350-node field
SOURCE_SWEEP = (2, 5, 8, 10, 14)
#: fig 8's sink-count sweep on the 350-node field
SINK_SWEEP = (1, 2, 3, 4, 5)
#: the two instantiations under comparison, the truncation-rule ablation
#: variant, and the two idealized framing schemes (flooding upper bound,
#: omniscient zero-overhead tree lower bound)
SCHEMES = ("opportunistic", "greedy", "greedy-events", "flooding", "omniscient")


@dataclass(frozen=True)
class FailureModel:
    """§5.3 dynamics: every ``epoch`` seconds a fresh random ``fraction``
    of nodes is turned off for that epoch (no settling time).  Sinks are
    exempt — a dead sink measures nothing about the dissemination scheme.

    ``fraction`` is inclusive at the top: 1.0 means *every non-exempt
    node* is down each epoch (sinks stay up, so the run still measures
    something — the all-relays-dead worst case)."""

    fraction: float = 0.2
    epoch: float = 30.0

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError("failure fraction must be in (0, 1]")
        if self.epoch <= 0:
            raise ValueError("failure epoch must be positive")


@dataclass(frozen=True)
class Profile:
    """Fidelity/runtime bundle."""

    name: str
    trials: int
    duration: float
    warmup: float
    diffusion: DiffusionParams
    failure_epoch: float

    def __post_init__(self) -> None:
        if self.warmup >= self.duration:
            raise ValueError("warmup must end before the run does")


def paper() -> Profile:
    """Full §5.1 parameters (expensive)."""
    return Profile(
        name="paper",
        trials=10,
        duration=260.0,
        warmup=60.0,
        diffusion=DiffusionParams(),
        failure_epoch=30.0,
    )


def fast() -> Profile:
    """Scaled profile for CI and benchmarks.

    The exploratory interval shrinks 50 s -> 20 s and the run 260 s ->
    70 s, keeping >= 3 exploratory rounds (the greedy tree converges on
    round 2, §4.1), a measurement window of >= 2 rounds, and a
    flood-vs-data energy share close to the paper's (a much shorter
    exploratory interval inflates flood overhead, which is identical for
    both schemes and would dilute the measured savings).
    """
    return Profile(
        name="fast",
        trials=3,
        duration=70.0,
        warmup=24.0,
        diffusion=DiffusionParams(exploratory_interval=20.0),
        failure_epoch=12.0,
    )


def smoke() -> Profile:
    """Minimal profile for unit tests: one trial, one short run."""
    return Profile(
        name="smoke",
        trials=1,
        duration=30.0,
        warmup=12.0,
        diffusion=DiffusionParams(exploratory_interval=10.0),
        failure_epoch=6.0,
    )


PROFILES = {"paper": paper, "fast": fast, "smoke": smoke}


@dataclass(frozen=True)
class ExperimentConfig:
    """One packet-level simulation run."""

    scheme: str
    n_nodes: int
    seed: int
    duration: float
    warmup: float
    diffusion: DiffusionParams = field(default_factory=DiffusionParams)
    n_sources: int = 5
    n_sinks: int = 1
    source_placement: str = "corner"  # corner | random | event-radius
    aggregation: str = "perfect"
    field_size: float = 200.0
    range_m: float = 40.0
    failures: Optional[FailureModel] = None
    include_idle: bool = False
    #: PHY channel block (disc by default; see :mod:`repro.net.channel`).
    #: Part of the run's content identity: any change is a store miss.
    channel: ChannelSpec = field(default_factory=ChannelSpec)

    def __post_init__(self) -> None:
        if self.scheme not in SCHEMES:
            raise ValueError(f"scheme must be one of {SCHEMES}, got {self.scheme!r}")
        if not isinstance(self.channel, ChannelSpec):
            raise ValueError("channel must be a ChannelSpec")
        if self.source_placement not in ("corner", "random", "event-radius"):
            raise ValueError(f"unknown source placement {self.source_placement!r}")
        if self.n_sources < 1 or self.n_sinks < 1:
            raise ValueError("need at least one source and one sink")
        if self.warmup >= self.duration:
            raise ValueError("warmup must end before the run does")

    @staticmethod
    def from_dict(data: dict) -> "ExperimentConfig":
        """See :func:`config_from_dict`."""
        return config_from_dict(data)

    @staticmethod
    def from_profile(
        profile: Profile, scheme: str, n_nodes: int, seed: int, **overrides
    ) -> "ExperimentConfig":
        cfg = ExperimentConfig(
            scheme=scheme,
            n_nodes=n_nodes,
            seed=seed,
            duration=profile.duration,
            warmup=profile.warmup,
            diffusion=profile.diffusion,
        )
        return replace(cfg, **overrides) if overrides else cfg


def config_from_dict(data: dict) -> ExperimentConfig:
    """Rebuild an :class:`ExperimentConfig` from its ``asdict()`` image.

    This is the inverse of ``dataclasses.asdict`` for the config shapes
    the artifacts persist (run manifests, store-entry identity blocks):
    the nested ``diffusion`` and ``failures`` dicts are reconstructed as
    their dataclasses, so a run can be re-executed from its provenance
    alone (``repro timeline <store-entry>`` does exactly that).
    Unknown keys fail loudly rather than silently reproducing a
    different experiment.
    """
    payload = dict(data)
    diffusion = payload.get("diffusion")
    if isinstance(diffusion, dict):
        payload["diffusion"] = DiffusionParams(**diffusion)
    failures = payload.get("failures")
    if isinstance(failures, dict):
        payload["failures"] = FailureModel(**failures)
    channel = payload.get("channel")
    if isinstance(channel, dict):
        payload["channel"] = ChannelSpec(**channel)
    return ExperimentConfig(**payload)
