"""ASCII reporting: render figure results as the paper's panels.

The original figures are line plots; headless reproduction prints the
underlying series as aligned tables — one block per panel (a/b/c) — plus
the greedy-over-opportunistic savings column the paper quotes in prose
("up to 45% energy savings ... at higher densities").
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .figures import FigureResult

__all__ = [
    "format_table",
    "format_figure",
    "format_channel_figure",
    "format_tree_table",
]


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence], floatfmt: str = ".4g"
) -> str:
    """Render rows as a fixed-width ASCII table."""
    rendered = [
        [f"{v:{floatfmt}}" if isinstance(v, float) else str(v) for v in row]
        for row in rows
    ]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered)) if rendered else len(headers[i])
        for i in range(len(headers))
    ]
    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    sep = "  ".join("-" * w for w in widths)
    return "\n".join([line(list(headers)), sep, *(line(r) for r in rendered)])


def format_figure(result: FigureResult) -> str:
    """Render one figure's three panels plus the savings column."""
    headers = [
        result.x_label,
        "opp energy",
        "greedy energy",
        "savings%",
        "opp delay",
        "greedy delay",
        "opp ratio",
        "greedy ratio",
    ]
    rows = []
    for x in result.xs():
        opp = result.cell("opportunistic", x)
        greedy = result.cell("greedy", x)
        rows.append(
            [
                int(x),
                opp.energy,
                greedy.energy,
                100.0 * result.energy_savings(x),
                opp.delay,
                greedy.delay,
                opp.ratio,
                greedy.ratio,
            ]
        )
    title = f"{result.figure_id}: {result.title}"
    body = format_table(headers, rows)
    peak = 100.0 * result.max_energy_savings()
    return f"{title}\n{body}\npeak greedy energy savings: {peak:.1f}%"


def format_channel_figure(result: FigureResult) -> str:
    """Render the channel-density study: per-channel savings plus deltas.

    Cells are labeled ``<scheme>@<channel>`` (see
    :func:`~repro.experiments.figures.figure_channel_density`); each row
    shows both schemes' energy and delivery ratio on both channels, the
    greedy-over-opportunistic savings per channel, and the pathloss-vs-
    disc delivery-ratio delta for greedy (the headline robustness
    question: does the density advantage survive a realistic channel?).
    """
    headers = [
        result.x_label,
        "opp/disc E",
        "grd/disc E",
        "disc sav%",
        "opp/pl E",
        "grd/pl E",
        "pl sav%",
        "grd/disc ratio",
        "grd/pl ratio",
        "dratio",
    ]
    rows = []
    for x in result.xs():
        od = result.cell("opportunistic@disc", x)
        gd = result.cell("greedy@disc", x)
        op = result.cell("opportunistic@pathloss", x)
        gp = result.cell("greedy@pathloss", x)
        disc_sav = 0.0 if od.energy == 0 else 100.0 * (1.0 - gd.energy / od.energy)
        pl_sav = 0.0 if op.energy == 0 else 100.0 * (1.0 - gp.energy / op.energy)
        rows.append(
            [
                int(x),
                od.energy,
                gd.energy,
                disc_sav,
                op.energy,
                gp.energy,
                pl_sav,
                gd.ratio,
                gp.ratio,
                gp.ratio - gd.ratio,
            ]
        )
    title = f"{result.figure_id}: {result.title}"
    body = format_table(headers, rows)
    return f"{title}\n{body}"


def format_tree_table(rows: list[dict]) -> str:
    """Render the GIT-vs-SPT abstract comparison (related work)."""
    headers = ["placement", "nodes", "sources", "SPT cost", "GIT cost", "Steiner", "savings%"]
    table_rows = [
        [
            r["placement"],
            r["n_nodes"],
            r["n_sources"],
            r["mean_spt_cost"],
            r["mean_git_cost"],
            r["mean_steiner_cost"],
            100.0 * r["mean_savings"],
        ]
        for r in rows
    ]
    return format_table(headers, table_rows)
