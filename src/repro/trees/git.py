"""Greedy incremental tree (GIT) — Takahashi & Matsuyama's Steiner heuristic.

The centralized ideal the paper's distributed protocol approximates
(§1: "a shortest path is established for only the first source to the
sink whereas each of the other sources is incrementally connected at the
closest point on the existing tree").

Two connection orders are supported:

* ``order="given"`` — sources join in the order supplied (what the
  distributed protocol does: whoever's exploratory round is decided first
  joins first);
* ``order="nearest"`` — the classical Takahashi-Matsuyama rule: always
  connect the terminal currently closest to the tree (a 2-approximation
  of the Steiner minimum tree).
"""

from __future__ import annotations

import heapq
from typing import Optional, Sequence

import networkx as nx

__all__ = ["greedy_incremental_tree"]


def _closest_attachment(
    graph: nx.Graph, tree_nodes: set[int], target: int, weight: Optional[str]
) -> tuple[float, list[int]]:
    """Cheapest path from ``target`` to any node of the tree.

    One Dijkstra (or BFS) from the target, stopped at the first settled
    tree node — the multi-target trick keeps GIT near O(S · E log V).
    """
    if target in tree_nodes:
        return 0.0, [target]
    dist = {target: 0.0}
    prev: dict[int, int] = {}
    heap: list[tuple[float, int]] = [(0.0, target)]
    visited: set[int] = set()
    while heap:
        d, u = heapq.heappop(heap)
        if u in visited:
            continue
        visited.add(u)
        if u in tree_nodes:
            path = [u]
            while path[-1] != target:
                path.append(prev[path[-1]])
            return d, path[::-1]  # target ... tree node
        for v, edge in graph[u].items():
            w = 1.0 if weight is None else float(edge.get(weight, 1.0))
            nd = d + w
            if nd < dist.get(v, float("inf")):
                dist[v] = nd
                prev[v] = u
                heapq.heappush(heap, (nd, v))
    raise nx.NetworkXNoPath(f"node {target} cannot reach the tree")


def greedy_incremental_tree(
    graph: nx.Graph,
    sink: int,
    sources: Sequence[int],
    order: str = "given",
    weight: Optional[str] = None,
) -> nx.Graph:
    """Build the GIT spanning ``sources`` and ``sink``."""
    if order not in ("given", "nearest"):
        raise ValueError("order must be 'given' or 'nearest'")
    tree = nx.Graph()
    tree.add_node(sink)
    tree_nodes = {sink}
    remaining = list(sources)

    while remaining:
        if order == "given":
            target = remaining.pop(0)
            _cost, path = _closest_attachment(graph, tree_nodes, target, weight)
        else:
            best = None
            for candidate in remaining:
                cost, path = _closest_attachment(graph, tree_nodes, candidate, weight)
                if best is None or cost < best[0]:
                    best = (cost, path, candidate)
            assert best is not None
            _cost, path, target = best
            remaining.remove(target)
        nx.add_path(tree, path)
        tree_nodes.update(path)
    return tree
