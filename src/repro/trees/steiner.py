"""Steiner-tree 2-approximation (Kou-Markowsky-Berman).

Finding the optimal aggregation tree is "equivalent to finding the Steiner
tree that is known to be NP-hard" (§1).  The KMB metric-closure
approximation gives a principled lower-ish reference point between GIT and
the (intractable) optimum, used by the tree benchmarks and as a sanity
bound in property tests (KMB cost <= 2·OPT, and OPT <= GIT cost).
"""

from __future__ import annotations

from typing import Optional, Sequence

import networkx as nx

__all__ = ["steiner_tree_kmb"]


def steiner_tree_kmb(
    graph: nx.Graph, terminals: Sequence[int], weight: Optional[str] = None
) -> nx.Graph:
    """Kou-Markowsky-Berman 2-approximate Steiner tree over ``terminals``.

    1. Build the metric closure restricted to terminals.
    2. Take its minimum spanning tree.
    3. Expand closure edges back into shortest paths.
    4. Take the MST of the expansion and prune non-terminal leaves.
    """
    terminals = list(dict.fromkeys(terminals))
    if not terminals:
        raise ValueError("need at least one terminal")
    if len(terminals) == 1:
        t = nx.Graph()
        t.add_node(terminals[0])
        return t

    # 1. metric closure over terminals (one SSSP per terminal).
    closure = nx.Graph()
    paths: dict[tuple[int, int], list[int]] = {}
    for t in terminals:
        if weight is None:
            dist = nx.single_source_shortest_path_length(graph, t)
            path = nx.single_source_shortest_path(graph, t)
        else:
            dist, path = nx.single_source_dijkstra(graph, t, weight=weight)
        for u in terminals:
            if u == t:
                continue
            if u not in dist:
                raise nx.NetworkXNoPath(f"terminals {t} and {u} are disconnected")
            closure.add_edge(t, u, weight=float(dist[u]))
            paths[(t, u)] = path[u]

    # 2. MST of the closure.
    closure_mst = nx.minimum_spanning_tree(closure, weight="weight")

    # 3. expand into the original graph.
    expanded = nx.Graph()
    for u, v in closure_mst.edges():
        p = paths.get((u, v)) or paths[(v, u)]
        nx.add_path(expanded, p)
    for u, v in expanded.edges():
        w = 1.0 if weight is None else float(graph[u][v].get(weight, 1.0))
        expanded[u][v]["weight"] = w

    # 4. MST of the expansion, then prune non-terminal leaves.
    tree = nx.minimum_spanning_tree(expanded, weight="weight")
    terminal_set = set(terminals)
    pruned = True
    while pruned:
        pruned = False
        for node in [n for n in tree.nodes if tree.degree(n) == 1 and n not in terminal_set]:
            tree.remove_node(node)
            pruned = True
    return tree

