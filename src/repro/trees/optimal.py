"""Exact Steiner minimum tree (Dreyfus-Wagner dynamic program).

The paper grounds its design in hardness: "finding the optimal
aggregation tree is computationally infeasible because it is equivalent
to finding the Steiner tree that is known to be NP-hard" (§1).  For small
instances the optimum *is* computable — the classical Dreyfus-Wagner
recurrence runs in O(3^k · n + 2^k · n^2 + SSSP) for k terminals — and
having it lets the test suite verify the guarantees the heuristics claim:

* KMB cost <= 2 · OPT (the 2-approximation bound);
* GIT cost <= 2 · OPT (Takahashi-Matsuyama's bound);
* OPT <= GIT <= SPT (the orderings the evaluation relies on).

The bench `test_git_vs_spt.py` and `tests/property/test_trees_props.py`
use this as ground truth; it refuses instances with too many terminals.
"""

from __future__ import annotations

from itertools import combinations
from typing import Optional, Sequence

import networkx as nx

__all__ = ["steiner_tree_exact", "steiner_cost_exact"]

_MAX_TERMINALS = 10


def _all_pairs_paths(graph: nx.Graph, weight: Optional[str]):
    """Shortest-path lengths and paths between all node pairs."""
    if weight is None:
        dist = dict(nx.all_pairs_shortest_path_length(graph))
        path = dict(nx.all_pairs_shortest_path(graph))
    else:
        dist = dict(nx.all_pairs_dijkstra_path_length(graph, weight=weight))
        path = dict(nx.all_pairs_dijkstra_path(graph, weight=weight))
    return dist, path


def steiner_cost_exact(
    graph: nx.Graph, terminals: Sequence[int], weight: Optional[str] = None
) -> float:
    """Cost of the Steiner minimum tree over ``terminals``."""
    tree = steiner_tree_exact(graph, terminals, weight=weight)
    if weight is None:
        return float(tree.number_of_edges())
    return float(sum(d.get(weight, 1.0) for _u, _v, d in tree.edges(data=True)))


def steiner_tree_exact(
    graph: nx.Graph, terminals: Sequence[int], weight: Optional[str] = None
) -> nx.Graph:
    """Dreyfus-Wagner exact Steiner tree (small terminal sets only)."""
    terminals = list(dict.fromkeys(terminals))
    if not terminals:
        raise ValueError("need at least one terminal")
    if len(terminals) > _MAX_TERMINALS:
        raise ValueError(
            f"exact Steiner limited to {_MAX_TERMINALS} terminals, got {len(terminals)}"
        )
    if len(terminals) == 1:
        t = nx.Graph()
        t.add_node(terminals[0])
        return t

    dist, path = _all_pairs_paths(graph, weight)
    for t in terminals:
        for u in terminals:
            if u not in dist.get(t, {}):
                raise nx.NetworkXNoPath(f"terminals {t} and {u} are disconnected")

    nodes = list(graph.nodes)
    root = terminals[-1]
    others = terminals[:-1]
    k = len(others)
    full_mask = (1 << k) - 1

    # dp[(mask, v)] = cost of the optimal tree spanning {others[i] : i in
    # mask} plus node v; back[(mask, v)] reconstructs it.
    dp: dict[tuple[int, int], float] = {}
    back: dict[tuple[int, int], tuple] = {}

    for i, t in enumerate(others):
        for v in nodes:
            m = 1 << i
            dp[(m, v)] = dist[t].get(v, float("inf"))
            back[(m, v)] = ("path", t, v)

    for size in range(2, k + 1):
        for combo in combinations(range(k), size):
            mask = 0
            for i in combo:
                mask |= 1 << i
            # Phase 1: merge two sub-trees at v.
            merged: dict[int, float] = {}
            merged_back: dict[int, tuple] = {}
            sub = (mask - 1) & mask
            while sub > 0:
                rest = mask ^ sub
                if sub < rest:  # consider each split once
                    for v in nodes:
                        c = dp[(sub, v)] + dp[(rest, v)]
                        if c < merged.get(v, float("inf")):
                            merged[v] = c
                            merged_back[v] = ("merge", sub, rest, v)
                sub = (sub - 1) & mask
            # Phase 2: connect the merge point to v over a shortest path.
            for v in nodes:
                best = float("inf")
                best_back = None
                for u, cu in merged.items():
                    c = cu + dist[u].get(v, float("inf"))
                    if c < best:
                        best = c
                        best_back = ("steiner", u, v, merged_back[u])
                dp[(mask, v)] = best
                back[(mask, v)] = best_back  # type: ignore[assignment]

    # Reconstruct edges.
    tree = nx.Graph()
    tree.add_node(root)

    def add_path(a: int, b: int) -> None:
        nx.add_path(tree, path[a][b])

    def expand(mask: int, v: int) -> None:
        entry = back[(mask, v)]
        if entry[0] == "path":
            _tag, t, vv = entry
            add_path(t, vv)
            return
        assert entry[0] == "steiner"
        _tag, u, vv, merge_entry = entry
        add_path(u, vv)
        _mtag, sub, rest, mv = merge_entry
        expand(sub, mv)
        expand(rest, mv)

    expand(full_mask, root)
    if weight is not None:
        for u, v in tree.edges():
            tree[u][v][weight] = graph[u][v].get(weight, 1.0)
    # Prune non-terminal leaves left by overlapping path expansions.
    terminal_set = set(terminals)
    pruned = True
    while pruned:
        pruned = False
        for node in [n for n in tree.nodes if tree.degree(n) == 1 and n not in terminal_set]:
            tree.remove_node(node)
            pruned = True
    return tree
