"""Shortest-path tree (SPT) over a connectivity graph.

The abstract baseline from Krishnamachari et al.'s data-centric routing
model: every source routes to the sink along a shortest path, and the
"tree" is the union of those paths.  With perfect aggregation the cost of
a dissemination round equals the number of distinct edges used.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import networkx as nx

__all__ = ["shortest_path_tree", "tree_cost", "validate_tree"]


def shortest_path_tree(
    graph: nx.Graph, sink: int, sources: Sequence[int], weight: Optional[str] = None
) -> nx.Graph:
    """Union of one shortest path per source toward ``sink``.

    Paths are taken from a single shortest-path run rooted at the sink, so
    they share consistent predecessors and their union is a proper tree.
    Raises ``KeyError`` when a source is disconnected from the sink.
    """
    if weight is None:
        paths = nx.single_source_shortest_path(graph, sink)
    else:
        paths = nx.single_source_dijkstra_path(graph, sink, weight=weight)
    tree = nx.Graph()
    tree.add_node(sink)
    for source in sources:
        nx.add_path(tree, paths[source])
    return tree


def tree_cost(tree: nx.Graph, weight: Optional[str] = None) -> float:
    """Cost of one perfect-aggregation round: total edge weight (hops)."""
    if weight is None:
        return float(tree.number_of_edges())
    return float(sum(d.get(weight, 1.0) for _u, _v, d in tree.edges(data=True)))


def validate_tree(tree: nx.Graph, sink: int, sources: Iterable[int]) -> None:
    """Assert structural invariants: connected, acyclic, spans terminals."""
    terminals = set(sources) | {sink}
    missing = terminals - set(tree.nodes)
    if missing:
        raise ValueError(f"tree misses terminals {sorted(missing)}")
    if tree.number_of_nodes() and not nx.is_connected(tree):
        raise ValueError("tree is not connected")
    if tree.number_of_edges() != tree.number_of_nodes() - 1:
        raise ValueError("subgraph contains a cycle (not a tree)")
