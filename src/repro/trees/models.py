"""Abstract data-centric routing models (Krishnamachari et al.).

§1 and §5.4 position the paper against an abstract-simulation result:
"the transmission savings by the GIT over the SPT do not exceed 20%"
under the **event-radius** and **random-sources** models — while the
paper's own corner placement at high density yields much larger savings.
This module reproduces that comparison analytically on connectivity
graphs (no packet simulation): one dissemination round with perfect
aggregation costs exactly the tree's edge count.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from statistics import mean
from typing import Callable, Sequence

from ..net.topology import (
    SensorField,
    corner_sink_node,
    corner_source_nodes,
    event_radius_sources,
    generate_field,
    random_source_nodes,
)
from .git import greedy_incremental_tree
from .spt import shortest_path_tree, tree_cost
from .steiner import steiner_tree_kmb

__all__ = ["TreeComparison", "compare_trees", "savings_study", "PLACEMENTS"]


@dataclass(frozen=True)
class TreeComparison:
    """Costs of one (field, placement) instance under each tree builder."""

    spt_cost: float
    git_cost: float
    steiner_cost: float
    n_nodes: int
    n_sources: int

    @property
    def git_savings(self) -> float:
        """Fractional transmission savings of GIT over SPT (>= 0 typical)."""
        if self.spt_cost == 0:
            return 0.0
        return 1.0 - self.git_cost / self.spt_cost


def compare_trees(
    field: SensorField, sink: int, sources: Sequence[int]
) -> TreeComparison:
    """SPT vs GIT (nearest-first) vs KMB Steiner on one instance."""
    graph = field.connectivity_graph()
    spt = shortest_path_tree(graph, sink, sources)
    git = greedy_incremental_tree(graph, sink, sources, order="nearest")
    steiner = steiner_tree_kmb(graph, [sink, *sources])
    return TreeComparison(
        spt_cost=tree_cost(spt),
        git_cost=tree_cost(git),
        steiner_cost=tree_cost(steiner),
        n_nodes=field.n,
        n_sources=len(sources),
    )


def _place_event_radius(
    field: SensorField, n_sources: int, rng: random.Random
) -> tuple[int, list[int]]:
    sink = corner_sink_node(field, rng)
    sources = event_radius_sources(field, n_sources, radius=40.0, rng=rng, exclude={sink})
    return sink, sources


def _place_random(
    field: SensorField, n_sources: int, rng: random.Random
) -> tuple[int, list[int]]:
    sink = corner_sink_node(field, rng)
    sources = random_source_nodes(field, n_sources, rng, exclude={sink})
    return sink, sources


def _place_corner(
    field: SensorField, n_sources: int, rng: random.Random
) -> tuple[int, list[int]]:
    sink = corner_sink_node(field, rng)
    sources = corner_source_nodes(field, n_sources, rng, exclude={sink})
    return sink, sources


#: named placement models: event-radius / random-sources (Krishnamachari)
#: and the paper's own corner scheme.
PLACEMENTS: dict[str, Callable[[SensorField, int, random.Random], tuple[int, list[int]]]] = {
    "event-radius": _place_event_radius,
    "random-sources": _place_random,
    "corner": _place_corner,
}


def savings_study(
    placement: str,
    n_nodes: int,
    n_sources: int,
    trials: int,
    seed: int,
    field_size: float = 200.0,
    range_m: float = 40.0,
) -> dict[str, float]:
    """Mean GIT-over-SPT savings for one (placement, density) cell."""
    if placement not in PLACEMENTS:
        raise ValueError(f"unknown placement {placement!r}; known: {sorted(PLACEMENTS)}")
    place = PLACEMENTS[placement]
    rng = random.Random(seed)
    results = []
    for _ in range(trials):
        field = generate_field(n_nodes, rng, field_size=field_size, range_m=range_m)
        sink, sources = place(field, n_sources, rng)
        results.append(compare_trees(field, sink, sources))
    return {
        "placement": placement,  # type: ignore[dict-item]
        "n_nodes": n_nodes,  # type: ignore[dict-item]
        "n_sources": n_sources,  # type: ignore[dict-item]
        "mean_spt_cost": mean(r.spt_cost for r in results),
        "mean_git_cost": mean(r.git_cost for r in results),
        "mean_steiner_cost": mean(r.steiner_cost for r in results),
        "mean_savings": mean(r.git_savings for r in results),
    }
