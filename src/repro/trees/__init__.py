"""Centralized aggregation-tree algorithms and abstract routing models.

The idealized references the paper positions itself against: the
shortest-path tree, the greedy incremental tree (Takahashi-Matsuyama),
the KMB Steiner 2-approximation, and the Krishnamachari-style abstract
comparison (event-radius / random-sources placement models).
"""

from .git import greedy_incremental_tree
from .models import PLACEMENTS, TreeComparison, compare_trees, savings_study
from .spt import shortest_path_tree, tree_cost, validate_tree
from .steiner import steiner_tree_kmb

__all__ = [
    "greedy_incremental_tree",
    "shortest_path_tree",
    "tree_cost",
    "validate_tree",
    "steiner_tree_kmb",
    "TreeComparison",
    "compare_trees",
    "savings_study",
    "PLACEMENTS",
]
