"""repro — greedy aggregation trees for directed diffusion in WSNs.

A from-scratch Python reproduction of *"Impact of Network Density on Data
Aggregation in Wireless Sensor Networks"* (Intanagonwiwat, Estrin,
Govindan, Heidemann — ICDCS 2002): the full packet-level simulation stack
(DES kernel, CSMA/CA MAC, disc radio with collisions and the Sensoria
energy profile), the directed-diffusion substrate, the opportunistic
baseline, the greedy-incremental-tree aggregation scheme, centralized
tree references (SPT/GIT/Steiner), and the complete §5 evaluation
harness.

Quick start::

    from repro import ExperimentConfig, run_experiment

    cfg = ExperimentConfig(scheme="greedy", n_nodes=150, seed=1,
                           duration=40.0, warmup=15.0)
    print(run_experiment(cfg))

See README.md for the architecture overview, DESIGN.md for the system
inventory, and EXPERIMENTS.md for paper-vs-measured results.
"""

from .aggregation import (
    AggregationBuffer,
    LinearAggregation,
    NoAggregation,
    PerfectAggregation,
    greedy_weighted_set_cover,
)
from .core import GreedyAgent, setcover_victims
from .diffusion import (
    DiffusionAgent,
    DiffusionParams,
    OpportunisticAgent,
    tracking_task,
)
from .experiments import (
    DENSITY_SWEEP,
    ExperimentConfig,
    FailureModel,
    FigureResult,
    Profile,
    RunMetrics,
    RunStore,
    fast,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    format_figure,
    git_vs_spt_table,
    paper,
    run_experiment,
    run_key,
    smoke,
)
from .net import EnergyParams, MacParams, Node, RadioParams, SensorField, generate_field
from .obs import (
    MetricsRegistry,
    ObsOptions,
    ProfileReport,
    Profiler,
    TraceWriter,
    format_profile,
    read_trace,
)
from .sim import RngRegistry, Simulator, Tracer
from .trees import greedy_incremental_tree, shortest_path_tree, steiner_tree_kmb, tree_cost

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # simulation kernel
    "Simulator",
    "Tracer",
    "RngRegistry",
    # observability
    "MetricsRegistry",
    "ObsOptions",
    "Profiler",
    "ProfileReport",
    "TraceWriter",
    "read_trace",
    "format_profile",
    # network substrate
    "Node",
    "SensorField",
    "generate_field",
    "EnergyParams",
    "MacParams",
    "RadioParams",
    # diffusion + schemes
    "DiffusionAgent",
    "DiffusionParams",
    "OpportunisticAgent",
    "GreedyAgent",
    "tracking_task",
    # aggregation
    "AggregationBuffer",
    "PerfectAggregation",
    "LinearAggregation",
    "NoAggregation",
    "greedy_weighted_set_cover",
    "setcover_victims",
    # trees
    "shortest_path_tree",
    "greedy_incremental_tree",
    "steiner_tree_kmb",
    "tree_cost",
    # experiments
    "ExperimentConfig",
    "FailureModel",
    "Profile",
    "paper",
    "fast",
    "smoke",
    "run_experiment",
    "RunMetrics",
    "RunStore",
    "run_key",
    "FigureResult",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "git_vs_spt_table",
    "format_figure",
    "DENSITY_SWEEP",
]
