"""Figure 5: greedy vs opportunistic aggregation across network density.

The headline comparison (§5.2): 5 corner sources, 1 corner sink, perfect
aggregation.  Panels: (a) average dissipated energy, (b) average delay,
(c) distinct-event delivery ratio.  Expected shape: the schemes are
roughly equivalent at the lowest density and greedy saves significantly
at higher densities, without hurting delay or delivery.
"""

from repro.experiments.figures import figure5
from repro.experiments.report import format_figure

from .conftest import run_figure_once


def test_fig5_density_sweep(benchmark, profile, trials, densities):
    result = run_figure_once(
        benchmark, figure5, profile, densities=densities, trials=trials
    )
    print()
    print(format_figure(result))

    xs = result.xs()
    low, high = min(xs), max(xs)

    # (a) dissipated energy grows with density for both schemes
    #     ("due to some diffusion overhead").
    for scheme in ("greedy", "opportunistic"):
        series = result.series(scheme)
        assert series[-1].energy > series[0].energy

    # (a) greedy never loses badly, and wins clearly at high density.
    assert result.energy_savings(low) > -0.15
    assert result.energy_savings(high) > 0.10
    assert result.max_energy_savings() > 0.10

    # (b) delays comparable: same order of magnitude everywhere.
    for x in xs:
        opp, greedy = result.cell("opportunistic", x), result.cell("greedy", x)
        assert greedy.delay < 3 * opp.delay + 0.1
        assert opp.delay < 3 * greedy.delay + 0.1

    # (c) uncongested static networks deliver nearly everything.
    for cell in result.cells:
        assert cell.ratio > 0.85
