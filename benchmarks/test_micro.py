"""Micro-benchmarks: substrate throughput and solver quality/cost.

These are conventional pytest-benchmark timings (many rounds) for the
hot components underneath the packet simulation, plus the set-cover
solver-quality ablation.
"""

import random

from repro.aggregation.setcover import (
    WeightedSubset,
    exact_weighted_set_cover,
    greedy_weighted_set_cover,
    randomized_set_cover,
)
from repro.aggregation.solvers import genetic_set_cover, lagrangian_set_cover
from repro.experiments.config import ExperimentConfig, smoke
from repro.experiments.runner import run_experiment
from repro.net.topology import generate_field
from repro.sim import Simulator
from repro.trees.git import greedy_incremental_tree
from repro.trees.spt import shortest_path_tree


def test_bench_des_engine_throughput(benchmark):
    """Schedule-and-drain throughput of the DES kernel (50k events)."""

    def run():
        sim = Simulator()
        rng = random.Random(1)
        sink = []
        for _ in range(50_000):
            sim.schedule(rng.random() * 100.0, sink.append, None)
        sim.run()
        return len(sink)

    assert benchmark(run) == 50_000


def test_bench_setcover_greedy(benchmark):
    """Greedy set cover on a realistic aggregation-point instance."""
    rng = random.Random(3)
    universe = list(range(14))
    family = [
        WeightedSubset(frozenset(rng.sample(universe, rng.randint(2, 8))), rng.uniform(1, 10))
        for _ in range(10)
    ]
    family.append(WeightedSubset(frozenset(universe), 30.0))

    cover = benchmark(greedy_weighted_set_cover, universe, family)
    assert cover.weight > 0


def test_bench_setcover_solver_quality(benchmark):
    """Ablation: greedy heuristic quality vs the exact optimum and the
    randomized method over a batch of instances."""
    rng = random.Random(7)
    instances = []
    for _ in range(30):
        n = rng.randint(3, 7)
        universe = list(range(n))
        fam = [
            WeightedSubset(
                frozenset(rng.sample(universe, rng.randint(1, n))), rng.uniform(0.5, 8)
            )
            for _ in range(rng.randint(2, 7))
        ]
        fam.append(WeightedSubset(frozenset(universe), 16.0))
        instances.append((universe, fam))

    def greedy_all():
        return [greedy_weighted_set_cover(u, f).weight for u, f in instances]

    greedy_w = benchmark(greedy_all)
    exact_w = [exact_weighted_set_cover(u, f).weight for u, f in instances]
    rand_w = [
        randomized_set_cover(u, f, random.Random(1), rounds=16).weight
        for u, f in instances
    ]
    lag_w = [lagrangian_set_cover(u, f).weight for u, f in instances]
    ga_w = [
        genetic_set_cover(u, f, random.Random(1), generations=12).weight
        for u, f in instances
    ]
    opt = sum(exact_w)
    print(
        f"\nsolver quality vs optimum: greedy x{sum(greedy_w)/opt:.3f}, "
        f"randomized x{sum(rand_w)/opt:.3f}, lagrangian x{sum(lag_w)/opt:.3f}, "
        f"genetic x{sum(ga_w)/opt:.3f}"
    )
    assert 1.0 <= sum(greedy_w) / opt < 1.4  # well under the ln d + 1 bound
    assert 1.0 <= sum(rand_w) / opt < 1.4
    assert 1.0 <= sum(lag_w) / opt < 1.2
    assert 1.0 <= sum(ga_w) / opt < 1.2


def test_bench_git_construction_350(benchmark):
    """Centralized GIT on the paper's densest field."""
    field = generate_field(350, random.Random(5))
    g = field.connectivity_graph()
    sink, sources = 0, [10, 20, 30, 40, 50]

    tree = benchmark(greedy_incremental_tree, g, sink, sources, "nearest")
    assert tree.number_of_edges() > 0


def test_bench_spt_construction_350(benchmark):
    field = generate_field(350, random.Random(5))
    g = field.connectivity_graph()

    tree = benchmark(shortest_path_tree, g, 0, [10, 20, 30, 40, 50])
    assert tree.number_of_edges() > 0


def test_bench_packet_sim_single_run(benchmark):
    """One short full-stack run (100 nodes, smoke profile): the unit of
    work every figure sweep repeats."""
    cfg = ExperimentConfig.from_profile(smoke(), "greedy", 100, seed=2)

    result = benchmark.pedantic(run_experiment, args=(cfg,), rounds=1, iterations=1)
    assert result.delivery_ratio > 0.8
