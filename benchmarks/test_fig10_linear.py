"""Figure 10: impact of the linear aggregation function (§5.4).

Fig 9's source sweep with z(S) = 28·d + 36 instead of perfect
aggregation.  Expected shape: energy per event rises versus perfect
aggregation (only header savings), and the penalty grows with the number
of sources/data items; greedy's savings shrink relative to fig 9.
"""

import os

from repro.experiments.figures import figure9, figure10
from repro.experiments.report import format_figure

from .conftest import run_figure_once

SOURCES = (2, 5, 10)


def test_fig10_linear_aggregation(benchmark, profile, trials, densities):
    n_nodes = int(os.environ.get("REPRO_FIG10_NODES", str(max(densities))))
    result = run_figure_once(
        benchmark,
        figure10,
        profile,
        source_counts=SOURCES,
        n_nodes=n_nodes,
        trials=trials,
    )
    print()
    print(format_figure(result))

    # Compare against paired fig-9 cells (same seeds, perfect aggregation).
    perfect = figure9(
        profile,
        source_counts=(min(SOURCES), max(SOURCES)),
        n_nodes=n_nodes,
        trials=trials,
    )
    lo, hi = min(SOURCES), max(SOURCES)

    # Linear aggregation costs more than perfect at the largest source
    # count ("this linear aggregation is lossless but not
    # energy-efficient").
    assert result.cell("greedy", hi).energy > perfect.cell("greedy", hi).energy

    # "The adverse impact of the inefficient aggregation function becomes
    # more evident with the increased number of sources": the
    # linear/perfect penalty ratio grows across the sweep.
    penalty_lo = result.cell("greedy", lo).energy / perfect.cell("greedy", lo).energy
    penalty_hi = result.cell("greedy", hi).energy / perfect.cell("greedy", hi).energy
    assert penalty_hi > penalty_lo

    for cell in result.cells:
        assert cell.ratio > 0.75
