"""Figure 7: impact of random source placement (§5.4).

Same density sweep with the 5 sources scattered anywhere instead of
clustered in the corner.  Expected shape: greedy's energy savings shrink
versus fig 5 ("the energy savings of the greedy aggregation are reduced")
because scattered sources offer little early path sharing.
"""

from repro.experiments.figures import figure5, figure7
from repro.experiments.report import format_figure

from .conftest import run_figure_once


def test_fig7_random_sources(benchmark, profile, trials, densities):
    result = run_figure_once(
        benchmark, figure7, profile, densities=densities, trials=trials
    )
    print()
    print(format_figure(result))

    high = int(max(result.xs()))

    # Savings with random placement stay below the corner scheme's at
    # high density (paired comparison with the same trial budget).
    corner = figure5(profile, densities=(high,), trials=trials)
    assert result.energy_savings(high) < corner.energy_savings(high) + 0.10

    # Delivery stays healthy — placement changes energy, not correctness.
    for cell in result.cells:
        assert cell.ratio > 0.85
