"""Shared benchmark configuration.

Environment knobs (all optional):

* ``REPRO_PROFILE``   — parameter profile: ``fast`` (default) or ``paper``.
* ``REPRO_TRIALS``    — fields per sweep point (default 2 for CI;
  the paper used 10).
* ``REPRO_DENSITIES`` — comma-separated node counts for the density
  sweeps (default ``50,150,250,350``; the paper used 50..350 step 50).

Each figure benchmark runs its full sweep exactly once (``pedantic`` with
one round — a sweep *is* the workload) and prints the reproduced panel
series so they land in ``bench_output.txt``.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.config import PROFILES


def _densities() -> tuple[int, ...]:
    raw = os.environ.get("REPRO_DENSITIES", "50,150,250,350")
    return tuple(int(x) for x in raw.split(","))


@pytest.fixture(scope="session")
def profile():
    name = os.environ.get("REPRO_PROFILE", "fast")
    return PROFILES[name]()


@pytest.fixture(scope="session")
def trials() -> int:
    return int(os.environ.get("REPRO_TRIALS", "2"))


@pytest.fixture(scope="session")
def densities() -> tuple[int, ...]:
    return _densities()


def run_figure_once(benchmark, fn, *args, **kwargs):
    """Run a figure sweep exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
