"""Related-work table: GIT vs SPT transmission savings (§1 / §5.4).

Krishnamachari et al.'s abstract comparison: under the event-radius and
random-sources models GIT's savings over SPT are modest, while the
paper's corner placement at high density yields far larger savings —
"the energy savings of our greedy aggregation can definitely be much
higher than 20%, given our source placement schemes and high-density
networks".
"""

from repro.experiments.figures import git_vs_spt_table
from repro.experiments.report import format_tree_table


def test_git_vs_spt_savings_by_placement(benchmark):
    rows = benchmark.pedantic(
        git_vs_spt_table,
        kwargs=dict(n_nodes=(100, 200, 350), n_sources=5, trials=8, seed=7),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_tree_table(rows))

    by = {(r["placement"], r["n_nodes"]): r for r in rows}

    # Corner placement at high density beats the abstract models.
    assert (
        by[("corner", 350)]["mean_savings"]
        > by[("event-radius", 350)]["mean_savings"]
    )
    assert (
        by[("corner", 350)]["mean_savings"]
        > by[("random-sources", 350)]["mean_savings"]
    )

    # "Much higher than 20%" at high density under the corner scheme.
    assert by[("corner", 350)]["mean_savings"] > 0.30

    # Corner savings grow with density.
    assert by[("corner", 350)]["mean_savings"] > by[("corner", 100)]["mean_savings"]

    # GIT never loses to SPT (structural property).
    for r in rows:
        assert r["mean_git_cost"] <= r["mean_spt_cost"] + 1e-9
