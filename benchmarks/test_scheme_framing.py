"""Framing comparison: flooding vs opportunistic vs greedy vs omniscient.

The original diffusion work positioned diffusion between flooding (robust
but profligate) and omniscient multicast (the zero-overhead ideal).
This bench reproduces that framing for the aggregation study: the greedy
scheme must land between opportunistic and the omniscient GIT.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_table
from repro.experiments.runner import run_experiment
from repro.experiments.sweeps import cell_seed

SCHEMES = ("flooding", "opportunistic", "greedy", "omniscient")
N_NODES = 200


def test_scheme_framing(benchmark, profile, trials):
    def run_all():
        results = {}
        for scheme in SCHEMES:
            runs = []
            for trial in range(trials):
                cfg = ExperimentConfig.from_profile(
                    profile, scheme, N_NODES, seed=cell_seed(9, "framing", trial)
                )
                runs.append(run_experiment(cfg))
            results[scheme] = runs
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    def mean(scheme, key):
        vals = [getattr(r, key) for r in results[scheme]]
        return sum(vals) / len(vals)

    rows = [
        [s, mean(s, "avg_dissipated_energy"), mean(s, "avg_delay"), mean(s, "delivery_ratio")]
        for s in SCHEMES
    ]
    print()
    print(format_table(["scheme", "energy", "delay", "ratio"], rows))

    e = {s: mean(s, "avg_dissipated_energy") for s in SCHEMES}
    # The energy ordering that frames the whole study.
    assert e["omniscient"] < e["greedy"] < e["flooding"]
    assert e["greedy"] <= e["opportunistic"] * 1.05
    assert e["opportunistic"] < e["flooding"]

    # Everyone delivers in a static uncongested network.
    for s in SCHEMES:
        assert mean(s, "delivery_ratio") > 0.9
