"""High data-rate regime: the bandwidth argument of §1/§5.2.

"The early aggregation reduces overall traffic which is preferable,
given the limited bandwidth."  At the paper's 2 events/s the shared
flood overhead (identical for both schemes) dilutes the tree savings; at
higher event rates the data path dominates the energy budget and the
greedy tree's full transmission savings surface.  This bench raises the
per-source rate to 8 events/s with 10 sources and checks that (a) the
measured savings exceed the fig-5 level and approach the data-path
factor, and (b) the greedy scheme's traffic reduction does not cost
delivery or latency.
"""

from dataclasses import replace

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_table
from repro.experiments.runner import run_experiment
from repro.experiments.sweeps import cell_seed

N_NODES = 250
N_SOURCES = 10
DATA_INTERVAL = 0.125  # 8 events per second per source


RATES = {"2 ev/s": 0.5, "8 ev/s": DATA_INTERVAL}


def test_high_rate_savings(benchmark, profile, trials):
    def run_all():
        results = {}
        for label, interval in RATES.items():
            diffusion = replace(profile.diffusion, data_interval=interval)
            for scheme in ("opportunistic", "greedy"):
                runs = []
                for trial in range(trials):
                    cfg = ExperimentConfig.from_profile(
                        profile,
                        scheme,
                        N_NODES,
                        seed=cell_seed(4, "rate", trial),
                        n_sources=N_SOURCES,
                        diffusion=diffusion,
                    )
                    runs.append(run_experiment(cfg))
                results[(label, scheme)] = runs
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    def mean(label, scheme, key):
        vals = [getattr(r, key) for r in results[(label, scheme)]]
        return sum(vals) / len(vals)

    def savings(label):
        return 1 - mean(label, "greedy", "avg_dissipated_energy") / mean(
            label, "opportunistic", "avg_dissipated_energy"
        )

    rows = [
        [
            label,
            scheme,
            mean(label, scheme, "avg_dissipated_energy"),
            mean(label, scheme, "avg_delay"),
            mean(label, scheme, "delivery_ratio"),
        ]
        for label in RATES
        for scheme in ("opportunistic", "greedy")
    ]
    print()
    print(format_table(["rate", "scheme", "energy", "delay", "ratio"], rows))
    for label in RATES:
        print(f"greedy energy savings at {label}: {100 * savings(label):.1f}%")

    # Paired claim: raising the data rate shrinks the flood-overhead
    # share and surfaces more of the tree savings (same fields/seeds).
    assert savings("8 ev/s") > savings("2 ev/s")
    # No adverse impact on delivery or latency at the high rate.
    for scheme in ("opportunistic", "greedy"):
        assert mean("8 ev/s", scheme, "delivery_ratio") > 0.9
    assert (
        mean("8 ev/s", "greedy", "avg_delay")
        < 3 * mean("8 ev/s", "opportunistic", "avg_delay") + 0.1
    )
