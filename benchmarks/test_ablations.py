"""Ablation benchmarks for the design choices DESIGN.md calls out.

* **Truncation rule** (§4.3): set cover over *sources* (the paper's
  energy-efficient rule) vs over *events* (the conservative rule).
* **Aggregation delay T_a** (§4.2): "this delay is crucial for data
  aggregation" — sweep T_a and observe the delay/energy trade.
* **Reinforcement timer T_p** (§4.1): the sink's patience is what turns
  lowest-delay selection into lowest-cost selection; T_p ~ 0 collapses
  greedy toward opportunistic path choice.
"""

from dataclasses import replace

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_table
from repro.experiments.runner import run_experiment
from repro.experiments.sweeps import cell_seed

N_NODES = 250


def _runs(benchmark, configs):
    return benchmark.pedantic(
        lambda: [run_experiment(c) for c in configs], rounds=1, iterations=1
    )


def _mean(rows, key):
    vals = [getattr(r, key) for r in rows]
    return sum(vals) / len(vals)


def test_ablation_truncation_rule(benchmark, profile, trials):
    """Source-level truncation must not lose to event-level truncation."""
    configs = []
    for scheme in ("greedy", "greedy-events"):
        for trial in range(trials):
            configs.append(
                ExperimentConfig.from_profile(
                    profile, scheme, N_NODES, seed=cell_seed(1, "trunc", trial)
                )
            )
    results = _runs(benchmark, configs)
    by_scheme = {}
    for r in results:
        by_scheme.setdefault(r.scheme, []).append(r)
    rows = [
        [scheme, _mean(rs, "avg_dissipated_energy"), _mean(rs, "avg_delay"),
         _mean(rs, "delivery_ratio")]
        for scheme, rs in sorted(by_scheme.items())
    ]
    print()
    print(format_table(["truncation", "energy", "delay", "ratio"], rows))
    sources_e = _mean(by_scheme["greedy"], "avg_dissipated_energy")
    events_e = _mean(by_scheme["greedy-events"], "avg_dissipated_energy")
    # The efficient rule should be at least comparable (within noise).
    assert sources_e <= events_e * 1.15
    for rs in by_scheme.values():
        assert _mean(rs, "delivery_ratio") > 0.85


def test_ablation_aggregation_delay(benchmark, profile, trials):
    """T_a sweep: longer delay -> higher latency; zero-ish delay loses
    aggregation opportunities (more transmissions)."""
    tas = (0.1, 0.5, 1.5)
    configs = []
    for ta in tas:
        d = replace(profile.diffusion, aggregation_delay=ta)
        for trial in range(trials):
            configs.append(
                ExperimentConfig.from_profile(
                    profile,
                    "greedy",
                    N_NODES,
                    seed=cell_seed(2, "ta", trial),
                    diffusion=d,
                )
            )
    results = _runs(benchmark, configs)
    by_ta = {}
    for ta, chunk in zip(tas, range(0, len(results), trials)):
        by_ta[ta] = results[chunk : chunk + trials]
    rows = [
        [ta, _mean(rs, "avg_dissipated_energy"), _mean(rs, "avg_delay"),
         _mean(rs, "delivery_ratio")]
        for ta, rs in sorted(by_ta.items())
    ]
    print()
    print(format_table(["T_a", "energy", "delay", "ratio"], rows))
    # Latency grows with T_a.
    assert _mean(by_ta[1.5], "avg_delay") > _mean(by_ta[0.1], "avg_delay")
    for rs in by_ta.values():
        assert _mean(rs, "delivery_ratio") > 0.85


def test_ablation_reinforcement_timer(benchmark, profile, trials):
    """T_p ablation: an impatient sink (T_p ~ 0) reinforces the first
    deliverer before incremental-cost information arrives, surrendering
    most of the greedy tree's advantage."""
    tps = (0.02, 1.0)
    configs = []
    for tp in tps:
        d = replace(profile.diffusion, reinforcement_timer=tp)
        for trial in range(trials):
            configs.append(
                ExperimentConfig.from_profile(
                    profile,
                    "greedy",
                    N_NODES,
                    seed=cell_seed(3, "tp", trial),
                    diffusion=d,
                )
            )
    results = _runs(benchmark, configs)
    by_tp = {}
    for tp, chunk in zip(tps, range(0, len(results), trials)):
        by_tp[tp] = results[chunk : chunk + trials]
    rows = [
        [tp, _mean(rs, "avg_dissipated_energy"), _mean(rs, "avg_delay"),
         _mean(rs, "delivery_ratio"),
         sum(r.counters.get("greedy.reinforce_via_incremental", 0) for r in rs)]
        for tp, rs in sorted(by_tp.items())
    ]
    print()
    print(format_table(["T_p", "energy", "delay", "ratio", "via_C"], rows))
    # Both variants exercise the incremental-cost machinery (at this
    # density the dense flood often loses the direct copy, so C messages
    # reach the sink first either way).
    for rs in by_tp.values():
        assert sum(
            r.counters.get("greedy.reinforce_via_incremental", 0) for r in rs
        ) > 0
    # The paper's T_p must not cost more energy than the impatient
    # variant (noise margin: one seed set) and must not hurt delivery.
    assert (
        _mean(by_tp[1.0], "avg_dissipated_energy")
        <= _mean(by_tp[0.02], "avg_dissipated_energy") * 1.15
    )
    for rs in by_tp.values():
        assert _mean(rs, "delivery_ratio") > 0.9
