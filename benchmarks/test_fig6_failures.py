"""Figure 6: impact of node failures (§5.3).

Fig 5's sweep under rotating dynamics: at any instant 20% of nodes are
off, a fresh set every epoch, no settling time.  Expected shape: delivery
drops well below the static case for both schemes (the paper calls the
conditions "fairly adverse"); energy per delivered event rises.
"""

from repro.experiments.figures import figure5, figure6
from repro.experiments.report import format_figure

from .conftest import run_figure_once


def test_fig6_failures(benchmark, profile, trials, densities):
    result = run_figure_once(
        benchmark, figure6, profile, densities=densities, trials=trials
    )
    print()
    print(format_figure(result))

    # Delivery is visibly degraded by the dynamics for both schemes.
    for cell in result.cells:
        assert cell.ratio < 0.95

    # But the network keeps functioning: something is delivered everywhere.
    for cell in result.cells:
        assert cell.ratio > 0.05
        assert cell.distinct_delivered > 0

    # Energy per delivered event exceeds the static baseline at the top
    # density (failed deliveries still cost transmissions).
    x = int(max(result.xs()))
    static = figure5(profile, densities=(x,), trials=max(1, trials - 1))
    assert (
        result.cell("greedy", x).energy > 0.8 * static.cell("greedy", x).energy
    )
