"""Figure 8: impact of the number of sinks (§5.4).

1-5 sinks on the densest field (the paper used 350 nodes; the default CI
field keeps the top density of the configured sweep).  The first sink is
at the top-right corner, the rest scattered.  Expected shape: with more
sinks the energy efficiency of greedy converges toward opportunistic
("the impact of the random sink placement is similar to that of the
random source placement") while delivery remains high.
"""

import os

from repro.experiments.figures import figure8
from repro.experiments.report import format_figure

from .conftest import run_figure_once

SINKS = (1, 3, 5)


def test_fig8_sinks(benchmark, profile, trials, densities):
    n_nodes = int(os.environ.get("REPRO_FIG8_NODES", str(max(densities))))
    result = run_figure_once(
        benchmark, figure8, profile, sink_counts=SINKS, n_nodes=n_nodes, trials=trials
    )
    print()
    print(format_figure(result))

    # Savings with many scattered sinks fall at or below the single-sink
    # corner case.
    assert result.energy_savings(max(SINKS)) <= result.energy_savings(1) + 0.10

    for cell in result.cells:
        assert cell.ratio > 0.75
        assert cell.distinct_delivered > 0
