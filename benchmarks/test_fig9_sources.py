"""Figure 9: impact of the number of sources (§5.4).

2..14 corner sources on the densest field.  Expected shape: as sources
pack the fixed 80 m x 80 m corner, the workload approaches the
event-radius model, paths merge early even without optimization, and the
greedy/opportunistic gap narrows.
"""

import os

from repro.experiments.figures import figure9
from repro.experiments.report import format_figure

from .conftest import run_figure_once

SOURCES = (2, 5, 10, 14)


def test_fig9_sources(benchmark, profile, trials, densities):
    n_nodes = int(os.environ.get("REPRO_FIG9_NODES", str(max(densities))))
    result = run_figure_once(
        benchmark,
        figure9,
        profile,
        source_counts=SOURCES,
        n_nodes=n_nodes,
        trials=trials,
    )
    print()
    print(format_figure(result))

    # Convergence: the savings at the largest source count do not exceed
    # the peak savings over the sweep (the gap closes, not widens).
    peak = result.max_energy_savings()
    assert result.energy_savings(max(SOURCES)) <= peak + 1e-9

    # More sources -> more delivered events, for both schemes.
    for scheme in ("greedy", "opportunistic"):
        series = result.series(scheme)
        assert series[-1].distinct_delivered > series[0].distinct_delivered

    for cell in result.cells:
        assert cell.ratio > 0.75
