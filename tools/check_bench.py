#!/usr/bin/env python3
"""Bench-regression gate: fail when throughput drops vs the baseline.

Compares a fresh ``repro bench`` payload against the committed
trajectory in ``BENCH_sweep.json`` and exits non-zero when events/sec
dropped by more than the threshold (default 25%).

Usage::

    PYTHONPATH=src python -m repro bench --quick --out /tmp/bench.json
    python tools/check_bench.py /tmp/bench.json \
        --baseline BENCH_sweep.json --threshold 0.25

The baseline entry is the most recent committed result with the same
``(profile, timeline, spans)`` triple as the candidate (different
profiles have different event mixes, and timeline-on runs pay probe
overhead and spans-on runs pay tracing overhead, so none of those are
ever compared to each other; entries predating named profiles are keyed
by their legacy ``quick`` flag, and entries predating the spans flag
read as spans-off).  A hostname mismatch
is reported — cross-machine throughput comparisons are noisy, which is
one reason the threshold is generous — but the gate is still enforced.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_entries(path: Path) -> list[dict]:
    data = json.loads(path.read_text())
    if isinstance(data, dict) and data.get("kind") == "bench-trajectory":
        return list(data.get("entries", []))
    if isinstance(data, dict) and data.get("kind") == "bench":
        return [data]
    raise SystemExit(f"{path}: not a bench payload or trajectory")


def entry_profile(entry: dict) -> str:
    """The entry's workload profile (legacy entries map via their quick flag)."""
    profile = entry.get("profile")
    if profile is not None:
        return str(profile)
    return "quick" if entry.get("quick") else "canonical"


def pick_baseline(
    entries: list[dict], profile: str, timeline: bool = False, spans: bool = False
) -> dict | None:
    matching = [
        e
        for e in entries
        if entry_profile(e) == profile
        and bool(e.get("timeline")) is timeline
        and bool(e.get("spans")) is spans
    ]
    return matching[-1] if matching else None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="fresh bench JSON (payload or trajectory)")
    parser.add_argument(
        "--baseline", default="BENCH_sweep.json", help="committed trajectory file"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="max tolerated fractional events/sec drop (default 0.25)",
    )
    args = parser.parse_args(argv)

    current = load_entries(Path(args.current))[-1]
    profile = entry_profile(current)
    baseline = pick_baseline(
        load_entries(Path(args.baseline)),
        profile,
        bool(current.get("timeline")),
        bool(current.get("spans")),
    )
    if baseline is None:
        print(
            f"check_bench: no baseline with profile={profile} "
            f"timeline={bool(current.get('timeline'))} "
            f"spans={bool(current.get('spans'))} in "
            f"{args.baseline}; nothing to gate against"
        )
        return 0

    base_eps = baseline["events_per_sec"]
    cur_eps = current["events_per_sec"]
    slowdown = 1.0 - cur_eps / base_eps if base_eps > 0 else 0.0
    base_host = baseline.get("environment", {}).get("hostname", "?")
    cur_host = current.get("environment", {}).get("hostname", "?")

    print(
        f"check_bench: baseline {base_eps:,.0f} events/s ({base_host}) -> "
        f"current {cur_eps:,.0f} events/s ({cur_host}): "
        f"{'slowdown' if slowdown > 0 else 'speedup'} {abs(slowdown):.1%} "
        f"(threshold {args.threshold:.0%})"
    )
    if base_host != cur_host:
        print("check_bench: note — different hosts, comparison is approximate")
    if slowdown > args.threshold:
        print(
            f"check_bench: FAIL — events/sec dropped {slowdown:.1%} "
            f"(> {args.threshold:.0%})",
            file=sys.stderr,
        )
        return 1
    print("check_bench: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
