#!/usr/bin/env python3
"""Documentation consistency checker (the CI docs job).

Two classes of rot this catches:

1. **Broken intra-repo links.**  Every relative markdown link or image
   in README.md, DESIGN.md, EXPERIMENTS.md, and docs/*.md must resolve
   to a file that exists (anchors and external URLs are ignored; an
   ``#anchor`` suffix is stripped before the existence check).

2. **API reference coverage.**  docs/API.md must contain a section for
   every public package under ``src/repro`` — any directory with an
   ``__init__.py`` that advertises an ``__all__`` — plus the documented
   top-level modules.  Adding a package without documenting it fails CI.

This is pure-filesystem (no imports of the package under test, no
third-party deps), so it runs anywhere.  The tier-1 suite exercises the
same checks in-process via tests/test_docs.py.

Usage::

    python tools/check_docs.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

#: markdown files whose relative links must resolve
DOC_FILES = ["README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md"]

#: non-package modules documented in docs/API.md alongside the packages
#: (repro.net.channel is the pluggable PHY surface — losing its section
#: would orphan the DESIGN.md §14 contract; repro.obs.spans is the
#: request-tracing surface behind DESIGN.md §16 — both are gated)
EXTRA_API_MODULES = [
    "repro.net.channel",
    "repro.obs.spans",
    "repro.cli",
    "repro.constants",
]

# [text](target) and ![alt](target) — target split off any title/anchor
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
# inline code spans — links inside them are examples, not references
_CODE_SPAN_RE = re.compile(r"`[^`]*`")


def iter_doc_files() -> list[Path]:
    files = [REPO_ROOT / name for name in DOC_FILES if (REPO_ROOT / name).exists()]
    files += sorted((REPO_ROOT / "docs").glob("*.md"))
    return files


def check_links() -> list[str]:
    """Return one error string per broken relative link."""
    errors: list[str] = []
    for doc in iter_doc_files():
        text = doc.read_text()
        in_fence = False
        for lineno, line in enumerate(text.splitlines(), start=1):
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in _LINK_RE.finditer(_CODE_SPAN_RE.sub("", line)):
                target = match.group(1)
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                path_part = target.split("#", 1)[0]
                if not path_part:
                    continue
                resolved = (doc.parent / path_part).resolve()
                if not resolved.exists():
                    rel = doc.relative_to(REPO_ROOT)
                    errors.append(f"{rel}:{lineno}: broken link -> {target}")
    return errors


def public_packages() -> list[str]:
    """Every package under src/repro with a public ``__all__``."""
    src = REPO_ROOT / "src" / "repro"
    packages = []
    for init in sorted(src.rglob("__init__.py")):
        if "__all__" not in init.read_text():
            continue
        rel = init.parent.relative_to(src.parent)
        packages.append(".".join(rel.parts))
    return packages


def check_api_coverage() -> list[str]:
    """docs/API.md must have a ``## `pkg` `` section per public package."""
    api_md = REPO_ROOT / "docs" / "API.md"
    if not api_md.exists():
        return ["docs/API.md is missing — run: PYTHONPATH=src python tools/gen_api_docs.py"]
    text = api_md.read_text()
    documented = set(re.findall(r"^## `([\w.]+)`$", text, flags=re.MULTILINE))
    errors = []
    for pkg in public_packages() + EXTRA_API_MODULES:
        if pkg not in documented:
            errors.append(
                f"docs/API.md: public package `{pkg}` has no section — "
                "regenerate with: PYTHONPATH=src python tools/gen_api_docs.py"
            )
    return errors


def main() -> int:
    errors = check_links() + check_api_coverage()
    for err in errors:
        print(err, file=sys.stderr)
    if errors:
        print(f"\n{len(errors)} documentation error(s)", file=sys.stderr)
        return 1
    n_docs = len(iter_doc_files())
    n_pkgs = len(public_packages()) + len(EXTRA_API_MODULES)
    print(f"docs OK: {n_docs} files link-clean, {n_pkgs} packages covered in docs/API.md")
    return 0


if __name__ == "__main__":
    sys.exit(main())
