#!/usr/bin/env python3
"""Generate docs/API.md from the public ``__all__`` surface.

Walks every ``repro`` package (and the top-level modules), resolves each
name advertised in ``__all__``, and emits one reference section per
package: the package docstring's first paragraph, then a table of
``name — first docstring line``.  A hand-maintained routing table
("which module do I touch for X") is prepended.

Usage::

    PYTHONPATH=src python tools/gen_api_docs.py            # rewrite docs/API.md
    PYTHONPATH=src python tools/gen_api_docs.py --check    # fail if stale

The output is committed; CI's docs job verifies every package is
covered (tools/check_docs.py) and the tier-1 suite imports the same
surface (tests/test_public_api.py), so the two can't drift silently.
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

#: documented packages/modules, in reading order
PACKAGES = [
    "repro",
    "repro.sim",
    "repro.net",
    "repro.net.channel",
    "repro.diffusion",
    "repro.aggregation",
    "repro.core",
    "repro.trees",
    "repro.experiments",
    "repro.obs",
    "repro.obs.spans",
    "repro.service",
    "repro.cli",
    "repro.constants",
]

ROUTING_TABLE = """\
| I want to change... | Touch |
|---|---|
| event scheduling, timers, determinism/RNG streams | `repro.sim` |
| radio propagation, MAC behavior, energy accounting, node failures | `repro.net` |
| channel models: disc vs pathloss, SINR capture, frequency bands | `repro.net.channel` |
| field generation, node/source/sink placement | `repro.net.topology` |
| interests, gradients, exploratory floods, duplicate caches | `repro.diffusion` |
| the opportunistic (baseline) scheme | `repro.diffusion.opportunistic` |
| the greedy scheme: E attribute, incremental cost, truncation | `repro.core` |
| aggregate size models, set-cover solvers, the T_a buffer | `repro.aggregation` |
| centralized SPT/GIT/Steiner references | `repro.trees` |
| run configs, profiles, metrics, the runner | `repro.experiments` (`config`/`metrics`/`runner`) |
| sweeps, parallelism, resumable runs | `repro.experiments.sweeps` + `repro.experiments.store` |
| paper figures and their workloads | `repro.experiments.figures` |
| saving/loading results, manifests | `repro.experiments.persistence` |
| profiling, tracing, metrics registry | `repro.obs` |
| request spans, trace trees, correlation ids | `repro.obs.spans` |
| the sweep/results daemon, its HTTP API, client, load tester | `repro.service` |
| span trees, JSON logs, the `repro top` dashboard | `repro.service` (`http`/`logs`/`top`) |
| command-line verbs | `repro.cli` |
| wire-format byte sizes | `repro.constants` |
"""

HEADER = """\
# API reference

Generated from each package's public `__all__` surface by
[`tools/gen_api_docs.py`](../tools/gen_api_docs.py) — regenerate with
`PYTHONPATH=src python tools/gen_api_docs.py` after changing any
`__all__` or public docstring. Architecture rationale lives in
[DESIGN.md](../DESIGN.md); workflow recipes in
[PLAYBOOK.md](PLAYBOOK.md).

## Which module do I touch for X?

"""


def _first_line(obj: object) -> str:
    doc = inspect.getdoc(obj)
    if not doc:
        return ""
    line = doc.strip().splitlines()[0].strip()
    return line.replace("|", "\\|")


def _first_paragraph(obj: object) -> str:
    doc = inspect.getdoc(obj)
    if not doc:
        return ""
    paragraph: list[str] = []
    for line in doc.strip().splitlines():
        if not line.strip():
            break
        paragraph.append(line.strip())
    return " ".join(paragraph)


def _kind(obj: object) -> str:
    if inspect.isclass(obj):
        return "class"
    if inspect.isfunction(obj) or inspect.isbuiltin(obj):
        return "function"
    if isinstance(obj, dict):
        return "dict"
    if isinstance(obj, tuple):
        return "tuple"
    return type(obj).__name__


def render() -> str:
    lines = [HEADER + ROUTING_TABLE]
    for package in PACKAGES:
        mod = importlib.import_module(package)
        names = list(getattr(mod, "__all__", []))
        lines.append(f"\n## `{package}`\n")
        summary = _first_paragraph(mod)
        if summary:
            lines.append(summary + "\n")
        if not names:
            lines.append("_(no public `__all__`)_\n")
            continue
        lines.append("| name | kind | summary |")
        lines.append("|---|---|---|")
        for name in names:
            obj = getattr(mod, name)
            # data values inherit their type's docstring, which is noise
            summary = _first_line(obj) if inspect.isclass(obj) or callable(obj) else ""
            lines.append(f"| `{name}` | {_kind(obj)} | {summary} |")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check", action="store_true", help="fail if docs/API.md is stale"
    )
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "docs" / "API.md"), help="output path"
    )
    args = parser.parse_args(argv)
    out = Path(args.out)
    text = render()
    if args.check:
        if not out.exists() or out.read_text() != text:
            print(f"{out} is stale — regenerate with: "
                  "PYTHONPATH=src python tools/gen_api_docs.py", file=sys.stderr)
            return 1
        print(f"{out} is up to date")
        return 0
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(text)
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
