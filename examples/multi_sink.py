#!/usr/bin/env python3
"""Multiple sinks: the paper's fig-8 sensitivity study in miniature.

Several users (sinks) subscribe to the same tracking task; each sink
floods its own interest and draws its own aggregation tree.  With sinks
scattered across the field, early path sharing matters less and the two
schemes converge — while greedy's early aggregation still keeps overall
traffic (and thus congestion losses) lower.

Run:  python examples/multi_sink.py
"""

from repro import ExperimentConfig, fast, run_experiment


def main() -> None:
    profile = fast()
    print(f"{'sinks':>5} {'scheme':<14} {'ratio':>6} {'delay':>8} {'energy':>10} "
          f"{'delivered':>10}")
    savings = {}
    for n_sinks in (1, 3, 5):
        energies = {}
        for scheme in ("opportunistic", "greedy"):
            cfg = ExperimentConfig.from_profile(
                profile, scheme, n_nodes=200, seed=23, n_sinks=n_sinks
            )
            r = run_experiment(cfg)
            energies[scheme] = r.avg_dissipated_energy
            print(
                f"{n_sinks:>5} {scheme:<14} {r.delivery_ratio:>6.3f} "
                f"{r.avg_delay * 1e3:>6.0f}ms {r.avg_dissipated_energy * 1e3:>8.4f}mJ "
                f"{r.distinct_delivered:>10}"
            )
        savings[n_sinks] = 1 - energies["greedy"] / energies["opportunistic"]
    print()
    for n_sinks, s in savings.items():
        print(f"greedy energy savings with {n_sinks} sink(s): {s:.1%}")
    print()
    print("With more scattered sinks each source feeds several trees, the")
    print("corner clustering matters less, and the greedy advantage shrinks —")
    print("the shape of the paper's figure 8.")


if __name__ == "__main__":
    main()
