#!/usr/bin/env python3
"""Quickstart: run one greedy-aggregation experiment and read the metrics.

This is the paper's basic workload at a single mid-range density: five
sources in the bottom-left corner of a 200 m x 200 m field report
tracking events at 2 events/s to one sink at the top-right corner, over
the full packet-level stack (CSMA/CA MAC, disc radio, Sensoria-profile
energy meters).

Run:  python examples/quickstart.py
"""

from repro import ExperimentConfig, fast, run_experiment


def main() -> None:
    profile = fast()

    for scheme in ("opportunistic", "greedy"):
        cfg = ExperimentConfig.from_profile(profile, scheme, n_nodes=150, seed=42)
        result = run_experiment(cfg)
        print(f"--- {scheme} aggregation ---")
        print(f"  field:                {result.n_nodes} nodes, "
              f"mean degree {result.mean_degree:.1f}")
        print(f"  avg dissipated energy {result.avg_dissipated_energy * 1e3:.4f} mJ/node/event")
        print(f"  avg delay             {result.avg_delay * 1e3:.0f} ms")
        print(f"  delivery ratio        {result.delivery_ratio:.3f}")
        print(f"  distinct delivered    {result.distinct_delivered}/{result.events_sent}")
        print()

    print("Greedy aggregation builds a greedy incremental tree (sources graft")
    print("onto the existing tree at the closest point), so data from the")
    print("clustered sources merges early and fewer transmissions reach the sink.")


if __name__ == "__main__":
    main()
