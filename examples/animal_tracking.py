#!/usr/bin/env python3
"""Animal tracking: the paper's §2 motivating scenario, built by hand.

A user in a wilderness refuge tracks animal movement in a remote
sub-region of the park.  Instead of using the experiment harness, this
example wires the stack directly through the public API — its own field,
its own attribute naming, a custom interest — and inspects the
aggregation tree that the greedy scheme constructs.

Run:  python examples/animal_tracking.py
"""

import random

from repro import DiffusionParams, GreedyAgent, Simulator, Tracer, RngRegistry
from repro.diffusion.attributes import AttributeSet, InterestSpec, Op, Predicate
from repro.experiments.metrics import MetricsCollector
from repro.net import Channel, Node, RadioParams, generate_field


def main() -> None:
    sim = Simulator()
    tracer = Tracer(lambda: sim.now)
    rngs = RngRegistry(2026)
    channel = Channel(sim, tracer, RadioParams(range_m=40.0))

    # A 200 m x 200 m refuge with 120 sensor nodes.
    field = generate_field(120, rngs.stream("topology"))
    nodes = [
        Node(i, x, y, sim, channel, tracer, rngs)
        for i, (x, y) in enumerate(field.positions)
    ]

    # The user's task, named with attribute-value predicates: four-legged
    # animals inside the remote south-west quadrant of the park.
    interest = InterestSpec.of(
        Predicate("species", Op.IS, "four-legged"),
        Predicate("x", Op.GE, 0.0),
        Predicate("x", Op.LE, 90.0),
        Predicate("y", Op.GE, 0.0),
        Predicate("y", Op.LE, 90.0),
    )

    params = DiffusionParams(exploratory_interval=15.0)
    metrics = MetricsCollector(warmup_end=20.0)
    agents = [GreedyAgent(node, params, metrics=metrics) for node in nodes]

    # Sensors publish their own attributes; those inside the quadrant
    # with animal activity will match the interest and become sources.
    rng = random.Random(7)
    herd = [i for i in field.nodes_in_square(0, 0, 90)]
    sources = rng.sample(herd, min(4, len(herd)))
    for i, node in enumerate(nodes):
        agents[i].attributes = AttributeSet(
            {
                "species": "four-legged" if i in sources else "none",
                "x": node.x,
                "y": node.y,
            }
        )

    # The ranger station (sink) sits wherever the node closest to the
    # north-east corner is.
    station = max(range(len(nodes)), key=lambda i: nodes[i].x + nodes[i].y)
    agents[station].attach_sink(interest_id=station, spec=interest)

    sim.run(until=60.0)

    print(f"refuge: {field.n} sensors, mean degree {field.mean_degree():.1f}")
    print(f"herd sensors (sources): {sorted(sources)}")
    print(f"ranger station (sink):  {station}")
    print()
    print(f"tracking events delivered: {metrics.total_distinct_delivered()} "
          f"(ratio {metrics.delivery_ratio():.3f})")
    delay = metrics.average_delay()
    print(f"average report latency:    {delay * 1e3:.0f} ms" if delay else "no data")

    # Inspect the aggregation tree by walking each source's chain of
    # preferred downstream neighbors (single outgoing data gradient).
    print("\ngreedy aggregation tree (node -> parent):")
    printed = set()
    for source in sorted(sources):
        node = source
        hops = 0
        while node != station and hops <= len(nodes):
            parents = agents[node].gradients[station].data_neighbors(sim.now)
            if not parents:
                print(f"  {'source' if node == source else 'relay '} {node:3d} -> (no path)")
                break
            edge = (node, parents[0])
            if edge not in printed:
                printed.add(edge)
                role = "source" if node in sources else "relay "
                print(f"  {role} {node:3d} -> {parents[0]}")
            node = parents[0]
            hops += 1

    merged = tracer.value("diffusion.items_aggregated")
    print(f"\nevents merged into aggregates in-network: {merged}")


if __name__ == "__main__":
    main()
