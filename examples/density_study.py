#!/usr/bin/env python3
"""Density study: a compact reproduction of the paper's headline figure.

Sweeps network density (the paper's fig 5) with a small trial budget and
prints the three panels plus the greedy-over-opportunistic savings, then
compares the packet-level result against the *centralized* ideal trees
(SPT vs GIT) on the same fields — the abstract model of repro.trees.

Run:  python examples/density_study.py          (~2-4 minutes)
      python examples/density_study.py --quick  (~40 seconds)
"""

import random
import sys

from repro import fast, figure5, format_figure
from repro.net import generate_field
from repro.net.topology import corner_sink_node, corner_source_nodes
from repro.trees import greedy_incremental_tree, shortest_path_tree, tree_cost


def packet_level(densities, trials):
    print("=== packet-level simulation (directed diffusion) ===")
    result = figure5(fast(), densities=densities, trials=trials)
    print(format_figure(result))
    print()
    return result


def centralized(densities):
    print("=== centralized ideal trees on the same geometry ===")
    print(f"{'nodes':>6} {'SPT edges':>10} {'GIT edges':>10} {'savings':>8}")
    rng = random.Random(99)
    for n in densities:
        spt_costs, git_costs = [], []
        for _ in range(5):
            field = generate_field(n, rng)
            sink = corner_sink_node(field, rng)
            sources = corner_source_nodes(field, 5, rng, exclude={sink})
            graph = field.connectivity_graph()
            spt_costs.append(tree_cost(shortest_path_tree(graph, sink, sources)))
            git_costs.append(
                tree_cost(greedy_incremental_tree(graph, sink, sources, order="nearest"))
            )
        spt, git = sum(spt_costs) / 5, sum(git_costs) / 5
        print(f"{n:>6} {spt:>10.1f} {git:>10.1f} {1 - git / spt:>7.1%}")


def main() -> None:
    quick = "--quick" in sys.argv
    densities = (50, 250) if quick else (50, 150, 250, 350)
    trials = 1 if quick else 2
    result = packet_level(densities, trials)
    centralized(densities)
    print()
    peak = result.max_energy_savings()
    print(f"Peak packet-level energy savings of greedy aggregation: {peak:.1%}.")
    print("The centralized table shows the structural cause: the greedy")
    print("incremental tree needs far fewer edges than the union of")
    print("shortest paths once the network is dense.")


if __name__ == "__main__":
    main()
