#!/usr/bin/env python3
"""Robustness under node failures: the paper's §5.3 dynamics experiment.

Runs both aggregation schemes on the same field while 20% of the nodes
are off at any instant (a fresh random set every epoch, no settling
time), and contrasts the result with the static network.

Run:  python examples/failure_robustness.py
"""

from repro import ExperimentConfig, FailureModel, fast, run_experiment


def run(scheme, failures):
    profile = fast()
    cfg = ExperimentConfig.from_profile(
        profile,
        scheme,
        n_nodes=200,
        seed=17,
        failures=FailureModel(fraction=0.2, epoch=profile.failure_epoch)
        if failures
        else None,
    )
    return run_experiment(cfg)


def main() -> None:
    print(f"{'scenario':<22} {'scheme':<14} {'ratio':>6} {'delay':>8} {'energy':>10}")
    for failures in (False, True):
        label = "20% nodes failing" if failures else "static network"
        for scheme in ("opportunistic", "greedy"):
            r = run(scheme, failures)
            print(
                f"{label:<22} {scheme:<14} {r.delivery_ratio:>6.3f} "
                f"{r.avg_delay * 1e3:>6.0f}ms {r.avg_dissipated_energy * 1e3:>8.4f}mJ"
            )
    print()
    print("Failures cost delivery for both schemes — the paper calls these")
    print("conditions 'fairly adverse' (no settling time between failure")
    print("epochs).  The exploratory-event cycle repairs broken paths, so")
    print("delivery degrades instead of collapsing.")


if __name__ == "__main__":
    main()
