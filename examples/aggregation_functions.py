#!/usr/bin/env python3
"""Aggregation functions: how much does the size model matter? (§3, §5.4)

Runs the same 10-source workload under every aggregation size model the
library implements — perfect (paper default), linear packing (fig 10),
timestamp delta-encoding, escan-style outline, and no aggregation at
all — and reports energy and latency for the greedy scheme.

Run:  python examples/aggregation_functions.py
"""

from repro import ExperimentConfig, fast, run_experiment
from repro.aggregation.functions import by_name

FUNCTIONS = ("perfect", "timestamp", "outline", "linear", "none")


def main() -> None:
    profile = fast()
    print("aggregate sizes for d buffered items (bytes):")
    print(f"{'d':>4} " + " ".join(f"{name:>10}" for name in FUNCTIONS))
    for d in (1, 2, 5, 10):
        row = []
        for name in FUNCTIONS:
            fn = by_name(name)
            row.append(fn.size(min(d, fn.max_items or d)))
        print(f"{d:>4} " + " ".join(f"{v:>10}" for v in row))
    print()

    print(f"{'aggregation':<12} {'energy (mJ)':>12} {'delay (ms)':>11} {'ratio':>6}")
    baseline = None
    for name in FUNCTIONS:
        cfg = ExperimentConfig.from_profile(
            profile, "greedy", n_nodes=200, seed=31, n_sources=10, aggregation=name
        )
        r = run_experiment(cfg)
        if baseline is None:
            baseline = r.avg_dissipated_energy
        rel = r.avg_dissipated_energy / baseline
        print(
            f"{name:<12} {r.avg_dissipated_energy * 1e3:>12.4f} "
            f"{r.avg_delay * 1e3:>11.0f} {r.delivery_ratio:>6.3f}   (x{rel:.2f})"
        )
    print()
    print("Perfect aggregation is the paper's default assumption; linear")
    print("packing keeps only the per-packet header savings, so its cost")
    print("grows with the number of data items (the fig-10 effect).")


if __name__ == "__main__":
    main()
