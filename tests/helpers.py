"""Shared test fixtures: tiny hand-built networks with the real stack."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.aggregation.functions import AggregationFunction
from repro.diffusion.agent import DiffusionAgent, DiffusionParams
from repro.diffusion.attributes import AttributeSet, InterestSpec, Op, Predicate
from repro.net.energy import EnergyParams
from repro.net.mac import MacParams
from repro.net.node import Node
from repro.net.radio import Channel, RadioParams
from repro.sim import RngRegistry, Simulator, Tracer

#: interest used by the mini-world tests (sources carry target=True)
TEST_SPEC = InterestSpec.of(
    Predicate("task", Op.IS, "tracking"),
    Predicate("target", Op.IS, True),
)


class MiniWorld:
    """A small wireless network at explicit coordinates.

    Builds the full real stack (simulator, channel, radios, MACs, nodes)
    so protocol tests exercise genuine packet exchange, with geometry
    chosen by the test (e.g. a chain with 40 m spacing).
    """

    def __init__(
        self,
        positions: Sequence[tuple[float, float]],
        seed: int = 1,
        range_m: float = 40.0,
        mac_params: Optional[MacParams] = None,
    ) -> None:
        self.sim = Simulator()
        self.tracer = Tracer(lambda: self.sim.now)
        self.rngs = RngRegistry(seed)
        self.channel = Channel(self.sim, self.tracer, RadioParams(range_m=range_m))
        self.nodes = [
            Node(
                i,
                x,
                y,
                self.sim,
                self.channel,
                self.tracer,
                self.rngs,
                energy_params=EnergyParams(),
                mac_params=mac_params,
            )
            for i, (x, y) in enumerate(positions)
        ]
        self.agents: list[DiffusionAgent] = []

    def attach_agents(
        self,
        agent_cls: type[DiffusionAgent],
        params: Optional[DiffusionParams] = None,
        aggfn: Optional[AggregationFunction] = None,
        metrics=None,
        sources: Sequence[int] = (),
        sink: Optional[int] = None,
    ) -> list[DiffusionAgent]:
        """Install one agent per node; mark sources and optionally a sink."""
        params = params or DiffusionParams(
            exploratory_interval=8.0, interest_interval=4.0
        )
        self.agents = [agent_cls(node, params, aggfn, metrics) for node in self.nodes]
        for src in sources:
            node = self.nodes[src]
            self.agents[src].attributes = AttributeSet(
                {"task": "tracking", "x": node.x, "y": node.y, "target": True}
            )
        if sink is not None:
            self.agents[sink].attach_sink(interest_id=sink, spec=TEST_SPEC)
        return self.agents

    def run(self, until: float) -> None:
        self.sim.run(until=until)


def chain_positions(n: int, spacing: float = 35.0) -> list[tuple[float, float]]:
    """n nodes on a line, each hearing only its direct neighbors."""
    return [(i * spacing, 0.0) for i in range(n)]


def grid_positions(rows: int, cols: int, spacing: float = 30.0) -> list[tuple[float, float]]:
    return [(c * spacing, r * spacing) for r in range(rows) for c in range(cols)]
