"""Tests for the abstract placement models and the GIT-vs-SPT study."""

import random

import pytest

from repro.net.topology import generate_field
from repro.trees.models import PLACEMENTS, compare_trees, savings_study


class TestCompareTrees:
    def setup_method(self):
        self.rng = random.Random(11)
        self.field = generate_field(150, self.rng)

    def test_costs_ordered(self):
        sink = 0
        sources = [10, 20, 30, 40, 50]
        cmp = compare_trees(self.field, sink, sources)
        # GIT never beats the Steiner approximation by definition of the
        # construction order... but both must be <= SPT for clustered work
        # and >= a spanning lower bound; we check the universal ones:
        assert cmp.git_cost <= cmp.spt_cost
        assert cmp.steiner_cost > 0
        assert cmp.spt_cost > 0

    def test_savings_fraction(self):
        cmp = compare_trees(self.field, 0, [10, 20, 30])
        assert -0.5 <= cmp.git_savings < 1.0
        assert cmp.git_savings == pytest.approx(1 - cmp.git_cost / cmp.spt_cost)

    def test_metadata(self):
        cmp = compare_trees(self.field, 0, [10, 20])
        assert cmp.n_nodes == 150
        assert cmp.n_sources == 2


class TestSavingsStudy:
    def test_all_placements_run(self):
        for placement in PLACEMENTS:
            row = savings_study(placement, n_nodes=100, n_sources=5, trials=3, seed=1)
            assert row["mean_spt_cost"] > 0
            assert row["mean_git_cost"] > 0
            assert row["placement"] == placement

    def test_unknown_placement_rejected(self):
        with pytest.raises(ValueError):
            savings_study("martian", 100, 5, 1, 1)

    def test_deterministic(self):
        a = savings_study("corner", 100, 5, 3, seed=9)
        b = savings_study("corner", 100, 5, 3, seed=9)
        assert a == b

    def test_corner_beats_abstract_models_at_density(self):
        """The paper's related-work claim: under event-radius / random
        source models GIT saves modestly (<= ~20%), while the corner
        scheme at high density saves much more."""
        corner = savings_study("corner", 300, 5, trials=5, seed=3)
        random_src = savings_study("random-sources", 300, 5, trials=5, seed=3)
        assert corner["mean_savings"] > random_src["mean_savings"]

    def test_event_radius_modest_savings_at_moderate_density(self):
        # Krishnamachari et al.'s regime: sources clustered within one
        # radio radius at moderate density give modest GIT savings
        # (~20%), far below the corner scheme at high density.
        row = savings_study("event-radius", 100, 5, trials=8, seed=3)
        assert row["mean_savings"] <= 0.25

    def test_corner_savings_grow_with_density(self):
        low = savings_study("corner", 100, 5, trials=8, seed=3)
        high = savings_study("corner", 300, 5, trials=8, seed=3)
        assert high["mean_savings"] > low["mean_savings"]
        assert high["mean_savings"] > 0.4  # "much higher than 20%"
