"""Unit tests for the KMB Steiner approximation."""

import networkx as nx
import pytest

from repro.trees.spt import tree_cost, validate_tree
from repro.trees.steiner import steiner_tree_kmb


class TestKMB:
    def test_two_terminals_is_shortest_path(self):
        g = nx.path_graph(6)
        tree = steiner_tree_kmb(g, [0, 5])
        assert tree_cost(tree) == 5

    def test_single_terminal(self):
        tree = steiner_tree_kmb(nx.path_graph(3), [1])
        assert tree.number_of_nodes() == 1
        assert tree_cost(tree) == 0

    def test_no_terminals_rejected(self):
        with pytest.raises(ValueError):
            steiner_tree_kmb(nx.path_graph(3), [])

    def test_star_with_steiner_point(self):
        # Terminals 1,2,3 all adjacent to 0 only: the optimal tree uses
        # non-terminal node 0.
        g = nx.star_graph(3)
        tree = steiner_tree_kmb(g, [1, 2, 3])
        assert tree_cost(tree) == 3
        assert 0 in tree.nodes

    def test_non_terminal_leaves_pruned(self):
        g = nx.path_graph(6)
        tree = steiner_tree_kmb(g, [1, 4])
        assert 0 not in tree.nodes
        assert 5 not in tree.nodes

    def test_valid_tree_on_grid(self):
        g = nx.convert_node_labels_to_integers(nx.grid_2d_graph(5, 5))
        terminals = [0, 4, 20, 24]
        tree = steiner_tree_kmb(g, terminals)
        validate_tree(tree, terminals[0], terminals[1:])

    def test_duplicate_terminals_deduped(self):
        g = nx.path_graph(4)
        tree = steiner_tree_kmb(g, [0, 3, 3, 0])
        assert tree_cost(tree) == 3

    def test_disconnected_terminals_raise(self):
        g = nx.Graph()
        g.add_edge(0, 1)
        g.add_node(9)
        with pytest.raises(nx.NetworkXNoPath):
            steiner_tree_kmb(g, [0, 9])

    def test_matches_networkx_reference_on_random_graphs(self):
        from networkx.algorithms.approximation import steiner_tree as nx_steiner

        rng = nx.gnm_random_graph(20, 45, seed=4)
        if not nx.is_connected(rng):
            rng = rng.subgraph(max(nx.connected_components(rng), key=len)).copy()
        terminals = list(rng.nodes)[:5]
        ours = steiner_tree_kmb(rng, terminals)
        theirs = nx_steiner(rng, terminals, method="kou")
        # Same algorithm family: costs must agree within rounding of tie
        # breaks (allow small slack for different MST tie-breaking).
        assert tree_cost(ours) <= theirs.number_of_edges() + 2

    def test_two_approximation_bound_on_known_instance(self):
        # Optimal Steiner tree of the 4 corners of a 3x3 grid has 8 edges
        # (a plus/spanning shape); KMB must stay within 2x.
        g = nx.convert_node_labels_to_integers(nx.grid_2d_graph(3, 3))
        tree = steiner_tree_kmb(g, [0, 2, 6, 8])
        assert tree_cost(tree) <= 2 * 8
        validate_tree(tree, 0, [2, 6, 8])
