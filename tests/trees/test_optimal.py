"""Tests for the exact Steiner solver and the heuristic bounds it anchors."""

import random

import networkx as nx
import pytest

from repro.trees.git import greedy_incremental_tree
from repro.trees.optimal import steiner_cost_exact, steiner_tree_exact
from repro.trees.spt import tree_cost, validate_tree
from repro.trees.steiner import steiner_tree_kmb


class TestExactBasics:
    def test_two_terminals_shortest_path(self):
        g = nx.path_graph(6)
        assert steiner_cost_exact(g, [0, 5]) == 5

    def test_single_terminal(self):
        t = steiner_tree_exact(nx.path_graph(3), [2])
        assert t.number_of_nodes() == 1

    def test_no_terminals_rejected(self):
        with pytest.raises(ValueError):
            steiner_tree_exact(nx.path_graph(3), [])

    def test_too_many_terminals_rejected(self):
        g = nx.complete_graph(20)
        with pytest.raises(ValueError):
            steiner_tree_exact(g, list(range(11)))

    def test_disconnected_raises(self):
        g = nx.Graph()
        g.add_edge(0, 1)
        g.add_node(9)
        with pytest.raises(nx.NetworkXNoPath):
            steiner_tree_exact(g, [0, 9])

    def test_star_optimum_uses_steiner_point(self):
        g = nx.star_graph(4)  # hub 0, leaves 1..4
        tree = steiner_tree_exact(g, [1, 2, 3])
        validate_tree(tree, 1, [2, 3])
        assert tree_cost(tree) == 3
        assert 0 in tree.nodes

    def test_grid_corners_optimum(self):
        # 3x3 grid, 4 corners: OPT is the 6-edge "H" through the middle
        # row/column (e.g. 0-1-2, 1-4-7, 6-7-8).
        g = nx.convert_node_labels_to_integers(nx.grid_2d_graph(3, 3))
        cost = steiner_cost_exact(g, [0, 2, 6, 8])
        assert cost == 6

    def test_weighted_instance(self):
        g = nx.Graph()
        g.add_edge(0, 1, weight=1.0)
        g.add_edge(1, 2, weight=1.0)
        g.add_edge(0, 2, weight=5.0)
        g.add_edge(1, 3, weight=1.0)
        cost = steiner_cost_exact(g, [0, 2, 3], weight="weight")
        assert cost == pytest.approx(3.0)

    def test_returns_valid_tree(self):
        g = nx.convert_node_labels_to_integers(nx.grid_2d_graph(4, 4))
        terminals = [0, 3, 12, 15]
        tree = steiner_tree_exact(g, terminals)
        validate_tree(tree, terminals[0], terminals[1:])


class TestHeuristicBounds:
    def _random_cases(self, count=15, max_nodes=14):
        rng = random.Random(6)
        for i in range(count):
            n = rng.randint(5, max_nodes)
            g = nx.gnp_random_graph(n, 0.4, seed=i)
            order = list(range(n))
            rng.shuffle(order)
            nx.add_path(g, order)  # ensure connectivity
            k = rng.randint(2, min(5, n))
            terminals = rng.sample(range(n), k)
            yield g, terminals

    def test_kmb_within_two_of_optimum(self):
        for g, terminals in self._random_cases():
            opt = steiner_cost_exact(g, terminals)
            kmb = tree_cost(steiner_tree_kmb(g, terminals))
            assert opt <= kmb <= 2 * opt + 1e-9

    def test_git_within_two_of_optimum(self):
        for g, terminals in self._random_cases():
            opt = steiner_cost_exact(g, terminals)
            git = tree_cost(
                greedy_incremental_tree(g, terminals[0], terminals[1:], order="nearest")
            )
            assert opt <= git <= 2 * opt + 1e-9

    def test_exact_never_above_heuristics(self):
        for g, terminals in self._random_cases(count=10):
            opt = steiner_cost_exact(g, terminals)
            kmb = tree_cost(steiner_tree_kmb(g, terminals))
            git = tree_cost(
                greedy_incremental_tree(g, terminals[0], terminals[1:], order="nearest")
            )
            assert opt <= min(kmb, git) + 1e-9
