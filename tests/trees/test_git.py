"""Unit tests for the greedy incremental tree."""

import networkx as nx
import pytest

from repro.trees.git import greedy_incremental_tree
from repro.trees.spt import shortest_path_tree, tree_cost, validate_tree


class TestGIT:
    def test_single_source_is_shortest_path(self):
        g = nx.Graph()
        nx.add_path(g, range(5))
        tree = greedy_incremental_tree(g, sink=4, sources=[0])
        assert tree_cost(tree) == 4

    def test_second_source_grafts_at_closest_point(self):
        # 0-1-2-3(sink), with 4 adjacent to 2 only.
        g = nx.Graph()
        nx.add_path(g, [0, 1, 2, 3])
        g.add_edge(4, 2)
        tree = greedy_incremental_tree(g, sink=3, sources=[0, 4])
        assert tree_cost(tree) == 4  # 3 path edges + 1 graft edge
        assert tree.has_edge(4, 2)

    def test_paper_motivating_example_beats_spt(self):
        """Fig 1's structure: two sources near each other, far from the
        sink; GIT merges them early, SPT-like routing does not.

            s1 - a - b - c - sink
            s2 - a'  (a' adjacent to a and s2)

        Build a graph where independent shortest paths cost more than the
        shared greedy tree.
        """
        g = nx.Graph()
        nx.add_path(g, ["s1", "a", "b", "c", "sink"])
        g.add_edge("s2", "a")
        # An alternative equal-length path for s2 that shares nothing:
        nx.add_path(g, ["s2", "x", "y", "z", "sink"])
        git = greedy_incremental_tree(g, "sink", ["s1", "s2"], order="nearest")
        assert tree_cost(git) == 5  # s1-a-b-c-sink plus s2-a

    def test_nearest_order_connects_closest_first(self):
        g = nx.Graph()
        nx.add_path(g, [0, 1, 2, 3, 4])  # sink at 0; sources 4 (far), 1 (near)
        tree = greedy_incremental_tree(g, 0, [4, 1], order="nearest")
        validate_tree(tree, 0, [1, 4])
        assert tree_cost(tree) == 4

    def test_given_order_respected(self):
        g = nx.cycle_graph(6)
        t1 = greedy_incremental_tree(g, 0, [2, 3], order="given")
        validate_tree(t1, 0, [2, 3])

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            greedy_incremental_tree(nx.path_graph(3), 0, [2], order="magic")

    def test_disconnected_raises(self):
        g = nx.Graph()
        g.add_edge(0, 1)
        g.add_node(5)
        with pytest.raises(nx.NetworkXNoPath):
            greedy_incremental_tree(g, 0, [5])

    def test_source_on_existing_tree_costs_nothing(self):
        g = nx.path_graph(5)
        t = greedy_incremental_tree(g, 4, [0, 2])  # 2 lies on 0's path
        assert tree_cost(t) == 4

    def test_result_always_tree(self):
        g = nx.convert_node_labels_to_integers(nx.grid_2d_graph(5, 5))
        tree = greedy_incremental_tree(g, 0, [6, 12, 18, 24], order="nearest")
        validate_tree(tree, 0, [6, 12, 18, 24])

    def test_git_never_worse_than_spt_on_grids(self):
        g = nx.convert_node_labels_to_integers(nx.grid_2d_graph(6, 6))
        sources = [7, 14, 21, 28, 35]
        git = greedy_incremental_tree(g, 0, sources, order="nearest")
        spt = shortest_path_tree(g, 0, sources)
        assert tree_cost(git) <= tree_cost(spt)

    def test_weighted_graft(self):
        g = nx.Graph()
        g.add_edge(0, 1, weight=1.0)
        g.add_edge(1, 2, weight=1.0)
        g.add_edge(3, 1, weight=0.5)
        g.add_edge(3, 2, weight=10.0)
        tree = greedy_incremental_tree(g, 0, [2, 3], order="given", weight="weight")
        assert tree.has_edge(3, 1)  # cheap graft, not the heavy direct edge
