"""Unit tests for the shortest-path tree baseline."""

import networkx as nx
import pytest

from repro.trees.spt import shortest_path_tree, tree_cost, validate_tree


def path_graph(n):
    g = nx.Graph()
    nx.add_path(g, range(n))
    return g


class TestSPT:
    def test_chain(self):
        g = path_graph(5)
        tree = shortest_path_tree(g, sink=4, sources=[0])
        assert tree_cost(tree) == 4

    def test_union_shares_common_prefix(self):
        # Star into a chain: 0-2, 1-2, 2-3-4(sink)
        g = nx.Graph()
        g.add_edges_from([(0, 2), (1, 2), (2, 3), (3, 4)])
        tree = shortest_path_tree(g, sink=4, sources=[0, 1])
        assert tree_cost(tree) == 4  # shared 2-3-4 segment counted once

    def test_result_is_a_tree(self):
        g = nx.grid_2d_graph(4, 4)
        g = nx.convert_node_labels_to_integers(g)
        tree = shortest_path_tree(g, sink=0, sources=[5, 10, 15])
        validate_tree(tree, 0, [5, 10, 15])

    def test_consistent_predecessors_no_cycles(self):
        # A graph with many equal shortest paths must still give a tree.
        g = nx.complete_graph(6)
        tree = shortest_path_tree(g, sink=0, sources=[1, 2, 3, 4, 5])
        validate_tree(tree, 0, [1, 2, 3, 4, 5])
        assert tree_cost(tree) == 5

    def test_source_equals_sink(self):
        g = path_graph(3)
        tree = shortest_path_tree(g, sink=0, sources=[0])
        assert tree_cost(tree) == 0

    def test_disconnected_source_raises(self):
        g = path_graph(3)
        g.add_node(99)
        with pytest.raises(KeyError):
            shortest_path_tree(g, sink=0, sources=[99])

    def test_weighted_paths(self):
        g = nx.Graph()
        g.add_edge(0, 1, weight=10.0)
        g.add_edge(0, 2, weight=1.0)
        g.add_edge(2, 1, weight=1.0)
        tree = shortest_path_tree(g, sink=0, sources=[1], weight="weight")
        assert tree_cost(tree, weight="weight") == 2.0


class TestValidate:
    def test_missing_terminal_rejected(self):
        tree = nx.Graph()
        tree.add_edge(0, 1)
        with pytest.raises(ValueError, match="misses"):
            validate_tree(tree, 0, [5])

    def test_cycle_rejected(self):
        tree = nx.cycle_graph(3)
        with pytest.raises(ValueError, match="cycle"):
            validate_tree(tree, 0, [1])

    def test_disconnected_rejected(self):
        tree = nx.Graph()
        tree.add_edge(0, 1)
        tree.add_edge(2, 3)
        with pytest.raises(ValueError):
            validate_tree(tree, 0, [1, 2])
