"""Load tester against a live daemon.

The in-suite test keeps the replay modest; the acceptance-scale run
(>= 500 truly concurrent submissions) is opt-in via
``REPRO_SLOW_TESTS=1`` (also marked ``slow``) so the default suite
stays fast.
"""

import os

import pytest

from repro.service.loadtest import run_load_test

from .helpers import with_daemon

WARM_SPEC = {
    "kind": "figure",
    "figure": "fig5",
    "profile": "smoke",
    "xs": [50],
    "trials": 1,
}


def _warm_then_load(client, requests, concurrency):
    """Warm the store through the daemon, then replay submissions."""
    first = client.submit(WARM_SPEC)
    client.wait(first["job"]["id"], timeout=180)
    return run_load_test(
        client.host,
        client.port,
        spec=WARM_SPEC,
        requests=requests,
        concurrency=concurrency,
        timeout=60.0,
    )


class TestLoadTest:
    def test_warm_replay_zero_errors(self, tmp_path):
        def scenario(client, daemon):
            return _warm_then_load(client, requests=80, concurrency=40)

        summary = with_daemon(tmp_path / "store", scenario)
        assert summary["errors"] == 0, summary["error_samples"]
        assert summary["ok"] == 80
        assert summary["job_statuses"].get("done") == 80  # all warm hits
        assert summary["latency_s"]["p95"] > 0
        assert summary["rps"] > 0

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            run_load_test("127.0.0.1", 1, requests=0)


@pytest.mark.slow
@pytest.mark.skipif(
    not os.environ.get("REPRO_SLOW_TESTS"),
    reason="acceptance-scale load test; set REPRO_SLOW_TESTS=1",
)
class TestLoadTestAtScale:
    def test_500_concurrent_figure_requests(self, tmp_path):
        def scenario(client, daemon):
            return _warm_then_load(client, requests=500, concurrency=500)

        summary = with_daemon(tmp_path / "store", scenario)
        assert summary["errors"] == 0, summary["error_samples"]
        assert summary["ok"] == 500
