"""SSE robustness: late subscribers and mid-stream disconnects.

Two failure modes the progress stream must survive: a client that
subscribes after the job already finished (must still get the terminal
snapshot, not hang), and a client that vanishes mid-stream (the
handler task must notice and exit rather than leak, parked forever in
``wait_change``).
"""

import asyncio
import socket
import time

from .helpers import with_daemon

FIG_SPEC = {
    "kind": "figure",
    "figure": "fig5",
    "profile": "smoke",
    "xs": [50],
    "trials": 1,
}


def _live_handlers(daemon) -> int:
    """Count un-finished connection-handler tasks on the daemon's loop."""
    loop = daemon._server.get_loop()

    async def _count():
        return sum(
            1
            for t in asyncio.all_tasks()
            if not t.done() and "_handle_conn" in repr(t.get_coro())
        )

    return asyncio.run_coroutine_threadsafe(_count(), loop).result(5)


class TestLateSubscriber:
    def test_subscriber_after_finish_gets_terminal_event(self, tmp_path):
        def scenario(client, daemon):
            job = client.submit(FIG_SPEC)["job"]
            client.wait(job["id"], timeout=180)
            # subscribe only now, long after the last version bump
            return list(client.stream(job["id"]))

        events = with_daemon(tmp_path / "store", scenario)
        assert len(events) == 1  # one terminal snapshot, then EOF
        assert events[0]["status"] == "done"
        assert events[0]["progress"]["done"] == events[0]["progress"]["total"]

    def test_late_subscriber_to_failed_job_terminates_too(self, tmp_path):
        import dataclasses

        from repro.experiments.config import ExperimentConfig, smoke

        cfg = ExperimentConfig.from_profile(
            smoke(), "greedy", 2, seed=1, n_sources=5, n_sinks=5
        )
        bad = {"kind": "run", "config": dataclasses.asdict(cfg)}

        def scenario(client, daemon):
            job = client.submit(bad)["job"]
            status = client.wait(job["id"], timeout=180)
            assert status["status"] == "failed"
            return list(client.stream(job["id"]))

        events = with_daemon(tmp_path / "store", scenario)
        assert len(events) == 1
        assert events[0]["status"] == "failed"


class TestMidStreamDisconnect:
    def test_disconnect_does_not_leak_handler_task(self, tmp_path):
        def scenario(client, daemon):
            job = client.submit(FIG_SPEC)["job"]
            # raw socket so we can drop the connection without cleanup
            sock = socket.create_connection(("127.0.0.1", daemon.port), timeout=10)
            sock.sendall(
                f"GET /api/v1/jobs/{job['id']}/events HTTP/1.1\r\n"
                f"Host: 127.0.0.1\r\n\r\n".encode("ascii")
            )
            first = sock.recv(4096)  # headers (+ first snapshot)
            assert b"200 OK" in first
            assert _live_handlers(daemon) >= 1
            sock.close()  # vanish mid-stream, no goodbye

            client.wait(job["id"], timeout=180)
            # the abandoned handler must notice within ~a keep-alive
            # period and exit; poll rather than sleep a fixed amount
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if _live_handlers(daemon) == 0:
                    return True
                time.sleep(0.05)
            return _live_handlers(daemon)

        leaked = with_daemon(
            tmp_path / "store", scenario, sse_keepalive=0.2
        )
        assert leaked is True, f"{leaked} SSE handler task(s) still alive"

    def test_stream_survives_for_connected_subscribers(self, tmp_path):
        """A dropped subscriber must not poison the job for live ones."""

        def scenario(client, daemon):
            job = client.submit(FIG_SPEC)["job"]
            sock = socket.create_connection(("127.0.0.1", daemon.port), timeout=10)
            sock.sendall(
                f"GET /api/v1/jobs/{job['id']}/events HTTP/1.1\r\n"
                f"Host: 127.0.0.1\r\n\r\n".encode("ascii")
            )
            sock.recv(4096)
            sock.close()
            events = list(client.stream(job["id"]))  # a healthy subscriber
            return events

        events = with_daemon(tmp_path / "store", scenario, sse_keepalive=0.2)
        assert events[-1]["status"] == "done"
