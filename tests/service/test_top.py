"""The ``repro top`` dashboard: pure rendering plus one live refresh."""

import io

from repro.service.top import render_top, run_top

from .helpers import with_daemon

FIG_SPEC = {
    "kind": "figure",
    "figure": "fig5",
    "profile": "smoke",
    "xs": [50],
    "trials": 1,
}

SYNTHETIC_METRICS = {
    "derived": {
        "workers_busy": 1,
        "queue_depth": 3,
        "jobs": 2,
        "hit_ratio": 0.25,
        "store_lookups": 8,
    },
    "registry": {
        "counters": {
            "service.jobs_submitted{kind=figure}": 4,
            "service.jobs_submitted{kind=run}": 1,
            "service.jobs_done": 3,
            "service.jobs_failed": 1,
            "service.jobs_coalesced": 2,
            "service.runs_executed": 6,
            "http.errors{route=/metrics}": 1,
        },
        "gauges": {"service.run_workers": 2},
    },
    "spans": {"capacity": 8192, "retained": 40, "active": 1, "dropped": 0},
    "backend": {"entries": 6},
    "latency": {
        "GET /metrics": {
            "count": 7,
            "sum": 0.014,
            "mean": 0.002,
            "p50": 0.001,
            "p95": 0.005,
            "p99": 0.009,
        }
    },
    "job_wall": {
        "count": 4,
        "sum": 8.0,
        "mean": 2.0,
        "p50": 1.5,
        "p95": 3.0,
        "p99": 3.5,
    },
}


class TestRenderTop:
    def test_renders_synthetic_payload(self):
        frame = render_top(SYNTHETIC_METRICS)
        assert "1/2 busy" in frame
        assert "queue depth 3" in frame
        # counter families sum across label series
        assert "submitted 5" in frame
        assert "coalesced 2" in frame
        assert "store hit ratio  25.0%" in frame
        assert "6 runs stored" in frame
        assert "retained 40/8192" in frame
        assert "http 5xx 1" in frame
        # latency row: route, count, then the three quantiles in ms
        assert "GET /metrics" in frame
        assert "1.00" in frame and "5.00" in frame and "9.00" in frame
        assert "job wall time: n=4" in frame

    def test_renders_empty_payload(self):
        frame = render_top({})
        assert "no requests observed yet" in frame
        assert "0/0 busy" in frame

    def test_uptime_from_health(self):
        frame = render_top(SYNTHETIC_METRICS, health={"started_at": 0.0})
        assert "up " in frame


class TestRunTop:
    def test_one_live_iteration(self, tmp_path):
        def scenario(client, daemon):
            job = client.submit(FIG_SPEC)["job"]
            client.wait(job["id"], timeout=180)
            out = io.StringIO()
            code = run_top(
                port=daemon.port, iterations=1, stream=out, clear=False
            )
            return code, out.getvalue()

        code, frame = with_daemon(tmp_path / "store", scenario)
        assert code == 0
        assert "repro serve — live" in frame
        assert "POST /api/v1/jobs" in frame  # live latency table row
        assert "\x1b[2J" not in frame  # clear=False leaves the frame greppable

    def test_unreachable_daemon_exits_nonzero(self):
        out = io.StringIO()
        code = run_top(port=1, iterations=1, stream=out, clear=False)
        assert code == 1
        assert "cannot reach daemon" in out.getvalue()
