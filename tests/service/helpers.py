"""Drive a live ServiceDaemon from synchronous test code.

The daemon is asyncio; the bundled client is blocking.  ``with_daemon``
owns the event loop on the test's thread, runs the client scenario in a
worker thread, and joins both — any client-side assertion error is
re-raised on the test thread.
"""

import asyncio
import threading

from repro.service import JobScheduler, LocalDirBackend, ServiceDaemon
from repro.service.client import ServiceClient


def with_daemon(
    store_root,
    scenario,
    run_workers=2,
    job_workers=None,
    spans=None,
    log=None,
    sse_keepalive=15.0,
):
    """Run ``scenario(client, daemon)`` against a live daemon; returns its value.

    ``spans`` (a SpanStore) and ``log`` (a JsonLogger) override the
    scheduler's defaults; ``sse_keepalive`` shortens the SSE keep-alive
    period for disconnect tests.
    """
    box = {}

    async def main():
        backend = LocalDirBackend(store_root)
        scheduler = JobScheduler(
            backend,
            run_workers=run_workers,
            job_workers=job_workers,
            spans=spans,
            log=log,
        )
        daemon = ServiceDaemon(
            backend, scheduler, host="127.0.0.1", port=0, sse_keepalive=sse_keepalive
        )
        await daemon.start()
        errors = []

        def work():
            try:
                box["value"] = scenario(ServiceClient(port=daemon.port), daemon)
            except BaseException as exc:  # noqa: BLE001 - re-raised on the test thread
                errors.append(exc)

        thread = threading.Thread(target=work)
        thread.start()
        while thread.is_alive():
            await asyncio.sleep(0.02)
        thread.join()
        await daemon.stop()
        if errors:
            raise errors[0]

    asyncio.run(main())
    return box.get("value")
