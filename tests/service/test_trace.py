"""End-to-end request tracing through the live daemon.

The acceptance contract: one submitted figure job yields a complete
parent-linked span tree via ``GET /api/v1/jobs/{id}/trace`` — queue
wait, a dedup verdict per run key, worker execution carrying run
content keys, store writes — exportable to a Chrome/Perfetto trace,
with store-hit and cold-miss requests distinguishable from spans alone,
and RunMetrics bit-identical with tracing on or off.
"""

import json
import time

import pytest

from repro.obs.export import chrome_trace_to_timeline, spans_to_chrome_trace
from repro.obs.spans import SpanStore, span_tree
from repro.obs.timeline import TIMELINE_VERSION, Timeline
from repro.service.client import ServiceError

from .helpers import with_daemon

FIG_SPEC = {
    "kind": "figure",
    "figure": "fig5",
    "profile": "smoke",
    "xs": [50],
    "trials": 1,
}


def _by_name(spans, name):
    return [s for s in spans if s["name"] == name]


def _children(tree_node):
    return {c["name"] for c in tree_node["children"]}


class TestTraceEndToEnd:
    def test_cold_and_warm_span_trees(self, tmp_path):
        def scenario(client, daemon):
            cold = client.submit(FIG_SPEC)
            cold_id = cold["job"]["id"]
            assert cold["job"]["trace_id"]  # correlation id in the status payload
            client.wait(cold_id, timeout=180)
            warm = client.submit(FIG_SPEC)
            assert warm["job"]["from_cache"] is True
            return {
                "cold": client.trace(cold_id),
                "warm": client.trace(warm["job"]["id"]),
                "recent": client.recent_spans(limit=500, name="dedup"),
                "metrics": client.metrics(),
                "run_keys": [r["key"] for r in client.result(cold_id)["runs"]],
            }

        out = with_daemon(tmp_path / "store", scenario)
        run_keys = out["run_keys"]

        # --- cold job: complete parent-linked tree -------------------
        cold = out["cold"]
        assert cold["tracing_enabled"] is True
        names = [s["name"] for s in cold["spans"]]
        for expected in ("http.request", "http.parse", "job", "store.probe",
                         "queue.wait", "run", "dedup", "worker.execute",
                         "worker.run", "store.put", "response.write"):
            assert expected in names, f"missing {expected} in {names}"

        (root,) = cold["tree"]  # single root: the submitting http request
        assert root["name"] == "http.request"
        assert root["trace_id"] == cold["trace_id"]
        assert {"http.parse", "job", "response.write"} <= _children(root)
        job_node = next(c for c in root["children"] if c["name"] == "job")
        assert {"store.probe", "queue.wait", "run"} <= _children(job_node)

        # every run key appears on a run span AND its worker.execute span
        runs = _by_name(cold["spans"], "run")
        assert sorted(s["attributes"]["run.key"] for s in runs) == sorted(run_keys)
        executes = _by_name(cold["spans"], "worker.execute")
        assert sorted(s["attributes"]["run.key"] for s in executes) == sorted(run_keys)
        # in-worker spans crossed the process boundary with a pid
        workers = _by_name(cold["spans"], "worker.run")
        assert len(workers) == len(run_keys)
        assert all(s["attributes"]["worker.pid"] > 0 for s in workers)
        assert {s["parent_id"] for s in workers} == {s["span_id"] for s in executes}
        # one store write per executed run
        puts = _by_name(cold["spans"], "store.put")
        assert sorted(s["attributes"]["run.key"] for s in puts) == sorted(run_keys)
        # cold miss: one "miss" dedup verdict per run key
        cold_verdicts = {
            s["attributes"]["run.key"]: s["attributes"]["verdict"]
            for s in _by_name(cold["spans"], "dedup")
        }
        assert cold_verdicts == {k: "miss" for k in run_keys}
        # queue wait ended before the first worker execution started
        (queue_span,) = _by_name(cold["spans"], "queue.wait")
        assert queue_span["end_s"] <= min(s["start_s"] for s in executes) + 1e-6

        # --- warm job: store hits, no execution ----------------------
        warm = out["warm"]
        assert warm["trace_id"] != cold["trace_id"]
        warm_names = [s["name"] for s in warm["spans"]]
        assert "worker.execute" not in warm_names
        assert "queue.wait" not in warm_names  # never queued
        warm_verdicts = {
            s["attributes"]["run.key"]: s["attributes"]["verdict"]
            for s in _by_name(warm["spans"], "dedup")
        }
        assert warm_verdicts == {k: "store-hit" for k in run_keys}
        job_span = next(s for s in warm["spans"] if s["name"] == "job")
        assert job_span["attributes"]["from_cache"] is True

        # --- /api/v1/trace: filterable recent spans ------------------
        recent = out["recent"]
        assert all(s["name"] == "dedup" for s in recent["spans"])
        assert recent["stats"]["retained"] > 0
        assert recent["stats"]["dropped"] == 0

        # --- /metrics: percentile summaries + span stats -------------
        metrics = out["metrics"]
        submit_latency = metrics["latency"]["POST /api/v1/jobs"]
        assert submit_latency["count"] >= 2
        for q in ("p50", "p95", "p99"):
            assert submit_latency[q] is not None
            assert submit_latency[q] >= 0.0
        assert metrics["spans"]["retained"] > 0

    def test_trace_routes_errors(self, tmp_path):
        def scenario(client, daemon):
            with pytest.raises(ServiceError) as e404:
                client.trace("job-999999")
            assert e404.value.code == 404
            with pytest.raises(ServiceError) as e400:
                client._request("GET", "/api/v1/trace?limit=zero")
            assert e400.value.code == 400
            assert e400.value.correlation_id
            return True

        assert with_daemon(tmp_path / "store", scenario)


class TestUnhandledErrorsAreJson500s:
    def test_handler_crash_yields_json_500_with_correlation_id(self, tmp_path):
        """Regression: an unhandled handler exception must come back as a
        JSON 500 carrying the request's correlation id (not a dropped
        connection), bump ``http.errors``, and leave the daemon serving."""

        def scenario(client, daemon):
            def boom():
                raise RuntimeError("metrics backend exploded")

            daemon._metrics_payload = boom  # instance shadow, this daemon only
            with pytest.raises(ServiceError) as excinfo:
                client.metrics()
            err = excinfo.value
            assert err.code == 500
            assert "RuntimeError" in str(err)
            assert err.correlation_id  # the span's trace id, echoed back
            assert err.payload["correlation_id"] == err.correlation_id

            # the crash was counted against the resolved route...
            assert daemon.registry.value("http.errors", route="/metrics") == 1
            # ...its span is marked error and shares the correlation id
            # (the span ends just after the response hits the wire, so
            # give the daemon a beat to finish the handler)
            deadline = time.monotonic() + 5
            errored = []
            while not errored and time.monotonic() < deadline:
                errored = [
                    s
                    for s in daemon.spans.recent(name="http.request")
                    if s["status"] == "error"
                ]
                time.sleep(0.02)
            (err_span,) = errored
            assert err_span["trace_id"] == err.correlation_id
            assert err_span["attributes"]["code"] == 500

            # one bad request must not kill the daemon
            del daemon._metrics_payload
            assert client.metrics()["derived"] is not None
            assert client.health()["ok"] is True
            return True

        assert with_daemon(tmp_path / "store", scenario)


class TestChromeRoundTrip:
    def test_job_trace_exports_and_merges_with_timeline(self, tmp_path):
        def scenario(client, daemon):
            job = client.submit(FIG_SPEC)["job"]
            client.wait(job["id"], timeout=180)
            return client.trace(job["id"])

        trace = with_daemon(tmp_path / "store", scenario)
        timeline = Timeline.from_dict(
            {
                "timeline_version": TIMELINE_VERSION,
                "interval": 1.0,
                "duration": 1.0,
                "times": [0.0, 1.0],
                "probes": [
                    {"name": "nodes.alive", "kind": "int", "values": [5, 4]}
                ],
            }
        )
        out = spans_to_chrome_trace(
            trace["spans"], tmp_path / "trace.json", timeline=timeline
        )
        data = json.loads(out.read_text())
        slices = [e for e in data["traceEvents"] if e.get("ph") == "X"]
        assert {"queue.wait", "worker.execute", "store.put"} <= {
            e["name"] for e in slices
        }
        # service spans and in-sim probe series share one Perfetto view
        assert any(e.get("ph") == "C" for e in data["traceEvents"])
        # raw spans ride along losslessly; the tree reassembles from them
        roots = span_tree(data["otherData"]["spans"])
        assert [r["name"] for r in roots] == ["http.request"]
        # and the merged timeline still round-trips through the loader
        restored = chrome_trace_to_timeline(out)
        assert restored.as_dict()["probes"] == timeline.as_dict()["probes"]


class TestBitIdentityTracingOnOff:
    def test_metrics_identical_with_and_without_spans(self, tmp_path):
        def scenario(client, daemon):
            job = client.submit(FIG_SPEC)["job"]
            client.wait(job["id"], timeout=180)
            return client.result(job["id"])

        traced = with_daemon(tmp_path / "on", scenario)
        untraced = with_daemon(tmp_path / "off", scenario, spans=SpanStore(0))
        assert [r["key"] for r in traced["runs"]] == [
            r["key"] for r in untraced["runs"]
        ]
        assert [r["metrics"] for r in traced["runs"]] == [
            r["metrics"] for r in untraced["runs"]
        ]
        assert traced["figure"] == untraced["figure"]

    def test_disabled_spans_daemon_reports_empty_trace(self, tmp_path):
        def scenario(client, daemon):
            job = client.submit(FIG_SPEC)["job"]
            client.wait(job["id"], timeout=180)
            return client.trace(job["id"]), client.metrics()

        trace, metrics = with_daemon(
            tmp_path / "store", scenario, spans=SpanStore(0)
        )
        assert trace["tracing_enabled"] is False
        assert trace["spans"] == [] and trace["tree"] == []
        assert trace["trace_id"]  # correlation ids still flow when disabled
        assert metrics["spans"]["retained"] == 0
