"""Structured JSON logs: line format, the disabled default, and
end-to-end correlation between log lines and the job's span tree."""

import io
import json

from repro.service.logs import JsonLogger

from .helpers import with_daemon

FIG_SPEC = {
    "kind": "figure",
    "figure": "fig5",
    "profile": "smoke",
    "xs": [50],
    "trials": 1,
}


class TestJsonLogger:
    def test_lines_are_parseable_json_with_envelope(self):
        out = io.StringIO()
        log = JsonLogger(stream=out)
        log.log("job.submitted", job="job-000001", runs=3)
        log.error("http.error", route="/metrics")
        lines = [json.loads(l) for l in out.getvalue().splitlines()]
        assert len(lines) == 2
        assert lines[0]["event"] == "job.submitted"
        assert lines[0]["level"] == "info"
        assert lines[0]["service"] == "repro-serve"
        assert lines[0]["job"] == "job-000001"
        assert lines[0]["ts"] > 0
        assert lines[1]["level"] == "error"
        assert log.lines == 2

    def test_disabled_logger_is_silent(self):
        out = io.StringIO()
        log = JsonLogger(enabled=False, stream=out)
        log.log("anything", a=1)
        assert out.getvalue() == ""
        assert log.lines == 0

    def test_keys_are_sorted_for_stable_diffs(self):
        out = io.StringIO()
        JsonLogger(stream=out).log("e", zebra=1, alpha=2)
        keys = list(json.loads(out.getvalue()).keys())
        assert keys == sorted(keys)


class TestEndToEndCorrelation:
    def test_log_lines_join_the_span_tree_on_correlation_id(self, tmp_path):
        out = io.StringIO()

        def scenario(client, daemon):
            job = client.submit(FIG_SPEC)["job"]
            client.wait(job["id"], timeout=180)
            return job, client.trace(job["id"])

        job, trace = with_daemon(
            tmp_path / "store", scenario, log=JsonLogger(stream=out)
        )
        lines = [json.loads(l) for l in out.getvalue().splitlines()]
        events = {l["event"] for l in lines}
        assert {"job.submitted", "job.started", "run.executed",
                "job.finished", "http.request"} <= events

        # the job lifecycle lines all carry the trace id of the
        # submitting request — grep one id, see the whole story
        lifecycle = [
            l for l in lines
            if l["event"].startswith("job.") and l.get("job") == job["id"]
        ]
        assert lifecycle and all(
            l["correlation_id"] == trace["trace_id"] for l in lifecycle
        )
        # ...and the http access line for the submit shares it too
        assert any(
            l["event"] == "http.request"
            and l["correlation_id"] == trace["trace_id"]
            for l in lines
        )
        finished = next(l for l in lines if l["event"] == "job.finished")
        assert finished["status"] == "done"
        submitted = next(l for l in lines if l["event"] == "job.submitted")
        assert finished["executed"] == submitted["runs"]  # cold: all executed
