"""Request parsing: untrusted JSON -> validated JobRequest."""

import dataclasses

import pytest

from repro.experiments.config import ExperimentConfig, smoke
from repro.experiments.figures import figure_plan
from repro.experiments.store import run_key
from repro.service.jobs import DEFAULT_PRIORITY, RequestError, parse_request


def _smoke_config_dict(seed=1, **overrides):
    cfg = ExperimentConfig.from_profile(smoke(), "greedy", 50, seed=seed, **overrides)
    return dataclasses.asdict(cfg)


class TestParseRun:
    def test_round_trips_config(self):
        raw = _smoke_config_dict()
        request = parse_request({"kind": "run", "config": raw})
        assert request.kind == "run"
        assert request.priority == DEFAULT_PRIORITY
        assert len(request.configs) == 1
        assert dataclasses.asdict(request.configs[0]) == raw
        assert request.run_keys == (run_key(request.configs[0]),)
        assert request.fplan is None

    def test_unknown_config_key_rejected(self):
        raw = _smoke_config_dict()
        raw["surprise"] = 7
        with pytest.raises(RequestError, match="surprise"):
            parse_request({"kind": "run", "config": raw})

    def test_bad_value_rejected(self):
        raw = _smoke_config_dict()
        raw["scheme"] = "magic"
        with pytest.raises(RequestError, match="scheme"):
            parse_request({"kind": "run", "config": raw})

    def test_unknown_top_level_field_rejected(self):
        with pytest.raises(RequestError, match="unknown request fields"):
            parse_request({"kind": "run", "config": _smoke_config_dict(), "mode": "x"})


class TestParseSweep:
    def test_preserves_order_and_keys(self):
        raws = [_smoke_config_dict(seed=s) for s in (1, 2, 3)]
        request = parse_request({"kind": "sweep", "configs": raws})
        assert [c.seed for c in request.configs] == [1, 2, 3]
        assert request.run_keys == tuple(run_key(c) for c in request.configs)

    def test_empty_sweep_rejected(self):
        with pytest.raises(RequestError, match="non-empty"):
            parse_request({"kind": "sweep", "configs": []})


class TestParseFigure:
    def test_matches_in_process_plan(self):
        """The service must enumerate exactly the harness's run plan."""
        request = parse_request(
            {"kind": "figure", "figure": "fig5", "profile": "smoke", "xs": [50, 100]}
        )
        fplan = figure_plan("fig5", smoke(), xs=[50, 100])
        assert request.fplan is not None
        assert request.configs == tuple(fplan.configs())
        assert request.spec["figure"] == "fig5"

    def test_unknown_figure_rejected(self):
        with pytest.raises(RequestError, match="unknown figure"):
            parse_request({"kind": "figure", "figure": "fig99"})

    def test_unknown_profile_rejected(self):
        with pytest.raises(RequestError, match="unknown profile"):
            parse_request({"kind": "figure", "figure": "fig5", "profile": "warp"})

    def test_bad_channel_rejected(self):
        with pytest.raises(RequestError, match="channel"):
            parse_request(
                {"kind": "figure", "figure": "fig5", "channel": {"model": "psychic"}}
            )

    def test_bad_trials_rejected(self):
        with pytest.raises(RequestError, match="trials"):
            parse_request({"kind": "figure", "figure": "fig5", "trials": 0})


class TestRequestKey:
    def test_same_experiment_same_key(self):
        """Byte-different JSON resolving to the same runs coalesces."""
        a = parse_request(
            {"kind": "figure", "figure": "fig5", "profile": "smoke", "xs": [50]}
        )
        b = parse_request(
            {"xs": [50], "profile": "smoke", "figure": "fig5", "kind": "figure"}
        )
        assert a.request_key == b.request_key

    def test_different_runs_different_key(self):
        a = parse_request(
            {"kind": "figure", "figure": "fig5", "profile": "smoke", "xs": [50]}
        )
        b = parse_request(
            {"kind": "figure", "figure": "fig5", "profile": "smoke", "xs": [100]}
        )
        assert a.request_key != b.request_key

    def test_priority_does_not_change_identity(self):
        a = parse_request({"kind": "run", "config": _smoke_config_dict()})
        b = parse_request({"kind": "run", "config": _smoke_config_dict(), "priority": 1})
        assert a.request_key == b.request_key

    def test_kind_in_identity(self):
        raw = _smoke_config_dict()
        a = parse_request({"kind": "run", "config": raw})
        b = parse_request({"kind": "sweep", "configs": [raw]})
        assert a.run_keys == b.run_keys
        assert a.request_key != b.request_key


class TestShapeErrors:
    def test_non_object_rejected(self):
        with pytest.raises(RequestError, match="JSON object"):
            parse_request([1, 2, 3])

    def test_unknown_kind_rejected(self):
        with pytest.raises(RequestError, match="kind"):
            parse_request({"kind": "meta-analysis"})

    def test_non_int_priority_rejected(self):
        with pytest.raises(RequestError, match="priority"):
            parse_request(
                {"kind": "run", "config": _smoke_config_dict(), "priority": "high"}
            )
