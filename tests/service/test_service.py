"""End-to-end daemon behavior: correctness, coalescing, failure isolation.

These tests run a real daemon on an ephemeral port and talk to it with
the bundled blocking client.  Everything uses the smoke profile over
tiny fields so the whole file stays test-suite-friendly.
"""

import dataclasses
import time

import pytest

from repro.experiments.config import ExperimentConfig, smoke
from repro.experiments.figures import figure_plan, run_figure_plan
from repro.experiments.persistence import figure_payload
from repro.service.client import ServiceError

from .helpers import with_daemon

FIG_SPEC = {
    "kind": "figure",
    "figure": "fig5",
    "profile": "smoke",
    "xs": [50],
    "trials": 1,
}


def _failing_config_dict():
    """Valid at construction, impossible to place at runtime."""
    cfg = ExperimentConfig.from_profile(
        smoke(), "greedy", 2, seed=1, n_sources=5, n_sinks=5
    )
    return dataclasses.asdict(cfg)


class TestFigureBitIdentity:
    def test_cold_then_warm_match_direct_run(self, tmp_path):
        """The figure served on a cold miss AND a warm hit equals the
        figure computed directly by the in-process harness."""
        fplan = figure_plan("fig5", smoke(), trials=1, xs=[50])
        direct = figure_payload(run_figure_plan(fplan))

        def scenario(client, daemon):
            cold = client.submit(FIG_SPEC)
            job_id = cold["job"]["id"]
            assert cold["job"]["status"] == "queued"
            status = client.wait(job_id, timeout=180)
            assert status["status"] == "done"
            assert status["runs"]["executed"] == len(fplan.plan)
            cold_result = client.result(job_id)

            warm = client.submit(FIG_SPEC)
            assert warm["job"]["status"] == "done"
            assert warm["job"]["from_cache"] is True
            assert warm["job"]["runs"]["hits"] == len(fplan.plan)
            warm_result = client.result(warm["job"]["id"])
            return cold_result, warm_result

        cold_result, warm_result = with_daemon(tmp_path / "store", scenario)
        assert cold_result["figure"] == direct
        assert warm_result["figure"] == direct
        assert [r["key"] for r in cold_result["runs"]] == [
            r["key"] for r in warm_result["runs"]
        ]
        assert all("metrics" in r for r in cold_result["runs"])


class TestCoalescing:
    def test_duplicate_concurrent_submissions_execute_once(self, tmp_path):
        def scenario(client, daemon):
            first = client.submit(FIG_SPEC)
            second = client.submit(FIG_SPEC)  # while the first is in flight
            assert second["coalesced"] is True
            assert second["job"]["id"] == first["job"]["id"]
            client.wait(first["job"]["id"], timeout=180)
            registry = daemon.registry
            return {
                "executed": registry.value("service.runs_executed"),
                "persisted": registry.value("store.persist"),
                "jobs_coalesced": registry.value("service.jobs_coalesced"),
            }

        counters = with_daemon(tmp_path / "store", scenario)
        n_runs = len(figure_plan("fig5", smoke(), trials=1, xs=[50]).plan)
        assert counters["executed"] == n_runs  # exactly one execution per run
        assert counters["persisted"] == n_runs
        assert counters["jobs_coalesced"] == 1

    def test_overlapping_jobs_share_runs(self, tmp_path):
        """Distinct requests overlapping on content keys never re-execute."""
        superset = {**FIG_SPEC, "xs": [50, 100]}
        n_unique = len(figure_plan("fig5", smoke(), trials=1, xs=[50, 100]).plan)

        def scenario(client, daemon):
            a = client.submit(superset)
            b = client.submit(FIG_SPEC)  # subset of a's runs
            assert b["coalesced"] is False  # different request, shared runs
            client.wait(a["job"]["id"], timeout=300)
            status_b = client.wait(b["job"]["id"], timeout=300)
            assert status_b["status"] == "done"
            return daemon.registry.value("service.runs_executed")

        executed = with_daemon(tmp_path / "store", scenario)
        assert executed == n_unique


class TestFailureIsolation:
    def test_failing_run_fails_job_but_daemon_serves(self, tmp_path):
        def scenario(client, daemon):
            bad = client.submit({"kind": "run", "config": _failing_config_dict()})
            status = client.wait(bad["job"]["id"], timeout=120)
            assert status["status"] == "failed"
            assert "1 of 1 runs failed" in status["error"]
            with pytest.raises(ServiceError) as excinfo:
                client.result(bad["job"]["id"])
            assert excinfo.value.code == 409
            # the daemon is unharmed: a good job still completes
            good = client.submit(FIG_SPEC)
            assert client.wait(good["job"]["id"], timeout=180)["status"] == "done"
            return daemon.registry.value("service.runs_failed")

        assert with_daemon(tmp_path / "store", scenario) == 1

    def test_bad_spec_is_400_and_daemon_serves(self, tmp_path):
        def scenario(client, daemon):
            with pytest.raises(ServiceError) as excinfo:
                client.submit({"kind": "figure", "figure": "fig99"})
            assert excinfo.value.code == 400
            assert client.health()["ok"] is True
            return True

        assert with_daemon(tmp_path / "store", scenario)

    def test_crashed_worker_fails_job_pool_recovers(self, tmp_path):
        """SIGKILLing the pool workers mid-run fails that job with a
        worker-death error; the rebuilt pool serves the next job."""
        slow = ExperimentConfig.from_profile(
            smoke(), "greedy", 150, seed=1, duration=120.0, warmup=10.0
        )

        def scenario(client, daemon):
            job = client.submit({"kind": "run", "config": dataclasses.asdict(slow)})
            job_id = job["job"]["id"]
            deadline = time.monotonic() + 60
            pool = None
            while time.monotonic() < deadline:
                pool = daemon.scheduler._pool
                if (
                    client.job(job_id)["status"] == "running"
                    and pool is not None
                    and pool._processes
                ):
                    break
                time.sleep(0.05)
            else:
                pytest.fail("job never started running")
            time.sleep(0.2)  # let the run actually enter the worker
            for proc in list(pool._processes.values()):
                proc.kill()
            status = client.wait(job_id, timeout=120)
            assert status["status"] == "failed"
            assert "worker process died" in status["error"]
            # pool was rebuilt: the daemon still executes fresh work
            good = client.submit(FIG_SPEC)
            assert client.wait(good["job"]["id"], timeout=180)["status"] == "done"
            return daemon.registry.value("service.pool_rebuilds")

        assert with_daemon(tmp_path / "store", scenario, run_workers=1) >= 1


class TestApiSurface:
    def test_metrics_jobs_runs_and_sse(self, tmp_path):
        def scenario(client, daemon):
            submitted = client.submit(FIG_SPEC)
            job_id = submitted["job"]["id"]
            snapshots = list(client.stream(job_id))
            assert snapshots[-1]["status"] == "done"
            assert snapshots[-1]["progress"]["done"] == snapshots[-1]["progress"]["total"]

            jobs = client.jobs()
            assert [j["id"] for j in jobs] == [job_id]

            runs = client.runs()
            result = client.result(job_id)
            assert {r["key"] for r in runs} == {r["key"] for r in result["runs"]}
            key = runs[0]["key"]
            entry = client.run(key)
            assert entry["key"] == key and "metrics" in entry

            metrics = client.metrics()
            derived = metrics["derived"]
            assert 0.0 <= (derived["hit_ratio"] or 0.0) <= 1.0
            assert derived["store_lookups"] > 0
            counters = metrics["registry"]["counters"]
            assert any(k.startswith("service.requests{") for k in counters)
            histograms = metrics["registry"]["histograms"]
            latency = [
                v
                for k, v in histograms.items()
                if k.startswith("service.request_latency_s{")
            ]
            assert latency and all(h["count"] >= 1 for h in latency)

            with pytest.raises(ServiceError) as excinfo:
                client.job("job-999999")
            assert excinfo.value.code == 404
            with pytest.raises(ServiceError) as excinfo:
                client.run("0" * 64)
            assert excinfo.value.code == 404
            return True

        assert with_daemon(tmp_path / "store", scenario)

    def test_priority_orders_queue(self, tmp_path):
        """With one job worker, a later low-priority-number submission
        drains before earlier default-priority ones."""

        def scenario(client, daemon):
            background = [
                client.submit({**FIG_SPEC, "xs": [50 + 50 * i]})["job"]["id"]
                for i in range(3)
            ]
            urgent = client.submit({**FIG_SPEC, "xs": [300], "priority": 1})["job"]["id"]
            done_order = []
            seen = set()
            deadline = time.monotonic() + 600
            while len(seen) < 4 and time.monotonic() < deadline:
                for job_id in background + [urgent]:
                    if job_id not in seen:
                        status = client.job(job_id)
                        if status["status"] == "done":
                            seen.add(job_id)
                            done_order.append(job_id)
                time.sleep(0.05)
            assert len(seen) == 4, "jobs did not finish in time"
            # the first background job was already running when the
            # urgent one arrived; the urgent job must beat the rest
            assert done_order.index(urgent) <= 1
            return True

        assert with_daemon(tmp_path / "store", scenario, run_workers=2, job_workers=1)
