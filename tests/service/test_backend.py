"""LocalDirBackend: RunStore pass-through + sqlite listing index."""

from repro.experiments.config import ExperimentConfig, smoke
from repro.experiments.metrics import RunMetrics
from repro.experiments.store import RunStore, run_key
from repro.service.backend import LocalDirBackend


def _cfg(seed=1):
    return ExperimentConfig.from_profile(
        smoke(), "greedy", 50, seed=seed, duration=8.0, warmup=3.0
    )


def _metrics(cfg, ratio=0.9):
    return RunMetrics(
        scheme=cfg.scheme,
        n_nodes=cfg.n_nodes,
        seed=cfg.seed,
        avg_dissipated_energy=1e-4,
        avg_delay=0.1,
        delivery_ratio=ratio,
        total_energy_j=0.5,
        distinct_delivered=7,
        events_sent=8,
        mean_degree=4.2,
    )


class TestLocalDirBackend:
    def test_put_then_get_round_trips(self, tmp_path):
        backend = LocalDirBackend(tmp_path / "store")
        cfg = _cfg()
        assert backend.get_run(cfg) is None
        key = backend.put_run(cfg, _metrics(cfg))
        assert key == run_key(cfg)
        assert backend.get_run(cfg) == _metrics(cfg)
        backend.close()

    def test_sqlite_index_tracks_puts(self, tmp_path):
        backend = LocalDirBackend(tmp_path / "store")
        for seed in (1, 2, 3):
            backend.put_run(_cfg(seed), _metrics(_cfg(seed)))
        rows = backend.summaries()
        assert {row["key"] for row in rows} == {run_key(_cfg(s)) for s in (1, 2, 3)}
        assert all(row["scheme"] == "greedy" for row in rows)
        assert backend.stats()["entries"] == 3
        backend.close()

    def test_put_is_idempotent_in_index(self, tmp_path):
        backend = LocalDirBackend(tmp_path / "store")
        cfg = _cfg()
        backend.put_run(cfg, _metrics(cfg))
        backend.put_run(cfg, _metrics(cfg))
        assert len(backend.summaries()) == 1
        backend.close()

    def test_entry_carries_identity_and_metrics(self, tmp_path):
        backend = LocalDirBackend(tmp_path / "store")
        cfg = _cfg()
        key = backend.put_run(cfg, _metrics(cfg))
        entry = backend.entry(key)
        assert entry is not None
        assert entry["key"] == key
        assert entry["identity"]["config"]["seed"] == cfg.seed
        assert entry["metrics"]["delivery_ratio"] == 0.9
        assert backend.entry("0" * 64) is None
        backend.close()

    def test_reopen_over_warm_store_reindexes(self, tmp_path):
        """A store warmed by direct sweeps lists fully on first open."""
        root = tmp_path / "store"
        store = RunStore(root)
        for seed in (1, 2):
            store.put(_cfg(seed), _metrics(_cfg(seed)))
        backend = LocalDirBackend(root)
        assert len(backend.summaries()) == 2
        backend.close()

    def test_reindex_drops_removed_entries(self, tmp_path):
        backend = LocalDirBackend(tmp_path / "store")
        cfg = _cfg()
        key = backend.put_run(cfg, _metrics(cfg))
        backend.store.rm([key])
        assert backend.reindex() == 0
        assert backend.summaries() == []
        backend.close()

    def test_timeline_pass_through(self, tmp_path):
        backend = LocalDirBackend(tmp_path / "store")
        cfg = _cfg()
        key = backend.put_run(cfg, _metrics(cfg))
        assert backend.timeline(key) is None
        backend.store.put_timeline(key, {"t": [0.0, 1.0], "series": {}})
        timeline = backend.timeline(key)
        assert timeline is not None and timeline["key"] == key
        backend.close()
