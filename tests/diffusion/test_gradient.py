"""Unit tests for gradient state."""

from repro.diffusion.gradient import GradientState, GradientTable


def table(timeout=15.0):
    return GradientTable(timeout)


class TestExploratoryGradients:
    def test_interest_sets_up_exploratory_gradient(self):
        t = table()
        g = t.refresh_exploratory(5, now=0.0)
        assert g.state == GradientState.EXPLORATORY
        assert g.expires_at == 15.0

    def test_refresh_extends_expiry(self):
        t = table()
        t.refresh_exploratory(5, now=0.0)
        g = t.refresh_exploratory(5, now=10.0)
        assert g.expires_at == 25.0

    def test_refresh_does_not_downgrade_data_gradient(self):
        t = table()
        t.reinforce(5, now=0.0)
        g = t.refresh_exploratory(5, now=1.0)
        assert g.is_data()


class TestReinforcement:
    def test_reinforce_upgrades(self):
        t = table()
        t.refresh_exploratory(5, now=0.0)
        g = t.reinforce(5, now=1.0)
        assert g.is_data()
        assert g.reinforced_at == 1.0

    def test_reinforce_creates_if_absent(self):
        t = table()
        g = t.reinforce(5, now=0.0)
        assert g.is_data()

    def test_single_outgoing_data_gradient(self):
        # Reinforcing a new preferred neighbor degrades the previous one.
        t = table()
        t.reinforce(5, now=0.0)
        t.reinforce(6, now=1.0)
        assert t.data_neighbors(now=1.0) == [6]
        assert t.get(5).state == GradientState.EXPLORATORY

    def test_re_reinforcing_same_neighbor_keeps_it(self):
        t = table()
        t.reinforce(5, now=0.0)
        t.reinforce(5, now=1.0)
        assert t.data_neighbors(now=1.0) == [5]


class TestDegradeAndExpiry:
    def test_degrade_data_gradient(self):
        t = table()
        t.reinforce(5, now=0.0)
        assert t.degrade(5) is True
        assert not t.has_data_gradient(now=0.0)

    def test_degrade_exploratory_is_noop(self):
        t = table()
        t.refresh_exploratory(5, now=0.0)
        assert t.degrade(5) is False

    def test_degrade_unknown_neighbor_is_noop(self):
        assert table().degrade(99) is False

    def test_expire_removes_stale(self):
        t = table(timeout=10.0)
        t.refresh_exploratory(5, now=0.0)
        t.refresh_exploratory(6, now=8.0)
        dead = t.expire(now=10.0)
        assert dead == [5]
        assert t.neighbors() == [6]

    def test_expired_data_gradients_invisible(self):
        t = table(timeout=10.0)
        t.reinforce(5, now=0.0)
        assert t.data_neighbors(now=11.0) == []
        assert not t.has_data_gradient(now=11.0)

    def test_neighbors_with_now_filters(self):
        t = table(timeout=10.0)
        t.refresh_exploratory(5, now=0.0)
        t.refresh_exploratory(6, now=5.0)
        assert set(t.neighbors(now=12.0)) == {6}

    def test_len(self):
        t = table()
        t.refresh_exploratory(1, now=0.0)
        t.refresh_exploratory(2, now=0.0)
        assert len(t) == 2
