"""Unit tests for the duplicate-suppression and exploratory caches."""

import pytest

from repro.diffusion.cache import ExploratoryCache, SeenCache


class TestSeenCache:
    def test_first_sighting_is_new(self):
        c = SeenCache()
        assert c.check_and_add("a") is True
        assert c.check_and_add("a") is False

    def test_contains(self):
        c = SeenCache()
        c.check_and_add("x")
        assert "x" in c
        assert "y" not in c

    def test_capacity_evicts_lru(self):
        c = SeenCache(capacity=2)
        c.check_and_add("a")
        c.check_and_add("b")
        c.check_and_add("c")  # evicts a
        assert "a" not in c
        assert "b" in c and "c" in c

    def test_recent_use_refreshes_lru_position(self):
        c = SeenCache(capacity=2)
        c.check_and_add("a")
        c.check_and_add("b")
        c.check_and_add("a")  # refresh a
        c.check_and_add("c")  # evicts b
        assert "a" in c and "b" not in c

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            SeenCache(capacity=0)


class TestExploratoryCache:
    def test_first_copy_flagged(self):
        c = ExploratoryCache()
        assert c.note_exploratory("k", neighbor=1, energy_cost=3.0, now=0.1) is True
        assert c.note_exploratory("k", neighbor=2, energy_cost=2.0, now=0.2) is False

    def test_per_neighbor_minimum_energy(self):
        c = ExploratoryCache()
        c.note_exploratory("k", 1, 5.0, 0.1)
        c.note_exploratory("k", 1, 3.0, 0.2)
        c.note_exploratory("k", 1, 7.0, 0.3)
        assert c.get("k").energy_by_neighbor[1] == 3.0

    def test_min_energy_across_neighbors(self):
        c = ExploratoryCache()
        c.note_exploratory("k", 1, 5.0, 0.1)
        c.note_exploratory("k", 2, 2.0, 0.2)
        assert c.get("k").min_energy() == 2.0

    def test_min_energy_empty(self):
        c = ExploratoryCache()
        c.note_incremental_cost("k", 1, 2.0, 0.1)
        assert c.get("k").min_energy() is None

    def test_capacity_bound(self):
        c = ExploratoryCache(capacity=2)
        c.note_exploratory("a", 1, 1.0, 0.1)
        c.note_exploratory("b", 1, 1.0, 0.2)
        c.note_exploratory("c", 1, 1.0, 0.3)
        assert c.get("a") is None
        assert c.get("c") is not None


class TestLowestDelayChoice:
    def test_first_deliverer_wins(self):
        c = ExploratoryCache()
        c.note_exploratory("k", 7, 9.0, 0.1)
        c.note_exploratory("k", 2, 1.0, 0.2)  # cheaper but later
        choice = c.lowest_delay_choice("k")
        assert choice.neighbor == 7
        assert not choice.via_incremental

    def test_unknown_key_none(self):
        assert ExploratoryCache().lowest_delay_choice("nope") is None


class TestLowestCostChoice:
    def test_cheapest_exploratory_wins(self):
        c = ExploratoryCache()
        c.note_exploratory("k", 1, 5.0, 0.1)
        c.note_exploratory("k", 2, 3.0, 0.2)
        choice = c.lowest_cost_choice("k")
        assert choice.neighbor == 2
        assert choice.cost == 3.0

    def test_incremental_cost_beats_higher_exploratory(self):
        # §4.1: the sink reinforces whoever sent the exploratory event or
        # the incremental cost message at the lowest energy cost.
        c = ExploratoryCache()
        c.note_exploratory("k", 1, 6.0, 0.1)
        c.note_incremental_cost("k", 9, 2.0, 0.3)
        choice = c.lowest_cost_choice("k")
        assert choice.neighbor == 9
        assert choice.via_incremental

    def test_tie_goes_to_exploratory(self):
        # "If the energy cost of an exploratory event and the incremental
        # cost message are equivalent, the sink reinforces the neighboring
        # node that sent the exploratory event."
        c = ExploratoryCache()
        c.note_incremental_cost("k", 9, 4.0, 0.05)
        c.note_exploratory("k", 1, 4.0, 0.2)
        choice = c.lowest_cost_choice("k")
        assert choice.neighbor == 1
        assert not choice.via_incremental

    def test_exploratory_tie_broken_by_delay(self):
        # "Other ties are decided in favor of the lowest delay."
        c = ExploratoryCache()
        c.note_exploratory("k", 5, 4.0, 0.3)
        c.note_exploratory("k", 1, 4.0, 0.1)
        assert c.lowest_cost_choice("k").neighbor == 1

    def test_incremental_only(self):
        c = ExploratoryCache()
        c.note_incremental_cost("k", 9, 2.0, 0.3)
        choice = c.lowest_cost_choice("k")
        assert choice.neighbor == 9

    def test_incremental_per_neighbor_min(self):
        c = ExploratoryCache()
        c.note_incremental_cost("k", 9, 5.0, 0.1)
        c.note_incremental_cost("k", 9, 2.0, 0.2)
        assert c.get("k").inc_cost_by_neighbor[9] == 2.0

    def test_unknown_key_none(self):
        assert ExploratoryCache().lowest_cost_choice("nope") is None
