"""Tests for the two-timescale gradient lifetime (existence vs data state)."""

from repro.diffusion.gradient import GradientState, GradientTable


class TestDataLifetime:
    def test_data_state_decays_after_data_timeout(self):
        t = GradientTable(gradient_timeout=15.0, data_timeout=44.0)
        t.reinforce(5, now=0.0)
        assert t.data_neighbors(now=40.0) == [5]
        assert t.data_neighbors(now=44.5) == []

    def test_entry_outlives_data_state(self):
        # The gradient entry persists (it is still exploratory demand)
        # even after the data strength decays.
        t = GradientTable(gradient_timeout=15.0, data_timeout=44.0)
        t.reinforce(5, now=0.0)
        assert 5 in t.neighbors(now=43.0)

    def test_rereinforcement_extends_data_state(self):
        t = GradientTable(gradient_timeout=15.0, data_timeout=44.0)
        t.reinforce(5, now=0.0)
        t.reinforce(5, now=20.0)
        assert t.data_neighbors(now=60.0) == [5]
        assert t.data_neighbors(now=65.0) == []

    def test_interest_refresh_does_not_extend_data_state(self):
        # Only reinforcement refreshes data strength; interests refresh
        # existence only.
        t = GradientTable(gradient_timeout=15.0, data_timeout=20.0)
        t.reinforce(5, now=0.0)
        t.refresh_exploratory(5, now=18.0)
        assert t.data_neighbors(now=21.0) == []
        assert 5 in t.neighbors(now=21.0)

    def test_default_data_timeout_equals_gradient_timeout(self):
        t = GradientTable(gradient_timeout=15.0)
        t.reinforce(5, now=0.0)
        assert t.data_neighbors(now=14.0) == [5]
        assert t.data_neighbors(now=15.5) == []

    def test_degrade_clears_data_until(self):
        t = GradientTable(gradient_timeout=15.0, data_timeout=44.0)
        t.reinforce(5, now=0.0)
        t.degrade(5)
        assert t.data_neighbors(now=1.0) == []
        # Re-reinforcement restores the full data lifetime.
        t.reinforce(5, now=2.0)
        assert t.data_neighbors(now=45.0) == [5]

    def test_single_outgoing_applies_across_lifetimes(self):
        t = GradientTable(gradient_timeout=15.0, data_timeout=44.0)
        t.reinforce(5, now=0.0)
        t.reinforce(6, now=10.0)
        assert t.data_neighbors(now=11.0) == [6]
        assert t.get(5).state == GradientState.EXPLORATORY
