"""Unit tests for attribute-based naming and matching."""

import pytest

from repro.diffusion.attributes import (
    AttributeSet,
    InterestSpec,
    Op,
    Predicate,
    node_attributes,
    tracking_task,
)


class TestAttributeSet:
    def test_mapping_access(self):
        attrs = AttributeSet({"task": "tracking", "x": 5.0})
        assert attrs["task"] == "tracking"
        assert attrs["x"] == 5.0
        assert len(attrs) == 2
        assert set(attrs) == {"task", "x"}

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            AttributeSet({})["nope"]

    def test_hashable_and_equal_by_content(self):
        a = AttributeSet({"x": 1, "y": 2})
        b = AttributeSet({"y": 2, "x": 1})
        assert hash(a) == hash(b)

    def test_immutable(self):
        attrs = AttributeSet({"x": 1})
        with pytest.raises(AttributeError):
            attrs.x = 2  # type: ignore[attr-defined]

    def test_from_pairs(self):
        attrs = AttributeSet([("a", 1), ("b", 2)])
        assert attrs["b"] == 2


class TestPredicate:
    def test_is_operator(self):
        p = Predicate("task", Op.IS, "tracking")
        assert p.holds(AttributeSet({"task": "tracking"}))
        assert not p.holds(AttributeSet({"task": "other"}))

    def test_ge_le_operators(self):
        attrs = AttributeSet({"x": 10.0})
        assert Predicate("x", Op.GE, 5.0).holds(attrs)
        assert Predicate("x", Op.LE, 15.0).holds(attrs)
        assert not Predicate("x", Op.GE, 11.0).holds(attrs)
        assert not Predicate("x", Op.LE, 9.0).holds(attrs)

    def test_boundary_inclusive(self):
        attrs = AttributeSet({"x": 10.0})
        assert Predicate("x", Op.GE, 10.0).holds(attrs)
        assert Predicate("x", Op.LE, 10.0).holds(attrs)

    def test_missing_key_fails(self):
        assert not Predicate("x", Op.IS, 1).holds(AttributeSet({}))

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            Predicate("x", "like", 1)


class TestInterestSpec:
    def test_conjunction(self):
        spec = InterestSpec.of(
            Predicate("task", Op.IS, "tracking"), Predicate("x", Op.GE, 0.0)
        )
        assert spec.matches(AttributeSet({"task": "tracking", "x": 1.0}))
        assert not spec.matches(AttributeSet({"task": "tracking", "x": -1.0}))

    def test_empty_spec_matches_everything(self):
        assert InterestSpec.of().matches(AttributeSet({}))

    def test_tracking_task_region(self):
        spec = tracking_task("tracking", 0, 0, 80, 80)
        inside = node_attributes("tracking", 40, 40)
        outside = node_attributes("tracking", 100, 40)
        wrong_task = node_attributes("sensing", 40, 40)
        assert spec.matches(inside)
        assert not spec.matches(outside)
        assert not spec.matches(wrong_task)

    def test_tracking_task_boundary(self):
        spec = tracking_task("tracking", 0, 0, 80, 80)
        assert spec.matches(node_attributes("tracking", 80, 80))
        assert spec.matches(node_attributes("tracking", 0, 0))
