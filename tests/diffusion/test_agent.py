"""Integration tests for the shared diffusion engine on tiny networks.

These exercise real packet exchange over the full stack (radio + MAC) on
hand-built geometries where the correct behaviour is known exactly.
"""

from repro.diffusion.agent import DiffusionParams
from repro.diffusion.opportunistic import OpportunisticAgent
from repro.experiments.metrics import MetricsCollector
from tests.helpers import MiniWorld, chain_positions

PARAMS = DiffusionParams(exploratory_interval=8.0, interest_interval=4.0)


def chain_world(n, sources, sink, metrics=None, params=PARAMS):
    w = MiniWorld(chain_positions(n))
    w.attach_agents(
        OpportunisticAgent, params=params, metrics=metrics, sources=sources, sink=sink
    )
    return w


class TestInterestPropagation:
    def test_interest_floods_whole_network(self):
        w = chain_world(5, sources=[0], sink=4)
        w.run(until=3.0)
        # Every non-sink node must know the interest.
        for agent in w.agents[:4]:
            assert 4 in agent.known_interests

    def test_gradients_point_toward_interest_senders(self):
        w = chain_world(4, sources=[0], sink=3)
        w.run(until=3.0)
        # Node 1 hears the interest from 0 and 2 -> gradients toward both.
        assert set(w.agents[1].gradients[3].neighbors()) == {0, 2}

    def test_sink_has_no_gradient_for_own_interest(self):
        w = chain_world(3, sources=[0], sink=2)
        w.run(until=3.0)
        assert 2 not in w.agents[2].gradients or len(w.agents[2].gradients[2]) == 0

    def test_duplicate_interest_not_reflooded(self):
        w = chain_world(3, sources=[0], sink=2)
        w.run(until=3.0)
        # Each refresh is forwarded at most once per node: forwarded count
        # is bounded by refreshes x non-sink nodes.
        refreshes = w.tracer.value("diffusion.interest_originated")
        assert w.tracer.value("diffusion.interest_forwarded") <= refreshes * 2


class TestSourceActivation:
    def test_matching_node_becomes_source(self):
        w = chain_world(4, sources=[0], sink=3)
        w.run(until=3.0)
        assert 3 in w.agents[0].source_for
        assert w.tracer.value("diffusion.source_activated") == 1

    def test_non_matching_nodes_stay_quiet(self):
        w = chain_world(4, sources=[0], sink=3)
        w.run(until=3.0)
        for i in (1, 2, 3):
            assert not w.agents[i].source_for

    def test_source_emits_exploratory_events(self):
        w = chain_world(4, sources=[0], sink=3)
        w.run(until=5.0)
        assert w.tracer.value("diffusion.exploratory_originated") >= 1

    def test_source_stops_when_interest_stale(self):
        w = chain_world(4, sources=[0], sink=3)
        w.run(until=3.0)
        gen_before = w.tracer.value("diffusion.item_generated")
        assert gen_before > 0
        # Kill the sink: no more refreshes; generation must cease after
        # the gradient timeout.
        w.nodes[3].fail()
        w.run(until=3.0 + PARAMS.gradient_timeout + 3.0)
        settled = w.tracer.value("diffusion.item_generated")
        w.run(until=3.0 + PARAMS.gradient_timeout + 6.0)
        assert w.tracer.value("diffusion.item_generated") == settled


class TestDataDelivery:
    def test_items_delivered_to_sink(self):
        metrics = MetricsCollector(warmup_end=0.0)
        w = chain_world(4, sources=[0], sink=3, metrics=metrics)
        w.run(until=10.0)
        assert metrics.total_distinct_delivered() > 0
        assert metrics.delivery_ratio() > 0.7

    def test_delay_reflects_hops(self):
        metrics = MetricsCollector(warmup_end=0.0)
        w = chain_world(4, sources=[0], sink=3, metrics=metrics)
        w.run(until=10.0)
        avg = metrics.average_delay()
        # Three hops of ~0.3 ms plus queueing: well under a second, above 0.
        assert avg is not None
        assert 0.0 < avg < 1.0

    def test_no_duplicate_deliveries(self):
        metrics = MetricsCollector(warmup_end=0.0)
        w = chain_world(4, sources=[0], sink=3, metrics=metrics)
        w.run(until=10.0)
        sent = sum(metrics.sent.values())
        assert metrics.total_distinct_delivered() <= sent

    def test_two_sources_both_delivered(self):
        metrics = MetricsCollector(warmup_end=0.0)
        w = chain_world(5, sources=[0, 1], sink=4, metrics=metrics)
        w.run(until=12.0)
        delivered_sources = {
            key[0] for bucket in metrics.delivered.values() for key in bucket
        }
        assert delivered_sources == {w.nodes[0].node_id, w.nodes[1].node_id}


class TestAggregationInNetwork:
    def test_junction_aggregates_two_branches(self):
        # Y topology: sources 0 and 1 feed junction 2, which relays to 3 (sink).
        positions = [(0.0, 0.0), (0.0, 50.0), (25.0, 25.0), (60.0, 25.0)]
        w = MiniWorld(positions)
        metrics = MetricsCollector(warmup_end=0.0)
        w.attach_agents(
            OpportunisticAgent, params=PARAMS, metrics=metrics, sources=[0, 1], sink=3
        )
        w.run(until=12.0)
        assert w.tracer.value("diffusion.items_aggregated") > 0
        assert metrics.delivery_ratio() > 0.7

    def test_relay_forwards_immediately_without_junction(self):
        # Pure chain: single flow, no aggregation points expected.
        metrics = MetricsCollector(warmup_end=0.0)
        w = chain_world(4, sources=[0], sink=3, metrics=metrics)
        w.run(until=10.0)
        assert w.tracer.value("diffusion.flushes") == 0


class TestRobustness:
    def test_relay_failure_stops_then_repair_resumes(self):
        metrics = MetricsCollector(warmup_end=0.0)
        # 5-node chain; node 2 is the only route.
        w = chain_world(5, sources=[0], sink=4, metrics=metrics)
        w.sim.schedule(5.0, w.nodes[2].fail)
        w.sim.schedule(9.0, w.nodes[2].recover)
        w.run(until=20.0)
        # Delivery happened both before the failure and after recovery.
        times = sorted(metrics.delays and [0.0] or [])
        assert metrics.total_distinct_delivered() > 0
        # After recovery the next exploratory round re-reinforces:
        delivered_late = [
            key
            for bucket in metrics.delivered.values()
            for key in bucket
        ]
        assert delivered_late  # sanity

    def test_down_source_generates_nothing(self):
        metrics = MetricsCollector(warmup_end=0.0)
        w = chain_world(4, sources=[0], sink=3, metrics=metrics)
        w.run(until=3.0)
        w.nodes[0].fail()
        before = w.tracer.value("diffusion.item_generated")
        w.run(until=6.0)
        assert w.tracer.value("diffusion.item_generated") == before
