"""Tests for the idealized framing schemes (flooding, omniscient)."""

import pytest

from repro.experiments.config import ExperimentConfig, smoke
from repro.experiments.runner import build_world, run_experiment


def run(scheme, **overrides):
    return run_experiment(
        ExperimentConfig.from_profile(smoke(), scheme, 80, seed=6, **overrides)
    )


class TestFlooding:
    def test_delivers_everything(self):
        r = run("flooding")
        assert r.delivery_ratio > 0.95

    def test_much_more_expensive_than_greedy(self):
        flood = run("flooding")
        greedy = run("greedy")
        assert flood.avg_dissipated_energy > 3 * greedy.avg_dissipated_energy

    def test_lowest_delay_of_all_schemes(self):
        # No aggregation buffering, no unicast queueing discipline: the
        # first flooded copy races straight to the sink.
        flood = run("flooding")
        greedy = run("greedy")
        assert flood.avg_delay < greedy.avg_delay

    def test_no_reinforcement_machinery(self):
        r = run("flooding")
        assert r.counters.get("diffusion.reinforcement_sent", 0) == 0
        assert r.counters.get("diffusion.exploratory_originated", 0) == 0

    def test_robust_under_failures(self):
        from repro.experiments.config import FailureModel

        r = run("flooding", failures=FailureModel(fraction=0.2, epoch=6.0))
        # Many redundant paths: flooding shrugs off failures better than
        # any tree scheme can.
        assert r.delivery_ratio > 0.6


class TestOmniscient:
    def test_cheapest_of_all_schemes(self):
        omni = run("omniscient")
        greedy = run("greedy")
        opp = run("opportunistic")
        assert omni.avg_dissipated_energy < greedy.avg_dissipated_energy
        assert omni.avg_dissipated_energy < opp.avg_dissipated_energy

    def test_zero_control_traffic(self):
        r = run("omniscient")
        for counter in (
            "diffusion.interest_originated",
            "diffusion.exploratory_originated",
            "diffusion.reinforcement_sent",
            "diffusion.negative_sent",
        ):
            assert r.counters.get(counter, 0) == 0

    def test_delivers_reliably(self):
        r = run("omniscient")
        assert r.delivery_ratio > 0.95

    def test_aggregates_at_junctions(self):
        r = run("omniscient")
        assert r.counters.get("diffusion.items_aggregated", 0) > 0

    def test_tree_installed_on_world(self):
        cfg = ExperimentConfig.from_profile(smoke(), "omniscient", 80, seed=6)
        world = build_world(cfg)
        sink = world.sinks[0]
        for source in world.sources:
            agent = world.agents[source]
            assert sink in agent.source_for
            # Every source has a static route toward the sink.
            node = source
            hops = 0
            while node != sink:
                parent = world.agents[node].parent.get(sink)
                assert parent is not None
                node = parent
                hops += 1
                assert hops <= world.field.n
