"""Tests for the loop-hygiene machinery: split horizon, two-way-edge
exclusion, dead-end negative reinforcement, and source repair."""

import pytest

from repro.diffusion.agent import DiffusionParams
from repro.diffusion.messages import AggregateMsg, DataItem
from repro.diffusion.opportunistic import OpportunisticAgent
from tests.helpers import MiniWorld, chain_positions

PARAMS = DiffusionParams(exploratory_interval=8.0, interest_interval=4.0)


def lone_agent():
    w = MiniWorld(chain_positions(1))
    return w, w.attach_agents(OpportunisticAgent, params=PARAMS)[0]


def aggregate(interest, items, cost=2.0):
    return AggregateMsg(interest_id=interest, items=tuple(items), energy_cost=cost, size=64)


class TestUsableOutlets:
    def test_split_horizon_excludes_sender(self):
        _w, agent = lone_agent()
        table = agent._gradient_table(1)
        table.reinforce(7, now=0.0)
        table.reinforce(7, now=0.0)
        assert agent._usable_outlets(1) == [7]
        assert agent._usable_outlets(1, exclude=(7,)) == []

    def test_two_way_edge_excluded(self):
        w, agent = lone_agent()
        table = agent._gradient_table(1)
        table.reinforce(7, now=0.0)
        # 7 has recently been sending us data for this interest -> loop.
        agent._note_source(1, 7)
        assert agent._usable_outlets(1) == []
        assert w.tracer.value("diffusion.loop_outlet_skipped") == 1

    def test_two_way_edge_expires_with_recency_window(self):
        w, agent = lone_agent()
        table = agent._gradient_table(1)
        agent._note_source(1, 7)
        # Advance beyond the recency window; the edge is usable again.
        w.sim.schedule(PARAMS.source_window + 1.0, lambda: None)
        w.run(until=PARAMS.source_window + 1.0)
        table.reinforce(7, now=w.sim.now)
        assert agent._usable_outlets(1) == [7]

    def test_local_pseudo_sender_does_not_block_outlets(self):
        _w, agent = lone_agent()
        table = agent._gradient_table(1)
        table.reinforce(7, now=0.0)
        agent._note_source(1, agent._LOCAL)
        assert agent._usable_outlets(1) == [7]


class TestDeadEndNegative:
    def test_dead_end_sends_negative(self):
        w, agent = lone_agent()
        sent = []
        agent.node.send = lambda msg, dst, size: sent.append((type(msg).__name__, dst)) or True
        agent._gradient_table(1)  # known interest, no gradients at all
        msg = aggregate(1, [DataItem(5, 1, 0.0)])
        agent._handle_aggregate(msg, from_id=9)
        assert ("NegativeReinforcementMsg", 9) in sent
        assert w.tracer.value("diffusion.data_no_gradient") == 1

    def test_dead_end_rate_limited(self):
        w, agent = lone_agent()
        sent = []
        agent.node.send = lambda msg, dst, size: sent.append(dst) or True
        agent._gradient_table(1)
        agent._handle_aggregate(aggregate(1, [DataItem(5, 1, 0.0)]), from_id=9)
        agent._handle_aggregate(aggregate(1, [DataItem(5, 2, 0.1)]), from_id=9)
        # Only one NR per neighbor per negative window.
        assert sent.count(9) == 1

    def test_sink_never_dead_ends(self):
        w = MiniWorld(chain_positions(2))
        agents = w.attach_agents(OpportunisticAgent, params=PARAMS, sources=[0], sink=1)
        w.run(until=5.0)
        assert w.tracer.value("diffusion.dead_end_negative") == 0


class TestSourceRepair:
    def test_repair_floods_exploratory_when_pathless(self):
        w = MiniWorld(chain_positions(3))
        agents = w.attach_agents(
            OpportunisticAgent, params=PARAMS, sources=[0], sink=2
        )
        w.run(until=4.0)  # converged
        # Degrade the source's only data gradient.
        table = agents[0].gradients[2]
        for neighbor in list(table.data_neighbors(w.sim.now)):
            table.degrade(neighbor)
        before = w.tracer.value("diffusion.exploratory_originated")
        w.run(until=6.0)
        assert w.tracer.value("diffusion.repair_exploratory") >= 1
        assert w.tracer.value("diffusion.exploratory_originated") > before
        # Repair re-established delivery: the source has a data gradient.
        assert agents[0].gradients[2].has_data_gradient(w.sim.now)

    def test_repair_rate_limited(self):
        _w, agent = lone_agent()
        agent.source_for[1] = type("S", (), {"interest_id": 1})()
        calls = []
        agent._send_exploratory = lambda state: calls.append(agent.sim.now)
        agent._request_repair(1)
        agent._request_repair(1)
        assert len(calls) == 1

    def test_non_source_never_repairs(self):
        _w, agent = lone_agent()
        agent._request_repair(1)  # not a source for interest 1
        assert agent.tracer.value("diffusion.repair_exploratory") == 0
