"""Unit tests for the opportunistic (baseline) local rules."""

from repro.diffusion.agent import DiffusionParams, _WindowEntry
from repro.diffusion.opportunistic import OpportunisticAgent
from tests.helpers import MiniWorld, chain_positions

PARAMS = DiffusionParams(exploratory_interval=8.0, interest_interval=4.0)


def make_agent():
    w = MiniWorld(chain_positions(1))
    return w, w.attach_agents(OpportunisticAgent, params=PARAMS)[0]


def entry(sender, accepted, t=0.0, cost=1.0):
    keys = frozenset(accepted)
    return _WindowEntry(
        time=t,
        from_id=sender,
        accepted_keys=keys,
        all_keys=keys,
        cost=cost,
        source_of={k: k[0] for k in keys},
    )


class TestChooseUpstream:
    def test_uses_first_deliverer(self):
        _w, agent = make_agent()
        agent.exploratory_cache.note_exploratory("k", 7, 5.0, 0.1)
        agent.exploratory_cache.note_exploratory("k", 2, 1.0, 0.2)
        choice = agent.choose_upstream("k")
        assert choice.neighbor == 7

    def test_unknown_round_gives_none(self):
        _w, agent = make_agent()
        assert agent.choose_upstream("missing") is None


class TestTruncationRule:
    def test_duplicate_only_sender_truncated(self):
        _w, agent = make_agent()
        window = [
            entry(1, [(10, 1)]),
            entry(2, []),
            entry(2, []),
        ]
        assert agent.truncation_victims(0, window) == [2]

    def test_fresh_sender_kept(self):
        _w, agent = make_agent()
        window = [entry(1, [(10, 1)]), entry(2, [(20, 1)])]
        assert agent.truncation_victims(0, window) == []

    def test_never_cut_every_sender(self):
        _w, agent = make_agent()
        window = [entry(1, []), entry(2, [])]
        assert agent.truncation_victims(0, window) == []

    def test_single_sender_never_cut(self):
        _w, agent = make_agent()
        window = [entry(1, [])]
        assert agent.truncation_victims(0, window) == []

    def test_mixed_sender_with_any_fresh_kept(self):
        _w, agent = make_agent()
        window = [entry(1, [(10, 1)]), entry(2, []), entry(2, [(20, 5)])]
        assert agent.truncation_victims(0, window) == []


class TestSinkReinforcement:
    def test_sink_reinforces_first_exploratory_immediately(self):
        # Two-node network: source 0 and sink 1 adjacent.
        w = MiniWorld(chain_positions(2))
        w.attach_agents(OpportunisticAgent, params=PARAMS, sources=[0], sink=1)
        w.run(until=2.0)
        assert w.tracer.value("diffusion.reinforcement_sent") >= 1
        # The source's gradient toward the sink is a data gradient.
        assert w.agents[0].gradients[1].has_data_gradient(w.sim.now)

    def test_duplicate_exploratory_copies_do_not_rereinforce(self):
        w = MiniWorld(chain_positions(2))
        w.attach_agents(OpportunisticAgent, params=PARAMS, sources=[0], sink=1)
        w.run(until=2.0)
        # One reinforcement per exploratory round, not per received copy.
        rounds = w.tracer.value("diffusion.exploratory_originated")
        assert w.tracer.value("diffusion.reinforcement_sent") <= rounds + 1
