"""Unit tests for diffusion wire messages."""

import pytest

from repro.diffusion.messages import (
    CONTROL_SIZE,
    EVENT_SIZE,
    AggregateMsg,
    DataItem,
    ExploratoryEvent,
    IncrementalCostMsg,
    InterestMsg,
    NegativeReinforcementMsg,
    ReinforcementMsg,
)


class TestSizes:
    def test_paper_wire_sizes(self):
        # "Events were modeled as 64 byte packets and other messages were
        # 36 byte packets."
        assert EVENT_SIZE == 64
        assert CONTROL_SIZE == 36
        assert ExploratoryEvent.size == 64
        assert InterestMsg.size == 36
        assert IncrementalCostMsg.size == 36
        assert ReinforcementMsg.size == 36
        assert NegativeReinforcementMsg.size == 36


class TestDataItem:
    def test_key_identity(self):
        a = DataItem(3, 7, 1.5)
        assert a.key == (3, 7)

    def test_items_hashable_and_frozen(self):
        a = DataItem(3, 7, 1.5)
        assert a == DataItem(3, 7, 1.5)
        assert hash(a) == hash(DataItem(3, 7, 1.5))


class TestExploratoryEvent:
    def test_key_includes_interest_source_round(self):
        e = ExploratoryEvent(9, 3, 2, 1.0, 0.0)
        assert e.key == (9, 3, 2)

    def test_hopped_adds_unit_cost(self):
        e = ExploratoryEvent(9, 3, 2, 1.0, 0.0)
        h = e.hopped()
        assert h.energy_cost == 2.0
        assert h.key == e.key
        assert e.energy_cost == 1.0  # original untouched


class TestAggregateMsg:
    def test_sources_and_item_keys(self):
        msg = AggregateMsg(
            interest_id=1,
            items=(DataItem(3, 1, 0.0), DataItem(4, 1, 0.0), DataItem(3, 2, 0.1)),
            energy_cost=5.0,
            size=64,
        )
        assert msg.sources == {3, 4}
        assert msg.item_keys == {(3, 1), (4, 1), (3, 2)}

    def test_empty_aggregate_rejected(self):
        with pytest.raises(ValueError):
            AggregateMsg(interest_id=1, items=(), energy_cost=1.0, size=64)

    def test_nonpositive_size_rejected(self):
        with pytest.raises(ValueError):
            AggregateMsg(
                interest_id=1, items=(DataItem(1, 1, 0.0),), energy_cost=1.0, size=0
            )


class TestIncrementalCostMsg:
    def test_lowered(self):
        ic = IncrementalCostMsg(1, (1, 2, 3), origin_source=5, cost=7.0)
        low = ic.lowered(4.0)
        assert low.cost == 4.0
        assert low.event_key == ic.event_key
        assert low.origin_source == 5

    def test_cost_can_only_decrease(self):
        ic = IncrementalCostMsg(1, (1, 2, 3), origin_source=5, cost=7.0)
        with pytest.raises(ValueError):
            ic.lowered(8.0)

    def test_lowered_to_equal_is_allowed(self):
        ic = IncrementalCostMsg(1, (1, 2, 3), origin_source=5, cost=7.0)
        assert ic.lowered(7.0).cost == 7.0
