"""Tests for the incumbent-preference tie-break in the greedy choice."""

from repro.diffusion.cache import ExploratoryCache


class TestIncumbentPreference:
    def test_equal_cost_prefers_incumbent(self):
        c = ExploratoryCache()
        c.note_exploratory("k", 1, 4.0, 0.1)  # earlier
        c.note_exploratory("k", 2, 4.0, 0.2)  # incumbent
        assert c.lowest_cost_choice("k").neighbor == 1
        assert c.lowest_cost_choice("k", prefer=frozenset({2})).neighbor == 2

    def test_lower_cost_beats_incumbent(self):
        c = ExploratoryCache()
        c.note_exploratory("k", 1, 3.0, 0.1)
        c.note_exploratory("k", 2, 4.0, 0.2)
        choice = c.lowest_cost_choice("k", prefer=frozenset({2}))
        assert choice.neighbor == 1
        assert choice.cost == 3.0

    def test_incumbent_ic_beats_equal_cost_exploratory(self):
        # Stability outranks the exploratory-over-C rule on exact ties.
        c = ExploratoryCache()
        c.note_exploratory("k", 1, 4.0, 0.1)
        c.note_incremental_cost("k", 9, 4.0, 0.2)
        assert c.lowest_cost_choice("k", prefer=frozenset({9})).via_incremental

    def test_without_prefer_paper_rules_hold(self):
        c = ExploratoryCache()
        c.note_incremental_cost("k", 9, 4.0, 0.05)
        c.note_exploratory("k", 1, 4.0, 0.2)
        choice = c.lowest_cost_choice("k")
        assert choice.neighbor == 1  # exploratory wins the tie
        assert not choice.via_incremental

    def test_prefer_ignored_when_not_a_candidate(self):
        c = ExploratoryCache()
        c.note_exploratory("k", 1, 4.0, 0.1)
        choice = c.lowest_cost_choice("k", prefer=frozenset({77}))
        assert choice.neighbor == 1
