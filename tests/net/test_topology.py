"""Unit tests for sensor-field generation and placement schemes."""

import random

import pytest

from repro.net.topology import (
    SensorField,
    corner_sink_node,
    corner_source_nodes,
    event_radius_sources,
    expected_degree,
    generate_field,
    random_source_nodes,
    scattered_sink_nodes,
)


def field_of(positions, size=200.0, range_m=40.0):
    return SensorField(list(positions), size, range_m)


class TestExpectedDegree:
    def test_paper_density_anchors(self):
        # "the radio density ... ranges from 6 to 43 neighbors"
        assert expected_degree(50, 200.0, 40.0) == pytest.approx(6.3, abs=0.1)
        assert expected_degree(350, 200.0, 40.0) == pytest.approx(44.0, abs=0.5)

    def test_scales_linearly_with_n(self):
        assert expected_degree(200, 200.0, 40.0) == pytest.approx(
            2 * expected_degree(100, 200.0, 40.0)
        )


class TestSensorField:
    def test_connectivity_graph_edges(self):
        fld = field_of([(0, 0), (30, 0), (100, 0)])
        g = fld.connectivity_graph()
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 2)
        assert g.number_of_nodes() == 3

    def test_is_connected(self):
        assert field_of([(0, 0), (30, 0), (60, 0)]).is_connected()
        assert not field_of([(0, 0), (100, 0)]).is_connected()

    def test_mean_degree(self):
        fld = field_of([(0, 0), (30, 0), (60, 0)])
        assert fld.mean_degree() == pytest.approx(4 / 3)

    def test_distance(self):
        fld = field_of([(0, 0), (3, 4)])
        assert fld.distance(0, 1) == pytest.approx(5.0)

    def test_nodes_in_square(self):
        fld = field_of([(10, 10), (90, 90), (79, 2)])
        assert set(fld.nodes_in_square(0, 0, 80)) == {0, 2}


class TestGenerateField:
    def test_node_count_and_bounds(self):
        fld = generate_field(60, random.Random(1))
        assert fld.n == 60
        assert all(0 <= x <= 200 and 0 <= y <= 200 for x, y in fld.positions)

    def test_connected_when_required(self):
        fld = generate_field(50, random.Random(2), require_connected=True)
        assert fld.is_connected()

    def test_deterministic_for_seeded_rng(self):
        a = generate_field(40, random.Random(3)).positions
        b = generate_field(40, random.Random(3)).positions
        assert a == b

    def test_too_few_nodes_rejected(self):
        with pytest.raises(ValueError):
            generate_field(1, random.Random(1))

    def test_impossible_connectivity_raises(self):
        with pytest.raises(RuntimeError):
            generate_field(
                3, random.Random(1), field_size=10000.0, range_m=1.0, max_attempts=3
            )


class TestPlacements:
    def setup_method(self):
        self.rng = random.Random(7)
        self.fld = generate_field(200, self.rng)

    def test_corner_sources_inside_square(self):
        sources = corner_source_nodes(self.fld, 5, self.rng)
        assert len(sources) == 5
        assert len(set(sources)) == 5
        for s in sources:
            x, y = self.fld.positions[s]
            assert x <= 80 and y <= 80

    def test_corner_sources_fallback_when_square_sparse(self):
        # A tiny square holds no nodes; the nearest nodes fill in.
        sources = corner_source_nodes(self.fld, 3, self.rng, square_side=0.001)
        assert len(sources) == 3

    def test_corner_sink_in_top_right(self):
        sink = corner_sink_node(self.fld, self.rng)
        x, y = self.fld.positions[sink]
        assert x >= 200 - 36 - 1e-9 or y >= 200 - 36 - 1e-9

    def test_corner_sink_excludes(self):
        sink1 = corner_sink_node(self.fld, self.rng)
        candidates = {
            corner_sink_node(self.fld, random.Random(i), exclude={sink1})
            for i in range(20)
        }
        assert sink1 not in candidates

    def test_random_sources_exclude(self):
        sources = random_source_nodes(self.fld, 10, self.rng, exclude={0, 1, 2})
        assert not set(sources) & {0, 1, 2}
        assert len(set(sources)) == 10

    def test_random_sources_too_many_rejected(self):
        with pytest.raises(ValueError):
            random_source_nodes(self.fld, self.fld.n + 1, self.rng)

    def test_scattered_sinks_first_at_corner(self):
        sinks = scattered_sink_nodes(self.fld, 4, self.rng)
        assert len(sinks) == 4
        assert len(set(sinks)) == 4
        x, y = self.fld.positions[sinks[0]]
        assert x >= 200 - 36 - 1e-9 or y >= 200 - 36 - 1e-9

    def test_event_radius_sources_clustered(self):
        sources = event_radius_sources(self.fld, 5, radius=40.0, rng=self.rng)
        assert len(sources) == 5
        xs = [self.fld.positions[s][0] for s in sources]
        ys = [self.fld.positions[s][1] for s in sources]
        # Clustered: the bounding box is far smaller than the field.
        assert max(xs) - min(xs) <= 120
        assert max(ys) - min(ys) <= 120

    def test_event_radius_pads_when_radius_too_small(self):
        sources = event_radius_sources(self.fld, 5, radius=0.001, rng=self.rng)
        assert len(sources) == 5
