"""Unit tests for the radio energy model."""

import pytest

from repro.net.energy import EnergyMeter, EnergyParams


class TestEnergyParams:
    def test_paper_defaults(self):
        p = EnergyParams()
        assert p.tx_power_w == pytest.approx(0.660)
        assert p.rx_power_w == pytest.approx(0.395)
        assert p.idle_power_w == pytest.approx(0.035)

    def test_idle_ratios_match_paper(self):
        # "idle time power dissipation was ... nearly 10% of its receive
        # power ... and about 5% of its transmit power"
        p = EnergyParams()
        assert p.idle_power_w / p.rx_power_w == pytest.approx(0.0886, abs=0.01)
        assert p.idle_power_w / p.tx_power_w == pytest.approx(0.053, abs=0.01)

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            EnergyParams(tx_power_w=-1.0)


class TestEnergyMeter:
    def test_tx_accounting(self):
        m = EnergyMeter(EnergyParams())
        m.note_tx(2.0)
        m.note_tx(1.0)
        assert m.tx_time == pytest.approx(3.0)
        assert m.tx_count == 2

    def test_rx_accounting(self):
        m = EnergyMeter(EnergyParams())
        m.note_rx(0.0, 1.0)
        m.note_rx(5.0, 0.5)
        assert m.rx_time == pytest.approx(1.5)
        assert m.rx_count == 2

    def test_overlapping_rx_merged(self):
        # Two frames overlapping at the receiver must not double-charge.
        m = EnergyMeter(EnergyParams())
        m.note_rx(0.0, 1.0)
        m.note_rx(0.5, 1.0)  # overlaps [0.5, 1.0]
        assert m.rx_time == pytest.approx(1.5)

    def test_fully_contained_rx_free(self):
        m = EnergyMeter(EnergyParams())
        m.note_rx(0.0, 2.0)
        m.note_rx(0.5, 1.0)  # entirely inside
        assert m.rx_time == pytest.approx(2.0)

    def test_negative_duration_rejected(self):
        m = EnergyMeter(EnergyParams())
        with pytest.raises(ValueError):
            m.note_tx(-1.0)
        with pytest.raises(ValueError):
            m.note_rx(0.0, -1.0)

    def test_communication_energy(self):
        m = EnergyMeter(EnergyParams(tx_power_w=1.0, rx_power_w=0.5, idle_power_w=0.1))
        m.note_tx(2.0)
        m.note_rx(0.0, 4.0)
        assert m.communication_energy_j() == pytest.approx(2.0 + 2.0)

    def test_idle_time(self):
        m = EnergyMeter(EnergyParams())
        m.note_tx(1.0)
        m.note_rx(0.0, 2.0)
        assert m.idle_time(10.0) == pytest.approx(7.0)

    def test_idle_time_clamped_nonnegative(self):
        m = EnergyMeter(EnergyParams())
        m.note_tx(5.0)
        assert m.idle_time(1.0) == 0.0

    def test_total_energy_includes_idle(self):
        m = EnergyMeter(EnergyParams(tx_power_w=1.0, rx_power_w=1.0, idle_power_w=0.5))
        m.note_tx(1.0)
        assert m.total_energy_j(3.0) == pytest.approx(1.0 + 0.5 * 2.0)

    def test_fresh_meter_zero(self):
        m = EnergyMeter(EnergyParams())
        assert m.communication_energy_j() == 0.0
        assert m.total_energy_j(0.0) == 0.0


class TestOutOfOrderRx:
    """Regression: the old high-watermark meter mischarged receptions
    reported out of time order (an early-starting frame arriving after a
    later one was charged as if it began at the watermark)."""

    def test_out_of_order_disjoint_fully_charged(self):
        m = EnergyMeter(EnergyParams())
        m.note_rx(10.0, 1.0)  # [10, 11]
        m.note_rx(0.0, 1.0)   # [0, 1] — before the watermark
        # watermark meter would charge 0 for the second frame
        assert m.rx_time == pytest.approx(2.0)

    def test_out_of_order_partial_overlap(self):
        m = EnergyMeter(EnergyParams())
        m.note_rx(5.0, 2.0)   # [5, 7]
        m.note_rx(4.0, 2.0)   # [4, 6]: only [4, 5] is new
        assert m.rx_time == pytest.approx(3.0)

    def test_gap_filling_merges_neighbors(self):
        m = EnergyMeter(EnergyParams())
        m.note_rx(0.0, 1.0)   # [0, 1]
        m.note_rx(2.0, 1.0)   # [2, 3]
        m.note_rx(0.5, 2.0)   # [0.5, 2.5] bridges the gap
        assert m.rx_time == pytest.approx(3.0)
        m.note_rx(0.0, 3.0)   # everything already covered
        assert m.rx_time == pytest.approx(3.0)

    def test_out_of_order_contained_free(self):
        m = EnergyMeter(EnergyParams())
        m.note_rx(10.0, 5.0)
        m.note_rx(11.0, 1.0)
        m.note_rx(0.0, 20.0)  # covers both; only the uncovered 15 s bill
        assert m.rx_time == pytest.approx(20.0)


class TestClassAttribution:
    def test_tx_classes_sum_to_total(self):
        m = EnergyMeter(EnergyParams())
        m.note_tx(1.0, "interest")
        m.note_tx(2.0, "data")
        m.note_tx(0.5, "data")
        assert m.tx_time_by_class == {"interest": 1.0, "data": 2.5}
        assert sum(m.tx_time_by_class.values()) == pytest.approx(m.tx_time)

    def test_rx_overlap_charges_marginal_time_to_class(self):
        m = EnergyMeter(EnergyParams())
        m.note_rx(0.0, 1.0, "data")
        m.note_rx(0.5, 1.0, "ack")  # only [1.0, 1.5] is new
        assert m.rx_time_by_class["data"] == pytest.approx(1.0)
        assert m.rx_time_by_class["ack"] == pytest.approx(0.5)
        assert sum(m.rx_time_by_class.values()) == pytest.approx(m.rx_time)

    def test_unclassified_default(self):
        m = EnergyMeter(EnergyParams())
        m.note_tx(1.0)
        m.note_rx(0.0, 1.0)
        assert m.tx_time_by_class == {"other": 1.0}
        assert m.rx_time_by_class == {"other": 1.0}

    def test_energy_by_class_j(self):
        m = EnergyMeter(EnergyParams(tx_power_w=2.0, rx_power_w=1.0, idle_power_w=0.0))
        m.note_tx(1.0, "data")
        m.note_rx(0.0, 3.0, "data")
        m.note_tx(0.5, "ack")
        assert m.energy_by_class_j() == pytest.approx({"data": 5.0, "ack": 1.0})
        assert sum(m.energy_by_class_j().values()) == pytest.approx(
            m.communication_energy_j()
        )

    def test_class_times_snapshot_is_copy(self):
        m = EnergyMeter(EnergyParams())
        m.note_tx(1.0, "data")
        snap = m.class_times()
        m.note_tx(1.0, "data")
        assert snap["data"] == (1.0, 0.0)
        assert m.class_times()["data"] == (2.0, 0.0)
