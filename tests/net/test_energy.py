"""Unit tests for the radio energy model."""

import pytest

from repro.net.energy import EnergyMeter, EnergyParams


class TestEnergyParams:
    def test_paper_defaults(self):
        p = EnergyParams()
        assert p.tx_power_w == pytest.approx(0.660)
        assert p.rx_power_w == pytest.approx(0.395)
        assert p.idle_power_w == pytest.approx(0.035)

    def test_idle_ratios_match_paper(self):
        # "idle time power dissipation was ... nearly 10% of its receive
        # power ... and about 5% of its transmit power"
        p = EnergyParams()
        assert p.idle_power_w / p.rx_power_w == pytest.approx(0.0886, abs=0.01)
        assert p.idle_power_w / p.tx_power_w == pytest.approx(0.053, abs=0.01)

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            EnergyParams(tx_power_w=-1.0)


class TestEnergyMeter:
    def test_tx_accounting(self):
        m = EnergyMeter(EnergyParams())
        m.note_tx(2.0)
        m.note_tx(1.0)
        assert m.tx_time == pytest.approx(3.0)
        assert m.tx_count == 2

    def test_rx_accounting(self):
        m = EnergyMeter(EnergyParams())
        m.note_rx(0.0, 1.0)
        m.note_rx(5.0, 0.5)
        assert m.rx_time == pytest.approx(1.5)
        assert m.rx_count == 2

    def test_overlapping_rx_merged(self):
        # Two frames overlapping at the receiver must not double-charge.
        m = EnergyMeter(EnergyParams())
        m.note_rx(0.0, 1.0)
        m.note_rx(0.5, 1.0)  # overlaps [0.5, 1.0]
        assert m.rx_time == pytest.approx(1.5)

    def test_fully_contained_rx_free(self):
        m = EnergyMeter(EnergyParams())
        m.note_rx(0.0, 2.0)
        m.note_rx(0.5, 1.0)  # entirely inside
        assert m.rx_time == pytest.approx(2.0)

    def test_negative_duration_rejected(self):
        m = EnergyMeter(EnergyParams())
        with pytest.raises(ValueError):
            m.note_tx(-1.0)
        with pytest.raises(ValueError):
            m.note_rx(0.0, -1.0)

    def test_communication_energy(self):
        m = EnergyMeter(EnergyParams(tx_power_w=1.0, rx_power_w=0.5, idle_power_w=0.1))
        m.note_tx(2.0)
        m.note_rx(0.0, 4.0)
        assert m.communication_energy_j() == pytest.approx(2.0 + 2.0)

    def test_idle_time(self):
        m = EnergyMeter(EnergyParams())
        m.note_tx(1.0)
        m.note_rx(0.0, 2.0)
        assert m.idle_time(10.0) == pytest.approx(7.0)

    def test_idle_time_clamped_nonnegative(self):
        m = EnergyMeter(EnergyParams())
        m.note_tx(5.0)
        assert m.idle_time(1.0) == 0.0

    def test_total_energy_includes_idle(self):
        m = EnergyMeter(EnergyParams(tx_power_w=1.0, rx_power_w=1.0, idle_power_w=0.5))
        m.note_tx(1.0)
        assert m.total_energy_j(3.0) == pytest.approx(1.0 + 0.5 * 2.0)

    def test_fresh_meter_zero(self):
        m = EnergyMeter(EnergyParams())
        assert m.communication_energy_j() == 0.0
        assert m.total_energy_j(0.0) == 0.0
