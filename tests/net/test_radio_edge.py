"""Edge-case tests for channel/radio bookkeeping."""

from repro.net.energy import EnergyMeter, EnergyParams
from repro.net.packet import BROADCAST, Frame
from repro.net.radio import Channel, Radio, RadioParams
from repro.sim import Simulator, Tracer


def make_channel(range_m=40.0):
    sim = Simulator()
    tracer = Tracer(lambda: sim.now)
    return sim, tracer, Channel(sim, tracer, RadioParams(range_m=range_m))


def add_radio(ch, node_id, x, y):
    radio = Radio(node_id, x, y, ch, EnergyMeter(EnergyParams()))
    return radio, radio


class TestNeighborCacheInvalidation:
    def test_late_registration_rebuilds_cache(self):
        _sim, _tr, ch = make_channel()
        a, _ = add_radio(ch, 0, 0, 0)
        assert ch.neighbors(0) == []  # cache built with one radio
        b, _ = add_radio(ch, 1, 20, 0)  # registration invalidates it
        assert [r.node_id for r in ch.neighbors(0)] == [1]
        assert [r.node_id for r in ch.neighbors(1)] == [0]

    def test_grid_bucketing_matches_brute_force(self):
        import random

        _sim, _tr, ch = make_channel(range_m=40.0)
        rng = random.Random(3)
        radios = [add_radio(ch, i, rng.uniform(0, 200), rng.uniform(0, 200))[0] for i in range(60)]
        for r in radios:
            expected = {
                o.node_id
                for o in radios
                if o is not r and (o.x - r.x) ** 2 + (o.y - r.y) ** 2 <= 40.0**2
            }
            assert {n.node_id for n in ch.neighbors(r.node_id)} == expected


class TestCarrierSenseWindows:
    def test_busy_until_covers_whole_frame(self):
        sim, _tr, ch = make_channel()
        a, _ = add_radio(ch, 0, 0, 0)
        b, _ = add_radio(ch, 1, 30, 0)
        air = ch.params.air_time(64)
        prop = ch.params.propagation_delay_s
        a.start_tx(Frame(src=0, dst=BROADCAST, size=64))
        checks = []
        sim.schedule(prop + air * 0.5, lambda: checks.append(b.medium_busy()))
        sim.schedule(prop + air + 0.001, lambda: checks.append(b.medium_busy()))
        sim.run()
        assert checks == [True, False]

    def test_transmitter_senses_its_own_tx(self):
        sim, _tr, ch = make_channel()
        a, _ = add_radio(ch, 0, 0, 0)
        add_radio(ch, 1, 30, 0)
        a.start_tx(Frame(src=0, dst=BROADCAST, size=64))
        assert a.transmitting
        assert a.medium_busy()
        sim.run()
        assert not a.transmitting

    def test_back_to_back_frames_from_same_sender_ok(self):
        sim, _tr, ch = make_channel()
        a, _ = add_radio(ch, 0, 0, 0)
        b, _ = add_radio(ch, 1, 30, 0)
        got = []
        b.deliver = got.append
        air = ch.params.air_time(64)
        sim.schedule(0.0, a.start_tx, Frame(src=0, dst=BROADCAST, size=64))
        sim.schedule(air + 0.001, a.start_tx, Frame(src=0, dst=BROADCAST, size=64))
        sim.run()
        assert len(got) == 2
