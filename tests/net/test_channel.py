"""Unit tests for the channel model layer (specs, units, link math)."""

import math

import numpy as np
import pytest

from repro.net.channel import (
    CHANNEL_MODELS,
    ChannelSpec,
    DiscModel,
    PathlossModel,
    model_from_spec,
)


class TestChannelSpec:
    def test_defaults_are_disc(self):
        spec = ChannelSpec()
        assert spec.model == "disc"
        assert spec.model in CHANNEL_MODELS

    def test_validation(self):
        with pytest.raises(ValueError):
            ChannelSpec(model="rayleigh")
        with pytest.raises(ValueError):
            ChannelSpec(model="pathloss", pathloss_exponent=0.0)
        with pytest.raises(ValueError):
            ChannelSpec(model="pathloss", n_bands=0)
        with pytest.raises(ValueError):
            ChannelSpec(model="disc", n_bands=2)
        with pytest.raises(ValueError):
            ChannelSpec(model="pathloss", max_range_m=-1.0)

    def test_degenerate_disc_shape(self):
        spec = ChannelSpec.degenerate_disc(40.0)
        assert spec.model == "pathloss"
        assert not spec.capture
        assert spec.max_range_m == 40.0


class TestDiscModel:
    def test_link_is_squared_distance_test(self):
        m = DiscModel(40.0)
        d2 = np.array([0.0, 1599.99, 1600.0, 1600.01])
        eligible, rx = m.link(d2)
        assert eligible.tolist() == [True, True, True, False]
        assert rx is None
        assert m.reach_m == 40.0 and m.grid_cell_m == 40.0

    def test_rejects_nonpositive_range(self):
        with pytest.raises(ValueError):
            DiscModel(0.0)


class TestPathlossModel:
    def test_default_reach_near_disc(self):
        # 0 dBm - 40 dB ref - (-88 dBm) = 48 dB budget over n=3:
        # reach = 10^(48/30) ~ 39.81 m — the disc-comparable default.
        m = PathlossModel(ChannelSpec(model="pathloss"))
        assert m.reach_m == pytest.approx(10 ** 1.6)
        assert 39.0 < m.reach_m < 40.0

    def test_rx_power_units(self):
        m = PathlossModel(ChannelSpec(model="pathloss"))
        # At the 1 m reference distance rx = tx - reference_loss.
        assert m.rx_dbm(1.0) == pytest.approx(-40.0)
        # The 1 m floor also covers d < 1 (no near-field blowup).
        assert m.rx_dbm(0.1) == pytest.approx(-40.0)
        # 10x the distance costs 10*n dB.
        assert m.rx_dbm(10.0) == pytest.approx(-70.0)
        # Linear conversions: noise floor and threshold.
        assert m.noise_mw == pytest.approx(10 ** -10)
        assert m.thr == pytest.approx(10.0)

    def test_link_matches_scalar_rx(self):
        m = PathlossModel(ChannelSpec(model="pathloss"))
        d = np.array([1.0, 5.0, 20.0, 39.0, 45.0])
        eligible, rx_mw = m.link(d ** 2)
        for i, dist in enumerate(d):
            rx_dbm = m.rx_dbm(float(dist))
            assert 10.0 ** (rx_dbm / 10.0) == pytest.approx(float(rx_mw[i]))
            assert bool(eligible[i]) == (rx_dbm >= m.spec.rx_sensitivity_dbm)
        assert eligible.tolist() == [True, True, True, True, False]

    def test_negative_budget_reaches_nothing(self):
        spec = ChannelSpec(model="pathloss", tx_power_dbm=-60.0)
        m = PathlossModel(spec)
        assert m.reach_m == 0.0
        eligible, _ = m.link(np.array([1.0, 100.0]))
        assert not eligible.any()

    def test_max_range_caps_reach(self):
        m = PathlossModel(ChannelSpec(model="pathloss", max_range_m=20.0))
        assert m.reach_m == 20.0
        eligible, _ = m.link(np.array([20.0 ** 2, 20.1 ** 2]))
        assert eligible.tolist() == [True, False]

    def test_grid_cell_covers_reach(self):
        for spec in (
            ChannelSpec(model="pathloss"),
            ChannelSpec(model="pathloss", pathloss_exponent=2.0),
            ChannelSpec(model="pathloss", tx_power_dbm=-60.0),
        ):
            m = PathlossModel(spec)
            assert m.grid_cell_m >= max(m.reach_m, 1.0)

    def test_reach_is_where_eligibility_flips(self):
        m = PathlossModel(ChannelSpec(model="pathloss"))
        r = m.reach_m
        below, _ = m.link(np.array([(r * (1 - 1e-9)) ** 2]))
        above, _ = m.link(np.array([(r * (1 + 1e-6)) ** 2]))
        assert bool(below[0]) and not bool(above[0])

    def test_rejects_disc_spec(self):
        with pytest.raises(ValueError):
            PathlossModel(ChannelSpec())


class TestModelFromSpec:
    def test_disc_and_none(self):
        assert isinstance(model_from_spec(None, 40.0), DiscModel)
        m = model_from_spec(ChannelSpec(), 35.0)
        assert isinstance(m, DiscModel)
        assert m.reach_m == 35.0

    def test_pathloss(self):
        m = model_from_spec(ChannelSpec(model="pathloss"), 40.0)
        assert isinstance(m, PathlossModel)
        # The disc range is not consulted: reach comes from the budget.
        assert m.reach_m != 40.0

    def test_capture_and_bands_surface(self):
        m = model_from_spec(ChannelSpec(model="pathloss", n_bands=3), 40.0)
        assert m.capture and m.n_bands == 3
        m2 = model_from_spec(ChannelSpec(model="pathloss", capture=False), 40.0)
        assert not m2.capture
