"""Unit tests for the PHY: range, collisions, half duplex, energy."""

import pytest

from repro.net.energy import EnergyMeter, EnergyParams
from repro.net.packet import BROADCAST, Frame
from repro.net.radio import Channel, Radio, RadioParams
from repro.sim import Simulator, Tracer


def make_channel(range_m=40.0):
    sim = Simulator()
    tracer = Tracer(lambda: sim.now)
    return sim, tracer, Channel(sim, tracer, RadioParams(range_m=range_m))


def make_radio(channel, node_id, x, y, up=True):
    meter = EnergyMeter(EnergyParams())
    radio = Radio(node_id, x, y, channel, meter)
    radio.up = up
    return radio, meter, radio


class TestRadioParams:
    def test_air_time(self):
        p = RadioParams(bitrate_bps=1.6e6)
        assert p.air_time(64) == pytest.approx(64 * 8 / 1.6e6)

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            RadioParams(range_m=0)
        with pytest.raises(ValueError):
            RadioParams(bitrate_bps=-1)


class TestPropagation:
    def test_in_range_node_receives(self):
        sim, _tr, ch = make_channel()
        a, _, _ = make_radio(ch, 0, 0, 0)
        b, _, _ = make_radio(ch, 1, 30, 0)
        got = []
        b.deliver = got.append
        a.start_tx(Frame(src=0, dst=BROADCAST, size=64))
        sim.run()
        assert len(got) == 1

    def test_out_of_range_node_silent(self):
        sim, _tr, ch = make_channel()
        a, _, _ = make_radio(ch, 0, 0, 0)
        b, _, _ = make_radio(ch, 1, 50, 0)
        got = []
        b.deliver = got.append
        a.start_tx(Frame(src=0, dst=BROADCAST, size=64))
        sim.run()
        assert got == []

    def test_boundary_exactly_at_range_receives(self):
        sim, _tr, ch = make_channel(range_m=40.0)
        a, _, _ = make_radio(ch, 0, 0, 0)
        b, _, _ = make_radio(ch, 1, 40.0, 0)
        got = []
        b.deliver = got.append
        a.start_tx(Frame(src=0, dst=BROADCAST, size=64))
        sim.run()
        assert len(got) == 1

    def test_sender_does_not_hear_itself(self):
        sim, _tr, ch = make_channel()
        a, _, _ = make_radio(ch, 0, 0, 0)
        got = []
        a.deliver = got.append
        a.start_tx(Frame(src=0, dst=BROADCAST, size=64))
        sim.run()
        assert got == []

    def test_all_neighbors_receive_broadcast(self):
        sim, _tr, ch = make_channel()
        a, _, _ = make_radio(ch, 0, 0, 0)
        got = {i: [] for i in (1, 2, 3)}
        for i, x in ((1, 10), (2, 20), (3, 30)):
            r, _, _ = make_radio(ch, i, x, 0)
            r.deliver = got[i].append
        a.start_tx(Frame(src=0, dst=BROADCAST, size=64))
        sim.run()
        assert all(len(v) == 1 for v in got.values())

    def test_neighbor_cache(self):
        _sim, _tr, ch = make_channel()
        make_radio(ch, 0, 0, 0)
        make_radio(ch, 1, 30, 0)
        make_radio(ch, 2, 100, 0)
        assert [r.node_id for r in ch.neighbors(0)] == [1]
        assert ch.neighbors(2) == []

    def test_duplicate_node_id_rejected(self):
        _sim, _tr, ch = make_channel()
        make_radio(ch, 0, 0, 0)
        with pytest.raises(ValueError):
            make_radio(ch, 0, 10, 0)

    def test_distance(self):
        _sim, _tr, ch = make_channel()
        make_radio(ch, 0, 0, 0)
        make_radio(ch, 1, 3, 4)
        assert ch.distance(0, 1) == pytest.approx(5.0)


class TestCollisions:
    def test_overlapping_frames_collide(self):
        sim, tracer, ch = make_channel()
        a, _, _ = make_radio(ch, 0, 0, 0)
        b, _, _ = make_radio(ch, 1, 0, 30)
        c, _, _ = make_radio(ch, 2, 0, 15)  # hears both
        got = []
        c.deliver = got.append
        sim.schedule(0.0, a.start_tx, Frame(src=0, dst=BROADCAST, size=64))
        sim.schedule(0.0, b.start_tx, Frame(src=1, dst=BROADCAST, size=64))
        sim.run()
        assert got == []
        assert tracer.value("radio.collision") >= 2

    def test_hidden_terminal_collision(self):
        # a and b cannot hear each other but both reach c.
        sim, _tr, ch = make_channel(range_m=40.0)
        a, _, _ = make_radio(ch, 0, 0, 0)
        b, _, _ = make_radio(ch, 1, 70, 0)
        c, _, _ = make_radio(ch, 2, 35, 0)
        assert ch.neighbors(0) == [c] or c in ch.neighbors(0)
        got = []
        c.deliver = got.append
        sim.schedule(0.0, a.start_tx, Frame(src=0, dst=2, size=64))
        sim.schedule(0.0001, b.start_tx, Frame(src=1, dst=2, size=64))
        sim.run()
        assert got == []

    def test_non_overlapping_frames_both_received(self):
        sim, _tr, ch = make_channel()
        a, _, _ = make_radio(ch, 0, 0, 0)
        c, _, _ = make_radio(ch, 2, 30, 0)
        got = []
        c.deliver = got.append
        air = ch.params.air_time(64)
        sim.schedule(0.0, a.start_tx, Frame(src=0, dst=BROADCAST, size=64))
        sim.schedule(air * 2 + 0.001, a.start_tx, Frame(src=0, dst=BROADCAST, size=64))
        sim.run()
        assert len(got) == 2

    def test_half_duplex_receiver_transmitting_misses(self):
        sim, tracer, ch = make_channel()
        a, _, _ = make_radio(ch, 0, 0, 0)
        b, _, _ = make_radio(ch, 1, 30, 0)
        got = []
        b.deliver = got.append
        # b starts transmitting just before a's frame arrives.
        sim.schedule(0.0, b.start_tx, Frame(src=1, dst=BROADCAST, size=64))
        sim.schedule(0.00001, a.start_tx, Frame(src=0, dst=BROADCAST, size=64))
        sim.run()
        assert got == []
        assert tracer.value("radio.halfduplex_loss") >= 1


class TestLivenessAndEnergy:
    def test_down_receiver_gets_nothing_and_pays_nothing(self):
        sim, _tr, ch = make_channel()
        a, _, _ = make_radio(ch, 0, 0, 0)
        b, meter, _ = make_radio(ch, 1, 30, 0)
        b.up = False
        got = []
        b.deliver = got.append
        a.start_tx(Frame(src=0, dst=BROADCAST, size=64))
        sim.run()
        assert got == []
        assert meter.rx_time == 0.0

    def test_down_sender_cannot_transmit(self):
        _sim, _tr, ch = make_channel()
        a, _, _ = make_radio(ch, 0, 0, 0)
        a.up = False
        with pytest.raises(RuntimeError):
            a.start_tx(Frame(src=0, dst=BROADCAST, size=64))

    def test_tx_energy_charged_to_sender(self):
        sim, _tr, ch = make_channel()
        a, meter, _ = make_radio(ch, 0, 0, 0)
        make_radio(ch, 1, 30, 0)
        a.start_tx(Frame(src=0, dst=BROADCAST, size=64))
        sim.run()
        assert meter.tx_time == pytest.approx(ch.params.air_time(64))

    def test_rx_energy_charged_even_for_unaddressed_frames(self):
        # Promiscuous cost: overhearing a unicast for someone else.
        sim, _tr, ch = make_channel()
        a, _, _ = make_radio(ch, 0, 0, 0)
        _b, bm, _ = make_radio(ch, 1, 20, 0)
        _c, cm, _ = make_radio(ch, 2, 35, 0)
        a.start_tx(Frame(src=0, dst=1, size=64))
        sim.run()
        air = ch.params.air_time(64)
        assert bm.rx_time == pytest.approx(air)
        assert cm.rx_time == pytest.approx(air)

    def test_rx_energy_charged_for_corrupted_frames(self):
        sim, _tr, ch = make_channel()
        a, _, _ = make_radio(ch, 0, 0, 0)
        b, _, _ = make_radio(ch, 1, 0, 30)
        _c, cm, _ = make_radio(ch, 2, 0, 15)
        sim.schedule(0.0, a.start_tx, Frame(src=0, dst=BROADCAST, size=64))
        sim.schedule(0.0, b.start_tx, Frame(src=1, dst=BROADCAST, size=64))
        sim.run()
        assert cm.rx_time > 0.0

    def test_medium_busy_during_neighbor_tx(self):
        sim, _tr, ch = make_channel()
        a, _, _ = make_radio(ch, 0, 0, 0)
        b, _, _ = make_radio(ch, 1, 30, 0)
        busy_seen = []
        prop = ch.params.propagation_delay_s
        sim.schedule(0.0, a.start_tx, Frame(src=0, dst=BROADCAST, size=64))
        sim.schedule(prop + 0.0001, lambda: busy_seen.append(b.medium_busy()))
        sim.run()
        assert busy_seen == [True]
        assert not b.medium_busy()  # after the frame ends
