"""Unit tests for link-layer frames."""

import pytest

from repro.net.packet import BROADCAST, Frame, FrameKind


class TestFrame:
    def test_unique_ids(self):
        a = Frame(src=1, dst=2, size=64)
        b = Frame(src=1, dst=2, size=64)
        assert a.frame_id != b.frame_id

    def test_broadcast_flag(self):
        assert Frame(src=1, dst=BROADCAST, size=10).is_broadcast
        assert not Frame(src=1, dst=2, size=10).is_broadcast

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            Frame(src=1, dst=2, size=0)
        with pytest.raises(ValueError):
            Frame(src=1, dst=2, size=-5)

    def test_default_kind_is_data(self):
        assert Frame(src=1, dst=2, size=10).kind == FrameKind.DATA

    def test_payload_carried(self):
        payload = {"anything": 1}
        assert Frame(src=1, dst=2, size=10, payload=payload).payload is payload


class TestAck:
    def test_ack_reverses_direction(self):
        f = Frame(src=3, dst=7, size=64)
        ack = f.ack_frame(10)
        assert ack.src == 7
        assert ack.dst == 3
        assert ack.size == 10
        assert ack.kind == FrameKind.ACK

    def test_ack_payload_references_frame(self):
        f = Frame(src=3, dst=7, size=64)
        assert f.ack_frame(10).payload == f.frame_id

    def test_broadcast_not_acknowledged(self):
        f = Frame(src=3, dst=BROADCAST, size=64)
        with pytest.raises(ValueError):
            f.ack_frame(10)
