"""Unit tests for node composition and the failure model."""

from tests.helpers import MiniWorld, chain_positions


class Recorder:
    """Minimal protocol agent: records everything delivered."""

    def __init__(self):
        self.got = []

    def on_message(self, msg, from_id):
        self.got.append((msg, from_id))


class TestDelivery:
    def test_protocol_receives_broadcast(self):
        w = MiniWorld(chain_positions(2))
        rec = Recorder()
        w.nodes[1].set_protocol(rec)
        w.nodes[0].broadcast("hello", 64)
        w.run(until=1.0)
        assert rec.got == [("hello", 0)]

    def test_protocol_receives_unicast(self):
        w = MiniWorld(chain_positions(2))
        rec = Recorder()
        w.nodes[1].set_protocol(rec)
        w.nodes[0].send("msg", 1, 64)
        w.run(until=1.0)
        assert rec.got == [("msg", 0)]

    def test_no_protocol_no_crash(self):
        w = MiniWorld(chain_positions(2))
        w.nodes[0].broadcast("x", 64)
        w.run(until=1.0)  # must not raise


class TestFailureModel:
    def test_down_node_does_not_deliver(self):
        w = MiniWorld(chain_positions(2))
        rec = Recorder()
        w.nodes[1].set_protocol(rec)
        w.nodes[1].fail()
        w.nodes[0].broadcast("x", 64)
        w.run(until=1.0)
        assert rec.got == []

    def test_recovered_node_delivers_again(self):
        w = MiniWorld(chain_positions(2))
        rec = Recorder()
        w.nodes[1].set_protocol(rec)
        w.nodes[1].fail()
        w.nodes[1].recover()
        w.nodes[0].broadcast("x", 64)
        w.run(until=1.0)
        assert rec.got == [("x", 0)]

    def test_fail_is_idempotent(self):
        w = MiniWorld(chain_positions(1))
        w.nodes[0].fail()
        w.nodes[0].fail()
        assert w.nodes[0].fail_count == 1

    def test_recover_is_idempotent(self):
        w = MiniWorld(chain_positions(1))
        w.nodes[0].recover()  # already up: no-op
        assert w.nodes[0].up

    def test_downtime_accounting(self):
        w = MiniWorld(chain_positions(1))
        node = w.nodes[0]
        w.sim.schedule(1.0, node.fail)
        w.sim.schedule(4.0, node.recover)
        w.run(until=5.0)
        assert node.downtime == 3.0

    def test_send_while_down_fails(self):
        w = MiniWorld(chain_positions(2))
        w.nodes[0].fail()
        assert w.nodes[0].send("x", 1, 64) is False

    def test_counters(self):
        w = MiniWorld(chain_positions(1))
        w.nodes[0].fail()
        w.nodes[0].recover()
        assert w.tracer.value("node.fail") == 1
        assert w.tracer.value("node.recover") == 1
