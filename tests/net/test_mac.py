"""Unit tests for the CSMA/CA MAC."""

import pytest

from repro.net.energy import EnergyMeter, EnergyParams
from repro.net.mac import CsmaMac, MacParams
from repro.net.packet import BROADCAST
from repro.net.radio import Channel, Radio, RadioParams
from repro.sim import RngRegistry, Simulator, Tracer


def make_net(n_nodes, spacing=30.0, mac_params=None, range_m=40.0):
    """n MACs on a line; returns (sim, tracer, macs, states)."""
    sim = Simulator()
    tracer = Tracer(lambda: sim.now)
    channel = Channel(sim, tracer, RadioParams(range_m=range_m))
    rngs = RngRegistry(11)
    macs, states = [], []
    for i in range(n_nodes):
        meter = EnergyMeter(EnergyParams())
        radio = Radio(i, i * spacing, 0.0, channel, meter)
        mac = CsmaMac(sim, radio, mac_params or MacParams(), rngs.stream(f"mac.{i}"), tracer)
        macs.append(mac)
        states.append(radio)
    return sim, tracer, macs, states


class TestBroadcast:
    def test_broadcast_delivered_to_neighbors(self):
        sim, _tr, macs, _ = make_net(3)
        got = []
        macs[1].receive_callback = lambda p, f: got.append((p, f))
        macs[0].send("hello", BROADCAST, 64)
        sim.run()
        assert got == [("hello", 0)]

    def test_broadcast_not_acked(self):
        sim, tracer, macs, _ = make_net(2)
        macs[0].send("x", BROADCAST, 64)
        sim.run()
        assert tracer.value("mac.ack_tx") == 0

    def test_queue_drains_in_order(self):
        sim, _tr, macs, _ = make_net(2)
        got = []
        macs[1].receive_callback = lambda p, f: got.append(p)
        for i in range(5):
            macs[0].send(i, BROADCAST, 64)
        sim.run()
        assert got == [0, 1, 2, 3, 4]

    def test_queue_limit_drops(self):
        params = MacParams(queue_limit=2)
        sim, tracer, macs, _ = make_net(2, mac_params=params)
        accepted = [macs[0].send(i, BROADCAST, 64) for i in range(5)]
        # One frame may already be in service; the queue holds 2 more.
        assert accepted.count(False) >= 1
        assert tracer.value("mac.drop_queue") >= 1
        sim.run()


class TestUnicast:
    def test_unicast_delivered_and_acked(self):
        sim, tracer, macs, _ = make_net(2)
        got = []
        macs[1].receive_callback = lambda p, f: got.append((p, f))
        macs[0].send("data", 1, 64)
        sim.run()
        assert got == [("data", 0)]
        assert tracer.value("mac.acked") == 1

    def test_unicast_for_other_node_ignored(self):
        sim, _tr, macs, _ = make_net(3, spacing=20.0)
        got = []
        macs[2].receive_callback = lambda p, f: got.append(p)
        macs[0].send("data", 1, 64)
        sim.run()
        assert got == []

    def test_unreachable_unicast_dropped_after_retries(self):
        sim, tracer, macs, _ = make_net(2, spacing=100.0)  # out of range
        macs[0].send("data", 1, 64)
        sim.run()
        assert tracer.value("mac.drop_retry") == 1
        assert tracer.value("mac.retry") == MacParams().retry_limit + 1

    def test_drop_then_next_frame_sent(self):
        sim, _tr, macs, _ = make_net(3, spacing=30.0)
        # 0 -> 5 unreachable (no such node); then broadcast must still flow.
        got = []
        macs[1].receive_callback = lambda p, f: got.append(p)
        macs[0].send("lost", 99, 64)
        macs[0].send("ok", BROADCAST, 64)
        sim.run()
        assert got == ["ok"]

    def test_retry_succeeds_after_transient_interference(self):
        sim, tracer, macs, _ = make_net(2)
        got = []
        macs[1].receive_callback = lambda p, f: got.append(p)
        macs[0].send("data", 1, 64)
        sim.run()
        assert got == ["data"]
        assert tracer.value("mac.drop_retry") == 0


class TestCarrierSense:
    def test_concurrent_senders_defer_and_both_deliver(self):
        sim, _tr, macs, _ = make_net(3, spacing=20.0)
        got = []
        macs[2].receive_callback = lambda p, f: got.append(p)
        macs[0].send("a", 2, 64)
        macs[1].send("b", 2, 64)
        sim.run()
        assert sorted(got) == ["a", "b"]

    def test_many_contenders_all_eventually_deliver(self):
        sim, _tr, macs, _ = make_net(5, spacing=10.0)
        got = []
        macs[4].receive_callback = lambda p, f: got.append(p)
        for i in range(4):
            macs[i].send(f"m{i}", 4, 64)
        sim.run()
        assert sorted(got) == ["m0", "m1", "m2", "m3"]

    def test_busy_property(self):
        sim, _tr, macs, _ = make_net(2)
        assert not macs[0].busy
        macs[0].send("x", BROADCAST, 64)
        assert macs[0].busy
        sim.run()
        assert not macs[0].busy


class TestFailure:
    def test_send_while_down_dropped(self):
        sim, tracer, macs, states = make_net(2)
        states[0].up = False
        assert macs[0].send("x", 1, 64) is False
        assert tracer.value("mac.drop_down") == 1
        sim.run()

    def test_fail_flushes_queue(self):
        sim, _tr, macs, states = make_net(2)
        macs[0].send("a", BROADCAST, 64)
        macs[0].send("b", BROADCAST, 64)
        macs[0].fail()
        states[0].up = False
        got = []
        macs[1].receive_callback = lambda p, f: got.append(p)
        sim.run()
        assert macs[0].queue_length() == 0
        assert got == []

    def test_down_receiver_never_delivers_upward(self):
        sim, _tr, macs, states = make_net(2)
        states[1].up = False
        got = []
        macs[1].receive_callback = lambda p, f: got.append(p)
        macs[0].send("x", BROADCAST, 64)
        sim.run()
        assert got == []


class TestParams:
    def test_invalid_cw_rejected(self):
        with pytest.raises(ValueError):
            MacParams(cw_min=0)
        with pytest.raises(ValueError):
            MacParams(cw_min=16, cw_max=8)

    def test_invalid_limits_rejected(self):
        with pytest.raises(ValueError):
            MacParams(retry_limit=-1)
        with pytest.raises(ValueError):
            MacParams(queue_limit=0)
