"""Unit tests for the SoA node state and the EnergyMeter-shaped view.

The contract under test: a :class:`MeterView` over a
:class:`NodeState` row behaves exactly like a scalar
:class:`~repro.net.energy.EnergyMeter` — same charges, same per-class
dicts, same derived energies — and hands back only built-in Python
types (numpy scalars must never leak into timestamps or JSON).
"""

import pytest

from repro.net.energy import EnergyMeter, EnergyParams
from repro.net.state import MeterView, NodeState


def _pair():
    st = NodeState(capacity=2)
    row = st.add_node(1.0, 2.0)
    params = EnergyParams()
    return EnergyMeter(params), MeterView(st, row, params), st


class TestMeterViewMatchesScalarMeter:
    def test_tx_accounting(self):
        scalar, view, _ = _pair()
        for dur, cls in ((0.01, "interest"), (0.02, "data"), (0.005, "interest")):
            scalar.note_tx(dur, cls)
            view.note_tx(dur, cls)
        assert view.tx_time == scalar.tx_time
        assert view.tx_count == scalar.tx_count
        assert view.tx_time_by_class == scalar.tx_time_by_class

    def test_rx_fast_path(self):
        scalar, view, _ = _pair()
        scalar.note_rx(1.0, 0.25, "data")
        view.note_rx(1.0, 0.25, "data")
        assert view.rx_time == scalar.rx_time == 0.25
        assert view.rx_count == scalar.rx_count == 1

    def test_rx_overlap_charges_extension_only(self):
        # Second charge starts inside the first interval: only the part
        # past the charged edge is billed, exactly like the scalar meter.
        scalar, view, _ = _pair()
        for meter in (scalar, view):
            meter.note_rx(1.0, 1.0, "data")      # [1, 2]
            meter.note_rx(1.5, 1.0, "data")      # [1.5, 2.5] -> +0.5
        assert view.rx_time == scalar.rx_time == 1.5
        assert view.rx_count == scalar.rx_count == 2
        assert view.rx_time_by_class == scalar.rx_time_by_class

    def test_rx_contained_overlap_charges_nothing(self):
        scalar, view, _ = _pair()
        for meter in (scalar, view):
            meter.note_rx(1.0, 1.0, "data")      # [1, 2]
            meter.note_rx(1.2, 0.1, "data")      # inside -> no charge
        assert view.rx_time == scalar.rx_time == 1.0
        # no charge -> no count, matching the scalar meter
        assert view.rx_count == scalar.rx_count == 1

    def test_rx_out_of_order_raises(self):
        _, view, _ = _pair()
        view.note_rx(5.0, 1.0)
        view.note_rx(5.5, 1.0)
        with pytest.raises(RuntimeError):
            view.note_rx(1.0, 0.5)  # before the previous charged interval

    def test_negative_duration_rejected(self):
        _, view, _ = _pair()
        with pytest.raises(ValueError):
            view.note_tx(-0.1)
        with pytest.raises(ValueError):
            view.note_rx(0.0, -0.1)

    def test_derived_energies_match(self):
        scalar, view, _ = _pair()
        for meter in (scalar, view):
            meter.note_tx(0.05, "data")
            meter.note_rx(0.0, 0.08, "interest")
        total = 10.0
        assert view.idle_time(total) == scalar.idle_time(total)
        assert view.communication_energy_j() == scalar.communication_energy_j()
        assert view.total_energy_j(total) == scalar.total_energy_j(total)
        assert view.energy_by_class_j() == scalar.energy_by_class_j()
        assert view.class_times() == scalar.class_times()

    def test_readouts_are_builtin_types(self):
        _, view, _ = _pair()
        view.note_tx(0.01, "data")
        view.note_rx(0.0, 0.02, "data")
        assert type(view.tx_time) is float
        assert type(view.rx_time) is float
        assert type(view.tx_count) is int
        assert type(view.rx_count) is int
        for d in (view.tx_time_by_class, view.rx_time_by_class):
            for k, v in d.items():
                assert type(k) is str and type(v) is float

    def test_class_dicts_hold_only_charged_classes(self):
        _, view, st = _pair()
        view.note_rx(1.0, 1.0, "data")
        view.note_rx(1.2, 0.1, "interest")  # contained -> zero charge
        # the zero-charge class must not appear (scalar meters only
        # create per-class entries on an actual charge)
        assert set(view.rx_time_by_class) == {"data"}


class TestNodeState:
    def test_rows_are_dense_and_positions_stick(self):
        st = NodeState(capacity=1)
        rows = [st.add_node(float(i), float(2 * i)) for i in range(5)]
        assert rows == list(range(5))
        assert st.n == 5
        assert [float(x) for x in st.x[:5]] == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_growth_preserves_state(self):
        st = NodeState(capacity=2)
        r0 = st.add_node(1.0, 1.0)
        params = EnergyParams()
        view = MeterView(st, r0, params)
        view.note_tx(0.5, "data")
        view.note_rx(0.0, 0.25, "data")
        st.set_up(r0, False)
        for i in range(20):  # force several capacity doublings
            st.add_node(float(i), float(i))
        assert view.tx_time == 0.5
        assert view.rx_time == 0.25
        assert view.rx_time_by_class == {"data": 0.25}
        assert bool(st.up[r0]) is False
        assert st.n_down == 1

    def test_set_up_tracks_down_count(self):
        st = NodeState()
        r = st.add_node(0.0, 0.0)
        assert st.n_down == 0
        st.set_up(r, False)
        assert st.n_down == 1
        st.set_up(r, False)  # idempotent
        assert st.n_down == 1
        st.set_up(r, True)
        assert st.n_down == 0
        st.set_up(r, True)
        assert st.n_down == 0
