"""Unit tests for §4.3 set-cover path truncation."""

from repro.core.truncation import WindowAggregate, setcover_victims


def agg(sender, items_by_source, cost):
    """items_by_source: {source: [seq, ...]}"""
    keys = frozenset((s, q) for s, seqs in items_by_source.items() for q in seqs)
    return WindowAggregate(
        sender=sender,
        item_keys=keys,
        cost=cost,
        source_of={k: k[0] for k in keys},
    )


class TestPaperFig4:
    """Fig 4: G sends {a1,a2,b1} w=5, H sends {b1,b2} w=6, K sends {a2,b2} w=7."""

    WINDOW = [
        agg("G", {"A": ["a1", "a2"], "B": ["b1"]}, 5.0),
        agg("H", {"B": ["b1", "b2"]}, 6.0),
        agg("K", {"A": ["a2"], "B": ["b2"]}, 7.0),
    ]

    def test_event_cover_truncates_only_k(self):
        # Fig 4(a): "node L will negatively reinforce node K because S3 is
        # not in C" — the conservative, event-level rule.
        assert setcover_victims(self.WINDOW, on_sources=False) == ["K"]

    def test_source_cover_truncates_h_and_k(self):
        # Fig 4(b): with the sources transformation, "L negatively
        # reinforces H and K".
        assert setcover_victims(self.WINDOW, on_sources=True) == ["H", "K"]


class TestGuards:
    def test_empty_window(self):
        assert setcover_victims([]) == []

    def test_single_sender_never_cut(self):
        window = [agg("G", {"A": ["a1"]}, 5.0)]
        assert setcover_victims(window) == []

    def test_never_cut_all_senders(self):
        # Identical aggregates: the cover keeps one; the other is cut,
        # but never both.
        window = [
            agg("G", {"A": ["a1"]}, 5.0),
            agg("H", {"A": ["a1"]}, 5.0),
        ]
        victims = setcover_victims(window)
        assert len(victims) == 1

    def test_both_needed_none_cut(self):
        window = [
            agg("G", {"A": ["a1"]}, 5.0),
            agg("H", {"B": ["b1"]}, 5.0),
        ]
        assert setcover_victims(window) == []

    def test_empty_item_sets_ignored(self):
        window = [
            agg("G", {"A": ["a1"]}, 5.0),
            WindowAggregate(sender="H", item_keys=frozenset(), cost=1.0, source_of={}),
        ]
        # H contributed nothing coverable; G must not be cut (single real
        # sender guard applies to the pair).
        victims = setcover_victims(window)
        assert "G" not in victims


class TestMultipleAggregatesPerSender:
    def test_sender_kept_if_any_aggregate_chosen(self):
        window = [
            agg("G", {"A": ["a1"]}, 1.0),
            agg("G", {"A": ["a2"]}, 1.0),
            agg("H", {"A": ["a1", "a2"]}, 50.0),
        ]
        assert setcover_victims(window) == ["H"]

    def test_cheaper_covering_sender_wins(self):
        window = [
            agg("G", {"A": ["a1"], "B": ["b1"]}, 2.0),
            agg("H", {"A": ["a2"], "B": ["b2"]}, 20.0),
        ]
        # Source cover: G's {A,B} covers everything at cost ~2.
        assert setcover_victims(window, on_sources=True) == ["H"]
