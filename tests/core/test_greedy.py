"""Tests for the greedy aggregation agent (§4): E/C bookkeeping, the T_p
decision, incremental cost routing, and tree construction on known
geometries."""

import pytest

from repro.core.greedy import GreedyAgent
from repro.diffusion.agent import DiffusionParams
from repro.diffusion.messages import ExploratoryEvent, IncrementalCostMsg
from repro.experiments.metrics import MetricsCollector
from tests.helpers import MiniWorld, chain_positions

PARAMS = DiffusionParams(exploratory_interval=8.0, interest_interval=4.0)


class TestSinkDecision:
    def test_sink_waits_tp_before_reinforcing(self):
        w = MiniWorld(chain_positions(2))
        w.attach_agents(GreedyAgent, params=PARAMS, sources=[0], sink=1)
        # The first exploratory arrives around t~0.1; T_p = 1 s.
        w.run(until=0.8)
        assert w.tracer.value("diffusion.reinforcement_sent") == 0
        w.run(until=2.5)
        assert w.tracer.value("diffusion.reinforcement_sent") >= 1

    def test_decision_picks_lowest_cost_not_first(self):
        w = MiniWorld(chain_positions(1))
        agent = w.attach_agents(GreedyAgent, params=PARAMS)[0]
        agent.exploratory_cache.note_exploratory("k", 7, 9.0, 0.1)  # fast, costly
        agent.exploratory_cache.note_exploratory("k", 2, 3.0, 0.2)  # slow, cheap
        assert agent.choose_upstream("k").neighbor == 2

    def test_each_round_decided_once(self):
        w = MiniWorld(chain_positions(2))
        w.attach_agents(GreedyAgent, params=PARAMS, sources=[0], sink=1)
        w.run(until=6.0)
        rounds = w.tracer.value("diffusion.exploratory_at_sink")
        sent = w.tracer.value("diffusion.reinforcement_sent")
        assert sent <= rounds


class TestIncrementalCostGeneration:
    def test_off_tree_source_does_not_advertise(self):
        w = MiniWorld(chain_positions(1))
        agent = w.attach_agents(GreedyAgent, params=PARAMS, sources=[0])[0]
        agent.source_for[1] = object()  # pretend source for interest 1
        msg = ExploratoryEvent(1, 99, 1, 3.0, 0.0)
        agent.on_exploratory_first(msg, from_id=5)
        assert w.tracer.value("greedy.ic_originated") == 0

    def test_on_tree_source_advertises_cost_e(self):
        w = MiniWorld(chain_positions(2))
        agents = w.attach_agents(GreedyAgent, params=PARAMS, sources=[0], sink=1)
        w.run(until=3.0)  # source 0 reinforced, on tree
        agent = agents[0]
        sent = []
        agent.node.send = lambda msg, dst, size: sent.append((msg, dst)) or True
        msg = ExploratoryEvent(1, 99, 1, 3.5, 0.0)
        agent.on_exploratory_first(msg, from_id=1)
        assert w.tracer.value("greedy.ic_originated") == 1
        ic, _dst = sent[0]
        assert isinstance(ic, IncrementalCostMsg)
        assert ic.cost == 3.5  # C starts at the source's own E
        assert ic.origin_source == agent.node.node_id

    def test_non_source_never_advertises(self):
        w = MiniWorld(chain_positions(3))
        agents = w.attach_agents(GreedyAgent, params=PARAMS, sources=[0], sink=2)
        w.run(until=3.0)
        relay = agents[1]
        relay.on_exploratory_first(ExploratoryEvent(2, 99, 1, 2.0, 0.0), from_id=0)
        assert w.tracer.value("greedy.ic_originated") == 0


class TestIncrementalCostRouting:
    def _on_tree_relay(self):
        w = MiniWorld(chain_positions(3))
        agents = w.attach_agents(GreedyAgent, params=PARAMS, sources=[0], sink=2)
        w.run(until=3.0)
        relay = agents[1]
        assert relay.gradients[2].has_data_gradient(w.sim.now)
        return w, relay

    def test_relay_lowers_c_to_cached_e(self):
        w, relay = self._on_tree_relay()
        # Pretend the relay heard the new source's flood at cost 2.
        relay.exploratory_cache.note_exploratory((2, 99, 1), 0, 2.0, w.sim.now)
        sent = []
        relay.node.send = lambda msg, dst, size: sent.append(msg) or True
        relay._handle_incremental_cost(
            IncrementalCostMsg(2, (2, 99, 1), origin_source=50, cost=7.0), from_id=0
        )
        assert sent, "relay on the tree must forward the IC message"
        assert sent[0].cost == 2.0  # min(7, cached E=2)

    def test_relay_never_raises_c(self):
        w, relay = self._on_tree_relay()
        relay.exploratory_cache.note_exploratory((2, 99, 1), 0, 9.0, w.sim.now)
        sent = []
        relay.node.send = lambda msg, dst, size: sent.append(msg) or True
        relay._handle_incremental_cost(
            IncrementalCostMsg(2, (2, 99, 1), origin_source=50, cost=4.0), from_id=0
        )
        assert sent[0].cost == 4.0

    def test_duplicate_ic_not_reforwarded(self):
        w, relay = self._on_tree_relay()
        sent = []
        relay.node.send = lambda msg, dst, size: sent.append(msg) or True
        ic = IncrementalCostMsg(2, (2, 99, 1), origin_source=50, cost=4.0)
        relay._handle_incremental_cost(ic, from_id=0)
        relay._handle_incremental_cost(ic, from_id=0)
        assert len(sent) == 1

    def test_off_tree_node_drops_ic(self):
        w = MiniWorld(chain_positions(3))
        agents = w.attach_agents(GreedyAgent, params=PARAMS)  # nobody reinforced
        relay = agents[1]
        relay._gradient_table(2)  # interest known but no data gradients
        sent = []
        relay.node.send = lambda msg, dst, size: sent.append(msg) or True
        relay._handle_incremental_cost(
            IncrementalCostMsg(2, (2, 99, 1), origin_source=50, cost=4.0), from_id=0
        )
        assert sent == []
        assert w.tracer.value("greedy.ic_off_tree") == 1

    def test_ic_recorded_for_reinforcement_choice(self):
        w, relay = self._on_tree_relay()
        relay._handle_incremental_cost(
            IncrementalCostMsg(2, (2, 99, 1), origin_source=50, cost=4.0), from_id=0
        )
        rec = relay.exploratory_cache.get((2, 99, 1))
        assert rec.inc_cost_by_neighbor[0] == 4.0


class TestGreedyTreeConstruction:
    def test_second_source_grafts_at_closest_tree_point(self):
        """T geometry:

            0 -- 1 -- 2 -- 3(sink)
                      |
                      4 (second source, adjacent to on-path node 2)

        The greedy tree must route source 4 through node 2 (1 hop),
        NOT along an independent path (none exists here), and source 0's
        path stays 0-1-2-3.  Total tree edges: 4.
        """
        positions = [
            (0.0, 0.0),
            (35.0, 0.0),
            (70.0, 0.0),
            (105.0, 0.0),
            (70.0, 35.0),
        ]
        w = MiniWorld(positions)
        metrics = MetricsCollector(warmup_end=0.0)
        w.attach_agents(
            GreedyAgent, params=PARAMS, metrics=metrics, sources=[0, 4], sink=3
        )
        w.run(until=20.0)
        # Node 4 must have a data gradient toward node 2 (graft point).
        assert w.agents[4].gradients[3].data_neighbors(w.sim.now) == [2]
        # Node 2 is a junction; both sources' items are delivered.
        delivered_sources = {
            key[0] for bucket in metrics.delivered.values() for key in bucket
        }
        assert delivered_sources == {0, 4}
        assert metrics.delivery_ratio() > 0.7

    def test_aggregation_happens_at_graft_point(self):
        positions = [
            (0.0, 0.0),
            (35.0, 0.0),
            (70.0, 0.0),
            (105.0, 0.0),
            (70.0, 35.0),
        ]
        w = MiniWorld(positions)
        w.attach_agents(GreedyAgent, params=PARAMS, sources=[0, 4], sink=3)
        w.run(until=20.0)
        assert w.tracer.value("diffusion.items_aggregated") > 0


class TestEnergyCostConvention:
    def test_exploratory_origin_cost_is_one(self):
        # E = "cost of delivering this copy to its receiver": origin
        # broadcasts with E=1 and each re-broadcast adds 1.
        w = MiniWorld(chain_positions(4))
        w.attach_agents(GreedyAgent, params=PARAMS, sources=[0], sink=3)
        w.run(until=3.0)
        # Sink (3 hops away) must cache E=3 for the direct flood.
        cache = w.agents[3].exploratory_cache
        keys = list(cache._records)  # inspect recorded rounds
        assert keys
        rec = cache.get(keys[0])
        assert min(rec.energy_by_neighbor.values()) == pytest.approx(3.0)
