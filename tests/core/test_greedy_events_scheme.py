"""Tests for the greedy-events ablation scheme and truncation patience."""

import pytest

from repro.core.greedy import GreedyAgent, GreedyEventTruncationAgent
from repro.diffusion.agent import DiffusionParams, _WindowEntry
from repro.experiments.config import ExperimentConfig, smoke
from repro.experiments.runner import run_experiment
from tests.helpers import MiniWorld, chain_positions

PARAMS = DiffusionParams(exploratory_interval=8.0, interest_interval=4.0)


def entry(sender, items_by_source, cost, t=0.0):
    keys = frozenset(
        (s, q) for s, seqs in items_by_source.items() for q in seqs
    )
    return _WindowEntry(
        time=t,
        from_id=sender,
        accepted_keys=keys,
        all_keys=keys,
        cost=cost,
        source_of={k: k[0] for k in keys},
    )


FIG4_WINDOW = [
    entry("G", {"A": [1, 2], "B": [1]}, 5.0),
    entry("H", {"B": [1, 2]}, 6.0),
    entry("K", {"A": [2], "B": [2]}, 7.0),
]


def agent_of(cls):
    w = MiniWorld(chain_positions(1))
    return w, w.attach_agents(cls, params=PARAMS)[0]


class TestTruncationPatience:
    def test_first_guilty_window_only_warns(self):
        _w, agent = agent_of(GreedyAgent)
        assert agent.truncation_victims(1, FIG4_WINDOW) == []

    def test_second_consecutive_window_truncates(self):
        _w, agent = agent_of(GreedyAgent)
        agent.truncation_victims(1, FIG4_WINDOW)
        assert agent.truncation_victims(1, FIG4_WINDOW) == ["H", "K"]

    def test_streak_resets_when_innocent(self):
        _w, agent = agent_of(GreedyAgent)
        agent.truncation_victims(1, FIG4_WINDOW)
        # An innocent window (every sender needed) clears the streaks.
        innocent = [
            entry("G", {"A": [5]}, 1.0),
            entry("H", {"B": [5]}, 1.0),
            entry("K", {"C": [5]}, 1.0),
        ]
        assert agent.truncation_victims(1, innocent) == []
        assert agent.truncation_victims(1, FIG4_WINDOW) == []  # streak restarted

    def test_streak_cleared_after_truncation(self):
        _w, agent = agent_of(GreedyAgent)
        agent.truncation_victims(1, FIG4_WINDOW)
        agent.truncation_victims(1, FIG4_WINDOW)
        # Immediately afterwards, a single window is not enough again.
        assert agent.truncation_victims(1, FIG4_WINDOW) == []


class TestEventTruncationVariant:
    def test_uses_event_level_cover(self):
        _w, agent = agent_of(GreedyEventTruncationAgent)
        agent.truncation_victims(1, FIG4_WINDOW)
        # Event-level rule (fig 4a): only K falls outside the cover.
        assert agent.truncation_victims(1, FIG4_WINDOW) == ["K"]

    def test_scheme_name(self):
        assert GreedyEventTruncationAgent.scheme_name == "greedy-events"
        assert GreedyEventTruncationAgent.truncate_on_sources is False

    def test_end_to_end_run(self):
        cfg = ExperimentConfig.from_profile(
            smoke(), "greedy-events", 80, seed=4
        )
        r = run_experiment(cfg)
        assert r.scheme == "greedy-events"
        assert r.delivery_ratio > 0.8
        assert r.counters.get("greedy.ic_originated", 0) > 0
