"""End-to-end integration tests: full packet-level runs of both schemes.

These are the "does the whole reproduction hang together" checks — small
fields, short runs, but the complete stack and workload.
"""

import pytest

from repro.experiments.config import ExperimentConfig, FailureModel, smoke
from repro.experiments.runner import run_experiment


def run(scheme, n=80, seed=11, **overrides):
    return run_experiment(
        ExperimentConfig.from_profile(smoke(), scheme, n, seed=seed, **overrides)
    )


class TestEndToEnd:
    @pytest.mark.parametrize("scheme", ["opportunistic", "greedy"])
    def test_high_delivery_in_static_network(self, scheme):
        r = run(scheme)
        assert r.delivery_ratio >= 0.85
        assert r.distinct_delivered > 50

    @pytest.mark.parametrize("scheme", ["opportunistic", "greedy"])
    def test_delays_sub_second(self, scheme):
        # Uncongested small field: a few hops plus at most a couple of
        # aggregation delays.
        r = run(scheme)
        assert 0.0 < r.avg_delay < 1.5

    @pytest.mark.parametrize("scheme", ["opportunistic", "greedy"])
    def test_deterministic_end_to_end(self, scheme):
        a, b = run(scheme), run(scheme)
        assert a.avg_dissipated_energy == b.avg_dissipated_energy
        assert a.counters == b.counters

    def test_energy_accounting_consistent_with_counters(self):
        r = run("greedy")
        # Communication energy must be positive and bounded by the total
        # bytes on the air at tx+rx power over their air time.
        assert r.total_energy_j > 0
        air_time_per_byte = 8 / 1.6e6
        max_power = 0.660 + 0.395 * 50  # tx + up to ~50 overhearers
        upper = r.counters["radio.tx_bytes"] * air_time_per_byte * max_power
        assert r.total_energy_j < upper

    def test_greedy_builds_smaller_data_path_than_opportunistic(self):
        greedy = run("greedy", n=150, seed=21)
        opp = run("opportunistic", n=150, seed=21)
        assert (
            greedy.counters["diffusion.data_sent"]
            < opp.counters["diffusion.data_sent"]
        )

    def test_greedy_uses_incremental_cost_machinery(self):
        r = run("greedy", n=150, seed=21)
        assert r.counters.get("greedy.ic_originated", 0) > 0
        assert r.counters.get("greedy.ic_received", 0) > 0

    def test_opportunistic_never_uses_incremental_cost(self):
        r = run("opportunistic", n=150, seed=21)
        assert r.counters.get("greedy.ic_originated", 0) == 0

    @pytest.mark.parametrize("scheme", ["opportunistic", "greedy"])
    def test_failures_degrade_but_do_not_kill(self, scheme):
        r = run(scheme, failures=FailureModel(fraction=0.2, epoch=6.0))
        assert 0.1 < r.delivery_ratio < 1.0
        assert r.counters["node.fail"] > 0
        assert r.counters["node.recover"] > 0

    def test_multi_sink_delivers_to_each_sink(self):
        r = run("greedy", n=120, n_sinks=3, seed=6)
        # Three interests, each with its own deliveries.
        assert r.events_sent > 0
        assert r.delivery_ratio > 0.7

    def test_many_sources(self):
        r = run("greedy", n=120, n_sources=10, seed=6)
        assert r.delivery_ratio > 0.8

    @pytest.mark.parametrize("aggregation", ["perfect", "linear", "none"])
    def test_aggregation_functions_end_to_end(self, aggregation):
        r = run("greedy", aggregation=aggregation, seed=13)
        assert r.delivery_ratio > 0.8

    def test_linear_aggregation_costs_more_than_perfect(self):
        perfect = run("greedy", n=120, n_sources=10, seed=9)
        linear = run("greedy", n=120, n_sources=10, seed=9, aggregation="linear")
        assert linear.avg_dissipated_energy > perfect.avg_dissipated_energy

    def test_counters_conserve_flows(self):
        r = run("greedy")
        c = r.counters
        # Every MAC reception corresponds to a PHY delivery.
        assert c["mac.rx"] <= c["radio.rx"]
        # ACKs only for unicast data frames.
        assert c["mac.acked"] <= c["mac.tx"]
        # Deliveries cannot exceed generated events (per interest dedup).
        assert c["diffusion.item_delivered"] <= c["diffusion.item_generated"] * 1
