"""Unit tests for experiment configuration and profiles."""

import pytest

from repro.experiments.config import (
    DENSITY_SWEEP,
    PROFILES,
    SINK_SWEEP,
    SOURCE_SWEEP,
    ExperimentConfig,
    FailureModel,
    fast,
    paper,
    smoke,
)


class TestSweepConstants:
    def test_paper_density_sweep(self):
        # "seven different sensor fields, ranging from 50 to 350 nodes in
        # increments of 50 nodes"
        assert DENSITY_SWEEP == (50, 100, 150, 200, 250, 300, 350)

    def test_source_and_sink_sweeps(self):
        assert SOURCE_SWEEP == (2, 5, 8, 10, 14)
        assert SINK_SWEEP == (1, 2, 3, 4, 5)


class TestProfiles:
    def test_registry_complete(self):
        assert set(PROFILES) == {"paper", "fast", "smoke"}

    def test_paper_profile_uses_paper_constants(self):
        p = paper()
        d = p.diffusion
        assert d.data_interval == 0.5           # 2 events/s
        assert d.exploratory_interval == 50.0
        assert d.interest_interval == 5.0
        assert d.aggregation_delay == 0.5       # T_a
        assert d.negative_window == 2.0         # T_n = 4 T_a
        assert d.reinforcement_timer == 1.0     # T_p
        assert p.trials == 10                   # ten fields per point

    def test_fast_profile_keeps_protocol_constants(self):
        d = fast().diffusion
        assert d.data_interval == 0.5
        assert d.aggregation_delay == 0.5
        assert d.negative_window == 2.0
        assert d.reinforcement_timer == 1.0
        # Only the exploratory interval is scaled.
        assert d.exploratory_interval < 50.0

    def test_profiles_have_multiple_exploratory_rounds(self):
        for make in (paper, fast, smoke):
            p = make()
            assert p.duration / p.diffusion.exploratory_interval >= 3

    def test_warmup_before_duration_enforced(self):
        with pytest.raises(ValueError):
            ExperimentConfig(
                scheme="greedy", n_nodes=50, seed=1, duration=10.0, warmup=10.0
            )


class TestFailureModel:
    def test_paper_defaults(self):
        m = FailureModel()
        assert m.fraction == 0.2   # "we repeatedly turned off 20% of nodes"
        assert m.epoch == 30.0     # "for 30 seconds"

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            FailureModel(fraction=0.0)
        with pytest.raises(ValueError):
            FailureModel(fraction=1.0000001)
        with pytest.raises(ValueError):
            FailureModel(fraction=-0.2)

    def test_fraction_one_is_valid(self):
        # Regression: the docstring promises inclusive semantics (all
        # non-exempt nodes down; sinks are exempt so the run still
        # measures), but validation used to reject exactly 1.0.
        m = FailureModel(fraction=1.0)
        assert m.fraction == 1.0

    def test_fraction_one_runs_end_to_end(self):
        # The worst case must actually simulate: every relay down each
        # epoch, sinks exempt, delivery (near-)zero but no crash.
        from repro.experiments.runner import run_experiment

        cfg = ExperimentConfig.from_profile(
            smoke(),
            "greedy",
            50,
            seed=3,
            duration=8.0,
            warmup=3.0,
            failures=FailureModel(fraction=1.0, epoch=2.0),
        )
        metrics = run_experiment(cfg)
        assert 0.0 <= metrics.delivery_ratio <= 1.0

    def test_invalid_epoch(self):
        with pytest.raises(ValueError):
            FailureModel(epoch=0.0)


class TestExperimentConfig:
    def test_defaults_match_paper_workload(self):
        cfg = ExperimentConfig(
            scheme="greedy", n_nodes=150, seed=1, duration=30.0, warmup=10.0
        )
        assert cfg.n_sources == 5
        assert cfg.n_sinks == 1
        assert cfg.source_placement == "corner"
        assert cfg.aggregation == "perfect"
        assert cfg.field_size == 200.0
        assert cfg.range_m == 40.0

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(
                scheme="psychic", n_nodes=150, seed=1, duration=30.0, warmup=10.0
            )

    def test_unknown_placement_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(
                scheme="greedy",
                n_nodes=150,
                seed=1,
                duration=30.0,
                warmup=10.0,
                source_placement="diagonal",
            )

    def test_from_profile_applies_overrides(self):
        cfg = ExperimentConfig.from_profile(
            smoke(), "opportunistic", 80, seed=4, n_sources=8
        )
        assert cfg.scheme == "opportunistic"
        assert cfg.n_nodes == 80
        assert cfg.n_sources == 8
        assert cfg.duration == smoke().duration

    def test_workload_bounds(self):
        with pytest.raises(ValueError):
            ExperimentConfig(
                scheme="greedy", n_nodes=10, seed=1, duration=30.0, warmup=1.0, n_sources=0
            )
