"""One full paper-profile run (the §5.1 constants, small field).

The figure benchmarks use the scaled `fast` profile; this test proves the
published constants themselves (50 s exploratory interval, 260 s runs)
work end to end — exploratory rounds are sparse, so it exercises the
long-lived data-gradient path that the fast profile barely touches.
"""

import pytest

from repro.experiments.config import ExperimentConfig, paper
from repro.experiments.runner import run_experiment


@pytest.mark.parametrize("scheme", ["opportunistic", "greedy"])
def test_paper_profile_small_field(scheme):
    profile = paper()
    assert profile.diffusion.exploratory_interval == 50.0
    cfg = ExperimentConfig.from_profile(profile, scheme, 50, seed=2)
    r = run_experiment(cfg)
    # 5 sources x 2 ev/s x 200 s measured window = ~2000 events.
    assert r.events_sent > 1500
    assert r.delivery_ratio > 0.9
    assert 0.0 < r.avg_delay < 2.0
