"""Unit tests for the §5.1 metrics collector."""

import pytest

from repro.diffusion.messages import DataItem
from repro.experiments.metrics import MetricsCollector, RunMetrics


def item(src, seq, t):
    return DataItem(src, seq, t)


class TestCollector:
    def test_counts_post_warmup_generation(self):
        m = MetricsCollector(warmup_end=10.0)
        m.on_generated(1, item(0, 1, 5.0))   # warmup: ignored
        m.on_generated(1, item(0, 2, 11.0))
        m.on_generated(1, item(0, 3, 12.0))
        assert m.sent == {1: 2}

    def test_delivery_dedup_per_sink(self):
        m = MetricsCollector(warmup_end=0.0)
        it = item(0, 1, 1.0)
        m.on_generated(1, it)
        m.on_delivered(1, 9, it, 2.0)
        m.on_delivered(1, 9, it, 3.0)  # duplicate at same sink
        assert m.total_distinct_delivered() == 1
        assert m.delays == [1.0]

    def test_two_sinks_count_separately(self):
        m = MetricsCollector(warmup_end=0.0)
        it = item(0, 1, 1.0)
        m.on_generated(1, it)
        m.on_generated(2, it)
        m.on_delivered(1, 8, it, 2.0)
        m.on_delivered(2, 9, it, 2.5)
        assert m.total_distinct_delivered() == 2

    def test_warmup_deliveries_excluded(self):
        m = MetricsCollector(warmup_end=10.0)
        it = item(0, 1, 5.0)  # generated during warmup
        m.on_delivered(1, 9, it, 12.0)
        assert m.total_distinct_delivered() == 0

    def test_delivery_ratio(self):
        m = MetricsCollector(warmup_end=0.0)
        for seq in range(1, 5):
            m.on_generated(1, item(0, seq, 1.0))
        m.on_delivered(1, 9, item(0, 1, 1.0), 2.0)
        m.on_delivered(1, 9, item(0, 2, 1.0), 2.0)
        assert m.delivery_ratio() == pytest.approx(0.5)

    def test_delivery_ratio_mean_over_interests(self):
        m = MetricsCollector(warmup_end=0.0)
        m.on_generated(1, item(0, 1, 1.0))
        m.on_generated(2, item(0, 1, 1.0))
        m.on_delivered(1, 8, item(0, 1, 1.0), 2.0)
        # interest 1 fully delivered, interest 2 not at all.
        assert m.delivery_ratio() == pytest.approx(0.5)

    def test_empty_collector(self):
        m = MetricsCollector(warmup_end=0.0)
        assert m.delivery_ratio() == 0.0
        assert m.average_delay() is None
        assert m.total_distinct_delivered() == 0

    def test_average_delay(self):
        m = MetricsCollector(warmup_end=0.0)
        m.on_generated(1, item(0, 1, 1.0))
        m.on_generated(1, item(0, 2, 2.0))
        m.on_delivered(1, 9, item(0, 1, 1.0), 2.0)
        m.on_delivered(1, 9, item(0, 2, 2.0), 4.0)
        assert m.average_delay() == pytest.approx(1.5)


class TestRunMetrics:
    def _base(self, **kw):
        args = dict(
            scheme="greedy",
            n_nodes=50,
            seed=1,
            avg_dissipated_energy=0.001,
            avg_delay=0.5,
            delivery_ratio=0.95,
            total_energy_j=5.0,
            distinct_delivered=100,
            events_sent=105,
            mean_degree=6.0,
        )
        args.update(kw)
        return RunMetrics(**args)

    def test_valid(self):
        m = self._base()
        assert m.delivery_ratio == 0.95

    def test_ratio_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            self._base(delivery_ratio=1.5)
        with pytest.raises(ValueError):
            self._base(delivery_ratio=-0.1)

    def test_negative_energy_rejected(self):
        with pytest.raises(ValueError):
            self._base(avg_dissipated_energy=-1.0)
