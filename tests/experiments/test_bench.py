"""`repro bench` harness: deterministic workload, payload schema, artifact."""

import json

from repro.experiments.bench import (
    BENCH_VERSION,
    bench_configs,
    format_bench,
    run_bench,
    save_bench,
)


class TestBenchConfigs:
    def test_deterministic_and_paired(self):
        a = bench_configs(quick=True)
        b = bench_configs(quick=True)
        assert a == b
        # paired: consecutive scheme pair shares its seed
        assert a[0].seed == a[1].seed
        assert {a[0].scheme, a[1].scheme} == {"opportunistic", "greedy"}

    def test_canonical_shape(self):
        configs = bench_configs()
        # 3 densities x 2 trials x 2 schemes
        assert len(configs) == 12
        assert {c.n_nodes for c in configs} == {50, 150, 250}

    def test_quick_is_smaller(self):
        assert len(bench_configs(quick=True)) < len(bench_configs())


class TestRunBench:
    def test_quick_payload_schema_and_artifact(self, tmp_path):
        payload = run_bench(quick=True)
        for key in (
            "bench_version",
            "wall_time_s",
            "runs_per_sec",
            "events_processed",
            "events_per_sec",
            "cancelled_skipped",
            "cancelled_churn",
            "field_cache",
            "per_run",
            "environment",
        ):
            assert key in payload, key
        assert payload["bench_version"] == BENCH_VERSION
        assert payload["quick"] is True
        assert payload["n_runs"] == len(payload["per_run"]) == 4
        assert payload["wall_time_s"] > 0
        assert payload["events_processed"] > 0
        # paired schemes: the second run of each cell hits the field cache
        cache = payload["field_cache"]
        assert cache["hits"] == 2
        assert cache["misses"] == 2
        assert cache["hit_rate"] == 0.5

        out = save_bench(payload, tmp_path / "BENCH_sweep.json")
        reloaded = json.loads(out.read_text())
        assert reloaded["kind"] == "bench-trajectory"
        assert reloaded["entries"] == [payload]

        # a second save appends rather than overwrites
        save_bench(payload, out)
        assert json.loads(out.read_text())["entries"] == [payload, payload]

        text = format_bench(payload)
        assert "field cache" in text
        assert "wall time" in text

    def test_parallel_pass_is_identical(self):
        payload = run_bench(quick=True, workers=2)
        assert payload["parallel"]["identical"] is True
        assert payload["parallel"]["workers"] == 2
