"""Tests for sweep plumbing (paired seeds, summaries)."""

from dataclasses import replace

import pytest

from repro.experiments.config import ExperimentConfig, smoke
from repro.experiments.metrics import RunMetrics
from repro.experiments.sweeps import CellSummary, cell_seed, paired_sweep, run_configs


def fake_run(scheme="greedy", n=50, seed=1, energy=0.001, delay=0.3, ratio=0.9):
    return RunMetrics(
        scheme=scheme,
        n_nodes=n,
        seed=seed,
        avg_dissipated_energy=energy,
        avg_delay=delay,
        delivery_ratio=ratio,
        total_energy_j=1.0,
        distinct_delivered=10,
        events_sent=11,
        mean_degree=6.0,
    )


class TestCellSeed:
    def test_deterministic(self):
        assert cell_seed(0, 150, 2) == cell_seed(0, 150, 2)

    def test_varies_with_x_and_trial(self):
        assert cell_seed(0, 150, 0) != cell_seed(0, 150, 1)
        assert cell_seed(0, 150, 0) != cell_seed(0, 200, 0)

    def test_within_31_bits(self):
        assert 0 <= cell_seed(0, 350, 9) < 2**31


class TestCellSummary:
    def test_means(self):
        runs = [fake_run(energy=0.001), fake_run(energy=0.003)]
        s = CellSummary.from_runs("greedy", 50, runs)
        assert s.energy == pytest.approx(0.002)
        assert s.n_runs == 2
        assert s.energy_stdev > 0

    def test_single_run_zero_stdev(self):
        s = CellSummary.from_runs("greedy", 50, [fake_run()])
        assert s.energy_stdev == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CellSummary.from_runs("greedy", 50, [])


class TestPairedSweep:
    def test_pairing_and_grouping(self):
        profile = smoke()
        base = ExperimentConfig.from_profile(profile, "greedy", 50, seed=0)
        seen: list[ExperimentConfig] = []

        def make(scheme, x, seed):
            cfg = replace(base, scheme=scheme, n_nodes=x, seed=seed)
            seen.append(cfg)
            return cfg

        cells = paired_sweep(profile, [50, 60], make, trials=2)
        # 2 x-values x 2 trials x 2 schemes = 8 configs.
        assert len(seen) == 8
        # Paired: same seed for both schemes within a (x, trial).
        by_key = {}
        for cfg in seen:
            by_key.setdefault((cfg.n_nodes, cfg.seed), []).append(cfg.scheme)
        assert all(sorted(v) == ["greedy", "opportunistic"] for v in by_key.values())
        # Summaries: one per (scheme, x).
        assert len(cells) == 4
        assert {(c.scheme, c.x) for c in cells} == {
            ("greedy", 50.0),
            ("greedy", 60.0),
            ("opportunistic", 50.0),
            ("opportunistic", 60.0),
        }

    def test_trials_must_be_positive(self):
        with pytest.raises(ValueError):
            paired_sweep(smoke(), [50], lambda s, x, seed: None, trials=0)


class TestRunConfigs:
    def test_serial_runs(self):
        profile = smoke()
        cfgs = [
            ExperimentConfig.from_profile(profile, "greedy", 50, seed=1, n_sources=2)
        ]
        results = run_configs(cfgs)
        assert len(results) == 1
        assert results[0].scheme == "greedy"
