"""Cross-process RunStore index safety.

Regression for the lost-update race: ``index.json`` used to be a bare
read-modify-write, so two concurrent writers (N service workers, or a
sweep running beside ``store gc``) could each read the same snapshot and
clobber the other's freshly added entries.  Updates now serialize on the
``index.lock`` advisory lock and re-merge inside the critical section.
"""

import json
import multiprocessing
import sys

import pytest

from repro.experiments.config import ExperimentConfig, smoke
from repro.experiments.metrics import RunMetrics
from repro.experiments.store import RunStore, run_key

pytestmark = pytest.mark.skipif(
    sys.platform == "win32", reason="fcntl advisory locks are POSIX-only"
)


def _cfg(seed: int) -> ExperimentConfig:
    return ExperimentConfig.from_profile(
        smoke(), "greedy", 50, seed=seed, duration=8.0, warmup=3.0
    )


def _metrics(cfg: ExperimentConfig) -> RunMetrics:
    return RunMetrics(
        scheme=cfg.scheme,
        n_nodes=cfg.n_nodes,
        seed=cfg.seed,
        avg_dissipated_energy=1e-4,
        avg_delay=0.1,
        delivery_ratio=0.9,
        total_energy_j=0.5,
        distinct_delivered=7,
        events_sent=8,
        mean_degree=4.2,
    )


def _writer(root: str, seeds, barrier) -> None:
    store = RunStore(root)
    configs = [_cfg(seed) for seed in seeds]
    barrier.wait()
    for cfg in configs:
        store.put(cfg, _metrics(cfg))


def _gc_loop(root: str, barrier, rounds: int) -> None:
    store = RunStore(root)
    barrier.wait()
    for _ in range(rounds):
        store.gc()


def _index_keys(store: RunStore) -> set:
    data = json.loads(store.index_path.read_text())
    return {row["key"] for row in data["entries"]}


class TestConcurrentIndexWriters:
    def test_two_writers_lose_no_entries(self, tmp_path):
        """Two processes putting disjoint entries -> index has all of them."""
        root = tmp_path / "store"
        n_each = 25
        seeds_a = list(range(1, n_each + 1))
        seeds_b = list(range(1001, 1001 + n_each))
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(2)
        procs = [
            ctx.Process(target=_writer, args=(str(root), seeds, barrier))
            for seeds in (seeds_a, seeds_b)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
            assert p.exitcode == 0
        store = RunStore(root)
        expected = {run_key(_cfg(s)) for s in seeds_a + seeds_b}
        assert len(expected) == 2 * n_each
        # the payload files are authoritative and atomic — always complete
        assert {row["key"] for row in store.ls()} == expected
        # the regression: the index cache must not have lost any entry
        assert _index_keys(store) == expected

    def test_writer_concurrent_with_gc_keeps_all_entries(self, tmp_path):
        """A writer racing `store gc` ends with every entry indexed."""
        root = tmp_path / "store"
        seeds = list(range(1, 21))
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(2)
        writer = ctx.Process(target=_writer, args=(str(root), seeds, barrier))
        sweeper = ctx.Process(target=_gc_loop, args=(str(root), barrier, 10))
        writer.start()
        sweeper.start()
        for p in (writer, sweeper):
            p.join(timeout=120)
            assert p.exitcode == 0
        store = RunStore(root)
        expected = {run_key(_cfg(s)) for s in seeds}
        assert {row["key"] for row in store.ls()} == expected
        assert _index_keys(store) >= expected
