"""Tests for the command-line driver."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scheme == "greedy"
        assert args.nodes == 150

    def test_fig_choices(self):
        args = build_parser().parse_args(["fig", "fig5", "--profile", "smoke"])
        assert args.figure == "fig5"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig", "fig99"])

    def test_trees_args(self):
        args = build_parser().parse_args(["trees", "--nodes", "100", "200"])
        assert args.nodes == [100, 200]


class TestExecution:
    def test_run_command(self, capsys):
        rc = main(
            [
                "run",
                "--scheme",
                "opportunistic",
                "-n",
                "50",
                "--duration",
                "25",
                "--warmup",
                "10",
                "--seed",
                "2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "avg dissipated energy" in out
        assert "delivery ratio" in out

    def test_trees_command(self, capsys):
        rc = main(["trees", "--nodes", "80", "--trials", "2", "--sources", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "corner" in out
        assert "event-radius" in out

    def test_all_command_parses(self):
        args = build_parser().parse_args(["all", "--profile", "smoke", "--trials", "1"])
        assert args.profile == "smoke"
        assert args.trials == 1

    def test_inspect_command(self, capsys):
        rc = main(["inspect", "-n", "60", "--sources", "3", "--duration", "25"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "live tree" in out
        assert "centralized references" in out
        assert "->" in out
