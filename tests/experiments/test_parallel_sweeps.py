"""Hardened-executor tests: parallel == serial bit-for-bit, failure
placeholders instead of pool-wide crashes, progress reporting."""

from dataclasses import replace

import pytest

from repro.experiments.config import ExperimentConfig, smoke
from repro.experiments.metrics import RunMetrics
from repro.experiments.sweeps import (
    RunFailure,
    SweepError,
    paired_sweep,
    run_configs,
)


def _tiny(scheme: str, n: int, seed: int, **overrides) -> ExperimentConfig:
    return ExperimentConfig.from_profile(
        smoke(), scheme, n, seed=seed, duration=8.0, warmup=3.0, **overrides
    )


def _make_config_factory():
    def make(scheme, x, seed):
        return _tiny(scheme, x, seed)

    return make


class TestParallelEqualsSerial:
    def test_paired_sweep_workers_bit_identical(self):
        profile = smoke()
        make = _make_config_factory()
        serial = paired_sweep(profile, [50, 60], make, trials=1, workers=0)
        parallel = paired_sweep(profile, [50, 60], make, trials=1, workers=2)
        assert parallel == serial

    def test_run_configs_preserves_order(self):
        configs = [_tiny("greedy", 50, seed) for seed in (3, 1, 2)]
        serial = run_configs(configs)
        parallel = run_configs(configs, workers=2, chunksize=1)
        assert [m.seed for m in parallel] == [3, 1, 2]
        assert parallel == serial


class TestFailureIsolation:
    def test_crashed_config_yields_placeholder_and_summary(self, monkeypatch):
        # Serial path shares the same per-run capture as workers, so the
        # monkeypatch (which cannot cross a process boundary) exercises it.
        import repro.experiments.sweeps as sweeps_mod

        good = _tiny("greedy", 50, 1)
        bad = _tiny("greedy", 50, 2)
        real_run = sweeps_mod.run_experiment

        def exploding(cfg):
            if cfg.seed == 2:
                raise RuntimeError("boom")
            return real_run(cfg)

        monkeypatch.setattr(sweeps_mod, "run_experiment", exploding)

        # return_failures: the mixed list comes back, order preserved.
        results = run_configs([good, bad, good], return_failures=True)
        assert isinstance(results[0], RunMetrics)
        assert isinstance(results[1], RunFailure)
        assert isinstance(results[2], RunMetrics)
        assert "boom" in results[1].error
        assert results[1].index == 1

        # default: one SweepError summary at the end, carrying everything.
        with pytest.raises(SweepError) as exc_info:
            run_configs([good, bad])
        err = exc_info.value
        assert len(err.failures) == 1
        assert len(err.results) == 2
        assert isinstance(err.results[0], RunMetrics)
        assert "boom" in str(err)

    def test_failure_in_worker_process_survives_sweep(self):
        # A config that genuinely raises inside a worker (too many random
        # sources for the node count): the pool must not die with it.
        good = _tiny("greedy", 50, 1)
        bad = _tiny("greedy", 50, 2, n_sources=50, source_placement="random")
        results = run_configs([good, bad, good], workers=2, return_failures=True)
        assert isinstance(results[0], RunMetrics)
        assert isinstance(results[1], RunFailure)
        assert isinstance(results[2], RunMetrics)
        assert results[0] == results[2]
        assert "ValueError" in results[1].error

    def test_paired_sweep_on_error_skip_drops_failed_runs(self, monkeypatch):
        import repro.experiments.sweeps as sweeps_mod

        real_run = sweeps_mod.run_experiment
        calls = {"n": 0}

        def flaky(cfg):
            calls["n"] += 1
            if cfg.scheme == "opportunistic":
                raise RuntimeError("scheme down")
            return real_run(cfg)

        monkeypatch.setattr(sweeps_mod, "run_experiment", flaky)
        cells = paired_sweep(
            smoke(), [50], _make_config_factory(), trials=1, on_error="skip"
        )
        assert [c.scheme for c in cells] == ["greedy"]
        assert calls["n"] == 2  # the failure did not abort the sweep

    def test_paired_sweep_on_error_validated(self):
        with pytest.raises(ValueError):
            paired_sweep(smoke(), [50], _make_config_factory(), on_error="retry")


class TestProgressAndKnobs:
    def test_progress_reaches_total_serial(self):
        seen = []
        run_configs(
            [_tiny("greedy", 50, s) for s in (1, 2)],
            progress=lambda done, total: seen.append((done, total)),
        )
        assert seen == [(1, 2), (2, 2)]

    def test_progress_reaches_total_parallel(self):
        seen = []
        run_configs(
            [_tiny("greedy", 50, s) for s in (1, 2, 3)],
            workers=2,
            chunksize=1,
            progress=lambda done, total: seen.append((done, total)),
        )
        assert [d for d, _t in seen] and seen[-1] == (3, 3)
        assert [d for d, _t in seen] == sorted(d for d, _t in seen)

    def test_empty_sweep(self):
        assert run_configs([]) == []
        assert run_configs([], workers=4) == []
