"""Field-cache correctness: identity on hits, isolation across keys, and
bit-identical RunMetrics between memoized and fresh world builds."""

import pytest

from repro.experiments.config import ExperimentConfig, smoke
from repro.experiments.runner import build_world, run_experiment
from repro.net.fieldcache import (
    FieldCache,
    cached_field,
    default_field_cache,
    field_cache_key,
)
from repro.net.topology import generate_field
import random

from repro.sim.rng import derive_seed


class TestFieldCache:
    def test_same_key_returns_same_object(self):
        cache = FieldCache(maxsize=8)
        f1, hit1 = cached_field(40, seed=7, cache=cache)
        f2, hit2 = cached_field(40, seed=7, cache=cache)
        assert f2 is f1
        assert (hit1, hit2) == (False, True)
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_different_keys_do_not_collide(self):
        cache = FieldCache(maxsize=8)
        base, _ = cached_field(40, seed=7, cache=cache)
        for kwargs in (
            dict(n=41, seed=7),
            dict(n=40, seed=8),
            dict(n=40, seed=7, field_size=150.0),
            dict(n=40, seed=7, range_m=50.0),
        ):
            other, hit = cached_field(**{"field_size": 200.0, "range_m": 40.0, **kwargs}, cache=cache)
            assert not hit
            assert other is not base

    def test_matches_uncached_generate_field(self):
        # A miss must reproduce exactly what RngRegistry(seed).stream("topology")
        # fed into generate_field before the cache existed.
        cache = FieldCache(maxsize=8)
        fld, _ = cached_field(40, seed=11, cache=cache)
        rng = random.Random(derive_seed(11, "topology"))
        fresh = generate_field(40, rng, field_size=200.0, range_m=40.0)
        assert fresh.positions == fld.positions
        assert fresh.redraws == fld.redraws

    def test_lru_eviction_is_bounded(self):
        cache = FieldCache(maxsize=2)
        cached_field(30, seed=1, cache=cache)
        cached_field(30, seed=2, cache=cache)
        cached_field(30, seed=3, cache=cache)  # evicts seed=1
        assert len(cache) == 2
        _, hit = cached_field(30, seed=1, cache=cache)
        assert not hit  # evicted, rebuilt

    def test_maxsize_zero_disables_caching(self):
        cache = FieldCache(maxsize=0)
        f1, hit1 = cached_field(30, seed=1, cache=cache)
        f2, hit2 = cached_field(30, seed=1, cache=cache)
        assert not hit1 and not hit2
        assert f1 is not f2
        assert len(cache) == 0

    def test_clear_resets_entries_and_stats(self):
        cache = FieldCache(maxsize=4)
        cached_field(30, seed=1, cache=cache)
        cached_field(30, seed=1, cache=cache)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats() == {
            "hits": 0, "misses": 0, "hit_rate": 0.0, "size": 0, "maxsize": 4,
        }

    def test_key_includes_connectivity_knobs(self):
        assert field_cache_key(50, 1, 200.0, 40.0) != field_cache_key(
            50, 1, 200.0, 40.0, require_connected=False
        )


class TestMemoizedRuns:
    def test_build_world_reuses_field_across_schemes(self):
        cache = FieldCache(maxsize=8)
        profile = smoke()
        opp = ExperimentConfig.from_profile(profile, "opportunistic", 50, seed=42)
        greedy = ExperimentConfig.from_profile(profile, "greedy", 50, seed=42)
        w1 = build_world(opp, field_cache=cache)
        w2 = build_world(greedy, field_cache=cache)
        assert w2.field is w1.field
        assert not w1.field_cache_hit
        assert w2.field_cache_hit

    def test_memoized_run_metrics_bit_identical(self):
        # The acceptance criterion: a cached paired cell reproduces the
        # unoptimized path's RunMetrics exactly on a fixed seed.
        profile = smoke()
        warm = FieldCache(maxsize=8)
        cold = FieldCache(maxsize=0)
        for scheme in ("opportunistic", "greedy"):
            cfg = ExperimentConfig.from_profile(profile, scheme, 50, seed=1234)
            cached_metrics = run_experiment(cfg, field_cache=warm)
            fresh_metrics = run_experiment(cfg, field_cache=cold)
            assert cached_metrics == fresh_metrics
        assert warm.stats()["hits"] == 1  # second scheme reused the field

    def test_default_cache_is_per_process_singleton(self):
        assert default_field_cache() is default_field_cache()
