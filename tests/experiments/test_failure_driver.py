"""Unit tests for the §5.3 failure driver."""

import random

from repro.experiments.config import FailureModel
from repro.experiments.runner import FailureDriver
from tests.helpers import MiniWorld, grid_positions


def make_driver(n=20, fraction=0.2, epoch=5.0, exempt=()):
    w = MiniWorld(grid_positions(4, 5))
    model = FailureModel(fraction=fraction, epoch=epoch)
    driver = FailureDriver(
        w.sim, w.nodes, model, random.Random(3), exempt=frozenset(exempt)
    )
    return w, driver


class TestFailureDriver:
    def test_fraction_of_nodes_down_each_epoch(self):
        w, _driver = make_driver()
        w.run(until=0.1)
        down = [n for n in w.nodes if not n.up]
        assert len(down) == round(0.2 * len(w.nodes))

    def test_fresh_set_every_epoch(self):
        w, _driver = make_driver()
        w.run(until=0.1)
        first = {n.node_id for n in w.nodes if not n.up}
        w.run(until=5.1)
        second = {n.node_id for n in w.nodes if not n.up}
        assert len(second) == len(first)
        # Extremely unlikely to be the identical set with 20% of 20 nodes.
        w.run(until=10.1)
        third = {n.node_id for n in w.nodes if not n.up}
        assert not (first == second == third)

    def test_previous_epoch_recovers(self):
        w, _driver = make_driver()
        w.run(until=0.1)
        first = {n.node_id for n in w.nodes if not n.up}
        w.run(until=5.1)
        for node_id in first:
            node = w.nodes[node_id]
            assert node.up or node.node_id in {
                n.node_id for n in w.nodes if not n.up
            }

    def test_exempt_nodes_never_fail(self):
        w, _driver = make_driver(exempt=(0, 1))
        w.run(until=30.0)
        assert w.nodes[0].fail_count == 0
        assert w.nodes[1].fail_count == 0

    def test_at_any_instant_fraction_unusable(self):
        # "At any instant, 20% of the nodes in the network are unusable."
        w, _driver = make_driver()
        for t in (2.0, 7.0, 12.0, 17.0):
            w.run(until=t)
            down = sum(1 for n in w.nodes if not n.up)
            assert down == round(0.2 * len(w.nodes))

    def test_deterministic_schedule(self):
        seqs = []
        for _ in range(2):
            w, _driver = make_driver()
            downs = []
            for t in (0.1, 5.1, 10.1):
                w.run(until=t)
                downs.append(frozenset(n.node_id for n in w.nodes if not n.up))
            seqs.append(downs)
        assert seqs[0] == seqs[1]
