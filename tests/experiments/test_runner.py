"""Tests for world construction and the experiment runner."""

import pytest

from repro.experiments.config import ExperimentConfig, FailureModel, smoke
from repro.experiments.runner import build_world, run_experiment


def cfg(**overrides):
    scheme = overrides.pop("scheme", "greedy")
    return ExperimentConfig.from_profile(smoke(), scheme, 60, seed=4, **overrides)


class TestBuildWorld:
    def test_world_shape(self):
        w = build_world(cfg())
        assert len(w.nodes) == 60
        assert len(w.agents) == 60
        assert len(w.sources) == 5
        assert len(w.sinks) == 1
        assert not set(w.sources) & set(w.sinks)

    def test_sources_in_corner_square(self):
        w = build_world(cfg())
        for s in w.sources:
            x, y = w.field.positions[s]
            assert x <= 80.0 + 1e-9 and y <= 80.0 + 1e-9

    def test_source_attributes_match_interest(self):
        from repro.experiments.runner import TRACKING_SPEC

        w = build_world(cfg())
        for s in w.sources:
            assert TRACKING_SPEC.matches(w.agents[s].attributes)
        non_sources = set(range(60)) - set(w.sources)
        for n in list(non_sources)[:10]:
            assert not TRACKING_SPEC.matches(w.agents[n].attributes)

    def test_multi_sink_world(self):
        w = build_world(cfg(n_sinks=3))
        assert len(w.sinks) == 3
        for sink in w.sinks:
            assert sink in w.agents[sink].own_interests

    def test_failure_driver_attached(self):
        w = build_world(cfg(failures=FailureModel(epoch=5.0)))
        assert w.failure_driver is not None

    def test_scheme_selects_agent_class(self):
        from repro.core.greedy import GreedyAgent
        from repro.diffusion.opportunistic import OpportunisticAgent

        assert isinstance(build_world(cfg()).agents[0], GreedyAgent)
        w = build_world(cfg(scheme="opportunistic"))
        assert isinstance(w.agents[0], OpportunisticAgent)

    def test_same_seed_same_world(self):
        a = build_world(cfg())
        b = build_world(cfg())
        assert a.field.positions == b.field.positions
        assert a.sources == b.sources
        assert a.sinks == b.sinks


class TestRunExperiment:
    def test_run_produces_sane_metrics(self):
        r = run_experiment(cfg())
        assert r.scheme == "greedy"
        assert r.n_nodes == 60
        assert 0.0 <= r.delivery_ratio <= 1.0
        assert r.delivery_ratio > 0.5
        assert r.avg_dissipated_energy > 0
        assert r.avg_delay > 0
        assert r.distinct_delivered > 0
        assert r.events_sent > 0

    def test_determinism(self):
        a = run_experiment(cfg())
        b = run_experiment(cfg())
        assert a.avg_dissipated_energy == b.avg_dissipated_energy
        assert a.avg_delay == b.avg_delay
        assert a.delivery_ratio == b.delivery_ratio
        assert a.counters == b.counters

    def test_different_seeds_differ(self):
        a = run_experiment(cfg())
        b = run_experiment(
            ExperimentConfig.from_profile(smoke(), "greedy", 60, seed=5)
        )
        assert a.avg_dissipated_energy != b.avg_dissipated_energy

    def test_include_idle_raises_energy(self):
        lean = run_experiment(cfg())
        full = run_experiment(cfg(include_idle=True))
        assert full.avg_dissipated_energy > lean.avg_dissipated_energy

    def test_failures_reduce_delivery(self):
        clean = run_experiment(cfg())
        faulty = run_experiment(cfg(failures=FailureModel(fraction=0.2, epoch=5.0)))
        assert faulty.delivery_ratio < clean.delivery_ratio
        assert faulty.counters.get("node.fail", 0) > 0

    def test_sinks_exempt_from_failures(self):
        w = build_world(cfg(failures=FailureModel(epoch=2.0)))
        w.sim.run(until=w.config.duration)
        for sink in w.sinks:
            assert w.nodes[sink].fail_count == 0

    def test_linear_aggregation_runs(self):
        r = run_experiment(cfg(aggregation="linear"))
        assert r.delivery_ratio > 0.5

    def test_random_placement_runs(self):
        r = run_experiment(cfg(source_placement="random"))
        assert r.distinct_delivered > 0

    def test_event_radius_placement_runs(self):
        r = run_experiment(cfg(source_placement="event-radius"))
        assert r.distinct_delivered > 0


class TestEnergyAccountingGuards:
    def test_warmup_at_or_past_duration_rejected_at_config(self):
        # Silent-zero energy bug: if the warmup snapshot never fired, the
        # energy zip iterated zero pairs and total_energy came out 0.0.
        # The config layer must refuse such runs outright.
        with pytest.raises(ValueError):
            ExperimentConfig(
                scheme="greedy", n_nodes=50, seed=1, duration=10.0, warmup=10.0
            )
        with pytest.raises(ValueError):
            ExperimentConfig(
                scheme="greedy", n_nodes=50, seed=1, duration=10.0, warmup=12.0
            )

    def test_missing_snapshot_fails_loudly(self, monkeypatch):
        # Defense in depth: if the scheduler stops before the warmup
        # snapshot fires, the run must raise instead of silently
        # reporting zero energy.
        from repro.sim.engine import Simulator

        real_run = Simulator.run

        def truncated_run(self, until=None):
            return real_run(self, until=1.0)  # well before warmup=12.0

        monkeypatch.setattr(Simulator, "run", truncated_run)
        with pytest.raises(RuntimeError, match="snapshot incomplete"):
            run_experiment(cfg())


class TestFieldProvenance:
    def test_manifest_records_redraws_and_cache_hit(self, tmp_path):
        from repro.experiments.runner import run_observed
        from repro.net.fieldcache import FieldCache
        from repro.obs import ObsOptions

        cache = FieldCache(maxsize=4)
        c = cfg()
        obs = ObsOptions(manifest_path=tmp_path / "m.json")
        first = run_observed(c, obs, field_cache=cache)
        assert first.manifest["field"] == {"redraws": 0, "cache_hit": False}
        second = run_observed(c, obs, field_cache=cache)
        assert second.manifest["field"]["cache_hit"] is True
        assert second.field_cache_hit
        assert second.events_processed > 0
