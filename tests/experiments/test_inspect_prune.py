"""Tests for pruned vs unpruned live-tree extraction."""

from repro.experiments.config import ExperimentConfig, smoke
from repro.experiments.inspect import active_tree, tree_stats
from repro.experiments.runner import build_world


def converged_world(seed=5):
    cfg = ExperimentConfig.from_profile(smoke(), "greedy", 80, seed=seed)
    world = build_world(cfg)
    world.sim.run(until=cfg.duration)
    return world


class TestPruning:
    def test_pruned_is_subgraph_of_unpruned(self):
        world = converged_world()
        pruned = active_tree(world, prune=True)
        full = active_tree(world, prune=False)
        assert set(pruned.edges()) <= set(full.edges())

    def test_pruned_contains_only_source_chains(self):
        world = converged_world()
        pruned = active_tree(world, prune=True)
        # Every node in the pruned tree is reachable from some source.
        import networkx as nx

        reachable = set()
        for source in world.sources:
            if source in pruned:
                reachable |= nx.descendants(pruned, source) | {source}
        assert set(pruned.nodes()) <= reachable

    def test_pruned_tree_edge_count_close_to_git(self):
        world = converged_world()
        from repro.trees import greedy_incremental_tree, tree_cost

        pruned = active_tree(world, prune=True)
        git = greedy_incremental_tree(
            world.field.connectivity_graph(),
            world.sinks[0],
            world.sources,
            order="nearest",
        )
        # The distributed tree tracks the centralized GIT within ~50%.
        assert pruned.number_of_edges() <= 1.6 * tree_cost(git) + 2

    def test_stats_on_pruned_tree(self):
        world = converged_world()
        stats = tree_stats(active_tree(world), world.sources, world.sinks[0])
        assert stats.stranded_sources == ()
        assert stats.n_edges <= stats.n_nodes  # functional graph
