"""Tests for the resumable content-addressed run store: hashing,
atomic round-trip persistence, ls/gc/rm maintenance, sweep integration,
and the acceptance scenario — an interrupted sweep resumed against the
same store completes only the missing runs and reproduces the
uninterrupted result bit for bit."""

import dataclasses
import json
import os
import time
from dataclasses import replace

import pytest

from repro.experiments.config import ExperimentConfig, FailureModel, smoke
from repro.experiments.figures import figure5
from repro.experiments.metrics import RunMetrics
from repro.experiments.store import (
    STORE_VERSION,
    TMP_LITTER_MIN_AGE_S,
    RunStore,
    canonical_json,
    config_payload,
    open_store,
    run_key,
)
from repro.experiments.sweeps import RunFailure, SweepError, run_configs


def _tiny(scheme: str = "greedy", n: int = 50, seed: int = 1, **overrides):
    return ExperimentConfig.from_profile(
        smoke(), scheme, n, seed=seed, duration=8.0, warmup=3.0, **overrides
    )


def _metrics(cfg: ExperimentConfig, energy: float = 1e-4) -> RunMetrics:
    return RunMetrics(
        scheme=cfg.scheme,
        n_nodes=cfg.n_nodes,
        seed=cfg.seed,
        avg_dissipated_energy=energy,
        avg_delay=0.123456789,
        delivery_ratio=0.875,
        total_energy_j=0.5,
        distinct_delivered=7,
        events_sent=8,
        mean_degree=4.2,
        counters={"phy.tx": 100, "mac.collision": 3},
    )


class TestRunKey:
    def test_stable_within_process(self):
        cfg = _tiny()
        assert run_key(cfg) == run_key(cfg)
        assert run_key(cfg) == run_key(replace(cfg))

    def test_hex_sha256_shape(self):
        key = run_key(_tiny())
        assert len(key) == 64
        int(key, 16)  # raises if not hex

    def test_includes_constants_and_code_version(self):
        payload = config_payload(_tiny())
        assert payload["store_version"] == STORE_VERSION
        assert "code_version" in payload
        assert payload["constants"]["EVENT_SIZE"] == 64
        assert payload["constants"]["CONTROL_SIZE"] == 36

    def test_failure_model_changes_key(self):
        base = _tiny()
        with_failures = replace(base, failures=FailureModel(fraction=0.2, epoch=6.0))
        other_fraction = replace(base, failures=FailureModel(fraction=0.5, epoch=6.0))
        keys = {run_key(base), run_key(with_failures), run_key(other_fraction)}
        assert len(keys) == 3

    def test_canonical_json_sorts_keys(self):
        a = canonical_json({"b": 1, "a": {"y": 2, "x": 3}})
        b = canonical_json({"a": {"x": 3, "y": 2}, "b": 1})
        assert a == b


class TestRunStoreRoundTrip:
    def test_put_get_exact(self, tmp_path):
        store = RunStore(tmp_path)
        cfg = _tiny()
        metrics = _metrics(cfg)
        path = store.put(cfg, metrics)
        assert path.exists()
        assert store.contains(cfg)
        loaded = RunStore(tmp_path).get(cfg)
        assert loaded == metrics  # dataclass equality: every field, bit for bit

    def test_miss_returns_none_and_counts(self, tmp_path):
        store = RunStore(tmp_path)
        assert store.get(_tiny()) is None
        assert store.stats.misses == 1
        assert store.registry.counter("store.miss").value == 1

    def test_hit_counts(self, tmp_path):
        store = RunStore(tmp_path)
        cfg = _tiny()
        store.put(cfg, _metrics(cfg))
        store.get(cfg)
        assert store.stats.hits == 1
        assert store.stats.persisted == 1
        assert store.registry.counter("store.hit").value == 1
        assert store.registry.counter("store.persist").value == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = RunStore(tmp_path)
        cfg = _tiny()
        store.put(cfg, _metrics(cfg))
        store.path_for(run_key(cfg)).write_text("{ not json")
        assert RunStore(tmp_path).get(cfg) is None

    def test_open_store_coerces(self, tmp_path):
        assert open_store(None) is None
        handle = RunStore(tmp_path)
        assert open_store(handle) is handle
        opened = open_store(tmp_path / "sub")
        assert isinstance(opened, RunStore)
        assert opened.runs_dir.is_dir()


class TestMaintenance:
    def test_ls_lists_entries(self, tmp_path):
        store = RunStore(tmp_path)
        for seed in (1, 2, 3):
            cfg = _tiny(seed=seed)
            store.put(cfg, _metrics(cfg))
        rows = store.ls()
        assert len(rows) == 3
        assert {row["seed"] for row in rows} == {1, 2, 3}
        assert all(len(row["key"]) == 64 for row in rows)

    def test_index_tracks_puts_and_is_rebuildable(self, tmp_path):
        store = RunStore(tmp_path)
        cfg = _tiny()
        store.put(cfg, _metrics(cfg))
        index = json.loads(store.index_path.read_text())
        assert [row["key"] for row in index["entries"]] == [run_key(cfg)]
        store.index_path.unlink()
        assert RunStore(tmp_path).reindex() == 1

    def test_rm_removes_keys(self, tmp_path):
        store = RunStore(tmp_path)
        cfg = _tiny()
        store.put(cfg, _metrics(cfg))
        assert store.rm([run_key(cfg), "deadbeef"]) == 1
        assert not store.contains(cfg)

    def test_rm_accepts_unambiguous_prefix(self, tmp_path):
        # `store ls` displays truncated keys; rm must accept them
        store = RunStore(tmp_path)
        cfg = _tiny()
        store.put(cfg, _metrics(cfg))
        assert store.rm([run_key(cfg)[:16]]) == 1
        assert not store.contains(cfg)

    def test_rm_skips_ambiguous_prefix(self, tmp_path):
        store = RunStore(tmp_path)
        cfg = _tiny()
        path = store.put(cfg, _metrics(cfg))
        # a second entry sharing the empty prefix makes "" ambiguous
        (store.runs_dir / "0000fake.json").write_text(path.read_text())
        assert store.rm([""]) == 0
        assert store.contains(cfg)

    def test_gc_prunes_litter_corruption_and_stale_versions(self, tmp_path):
        store = RunStore(tmp_path)
        cfg = _tiny()
        store.put(cfg, _metrics(cfg))
        # temp litter from a killed writer (old enough to be collectable)
        litter = store.runs_dir / "abc.tmpXYZ"
        litter.write_text("partial")
        stale_mtime = time.time() - 2 * TMP_LITTER_MIN_AGE_S
        os.utime(litter, (stale_mtime, stale_mtime))
        # a *fresh* tmp may be a live writer mid-put — gc must leave it
        fresh = store.runs_dir / "def.tmpABC"
        fresh.write_text("in flight")
        # corrupt payload
        (store.runs_dir / ("f" * 64 + ".json")).write_text("{ nope")
        # stale code version: unreachable by construction (version is in the key)
        stale_cfg = _tiny(seed=99)
        stale_path = store.put(stale_cfg, _metrics(stale_cfg))
        entry = json.loads(stale_path.read_text())
        entry["identity"]["code_version"] = "0.0.1"
        stale_path.write_text(json.dumps(entry))
        stats = store.gc()
        assert stats == {
            "tmp_removed": 1,
            "corrupt_removed": 1,
            "stale_removed": 1,
            "kept": 1,
            "timelines_removed": 0,
            "timelines_kept": 0,
        }
        assert store.contains(cfg)
        assert not litter.exists()
        assert fresh.exists()

    def test_gc_keep_stale(self, tmp_path):
        store = RunStore(tmp_path)
        cfg = _tiny()
        path = store.put(cfg, _metrics(cfg))
        entry = json.loads(path.read_text())
        entry["identity"]["code_version"] = "0.0.1"
        path.write_text(json.dumps(entry))
        stats = store.gc(prune_stale_versions=False)
        assert stats["stale_removed"] == 0
        assert stats["kept"] == 1


class TestSweepIntegration:
    def test_second_pass_all_hits_and_identical(self, tmp_path):
        cfgs = [_tiny(scheme, 50, 1) for scheme in ("greedy", "opportunistic")]
        store = RunStore(tmp_path)
        first = run_configs(cfgs, store=store)
        assert store.stats.misses == 2 and store.stats.persisted == 2
        resumed = RunStore(tmp_path)
        second = run_configs(cfgs, store=resumed)
        assert resumed.stats.hits == 2 and resumed.stats.persisted == 0
        assert second == first
        assert second == run_configs(cfgs)  # and identical to store-less runs

    def test_progress_counts_hits_up_front(self, tmp_path):
        cfgs = [_tiny(seed=s) for s in (1, 2)]
        store = RunStore(tmp_path)
        run_configs([cfgs[0]], store=store)
        seen = []
        run_configs(cfgs, store=store, progress=lambda d, t: seen.append((d, t)))
        assert seen == [(1, 2), (2, 2)]

    def test_parallel_sweep_persists_and_resumes(self, tmp_path):
        cfgs = [_tiny(seed=s) for s in (1, 2, 3)]
        store = RunStore(tmp_path)
        parallel = run_configs(cfgs, workers=2, chunksize=1, store=store)
        assert store.stats.persisted == 3
        # a fresh handle resumes without running anything
        resumed = RunStore(tmp_path)
        again = run_configs(cfgs, workers=2, store=resumed)
        assert resumed.stats.hits == 3 and resumed.stats.misses == 0
        assert again == parallel == run_configs(cfgs)

    def test_failures_are_not_persisted(self, tmp_path, monkeypatch):
        import repro.experiments.sweeps as sweeps_mod

        real_run = sweeps_mod.run_experiment

        def exploding(cfg):
            if cfg.seed == 2:
                raise RuntimeError("boom")
            return real_run(cfg)

        monkeypatch.setattr(sweeps_mod, "run_experiment", exploding)
        store = RunStore(tmp_path)
        cfgs = [_tiny(seed=s) for s in (1, 2)]
        results = run_configs(cfgs, store=store, return_failures=True)
        assert isinstance(results[1], RunFailure)
        assert results[1].index == 1  # position in the original config list
        assert store.stats.persisted == 1
        assert store.stats.skipped == 1
        assert not store.contains(cfgs[1])

    def test_failure_index_is_global_after_store_prefilter(self, tmp_path, monkeypatch):
        # With the first config already stored, a failure in the second
        # must still report index 1, not its position in the miss subset.
        import repro.experiments.sweeps as sweeps_mod

        store = RunStore(tmp_path)
        cfgs = [_tiny(seed=s) for s in (1, 2)]
        run_configs([cfgs[0]], store=store)

        def exploding(cfg):
            raise RuntimeError("boom")

        monkeypatch.setattr(sweeps_mod, "run_experiment", exploding)
        results = run_configs(cfgs, store=store, return_failures=True)
        assert isinstance(results[0], RunMetrics)  # the hit — never re-run
        assert isinstance(results[1], RunFailure)
        assert results[1].index == 1


class TestInterruptedFigureResume:
    """The acceptance scenario: kill a sweep partway (injected worker
    exception), re-run with the same store, get a bit-identical figure."""

    def test_resumed_figure_bit_identical_to_uninterrupted(self, tmp_path, monkeypatch):
        import repro.experiments.sweeps as sweeps_mod

        profile = smoke()
        densities = [50, 60]
        real_run = sweeps_mod.run_experiment

        # Pass 1: every opportunistic run dies mid-sweep.
        def dying(cfg):
            if cfg.scheme == "opportunistic":
                raise RuntimeError("simulated crash")
            return real_run(cfg)

        monkeypatch.setattr(sweeps_mod, "run_experiment", dying)
        store = RunStore(tmp_path)
        with pytest.raises(SweepError):
            figure5(profile, densities=densities, trials=1, store=store)
        completed_first_pass = store.stats.persisted
        assert 0 < completed_first_pass < 2 * len(densities)

        # Pass 2: healed code, same store — only the missing tail runs.
        monkeypatch.setattr(sweeps_mod, "run_experiment", real_run)
        resumed_store = RunStore(tmp_path)
        resumed = figure5(profile, densities=densities, trials=1, store=resumed_store)
        assert resumed_store.stats.hits == completed_first_pass
        assert resumed_store.stats.misses == 2 * len(densities) - completed_first_pass

        # Reference: one uninterrupted serial run, no store involved.
        reference = figure5(profile, densities=densities, trials=1)
        assert resumed == reference  # frozen dataclasses: bit-identical floats

    def test_resume_runs_only_missing_tail(self, tmp_path, monkeypatch):
        import repro.experiments.sweeps as sweeps_mod

        real_run = sweeps_mod.run_experiment
        executed: list[int] = []

        def counting(cfg):
            executed.append(cfg.seed)
            return real_run(cfg)

        monkeypatch.setattr(sweeps_mod, "run_experiment", counting)
        cfgs = [_tiny(seed=s) for s in (1, 2, 3, 4)]
        store = RunStore(tmp_path)
        run_configs(cfgs[:2], store=store)
        executed.clear()
        run_configs(cfgs, store=store)
        assert sorted(executed) == [3, 4]  # the stored prefix never re-ran


class TestManifestStoreBlock:
    def test_figure_manifest_records_store_accounting(self, tmp_path):
        from repro.experiments.persistence import build_figure_manifest

        profile = smoke()
        store = RunStore(tmp_path)
        result = figure5(profile, densities=[50], trials=1, store=store)
        manifest = build_figure_manifest(
            result,
            profile,
            wall_time_s=1.0,
            trials=1,
            store={"path": str(tmp_path), **store.stats.as_dict()},
        )
        block = manifest["store"]
        assert block["misses"] == 2 and block["persisted"] == 2
        assert block["hits"] == 0
        assert block["path"] == str(tmp_path)

    def test_metrics_survive_json_round_trip_via_manifest_format(self, tmp_path):
        # The stored payload uses the same asdict serialization as run
        # manifests; float fields must round-trip repr-exactly.
        cfg = _tiny()
        metrics = _metrics(cfg, energy=0.1 + 0.2)  # a float with ugly repr
        store = RunStore(tmp_path)
        store.put(cfg, metrics)
        loaded = store.get(cfg)
        assert loaded is not None
        assert dataclasses.asdict(loaded) == dataclasses.asdict(metrics)
