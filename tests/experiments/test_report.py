"""Tests for figure result containers and ASCII reporting."""

import pytest

from repro.experiments.figures import FigureResult
from repro.experiments.report import format_figure, format_table, format_tree_table
from repro.experiments.sweeps import CellSummary


def cell(scheme, x, energy, delay=0.3, ratio=0.95):
    return CellSummary(
        scheme=scheme,
        x=x,
        energy=energy,
        energy_stdev=0.0,
        delay=delay,
        ratio=ratio,
        n_runs=3,
        distinct_delivered=100.0,
    )


def figure():
    return FigureResult(
        figure_id="fig5",
        title="test",
        x_label="nodes",
        cells=(
            cell("opportunistic", 50, 0.002),
            cell("greedy", 50, 0.0019),
            cell("opportunistic", 350, 0.004),
            cell("greedy", 350, 0.0022),
        ),
    )


class TestFigureResult:
    def test_xs_sorted_unique(self):
        assert figure().xs() == [50.0, 350.0]

    def test_series(self):
        greedy = figure().series("greedy")
        assert [c.x for c in greedy] == [50.0, 350.0]

    def test_cell_lookup(self):
        assert figure().cell("greedy", 350).energy == 0.0022
        with pytest.raises(KeyError):
            figure().cell("greedy", 999)

    def test_energy_savings(self):
        f = figure()
        assert f.energy_savings(50) == pytest.approx(1 - 0.0019 / 0.002)
        assert f.energy_savings(350) == pytest.approx(1 - 0.0022 / 0.004)

    def test_max_energy_savings(self):
        assert figure().max_energy_savings() == pytest.approx(0.45)


class TestFormatting:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_format_table_empty_rows(self):
        out = format_table(["x"], [])
        assert "x" in out

    def test_format_figure_contains_panels_and_savings(self):
        out = format_figure(figure())
        assert "fig5" in out
        assert "opp energy" in out
        assert "greedy ratio" in out
        assert "peak greedy energy savings: 45.0%" in out

    def test_format_tree_table(self):
        rows = [
            {
                "placement": "corner",
                "n_nodes": 100,
                "n_sources": 5,
                "mean_spt_cost": 16.0,
                "mean_git_cost": 10.0,
                "mean_steiner_cost": 10.0,
                "mean_savings": 0.375,
            }
        ]
        out = format_tree_table(rows)
        assert "corner" in out
        assert "37.5" in out
