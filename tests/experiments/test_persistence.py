"""Tests for figure result persistence."""

import json

import pytest

from repro.experiments.figures import FigureResult
from repro.experiments.persistence import (
    export_figure_csv,
    load_figure_json,
    save_figure_json,
)
from repro.experiments.sweeps import CellSummary


def figure():
    cells = tuple(
        CellSummary(
            scheme=scheme,
            x=float(x),
            energy=0.001 * x / 100 + (0.0001 if scheme == "opportunistic" else 0.0),
            energy_stdev=0.00001,
            delay=0.25,
            ratio=0.98,
            n_runs=3,
            distinct_delivered=400.0,
        )
        for x in (50, 350)
        for scheme in ("opportunistic", "greedy")
    )
    return FigureResult("fig5", "density sweep", "nodes", cells)


class TestJsonRoundTrip:
    def test_round_trip_identity(self, tmp_path):
        original = figure()
        path = save_figure_json(original, tmp_path / "fig5.json")
        loaded = load_figure_json(path)
        assert loaded == original

    def test_savings_preserved(self, tmp_path):
        original = figure()
        loaded = load_figure_json(save_figure_json(original, tmp_path / "f.json"))
        assert loaded.energy_savings(350) == pytest.approx(original.energy_savings(350))

    def test_creates_parent_dirs(self, tmp_path):
        path = save_figure_json(figure(), tmp_path / "a" / "b" / "f.json")
        assert path.exists()

    def test_version_check(self, tmp_path):
        path = save_figure_json(figure(), tmp_path / "f.json")
        payload = json.loads(path.read_text())
        payload["format_version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="version"):
            load_figure_json(path)


class TestCsvExport:
    def test_csv_rows(self, tmp_path):
        path = export_figure_csv(figure(), tmp_path / "f.csv")
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1 + 4  # header + 4 cells
        assert lines[0].startswith("figure_id,nodes,scheme")

    def test_csv_sorted_by_x_then_scheme(self, tmp_path):
        path = export_figure_csv(figure(), tmp_path / "f.csv")
        rows = path.read_text().strip().splitlines()[1:]
        keys = [(float(r.split(",")[1]), r.split(",")[2]) for r in rows]
        assert keys == sorted(keys)
