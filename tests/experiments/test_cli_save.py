"""CLI persistence flags (parse-level; the figure run itself is bench-scale)."""

from repro.cli import build_parser


class TestSaveFlags:
    def test_fig_save_and_csv_flags(self):
        args = build_parser().parse_args(
            ["fig", "fig5", "--save", "out/fig5.json", "--csv", "out/fig5.csv"]
        )
        assert args.save == "out/fig5.json"
        assert args.csv == "out/fig5.csv"

    def test_flags_default_off(self):
        args = build_parser().parse_args(["fig", "fig5"])
        assert args.save is None
        assert args.csv is None
